//! Cross-crate property-based tests: invariants that must hold for *any*
//! table, not just the synthetic datasets.

use proptest::prelude::*;

use cvopt_core::estimate::estimate_single;
use cvopt_core::{CvOptSampler, MaterializedSample, QuerySpec, SamplingProblem};
use cvopt_table::{AggExpr, GroupByQuery, GroupIndex, ScalarExpr, Table, TableBuilder, Value};

/// Build a small random two-column table from proptest-generated rows.
fn build_table(rows: &[(u8, f64)]) -> Table {
    let mut b = TableBuilder::new(&[
        ("g", cvopt_table::DataType::Str),
        ("x", cvopt_table::DataType::Float64),
    ]);
    for (g, x) in rows {
        // Positive values keep group means non-zero (CVOPT's precondition).
        b.push_row(&[Value::str(format!("g{}", g % 5)), Value::Float64(x.abs() + 0.5)]).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A full-weight sample (every row, weight 1) reproduces exact answers
    /// for every aggregate kind, on any data.
    #[test]
    fn full_sample_estimates_equal_exact(
        rows in proptest::collection::vec((any::<u8>(), -1e3f64..1e3), 1..200),
    ) {
        let table = build_table(&rows);
        let all: Vec<u32> = (0..table.num_rows() as u32).collect();
        let weights = vec![1.0; table.num_rows()];
        let sample = MaterializedSample::from_rows(&table, all, weights);
        let query = GroupByQuery::new(
            vec![ScalarExpr::col("g")],
            vec![
                AggExpr::count(),
                AggExpr::sum("x"),
                AggExpr::avg("x"),
                AggExpr::min("x"),
                AggExpr::max("x"),
            ],
        );
        let exact = &query.execute(&table).unwrap()[0];
        let est = estimate_single(&sample, &query).unwrap();
        prop_assert_eq!(est.num_groups(), exact.num_groups());
        for (key, values) in exact.iter() {
            for (j, v) in values.iter().enumerate() {
                let e = est.value(key, j).unwrap();
                prop_assert!(
                    (e - v).abs() < 1e-9 * (1.0 + v.abs()),
                    "key {:?} agg {}: {} vs {}", key, j, e, v
                );
            }
        }
    }

    /// CVOPT's allocation always covers every group, stays within stratum
    /// populations, and spends exactly min(budget, N) rows.
    #[test]
    fn allocation_invariants_hold_for_any_data(
        rows in proptest::collection::vec((any::<u8>(), -1e3f64..1e3), 5..300),
        budget in 1usize..500,
    ) {
        let table = build_table(&rows);
        let problem = SamplingProblem::single(
            QuerySpec::group_by(&["g"]).aggregate("x"),
            budget,
        );
        let plan = CvOptSampler::new(problem).plan(&table).unwrap();
        let total_pop: u64 = plan.stats.populations.iter().sum();
        let num_strata = plan.num_strata() as u64;
        prop_assert_eq!(plan.allocation.total(), (budget as u64).min(total_pop));
        for (s, n) in plan.allocation.sizes.iter().zip(&plan.stats.populations) {
            prop_assert!(s <= n);
            if budget as u64 >= num_strata {
                prop_assert!(*s >= 1, "stratum starved despite sufficient budget");
            }
        }
    }

    /// Drawing is deterministic in the seed and produces distinct rows that
    /// respect the allocation exactly.
    #[test]
    fn sampling_matches_allocation(
        rows in proptest::collection::vec((any::<u8>(), 0.0f64..1e3), 10..300),
        budget in 1usize..200,
        seed in any::<u64>(),
    ) {
        let table = build_table(&rows);
        let problem = SamplingProblem::single(
            QuerySpec::group_by(&["g"]).aggregate("x"),
            budget,
        );
        let sampler = CvOptSampler::new(problem).with_seed(seed);
        let a = sampler.sample(&table).unwrap();
        let b = sampler.sample(&table).unwrap();
        prop_assert_eq!(&a.sample.origin, &b.sample.origin);
        prop_assert_eq!(a.sample.len() as u64, a.plan.allocation.total());
        let mut origins = a.sample.origin.clone();
        origins.sort_unstable();
        origins.dedup();
        prop_assert_eq!(origins.len(), a.sample.len(), "duplicate sampled rows");
    }

    /// Group projection is consistent: projecting the finest index onto a
    /// dimension subset must agree row-by-row with an index built directly
    /// on that subset.
    #[test]
    fn projection_agrees_with_direct_index(
        rows in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..300),
    ) {
        let mut b = TableBuilder::new(&[
            ("a", cvopt_table::DataType::Int64),
            ("b", cvopt_table::DataType::Int64),
        ]);
        for (x, y) in &rows {
            b.push_row(&[Value::Int64((x % 7) as i64), Value::Int64((y % 4) as i64)])
                .unwrap();
        }
        let table = b.finish();
        let fine =
            GroupIndex::build(&table, &[ScalarExpr::col("a"), ScalarExpr::col("b")]).unwrap();
        let proj = fine.project(&[0]);
        let direct = GroupIndex::build(&table, &[ScalarExpr::col("a")]).unwrap();
        for row in 0..table.num_rows() {
            let via_proj = proj.key(proj.coarse_of(fine.group_of(row)));
            let via_direct = direct.key(direct.group_of(row));
            prop_assert_eq!(via_proj, via_direct, "row {}", row);
        }
    }
}

//! Sharded determinism: every pass over a [`ShardedTable`] — group index,
//! statistics, allocation, the stratified draw, exact execution, and
//! estimation — must produce **bit-identical** output to the same pass over
//! the concatenated single table, for any shard layout (uneven and empty
//! shards included) and any thread count.
//!
//! CI runs this suite in a shards × threads matrix (`CVOPT_SHARDS` ×
//! `CVOPT_THREADS` pinned); both pinned values are folded into every sweep
//! below, so hosted multi-core runners exercise the scatter-gather merges
//! at each matrix point while the local sweep still covers the standard
//! counts.

use proptest::prelude::*;

use cvopt_core::{
    budget_for_rate, problem_for_query, CvOptSampler, Engine, ExecOptions, Norm, QueryMode,
    QuerySpec, SamplingProblem, StratifiedSample,
};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::{
    sql, DataType, GroupIndex, ScalarExpr, ShardedTable, Table, TableBuilder, Value,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SHARD_COUNTS: [usize; 3] = [1, 3, 5];

/// The standard thread sweep plus the CI matrix's pinned `CVOPT_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = THREAD_COUNTS.to_vec();
    if let Some(pinned) = std::env::var("CVOPT_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

/// The standard shard sweep plus the CI matrix's pinned `CVOPT_SHARDS`.
fn shard_counts() -> Vec<usize> {
    let mut counts = SHARD_COUNTS.to_vec();
    if let Some(pinned) = std::env::var("CVOPT_SHARDS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if pinned > 0 && !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

fn skewed_table() -> Table {
    generate_openaq(&OpenAqConfig::with_rows(20_000))
}

/// Shard layouts to exercise for `table`: even splits at every swept shard
/// count, one deliberately lopsided split, and one with empty shards at
/// both ends and in the middle.
fn layouts(table: &Table) -> Vec<(String, ShardedTable)> {
    let n = table.num_rows();
    let mut out: Vec<(String, ShardedTable)> = shard_counts()
        .into_iter()
        .map(|k| (format!("even/{k}"), ShardedTable::split(table, k).unwrap()))
        .collect();

    let empty = || TableBuilder::from_schema(table.schema().clone()).finish();
    let take = |lo: usize, hi: usize| table.take(&(lo..hi).collect::<Vec<_>>());
    out.push((
        "uneven".to_string(),
        ShardedTable::from_tables(vec![
            take(0, n / 10),
            take(n / 10, n / 10 + 7),
            take(n / 10 + 7, n),
        ])
        .unwrap(),
    ));
    out.push((
        "empty-shards".to_string(),
        ShardedTable::from_tables(vec![empty(), take(0, n / 3), empty(), take(n / 3, n), empty()])
            .unwrap(),
    ));
    out
}

fn problem(norm: Norm) -> SamplingProblem {
    SamplingProblem::single(QuerySpec::group_by(&["country", "parameter"]).aggregate("value"), 400)
        .with_norm(norm)
}

/// The headline contract: plans and samples drawn from a sharded table are
/// bit-identical to the unsharded ones, for every norm, layout, and thread
/// count.
#[test]
fn sharded_plan_and_sample_identical_to_unsharded() {
    let table = skewed_table();
    for norm in [Norm::L2, Norm::Lp(4.0), Norm::LInf] {
        let reference = CvOptSampler::new(problem(norm))
            .with_seed(7)
            .with_exec(ExecOptions::sequential())
            .sample(&table)
            .unwrap();
        for (name, sharded) in layouts(&table) {
            for threads in thread_counts() {
                let outcome = CvOptSampler::new(problem(norm))
                    .with_seed(7)
                    .with_threads(threads)
                    .sample_sharded(&sharded)
                    .unwrap();
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(
                    outcome.plan.allocation.sizes, reference.plan.allocation.sizes,
                    "{norm:?}, layout {name}, threads {threads}: allocation differs"
                );
                assert_eq!(
                    bits(&outcome.plan.betas),
                    bits(&reference.plan.betas),
                    "{norm:?}, layout {name}, threads {threads}: betas differ"
                );
                assert_eq!(outcome.plan.stats.populations, reference.plan.stats.populations);
                for s in 0..outcome.plan.num_strata() {
                    assert_eq!(
                        outcome.plan.stats.mean(s, 0).to_bits(),
                        reference.plan.stats.mean(s, 0).to_bits(),
                        "{norm:?}, layout {name}, threads {threads}: stratum {s} mean differs"
                    );
                }
                assert_eq!(
                    outcome.sample.origin, reference.sample.origin,
                    "{norm:?}, layout {name}, threads {threads}: drawn rows differ"
                );
                assert_eq!(bits(&outcome.sample.weights), bits(&reference.sample.weights));
                // The materialized rows themselves (copied shard-by-shard)
                // match the single-table copies.
                for row in 0..outcome.sample.table.num_rows().min(50) {
                    assert_eq!(outcome.sample.table.row(row), reference.sample.table.row(row));
                }
            }
        }
    }
}

/// Estimates served from a sharded preparation are bit-identical to the
/// unsharded ones — including under a predicate the sample was never
/// planned for — and exact execution matches bit for bit as well.
#[test]
fn sharded_estimates_and_exact_answers_identical_to_unsharded() {
    let table = skewed_table();
    let statements = [
        "SELECT country, AVG(value), SUM(value) FROM openaq GROUP BY country",
        "SELECT country, AVG(value) FROM openaq WHERE parameter = 'pm25' GROUP BY country",
    ];
    for (name, sharded) in layouts(&table) {
        for threads in thread_counts() {
            let exec = ExecOptions::new(threads);
            let mut single = Engine::new().with_seed(42).with_exec(exec);
            single.register("openaq", table.clone());
            let mut shard_engine = Engine::new().with_seed(42).with_exec(exec);
            shard_engine.register("openaq", sharded.clone());
            for stmt in &statements {
                for mode in [QueryMode::Exact, QueryMode::Approximate] {
                    let a = single.query(stmt, mode).unwrap();
                    let b = shard_engine.query(stmt, mode).unwrap();
                    assert_eq!(
                        a.results[0].keys, b.results[0].keys,
                        "layout {name}, threads {threads}, {mode:?}: {stmt}"
                    );
                    assert_eq!(a.results[0].group_rows, b.results[0].group_rows);
                    for (x, y) in a.results[0].values.iter().zip(&b.results[0].values) {
                        for (u, v) in x.iter().zip(y) {
                            assert_eq!(
                                u.to_bits(),
                                v.to_bits(),
                                "layout {name}, threads {threads}, {mode:?}: {stmt}"
                            );
                        }
                    }
                }
            }
            // One statistics pass per engine: the second statement's
            // derived problem differs only by predicate, so it reuses the
            // prepared sample on both paths.
            assert_eq!(single.stats_passes(), shard_engine.stats_passes());
        }
    }
}

/// The sharded draw (per-shard histogram level above the per-partition
/// scatter) equals the unsharded draw on a real group index.
#[test]
fn sharded_draw_identical_across_layouts_and_threads() {
    let table = skewed_table();
    let exprs = [ScalarExpr::col("country"), ScalarExpr::col("parameter")];
    let index = GroupIndex::build_with(&table, &exprs, &ExecOptions::sequential()).unwrap();
    let allocation: Vec<u64> = index.sizes().iter().map(|&n| (n / 8).max(1)).collect();
    let reference = StratifiedSample::draw(&index, &allocation, 99, &ExecOptions::sequential());
    for (name, sharded) in layouts(&table) {
        for threads in thread_counts() {
            let options = ExecOptions::new(threads);
            let sindex = GroupIndex::build_sharded(&sharded, &exprs, &options).unwrap();
            assert_eq!(sindex.row_groups(), index.row_groups(), "layout {name}");
            let drawn =
                StratifiedSample::draw_sharded(&sindex, &sharded, &allocation, 99, &options);
            assert_eq!(
                drawn.rows_per_stratum, reference.rows_per_stratum,
                "layout {name}, threads {threads}"
            );
        }
    }
}

/// Direct SQL over a sharded table (no engine) matches the single-table
/// result bit for bit, cube queries included.
#[test]
fn sharded_sql_matches_single_table() {
    let table = skewed_table();
    let statements = [
        "SELECT country, parameter, AVG(value) FROM t GROUP BY country, parameter WITH CUBE",
        "SELECT country, COUNT_IF(value > 50), MIN(value), MAX(value) FROM t GROUP BY country",
    ];
    for stmt in &statements {
        let reference = sql::run_with(&table, stmt, &ExecOptions::sequential()).unwrap();
        for (name, sharded) in layouts(&table) {
            for threads in thread_counts() {
                let got =
                    sql::run_sharded_with(&sharded, stmt, &ExecOptions::new(threads)).unwrap();
                assert_eq!(got.len(), reference.len(), "layout {name}");
                for (g, r) in got.iter().zip(&reference) {
                    assert_eq!(g.keys, r.keys, "layout {name}, threads {threads}: {stmt}");
                    for (x, y) in g.values.iter().zip(&r.values) {
                        for (u, v) in x.iter().zip(y) {
                            assert_eq!(
                                u.to_bits(),
                                v.to_bits(),
                                "layout {name}, threads {threads}: {stmt}"
                            );
                        }
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ShardedTable` round-trips on random tables: splitting into k
    /// shards (k ∈ 1..=5, shards of size 0 included when k exceeds the
    /// row count) preserves row order, group ids, and stratum statistics
    /// exactly.
    #[test]
    fn sharded_table_round_trips_on_random_tables(
        rows in proptest::collection::vec((any::<u8>(), 0.5f64..1e3), 0..300),
        k in 1usize..=5,
        threads in 1usize..=4,
    ) {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("x", DataType::Float64),
        ]);
        for (g, x) in &rows {
            b.push_row(&[Value::str(format!("g{}", g % 6)), Value::Float64(*x)]).unwrap();
        }
        let table = b.finish();
        let sharded = ShardedTable::split(&table, k).unwrap();

        // Row order round-trips.
        let round = sharded.to_table();
        prop_assert_eq!(round.num_rows(), table.num_rows());
        for row in 0..table.num_rows() {
            prop_assert_eq!(round.row(row), table.row(row));
        }

        // Group ids are preserved exactly.
        let options = ExecOptions::new(threads);
        let exprs = [ScalarExpr::col("g")];
        let reference = GroupIndex::build_with(&table, &exprs, &ExecOptions::sequential()).unwrap();
        let sindex = GroupIndex::build_sharded(&sharded, &exprs, &options).unwrap();
        prop_assert_eq!(sindex.row_groups(), reference.row_groups());
        prop_assert_eq!(sindex.sizes(), reference.sizes());
        for g in 0..reference.num_groups() as u32 {
            prop_assert_eq!(sindex.key(g), reference.key(g));
        }

        // Stratum statistics are preserved exactly (bit-for-bit).
        let cols = [ScalarExpr::col("x")];
        let ref_stats = cvopt_core::StratumStatistics::collect_with(
            &table, &reference, &cols, &ExecOptions::sequential(),
        ).unwrap();
        let sharded_stats = cvopt_core::StratumStatistics::collect_sharded(
            &sharded, &sindex, &cols, &options,
        ).unwrap();
        prop_assert_eq!(&sharded_stats.populations, &ref_stats.populations);
        for g in 0..reference.num_groups() {
            prop_assert_eq!(
                sharded_stats.mean(g, 0).to_bits(),
                ref_stats.mean(g, 0).to_bits(),
                "stratum {} mean", g
            );
            prop_assert_eq!(
                sharded_stats.states[g][0].m2.to_bits(),
                ref_stats.states[g][0].m2.to_bits(),
                "stratum {} m2", g
            );
        }
    }

    /// Sharded sampling is a pure function of `(rows, problem, seed)` —
    /// never of the layout or the thread count — on random tables,
    /// budgets, and splits.
    #[test]
    fn sharded_sampling_layout_invariant_on_random_tables(
        rows in proptest::collection::vec((any::<u8>(), 0.5f64..1e3), 20..300),
        budget in 5usize..100,
        seed in any::<u64>(),
        k in 2usize..=5,
    ) {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("x", DataType::Float64),
        ]);
        for (g, x) in &rows {
            b.push_row(&[Value::str(format!("g{}", g % 6)), Value::Float64(*x)]).unwrap();
        }
        let table = b.finish();
        let spec = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), budget);
        let reference = CvOptSampler::new(spec.clone())
            .with_seed(seed)
            .with_threads(1)
            .sample(&table)
            .unwrap();
        let sharded = ShardedTable::split(&table, k).unwrap();
        for threads in [1usize, 4] {
            let outcome = CvOptSampler::new(spec.clone())
                .with_seed(seed)
                .with_threads(threads)
                .sample_sharded(&sharded)
                .unwrap();
            prop_assert_eq!(&outcome.sample.origin, &reference.sample.origin);
            prop_assert_eq!(&outcome.plan.allocation.sizes, &reference.plan.allocation.sizes);
        }
    }
}

mod remote {
    //! Remote shards over the wire: the same contract as above, with the
    //! shards living behind in-process `cvopt-shardd` servers. The network
    //! must be invisible in the bytes — and failures must be clean errors,
    //! absorbed by the per-peer circuit breaker until the server returns.

    use std::sync::Arc;
    use std::time::Duration;

    use cvopt_net::{NetConfig, Peer, RemoteShard, Shardd};
    use cvopt_table::{ShardReader, ShardSet};

    use super::*;

    /// Register every shard of `sharded` round-robin across `peers` (under
    /// `name/<s>` keys) and return the coordinator-side set.
    fn remote_set(name: &str, sharded: &ShardedTable, peers: &[Arc<Peer>]) -> ShardSet {
        let readers: Vec<Arc<dyn ShardReader>> = sharded
            .shards()
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let peer = Arc::clone(&peers[s % peers.len()]);
                let shard = RemoteShard::register(peer, format!("{name}/{s}"), shard)
                    .expect("register shard");
                Arc::new(shard) as Arc<dyn ShardReader>
            })
            .collect();
        ShardSet::new(readers).expect("shard set")
    }

    /// The tentpole contract: a plan and sample drawn over **remote**
    /// shards — two shard servers, shards round-robined across them — are
    /// bit-identical to the unsharded reference for every layout (uneven
    /// and empty shards included) and every thread count.
    #[test]
    fn remote_sample_identical_to_local() {
        let table = skewed_table();
        let mut a = Shardd::bind("127.0.0.1:0", 2).expect("shardd a");
        let mut b = Shardd::bind("127.0.0.1:0", 2).expect("shardd b");
        let peers = [
            Arc::new(Peer::connect(a.addr().to_string()).expect("peer a")),
            Arc::new(Peer::connect(b.addr().to_string()).expect("peer b")),
        ];
        let reference = CvOptSampler::new(problem(Norm::L2))
            .with_seed(7)
            .with_exec(ExecOptions::sequential())
            .sample(&table)
            .unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        for (name, sharded) in layouts(&table) {
            let set = remote_set(&name, &sharded, &peers);
            for threads in thread_counts() {
                let outcome = CvOptSampler::new(problem(Norm::L2))
                    .with_seed(7)
                    .with_threads(threads)
                    .sample_set(&set)
                    .unwrap();
                assert_eq!(
                    outcome.plan.allocation.sizes, reference.plan.allocation.sizes,
                    "layout {name}, threads {threads}: allocation differs"
                );
                assert_eq!(
                    bits(&outcome.plan.betas),
                    bits(&reference.plan.betas),
                    "layout {name}, threads {threads}: betas differ"
                );
                assert_eq!(
                    outcome.sample.origin, reference.sample.origin,
                    "layout {name}, threads {threads}: drawn rows differ"
                );
                assert_eq!(bits(&outcome.sample.weights), bits(&reference.sample.weights));
                // The gathered rows crossed the wire; they must still be
                // the same rows.
                for row in 0..outcome.sample.table.num_rows().min(50) {
                    assert_eq!(outcome.sample.table.row(row), reference.sample.table.row(row));
                }
            }
        }
        a.shutdown();
        b.shutdown();
    }

    /// The engine paths agree end to end: queries over a remote catalog
    /// table match the local sharded answers bit for bit, the layout fold
    /// (and so the cache key) is identical, and only `/explain`'s
    /// `remote_shards` field tells the topologies apart.
    #[test]
    fn remote_engine_matches_local_sharded_engine() {
        let table = skewed_table();
        let mut shardd = Shardd::bind("127.0.0.1:0", 2).expect("shardd");
        let peers = [Arc::new(Peer::connect(shardd.addr().to_string()).expect("peer"))];
        let sharded = ShardedTable::split(&table, 3).unwrap();
        let stmt = "SELECT country, AVG(value), SUM(value) FROM openaq GROUP BY country";

        let mut local = Engine::new().with_seed(42);
        local.register("openaq", sharded.clone());
        let mut remote = Engine::new().with_seed(42);
        remote.register("openaq", remote_set("openaq", &sharded, &peers));

        for mode in [QueryMode::Exact, QueryMode::Approximate] {
            let a = local.query(stmt, mode).unwrap();
            let b = remote.query(stmt, mode).unwrap();
            assert_eq!(a.results[0].keys, b.results[0].keys, "{mode:?}");
            assert_eq!(a.results[0].group_rows, b.results[0].group_rows, "{mode:?}");
            for (x, y) in a.results[0].values.iter().zip(&b.results[0].values) {
                for (u, v) in x.iter().zip(y) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{mode:?}");
                }
            }
        }

        let a = local.explain(stmt).unwrap();
        let b = remote.explain(stmt).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint, "same layout fold, same cache key");
        assert_eq!(a.remote_shards, None);
        assert_eq!(b.remote_shards, Some(3));
        shardd.shutdown();
    }

    /// Fault injection: killing the shard server mid-query yields a clean
    /// coordinator error, repeated failures trip the circuit breaker, and
    /// after a restart on the same port (plus re-registration) the same
    /// peer recovers with bit-identical answers.
    #[test]
    fn killed_shardd_errors_cleanly_and_circuit_recovers() {
        let table = skewed_table();
        let sharded = ShardedTable::split(&table, 2).unwrap();
        let mut shardd = Shardd::bind("127.0.0.1:0", 2).expect("shardd");
        let addr = shardd.addr();
        let config = NetConfig {
            circuit_threshold: 1,
            circuit_cooldown: Duration::from_millis(200),
            ..NetConfig::default()
        };
        let peers = [Arc::new(Peer::with_config(addr.to_string(), config).expect("peer"))];
        let set = remote_set("t", &sharded, &peers);

        let sample = |set: &ShardSet| {
            CvOptSampler::new(problem(Norm::L2)).with_seed(7).with_threads(2).sample_set(set)
        };
        let reference = sample(&set).expect("live server answers");

        shardd.shutdown();
        let err = sample(&set).expect_err("dead server must be an error, not a panic");
        assert!(err.to_string().contains("remote shard"), "unexpected error: {err}");

        // The breaker is open now: the retry fails fast, no socket work.
        let err = sample(&set).expect_err("circuit rejects while the server is down");
        assert!(err.to_string().contains("remote shard"), "unexpected error: {err}");
        assert!(peers[0].circuit_open(), "repeated failures should open the circuit");

        // Restart on the same port, re-register, wait out the cooldown:
        // the existing peer (and the existing RemoteShard handles) heal.
        let mut revived = Shardd::bind(addr, 2).expect("rebind the same port");
        std::thread::sleep(Duration::from_millis(250));
        for (s, shard) in sharded.shards().iter().enumerate() {
            RemoteShard::register(Arc::clone(&peers[0]), format!("t/{s}"), shard)
                .expect("re-register after restart");
        }
        let outcome = sample(&set).expect("recovered after restart");
        assert_eq!(outcome.sample.origin, reference.sample.origin);
        assert_eq!(outcome.plan.allocation.sizes, reference.plan.allocation.sizes);
        revived.shutdown();
    }
}

/// The derived problem and fingerprints agree between engine paths (sanity
/// check that the layout fold changes the cache key, not the answer).
#[test]
fn sharded_problem_derivation_matches() {
    let table = skewed_table();
    let stmt = "SELECT country, AVG(value) FROM t GROUP BY country";
    let query = sql::compile(stmt).unwrap();
    let budget = budget_for_rate(&table, 0.01).unwrap();
    let derived = problem_for_query(&query, budget).unwrap();

    let mut single = Engine::new().with_auto_threshold(1000);
    single.register("t", table.clone());
    let mut shard_engine = Engine::new().with_auto_threshold(1000);
    shard_engine.register("t", ShardedTable::split(&table, 3).unwrap());

    let a = single.explain(stmt).unwrap();
    let b = shard_engine.explain(stmt).unwrap();
    assert_eq!(a.budget, b.budget);
    assert_eq!(a.budget, Some(derived.budget));
    assert_eq!(a.table_rows, b.table_rows);
    // Same problem, different cache keys (the layout is folded in).
    assert_ne!(a.fingerprint, b.fingerprint);
    assert_eq!(a.partitions, b.partitions, "global partitioning ignores shard boundaries");
}

//! SQL front-end integration: every paper query expressed as SQL parses,
//! plans and executes; parse errors are informative.

use cvopt_datagen::{generate_bikes, generate_openaq, BikesConfig, OpenAqConfig};
use cvopt_table::{sql, TableError};

#[test]
fn paper_queries_as_sql_run_on_openaq() {
    let t = generate_openaq(&OpenAqConfig::with_rows(20_000));
    let statements = [
        // AQ2
        "SELECT country, parameter, unit, SUM(value) agg1, COUNT(*) agg2 \
         FROM OpenAQ GROUP BY country, parameter, unit",
        // AQ3
        "SELECT country, parameter, unit, AVG(value) FROM OpenAQ \
         WHERE HOUR(local_time) BETWEEN 0 AND 23 GROUP BY country, parameter, unit",
        // AQ4 (synthetic form)
        "SELECT country, MONTH(local_time), YEAR(local_time), AVG(value) FROM OpenAQ \
         WHERE parameter = 'co' GROUP BY country, MONTH(local_time), YEAR(local_time)",
        // AQ5
        "SELECT country, parameter, unit, AVG(value) AS average FROM OpenAQ \
         WHERE latitude > 0 GROUP BY country, parameter, unit",
        // AQ6
        "SELECT parameter, unit, COUNT_IF(value > 0.5) AS count FROM OpenAQ \
         WHERE country = 'C02' GROUP BY parameter, unit",
        // AQ7
        "SELECT country, parameter, SUM(value) FROM OpenAQ \
         GROUP BY country, parameter WITH CUBE",
        // AQ8
        "SELECT country, parameter, SUM(value), SUM(latitude) FROM OpenAQ \
         GROUP BY country, parameter WITH CUBE",
    ];
    for stmt in statements {
        let results = sql::run(&t, stmt).unwrap_or_else(|e| panic!("{stmt}: {e}"));
        assert!(results[0].num_groups() > 0, "{stmt} returned no groups");
    }
}

#[test]
fn paper_queries_as_sql_run_on_bikes() {
    let t = generate_bikes(&BikesConfig::with_rows(20_000));
    let statements = [
        "SELECT from_station_id, AVG(age) agg1, AVG(trip_duration) agg2 \
         FROM Bikes WHERE age > 0 GROUP BY from_station_id",
        "SELECT from_station_id, AVG(trip_duration) FROM Bikes \
         WHERE trip_duration > 0 GROUP BY from_station_id",
        "SELECT from_station_id, year, SUM(trip_duration) FROM Bikes \
         WHERE age > 0 GROUP BY from_station_id, year WITH CUBE",
        "SELECT from_station_id, year, SUM(trip_duration), SUM(age) \
         FROM Bikes GROUP BY from_station_id, year WITH CUBE",
    ];
    for stmt in statements {
        let results = sql::run(&t, stmt).unwrap_or_else(|e| panic!("{stmt}: {e}"));
        assert!(results[0].num_groups() > 0, "{stmt} returned no groups");
    }
}

#[test]
fn sql_errors_are_informative() {
    let t = generate_openaq(&OpenAqConfig::with_rows(1_000));
    // Unknown column caught at bind time.
    let err = sql::run(&t, "SELECT nope, AVG(value) FROM t GROUP BY nope").unwrap_err();
    assert!(matches!(err, TableError::ColumnNotFound(_)), "{err}");
    // Syntax error carries a position.
    let err = sql::run(&t, "SELECT AVG(value) FROM").unwrap_err();
    assert!(matches!(err, TableError::Sql { position: Some(_), .. }), "{err}");
    // Grouping rule enforced.
    let err = sql::run(&t, "SELECT country, AVG(value) FROM t GROUP BY parameter").unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn sql_and_ast_agree() {
    let t = generate_openaq(&OpenAqConfig::with_rows(10_000));
    let via_sql =
        sql::run(&t, "SELECT country, AVG(value) FROM t WHERE parameter = 'co' GROUP BY country")
            .unwrap();
    let via_ast = cvopt_table::GroupByQuery::new(
        vec![cvopt_table::ScalarExpr::col("country")],
        vec![cvopt_table::AggExpr::avg("value")],
    )
    .with_predicate(cvopt_table::Predicate::cmp("parameter", cvopt_table::CmpOp::Eq, "co"))
    .execute(&t)
    .unwrap();
    assert_eq!(via_sql[0].keys, via_ast[0].keys);
    assert_eq!(via_sql[0].values, via_ast[0].values);
}

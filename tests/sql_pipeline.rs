//! SQL front-end integration: every paper query expressed as SQL parses,
//! plans and executes; parse errors are informative.

use cvopt_datagen::{generate_bikes, generate_openaq, BikesConfig, OpenAqConfig};
use cvopt_table::{sql, TableError};

#[test]
fn paper_queries_as_sql_run_on_openaq() {
    let t = generate_openaq(&OpenAqConfig::with_rows(20_000));
    let statements = [
        // AQ2
        "SELECT country, parameter, unit, SUM(value) agg1, COUNT(*) agg2 \
         FROM OpenAQ GROUP BY country, parameter, unit",
        // AQ3
        "SELECT country, parameter, unit, AVG(value) FROM OpenAQ \
         WHERE HOUR(local_time) BETWEEN 0 AND 23 GROUP BY country, parameter, unit",
        // AQ4 (synthetic form)
        "SELECT country, MONTH(local_time), YEAR(local_time), AVG(value) FROM OpenAQ \
         WHERE parameter = 'co' GROUP BY country, MONTH(local_time), YEAR(local_time)",
        // AQ5
        "SELECT country, parameter, unit, AVG(value) AS average FROM OpenAQ \
         WHERE latitude > 0 GROUP BY country, parameter, unit",
        // AQ6
        "SELECT parameter, unit, COUNT_IF(value > 0.5) AS count FROM OpenAQ \
         WHERE country = 'C02' GROUP BY parameter, unit",
        // AQ7
        "SELECT country, parameter, SUM(value) FROM OpenAQ \
         GROUP BY country, parameter WITH CUBE",
        // AQ8
        "SELECT country, parameter, SUM(value), SUM(latitude) FROM OpenAQ \
         GROUP BY country, parameter WITH CUBE",
    ];
    for stmt in statements {
        let results = sql::run(&t, stmt).unwrap_or_else(|e| panic!("{stmt}: {e}"));
        assert!(results[0].num_groups() > 0, "{stmt} returned no groups");
    }
}

#[test]
fn paper_queries_as_sql_run_on_bikes() {
    let t = generate_bikes(&BikesConfig::with_rows(20_000));
    let statements = [
        "SELECT from_station_id, AVG(age) agg1, AVG(trip_duration) agg2 \
         FROM Bikes WHERE age > 0 GROUP BY from_station_id",
        "SELECT from_station_id, AVG(trip_duration) FROM Bikes \
         WHERE trip_duration > 0 GROUP BY from_station_id",
        "SELECT from_station_id, year, SUM(trip_duration) FROM Bikes \
         WHERE age > 0 GROUP BY from_station_id, year WITH CUBE",
        "SELECT from_station_id, year, SUM(trip_duration), SUM(age) \
         FROM Bikes GROUP BY from_station_id, year WITH CUBE",
    ];
    for stmt in statements {
        let results = sql::run(&t, stmt).unwrap_or_else(|e| panic!("{stmt}: {e}"));
        assert!(results[0].num_groups() > 0, "{stmt} returned no groups");
    }
}

#[test]
fn engine_round_trip_exact_and_approximate() {
    let t = generate_openaq(&OpenAqConfig::with_rows(20_000));
    let mut engine = cvopt_core::Engine::new().with_seed(3).with_default_rate(0.05);
    engine.register("OpenAQ", t.clone());

    // Exact through the engine == direct sql::run, for every paper query.
    let statements = [
        "SELECT country, parameter, unit, SUM(value) agg1, COUNT(*) agg2 \
         FROM OpenAQ GROUP BY country, parameter, unit",
        "SELECT country, parameter, unit, AVG(value) FROM OpenAQ \
         WHERE HOUR(local_time) BETWEEN 0 AND 23 GROUP BY country, parameter, unit",
        "SELECT country, parameter, SUM(value) FROM OpenAQ \
         GROUP BY country, parameter WITH CUBE",
    ];
    for stmt in statements {
        let ans = engine.query(stmt, cvopt_core::QueryMode::Exact).unwrap();
        let direct = sql::run(&t, stmt).unwrap();
        assert_eq!(ans.results.len(), direct.len(), "{stmt}");
        for (a, d) in ans.results.iter().zip(&direct) {
            assert_eq!(a.keys, d.keys, "{stmt}");
            assert_eq!(a.values, d.values, "{stmt}");
        }
    }

    // Approximate: the answer covers the same groups, the report carries
    // the plan facts, and the second run hits the cache.
    let stmt = "SELECT country, AVG(value) FROM OpenAQ GROUP BY country";
    let approx = engine.query(stmt, cvopt_core::QueryMode::Approximate).unwrap();
    let exact = sql::run(&t, stmt).unwrap();
    assert_eq!(approx.results[0].num_groups(), exact[0].num_groups());
    assert_eq!(approx.report.table, "OpenAQ");
    assert_eq!(approx.report.cache_hit, Some(false));
    assert_eq!(approx.report.budget, Some(1_000));
    assert!(approx.report.strata.unwrap() > 0);
    assert!(!approx.confidence.is_empty(), "AVG answers carry intervals");

    let again = engine.query(stmt, cvopt_core::QueryMode::Approximate).unwrap();
    assert_eq!(again.report.cache_hit, Some(true));
    assert_eq!(again.results[0].values, approx.results[0].values);

    // EXPLAIN agrees with what query() just did, without running anything.
    let report = engine.explain_mode(stmt, cvopt_core::QueryMode::Approximate).unwrap();
    assert_eq!(report.cache_hit, Some(true));
    assert_eq!(report.strata, approx.report.strata);
    assert_eq!(report.fingerprint, approx.report.fingerprint);
}

#[test]
fn sql_errors_are_informative() {
    let t = generate_openaq(&OpenAqConfig::with_rows(1_000));
    // Unknown column caught at bind time.
    let err = sql::run(&t, "SELECT nope, AVG(value) FROM t GROUP BY nope").unwrap_err();
    assert!(matches!(err, TableError::ColumnNotFound(_)), "{err}");
    // Syntax error carries a position.
    let err = sql::run(&t, "SELECT AVG(value) FROM").unwrap_err();
    assert!(matches!(err, TableError::Sql { position: Some(_), .. }), "{err}");
    // Grouping rule enforced.
    let err = sql::run(&t, "SELECT country, AVG(value) FROM t GROUP BY parameter").unwrap_err();
    assert!(err.to_string().contains("GROUP BY"), "{err}");
}

#[test]
fn sql_and_ast_agree() {
    let t = generate_openaq(&OpenAqConfig::with_rows(10_000));
    let via_sql =
        sql::run(&t, "SELECT country, AVG(value) FROM t WHERE parameter = 'co' GROUP BY country")
            .unwrap();
    let via_ast = cvopt_table::GroupByQuery::new(
        vec![cvopt_table::ScalarExpr::col("country")],
        vec![cvopt_table::AggExpr::avg("value")],
    )
    .with_predicate(cvopt_table::Predicate::cmp("parameter", cvopt_table::CmpOp::Eq, "co"))
    .execute(&t)
    .unwrap();
    assert_eq!(via_sql[0].keys, via_ast[0].keys);
    assert_eq!(via_sql[0].values, via_ast[0].values);
}

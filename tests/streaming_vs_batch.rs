//! The one-pass streaming sampler vs the two-pass batch sampler: the
//! streamed sample should be competitive on the query it adapts for.

use cvopt_core::sample::MaterializedSample;
use cvopt_core::{CvOptSampler, QuerySpec, SamplingProblem, StreamingConfig, StreamingSampler};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::{relative_errors_all, ErrorSummary};
use cvopt_table::{sql, KeyAtom, Table};

fn openaq() -> Table {
    generate_openaq(&OpenAqConfig::with_rows(60_000))
}

fn stream_sample(table: &Table, budget: usize, seed: u64) -> MaterializedSample {
    let country = table.column_by_name("country").unwrap();
    let value = table.column_by_name("value").unwrap();
    let mut sampler = StreamingSampler::new(
        1,
        StreamingConfig { budget, epoch: 5_000, seed, ..Default::default() },
    );
    for row in 0..table.num_rows() {
        let key = [KeyAtom::Str(match country.value(row) {
            cvopt_table::Value::Str(s) => s,
            _ => unreachable!(),
        })];
        sampler.offer(&key, &[value.f64_at(row).unwrap()], row as u32);
    }
    let strata = sampler.finish();
    let mut rows = Vec::new();
    let mut weights = Vec::new();
    for s in &strata {
        for &r in &s.rows {
            rows.push(r);
            weights.push(s.weight);
        }
    }
    MaterializedSample::from_rows(table, rows, weights)
}

fn mean_err(table: &Table, sample: &MaterializedSample) -> f64 {
    let query = sql::compile("SELECT country, AVG(value) FROM t GROUP BY country").unwrap();
    let truth = query.execute(table).unwrap();
    let est = cvopt_core::estimate::estimate(sample, &query).unwrap();
    ErrorSummary::from_errors(&relative_errors_all(&truth, &est, 0.0)).mean
}

#[test]
fn streaming_is_competitive_with_batch() {
    let table = openaq();
    let budget = 1_200;
    let mut stream_acc = 0.0;
    let mut batch_acc = 0.0;
    let reps = 3;
    for seed in 0..reps {
        stream_acc += mean_err(&table, &stream_sample(&table, budget, seed));
        let problem =
            SamplingProblem::single(QuerySpec::group_by(&["country"]).aggregate("value"), budget);
        let batch = CvOptSampler::new(problem).with_seed(seed).sample(&table).unwrap();
        batch_acc += mean_err(&table, &batch.sample);
    }
    let stream = stream_acc / reps as f64;
    let batch = batch_acc / reps as f64;
    // One pass cannot beat two passes, but it should be within ~2x.
    assert!(stream < batch * 2.0, "streaming mean error {stream} vs batch {batch}");
    assert!(stream < 0.5, "streaming sample unusable: {stream}");
}

#[test]
fn streaming_covers_every_group() {
    let table = openaq();
    let sample = stream_sample(&table, 1_000, 9);
    let query = sql::compile("SELECT country, COUNT(*) FROM t GROUP BY country").unwrap();
    let truth = &query.execute(&table).unwrap()[0];
    let est = cvopt_core::estimate::estimate_single(&sample, &query).unwrap();
    assert_eq!(est.num_groups(), truth.num_groups());
    // COUNT estimates are exact: populations are tracked exactly.
    for (key, values) in truth.iter() {
        let e = est.value(key, 0).unwrap();
        assert!((e - values[0]).abs() < 1e-6, "{key:?}: {e} vs {}", values[0]);
    }
}

#[test]
fn streaming_respects_budget() {
    let table = openaq();
    for budget in [200usize, 800, 3_000] {
        let sample = stream_sample(&table, budget, 4);
        assert!(sample.len() <= budget, "budget {budget}, held {}", sample.len());
        assert!(sample.len() as f64 >= budget as f64 * 0.85, "budget underused");
    }
}

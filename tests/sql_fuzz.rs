//! Parser fuzz battery: the SQL front end must be total — any input, no
//! matter how hostile, either parses or returns a positioned error. It
//! must never panic, never recurse past its depth bound, and never loop.
//! Valid expression trees generated bottom-up must always parse back.

use proptest::prelude::*;

use cvopt_table::{sql, TableError};

/// Vocabulary for token-soup fuzzing: grammar keywords, punctuation,
/// idents, and literals in proportions that often produce *almost*-valid
/// statements — the inputs most likely to expose a panic path.
const VOCAB: [&str; 40] = [
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "WITH", "CUBE", "AND", "BETWEEN", "JOIN", "ON",
    "EXPLAIN", "CASE", "WHEN", "THEN", "ELSE", "END", "AS", "AVG", "SUM", "COUNT", "COUNT_IF",
    "YEAR", "MONTH", "HOUR", "(", ")", ",", "=", "<", ">", "+", "-", "*", "/", ".", "t", "x",
    "'a'", "3.5",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Token soup: random keyword/punctuation sequences never panic the
    /// parser, and failures are positioned SQL errors.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(0usize..VOCAB.len(), 0..40)) {
        let input = tokens.iter().map(|&i| VOCAB[i]).collect::<Vec<_>>().join(" ");
        match sql::parse_statement(&input) {
            Ok(_) => {}
            Err(TableError::Sql { .. }) => {}
            Err(other) => return Err(format!("non-SQL error for {input:?}: {other}")),
        }
    }

    /// Raw byte noise (lossy UTF-8): never panics, never succeeds unless
    /// the noise happens to be a statement.
    #[test]
    fn byte_noise_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..120)) {
        let input = String::from_utf8_lossy(&bytes);
        let _ = sql::parse_statement(&input);
    }

    /// Mutations of a valid statement — a window deleted anywhere — never
    /// panic, and whatever fails carries a position inside the input.
    #[test]
    fn mutated_statements_fail_with_positions(start in 0usize..70, len in 1usize..12) {
        let base = "EXPLAIN SELECT g, SUM(CASE WHEN v > 2 THEN v * 3 ELSE 0 END) \
                    FROM t JOIN d ON t.k = d.k WHERE v + 1 > 2 GROUP BY g";
        let start = start.min(base.len());
        let end = (start + len).min(base.len());
        let mutated: String = format!("{}{}", &base[..start], &base[end..]);
        match sql::parse_statement(&mutated) {
            Ok(_) => {}
            Err(TableError::Sql { position, message }) => {
                if let Some(pos) = position {
                    prop_assert!(pos <= mutated.len(), "position {} beyond input", pos);
                }
                prop_assert!(!message.is_empty());
            }
            Err(other) => return Err(format!("non-SQL error for {mutated:?}: {other}")),
        }
    }

    /// Generated arithmetic/CASE expression trees rendered to SQL always
    /// parse — the grammar is closed over its own expression language.
    #[test]
    fn generated_expressions_always_parse(shape in proptest::collection::vec(0u8..5, 1..12)) {
        // Build a random expression bottom-up from a shape vector; the
        // renderer only emits syntax the grammar documents.
        let mut expr = String::from("x");
        for op in &shape {
            expr = match op % 5 {
                0 => format!("({expr} + 1)"),
                1 => format!("({expr} * 2)"),
                2 => format!("({expr} - 0.5)"),
                3 => format!("CASE WHEN {expr} > 1 THEN {expr} ELSE 0 END"),
                _ => format!("({expr} / 4)"),
            };
        }
        let stmt = format!("SELECT g, SUM({expr}) FROM t GROUP BY g");
        sql::parse_statement(&stmt).map_err(|e| format!("{stmt}: {e}"))?;
        let explained = format!("EXPLAIN {stmt}");
        sql::parse_statement(&explained).map_err(|e| format!("{explained}: {e}"))?;
    }
}

/// Pathological depth: the recursive-descent parser refuses, in bounded
/// time, inputs engineered to overflow its stack — it must error, not
/// crash, well past its depth bound.
#[test]
fn pathological_nesting_errors_fast() {
    for depth in [100usize, 1_000, 100_000] {
        let open = "(".repeat(depth);
        let stmt = format!("SELECT g, SUM({open}x FROM t GROUP BY g");
        assert!(sql::parse_statement(&stmt).is_err(), "depth {depth}");
        let case = "CASE WHEN ".repeat(depth);
        let stmt = format!("SELECT g, SUM({case}x) FROM t GROUP BY g");
        assert!(sql::parse_statement(&stmt).is_err(), "depth {depth}");
    }
}

/// Hostile inputs collected from the error paths the grammar documents:
/// every one errors (never panics) and the message names the problem.
#[test]
fn hostile_corpus_errors_informatively() {
    let cases: [(&str, &str); 10] = [
        ("", "SELECT"),
        ("EXPLAIN", "SELECT"),
        ("EXPLAIN EXPLAIN SELECT COUNT(*) FROM t", "expected"),
        ("SELECT COUNT(*) FROM t JOIN t ON t.a = t.b", "self-join"),
        ("SELECT COUNT(*) FROM t JOIN d ON a = d.b", "qualified"),
        ("SELECT COUNT(*) FROM t JOIN d ON x.a = d.b", "neither"),
        ("SELECT COUNT(*) FROM t JOIN d ON t.a = t.b", "one"),
        ("SELECT a.b, COUNT(*) FROM t GROUP BY a.b", "JOIN ON"),
        ("SELECT g, SUM(CASE END) FROM t GROUP BY g", "WHEN"),
        ("SELECT g, SUM(x % 2) FROM t GROUP BY g", "near"),
    ];
    for (input, needle) in cases {
        let err = sql::parse_statement(input).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.to_lowercase().contains(&needle.to_lowercase()),
            "{input:?}: expected {needle:?} in {msg:?}"
        );
    }
}

//! The serving layer's concurrency contract: responses from N concurrent
//! clients are **byte-identical** to a single-threaded server's answers —
//! the workspace's determinism guarantee extended across the wire — and
//! the prepared-sample cache economy survives concurrency (coalesced
//! misses, zero-scan hits, registration that never perturbs in-flight
//! queries).
//!
//! Every scenario compares raw response bytes from a `workers = 8` server
//! against a `workers = 1` reference server with the same per-request
//! thread slice, so not a single byte — headers included — may depend on
//! scheduling.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

use cvopt_core::{Engine, QueryMode};
use cvopt_serve::{client, Json, Server, ServerConfig};
use cvopt_table::{DataType, TableBuilder, Value};

/// Rows in the fixture table: a few strata, noticeable skew, fast.
const ROWS: usize = 30_000;

fn fixture_table() -> cvopt_table::Table {
    let mut b =
        TableBuilder::new(&[("g", DataType::Str), ("h", DataType::Str), ("x", DataType::Float64)]);
    for i in 0..ROWS {
        let g = match i % 20 {
            0 => "rare",
            1..=5 => "mid",
            _ => "common",
        };
        let h = if i % 3 == 0 { "p" } else { "q" };
        let x = 10.0 + (i % 13) as f64 * if g == "rare" { 10.0 } else { 1.0 };
        b.push_row(&[Value::str(g), Value::str(h), Value::Float64(x)]).unwrap();
    }
    b.finish()
}

fn fixture_engine() -> Engine {
    let mut engine = Engine::new().with_seed(42);
    engine.register("events", fixture_table());
    engine
}

/// Both servers must report the same per-request thread slice, or the
/// `threads` field of the plan report would differ byte-wise.
fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: 64,
        thread_budget: 2 * workers,
        max_body_bytes: 1 << 20,
        ..ServerConfig::default()
    }
}

fn post_raw(addr: SocketAddr, path: &str, body: &str) -> Vec<u8> {
    client::request_raw(addr, "POST", path, Some(body)).expect("request")
}

fn stats(addr: SocketAddr) -> Json {
    let (status, body) = client::get(addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{body}");
    Json::parse(&body).expect("stats json")
}

fn stat(json: &Json, field: &str) -> u64 {
    json.get(field).and_then(Json::as_u64).unwrap_or_else(|| panic!("stat {field}: {json}"))
}

const QUERY: &str =
    r#"{"sql":"SELECT g, AVG(x), SUM(x) FROM events GROUP BY g","mode":"approximate"}"#;

#[test]
fn concurrent_identical_queries_coalesce_and_match_sequential_bytes() {
    // Reference: a single-threaded server answering the same statement
    // twice — one miss, then one cache hit.
    let reference = Server::start(fixture_engine(), config(1)).unwrap();
    let miss_bytes = post_raw(reference.addr(), "/query", QUERY);
    let hit_bytes = post_raw(reference.addr(), "/query", QUERY);
    assert_ne!(miss_bytes, hit_bytes, "miss and hit reports must differ (cache_hit flag)");
    reference.shutdown();

    // 8 clients hit a cold 8-worker server simultaneously.
    let server = Server::start(fixture_engine(), config(8)).unwrap();
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(8));
    let responses: Vec<Vec<u8>> = (0..8)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                post_raw(addr, "/query", QUERY)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    let misses = responses.iter().filter(|r| **r == miss_bytes).count();
    let hits = responses.iter().filter(|r| **r == hit_bytes).count();
    assert_eq!(
        (misses, hits),
        (1, 7),
        "every response must be byte-identical to the sequential miss or hit answer"
    );

    // Concurrent misses coalesced: one statistics pass for eight clients.
    let s = stats(addr);
    assert_eq!(stat(&s, "stats_passes"), 1, "coalescing failed: {s}");
    assert_eq!(stat(&s, "cache_misses"), 1);
    assert_eq!(stat(&s, "cache_hits"), 7);
    server.shutdown();
}

#[test]
fn cached_hit_costs_zero_statistics_passes() {
    let server = Server::start(fixture_engine(), config(4)).unwrap();
    let addr = server.addr();
    let _ = post_raw(addr, "/query", QUERY);
    let before = stats(addr);
    assert_eq!(stat(&before, "stats_passes"), 1);

    // The cached hit: /stats must show no new pass, one more hit.
    let (status, body) = client::post(addr, "/query", QUERY).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        Json::parse(&body).unwrap().get("report").unwrap().get("cache_hit").unwrap().as_bool(),
        Some(true)
    );
    let after = stats(addr);
    assert_eq!(stat(&after, "stats_passes"), 1, "a cached hit must not scan");
    assert_eq!(stat(&after, "cache_hits"), stat(&before, "cache_hits") + 1);

    // A new predicate reuses the same sample (paper §6.3): still no pass.
    let reuse = r#"{"sql":"SELECT g, AVG(x), SUM(x) FROM events WHERE h = 'p' GROUP BY g","mode":"approximate"}"#;
    let (status, _) = client::post(addr, "/query", reuse).unwrap();
    assert_eq!(status, 200);
    assert_eq!(stat(&stats(addr), "stats_passes"), 1);
    server.shutdown();
}

#[test]
fn concurrent_distinct_queries_match_sequential_bytes() {
    let statements: [&str; 8] = [
        r#"{"sql":"SELECT g, AVG(x) FROM events GROUP BY g","mode":"approximate"}"#,
        r#"{"sql":"SELECT h, AVG(x) FROM events GROUP BY h","mode":"approximate"}"#,
        r#"{"sql":"SELECT g, h, AVG(x) FROM events GROUP BY g, h","mode":"approximate"}"#,
        r#"{"sql":"SELECT g, SUM(x), COUNT(*) FROM events GROUP BY g","mode":"exact"}"#,
        r#"{"sql":"SELECT h, MIN(x), MAX(x) FROM events GROUP BY h","mode":"exact"}"#,
        r#"{"sql":"SELECT g, AVG(x) FROM events WHERE h = 'q' GROUP BY g","mode":"exact"}"#,
        r#"{"sql":"SELECT g, AVG(x), COUNT(*) FROM events GROUP BY g","mode":"auto"}"#,
        r#"{"sql":"SELECT COUNT(*) FROM events","mode":"auto"}"#,
    ];

    // Sequential reference. Preparation order cannot matter: each
    // statement's sample is a pure function of (table, problem, seed).
    let reference = Server::start(fixture_engine(), config(1)).unwrap();
    let expected: Vec<Vec<u8>> =
        statements.iter().map(|q| post_raw(reference.addr(), "/query", q)).collect();
    reference.shutdown();

    let server = Server::start(fixture_engine(), config(8)).unwrap();
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(statements.len()));
    let responses: Vec<Vec<u8>> = statements
        .iter()
        .map(|&q| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                post_raw(addr, "/query", q)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|h| h.join().unwrap())
        .collect();

    for (i, (got, want)) in responses.iter().zip(&expected).enumerate() {
        assert_eq!(got, want, "statement {i} differs from the sequential answer");
    }
    server.shutdown();
}

#[test]
fn registration_while_querying_never_perturbs_answers() {
    let reference = Server::start(fixture_engine(), config(1)).unwrap();
    let miss_bytes = post_raw(reference.addr(), "/query", QUERY);
    let hit_bytes = post_raw(reference.addr(), "/query", QUERY);
    reference.shutdown();

    let server = Server::start(fixture_engine(), config(8)).unwrap();
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(6));

    // 4 query threads × 5 iterations against the stable table...
    let query_threads: Vec<_> = (0..4)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..5).map(|_| post_raw(addr, "/query", QUERY)).collect::<Vec<_>>()
            })
        })
        .collect();
    // ...while 2 registration threads add and replace *other* tables.
    let register_threads: Vec<_> = (0..2)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..3 {
                    let body = format!(
                        r#"{{"name":"extra_{t}_{i}","csv":"k,v\na,1\nb,2\n","columns":[["k","str"],["v","float64"]],"shards":2}}"#
                    );
                    let (status, text) = client::post(addr, "/tables", &body).unwrap();
                    assert_eq!(status, 200, "{text}");
                }
            })
        })
        .collect();

    let mut misses = 0;
    let mut hits = 0;
    for handle in query_threads {
        for response in handle.join().unwrap() {
            if response == miss_bytes {
                misses += 1;
            } else if response == hit_bytes {
                hits += 1;
            } else {
                panic!(
                    "response differs from both sequential answers:\n{}",
                    String::from_utf8_lossy(&response)
                );
            }
        }
    }
    for handle in register_threads {
        handle.join().unwrap();
    }
    assert_eq!((misses, hits), (1, 19), "one coalesced miss, every other answer cached");

    // Registrations all landed, and the engine still answers for them.
    let s = stats(addr);
    assert_eq!(stat(&s, "tables"), 7, "events + 6 registered: {s}");
    assert_eq!(stat(&s, "stats_passes"), 1, "registrations must not scan events");
    let (status, body) = client::post(
        addr,
        "/query",
        r#"{"sql":"SELECT k, SUM(v) FROM extra_0_0 GROUP BY k","mode":"exact"}"#,
    )
    .unwrap();
    assert_eq!(status, 200, "{body}");
    let parsed = Json::parse(&body).unwrap();
    let report = parsed.get("report").unwrap();
    assert_eq!(report.get("shards").unwrap().as_u64(), Some(2));
    server.shutdown();
}

#[test]
fn server_answers_match_in_process_engine() {
    // The wire adds encoding but must not change values: decode a served
    // answer and compare every estimate bit-for-bit with a direct
    // in-process engine call.
    let server = Server::start(fixture_engine(), config(2)).unwrap();
    let (status, body) = client::post(server.addr(), "/query", QUERY).unwrap();
    assert_eq!(status, 200, "{body}");
    let served = Json::parse(&body).unwrap();

    let engine = fixture_engine();
    let direct = engine
        .query("SELECT g, AVG(x), SUM(x) FROM events GROUP BY g", QueryMode::Approximate)
        .unwrap();

    let groups = served.get("results").unwrap().as_array().unwrap()[0]
        .get("groups")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(groups.len(), direct.results[0].num_groups());
    for (group, (key, values)) in groups.iter().zip(direct.results[0].iter()) {
        assert_eq!(
            group.get("key").unwrap().as_array().unwrap()[0].as_str().unwrap(),
            key[0].to_string()
        );
        for (got, want) in group.get("values").unwrap().as_array().unwrap().iter().zip(values) {
            // The JSON writer uses shortest-round-trip formatting, so the
            // decoded f64 is the served f64, bit for bit.
            assert_eq!(got.as_f64().unwrap().to_bits(), want.to_bits());
        }
    }
    server.shutdown();
}

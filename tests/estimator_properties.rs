//! Statistical properties of the estimators, verified by simulation:
//! unbiasedness of extensive aggregates and the optimizer's error ordering.

use cvopt_core::estimate::estimate_single;
use cvopt_core::{CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::groupby::KeyAtom;
use cvopt_table::{sql, Table};

fn openaq() -> Table {
    generate_openaq(&OpenAqConfig::with_rows(30_000))
}

/// SUM estimates from stratified samples are unbiased: the average over many
/// independent samples converges to the truth.
#[test]
fn stratified_sum_is_unbiased() {
    let table = openaq();
    let query = sql::compile("SELECT parameter, SUM(value) FROM t GROUP BY parameter").unwrap();
    let truth = &query.execute(&table).unwrap()[0];

    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["parameter"]).aggregate("value"),
        600, // 2%
    );
    let runs = 60;
    let mut sums: Vec<f64> = vec![0.0; truth.num_groups()];
    for seed in 0..runs {
        let outcome = CvOptSampler::new(problem.clone()).with_seed(seed).sample(&table).unwrap();
        let est = estimate_single(&outcome.sample, &query).unwrap();
        for (i, (key, _)) in truth.iter().enumerate() {
            sums[i] += est.value(key, 0).unwrap_or(0.0);
        }
    }
    for (i, (key, values)) in truth.iter().enumerate() {
        let avg = sums[i] / runs as f64;
        let rel = (avg - values[0]).abs() / values[0];
        // Per-run relative std is ~30% on the heavy-tailed groups, so the
        // 60-run mean has std ~4%; 12% is a ~3 sigma band.
        assert!(rel < 0.12, "group {key:?}: mean-of-estimates off by {rel}");
    }
}

/// The estimator for AVG is consistent: per-group error shrinks with the
/// per-group sample size CVOPT assigns.
#[test]
fn groups_with_more_samples_have_smaller_errors_on_average() {
    let table = openaq();
    let query = sql::compile("SELECT country, AVG(value) FROM t GROUP BY country").unwrap();
    let truth = &query.execute(&table).unwrap()[0];
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country"]).aggregate("value"),
        900, // 3%
    );
    let sampler = CvOptSampler::new(problem);
    let plan = sampler.plan(&table).unwrap();

    // Identify the most- and least-sampled strata among those that are not
    // fully sampled: a stratum whose allocation covers its whole population
    // is estimated exactly (zero error) and says nothing about how error
    // scales with sample size.
    let mut by_alloc: Vec<(usize, u64)> =
        plan.allocation.sizes.iter().copied().enumerate().collect();
    by_alloc.sort_by_key(|&(_, s)| s);
    let under_sampled = |(i, s): &&(usize, u64)| *s < plan.stats.populations[*i];
    let (lo_idx, lo_alloc) =
        *by_alloc.iter().find(under_sampled).expect("an under-sampled stratum");
    let (hi_idx, hi_alloc) =
        *by_alloc.iter().rev().find(under_sampled).expect("an under-sampled stratum");
    assert!(hi_alloc > lo_alloc);

    let lo_key = plan.strata_keys[lo_idx].clone();
    let hi_key = plan.strata_keys[hi_idx].clone();
    let err_of = |est: &cvopt_table::QueryResult, key: &[KeyAtom]| -> f64 {
        let t = truth.value(key, 0).unwrap();
        match est.value(key, 0) {
            Some(e) => (e - t).abs() / t.abs(),
            None => 1.0,
        }
    };

    // Average absolute errors over repeated draws.
    let runs = 25;
    let (mut lo_err, mut hi_err) = (0.0, 0.0);
    for seed in 0..runs {
        let outcome = sampler.clone_with_seed(seed).sample(&table).unwrap();
        let est = estimate_single(&outcome.sample, &query).unwrap();
        lo_err += err_of(&est, &lo_key);
        hi_err += err_of(&est, &hi_key);
    }
    // The heavily-sampled stratum is the one with a worse CV per sample; the
    // allocator should have equalized their *final* error contributions, so
    // neither should dominate by an order of magnitude.
    let ratio = (lo_err / runs as f64 + 1e-9) / (hi_err / runs as f64 + 1e-9);
    assert!((0.02..50.0).contains(&ratio), "per-group errors wildly unbalanced: ratio {ratio}");
}

/// Helper: clone a sampler with a new seed (test-local convenience).
trait CloneWithSeed {
    fn clone_with_seed(&self, seed: u64) -> CvOptSampler;
}

impl CloneWithSeed for CvOptSampler {
    fn clone_with_seed(&self, seed: u64) -> CvOptSampler {
        CvOptSampler::new(self.problem().clone()).with_seed(seed)
    }
}

/// Estimation must be a pure function of (sample, query).
#[test]
fn estimation_is_deterministic() {
    let table = openaq();
    let problem =
        SamplingProblem::single(QuerySpec::group_by(&["country"]).aggregate("value"), 500);
    let outcome = CvOptSampler::new(problem).with_seed(3).sample(&table).unwrap();
    let query =
        sql::compile("SELECT country, AVG(value), COUNT(*) FROM t GROUP BY country").unwrap();
    let a = estimate_single(&outcome.sample, &query).unwrap();
    let b = estimate_single(&outcome.sample, &query).unwrap();
    assert_eq!(a.keys, b.keys);
    assert_eq!(a.values, b.values);
}

/// Weighted estimates never produce NaN/inf for non-empty groups.
#[test]
fn estimates_are_finite() {
    let table = openaq();
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country", "parameter"]).aggregate("value"),
        800,
    );
    let outcome = CvOptSampler::new(problem).with_seed(9).sample(&table).unwrap();
    let query = sql::compile(
        "SELECT country, parameter, AVG(value), SUM(value), COUNT(*), MIN(value), \
         MAX(value), VAR(value) FROM t GROUP BY country, parameter",
    )
    .unwrap();
    let est = estimate_single(&outcome.sample, &query).unwrap();
    for (key, values) in est.iter() {
        for (j, v) in values.iter().enumerate() {
            assert!(v.is_finite(), "{key:?} agg {j} = {v}");
        }
    }
}

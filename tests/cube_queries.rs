//! Cube-query integration: exact cube execution, cube-optimized sampling,
//! and cube estimation agree structurally.

use cvopt_core::{CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_bikes, BikesConfig};
use cvopt_eval::metrics::relative_errors_all;
use cvopt_eval::queries;
use cvopt_table::sql;

#[test]
fn cube_grouping_sets_are_consistent() {
    let table = generate_bikes(&BikesConfig::with_rows(40_000));
    let results = sql::run(
        &table,
        "SELECT from_station_id, year, SUM(trip_duration) FROM bikes \
         GROUP BY from_station_id, year WITH CUBE",
    )
    .unwrap();
    assert_eq!(results.len(), 4);
    // Sum over the finest set equals the full-table cell.
    let finest: f64 = results[0].values.iter().map(|v| v[0]).sum();
    let total = results[3].values[0][0];
    assert!((finest - total).abs() < 1e-6 * total);
    // Sum per station over (station) set equals finest rolled up.
    let by_station: f64 = results[1].values.iter().map(|v| v[0]).sum();
    assert!((by_station - total).abs() < 1e-6 * total);
}

#[test]
fn cube_optimized_sample_estimates_every_set() {
    let table = generate_bikes(&BikesConfig::with_rows(40_000));
    let pq = queries::b4();
    let problem = SamplingProblem::multi(pq.specs.clone(), 2_000); // 5%
    let outcome = CvOptSampler::new(problem).with_seed(2).sample(&table).unwrap();

    let truth = pq.query.execute(&table).unwrap();
    let est = cvopt_core::estimate::estimate(&outcome.sample, &pq.query).unwrap();
    assert_eq!(truth.len(), est.len());

    // The coarser the grouping set, the lower the error should trend.
    let mean_err_of = |i: usize| {
        let errs = relative_errors_all(
            std::slice::from_ref(&truth[i]),
            std::slice::from_ref(&est[i]),
            0.0,
        );
        errs.iter().sum::<f64>() / errs.len().max(1) as f64
    };
    let finest = mean_err_of(0);
    let coarsest = mean_err_of(3);
    assert!(coarsest <= finest, "full-table cell ({coarsest}) should beat finest cells ({finest})");
    assert!(coarsest < 0.05, "full-table estimates should be tight: {coarsest}");
}

#[test]
fn cube_spec_expansion_matches_sql_cube() {
    let spec_sets = QuerySpec::group_by(&["a", "b"]).aggregate("x").cube();
    let sql_sets = cvopt_table::grouping_sets(2);
    assert_eq!(spec_sets.len(), sql_sets.len());
    for (spec, dims) in spec_sets.iter().zip(&sql_sets) {
        assert_eq!(spec.group_by.len(), dims.len());
    }
}

#[test]
fn finest_stratification_of_cube_specs_is_full_attr_set() {
    let specs = QuerySpec::group_by(&["a", "b"]).aggregate("x").cube();
    let problem = SamplingProblem::multi(specs, 100);
    let names: Vec<String> =
        problem.finest_stratification().iter().map(|e| e.display_name()).collect();
    assert_eq!(names, vec!["a", "b"]);
}

//! The serving determinism contract under the bounded prepared-sample
//! cache: `/query` response bytes are a pure function of the request
//! sequence — identical for **any cache budget** (unbounded, tiny,
//! zero), **any worker count**, and **keep-alive vs one-shot
//! connections**. Eviction may change what the cache *holds* (and what
//! work repeats cost), never what the server *answers*.

use std::net::SocketAddr;

use cvopt_core::Engine;
use cvopt_serve::{client, Client, Json, Server, ServerConfig};
use cvopt_table::{DataType, TableBuilder, Value};

fn fixture_table() -> cvopt_table::Table {
    let mut b =
        TableBuilder::new(&[("g", DataType::Str), ("h", DataType::Str), ("x", DataType::Float64)]);
    for i in 0..30_000 {
        let g = match i % 20 {
            0 => "rare",
            1..=5 => "mid",
            _ => "common",
        };
        let h = if i % 3 == 0 { "p" } else { "q" };
        let x = 10.0 + (i % 13) as f64 * if g == "rare" { 10.0 } else { 1.0 };
        b.push_row(&[Value::str(g), Value::str(h), Value::Float64(x)]).unwrap();
    }
    b.finish()
}

/// Distinct problems (distinct grouping sets), so the first — and only —
/// use of each statement reports `cache_hit: false` under every budget,
/// keeping full responses byte-comparable across the whole matrix.
const STATEMENTS: [&str; 4] = [
    r#"{"sql":"SELECT g, AVG(x) FROM events GROUP BY g","mode":"approximate"}"#,
    r#"{"sql":"SELECT h, AVG(x) FROM events GROUP BY h","mode":"approximate"}"#,
    r#"{"sql":"SELECT g, h, AVG(x) FROM events GROUP BY g, h","mode":"approximate"}"#,
    r#"{"sql":"SELECT g, SUM(x), COUNT(*) FROM events GROUP BY g","mode":"exact"}"#,
];

/// Roomy enough for about one cached sample, so later entries evict
/// earlier ones.
const TINY_BUDGET: u64 = 24 * 1024;

fn start(budget: Option<u64>, workers: usize) -> Server {
    let mut engine = Engine::new().with_seed(42).with_cache_bytes(budget);
    engine.register("events", fixture_table());
    let config = ServerConfig {
        workers,
        // Pin the per-request engine slice so the report's `threads`
        // field cannot vary across the worker-count axis.
        thread_budget: 2 * workers,
        ..ServerConfig::default()
    };
    Server::start(engine, config).expect("start server")
}

fn stat(addr: SocketAddr, field: &str) -> u64 {
    let (status, body) = client::get(addr, "/stats").expect("stats");
    assert_eq!(status, 200, "{body}");
    Json::parse(&body)
        .expect("stats json")
        .get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("stat {field}"))
}

#[test]
fn query_bytes_are_identical_for_any_budget_worker_count_and_connection_style() {
    // Reference: unbounded cache, one worker, one-shot connections.
    let reference_server = start(None, 1);
    let reference: Vec<Vec<u8>> = STATEMENTS
        .iter()
        .map(|q| client::request_raw(reference_server.addr(), "POST", "/query", Some(q)).unwrap())
        .collect();
    reference_server.shutdown();

    for budget in [None, Some(TINY_BUDGET), Some(0)] {
        for workers in [1, 4] {
            let server = start(budget, workers);
            // One persistent connection (framed reads)...
            let mut keep_alive = Client::new(server.addr());
            for (i, q) in STATEMENTS.iter().enumerate() {
                let raw = keep_alive.request_raw("POST", "/query", Some(q)).unwrap();
                assert_eq!(
                    raw, reference[i],
                    "keep-alive bytes differ (budget {budget:?}, workers {workers}, statement {i})"
                );
            }
            assert_eq!(keep_alive.connects(), 1);
            server.shutdown();

            // ...and fresh one-shot connections (read-to-EOF) on a fresh
            // server must both reproduce the reference bytes.
            let server = start(budget, workers);
            for (i, q) in STATEMENTS.iter().enumerate() {
                let raw = client::request_raw(server.addr(), "POST", "/query", Some(q)).unwrap();
                assert_eq!(
                    raw, reference[i],
                    "one-shot bytes differ (budget {budget:?}, workers {workers}, statement {i})"
                );
            }
            server.shutdown();
        }
    }
}

#[test]
fn zero_budget_evicts_everything_but_repeats_answer_identical_values() {
    let server = start(Some(0), 2);
    let addr = server.addr();
    let query = STATEMENTS[0];

    let (status, first) = client::post(addr, "/query", query).unwrap();
    assert_eq!(status, 200, "{first}");
    let (status, second) = client::post(addr, "/query", query).unwrap();
    assert_eq!(status, 200, "{second}");

    // Nothing survives a zero budget, so the repeat is a fresh miss...
    assert_eq!(first, second, "a zero-budget cache must make every request a cold miss");
    let report = Json::parse(&second).unwrap();
    assert_eq!(
        report.get("report").unwrap().get("cache_hit").unwrap().as_bool(),
        Some(false),
        "nothing can be cached under a zero budget"
    );
    // ...paid for by a second statistics pass and a recorded eviction.
    assert_eq!(stat(addr, "stats_passes"), 2);
    assert_eq!(stat(addr, "cache_evictions"), 2);
    assert_eq!(stat(addr, "cached_samples"), 0);
    assert_eq!(stat(addr, "cache_bytes_held"), 0);
    server.shutdown();
}

#[test]
fn tiny_budget_evicts_under_pressure_and_stays_within_budget() {
    let server = start(Some(TINY_BUDGET), 2);
    let addr = server.addr();
    for q in &STATEMENTS {
        let (status, body) = client::post(addr, "/query", q).unwrap();
        assert_eq!(status, 200, "{body}");
    }
    assert!(stat(addr, "cache_evictions") > 0, "three distinct samples must not all fit");
    assert!(stat(addr, "cache_bytes_held") <= TINY_BUDGET);
    assert!(stat(addr, "cached_samples") >= 1, "the budget holds at least the newest sample");
    server.shutdown();
}

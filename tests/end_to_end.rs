//! End-to-end integration: datagen → stats → allocation → sampling →
//! estimation, across all crates.

use cvopt_core::estimate::estimate_single;
use cvopt_core::{budget_for_rate, CvOptSampler, Norm, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::{relative_errors_all, ErrorSummary};
use cvopt_table::sql;

#[test]
fn cvopt_pipeline_accuracy_on_openaq() {
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country", "parameter"]).aggregate("value"),
        budget_for_rate(&table, 0.05).unwrap(),
    );
    let outcome = CvOptSampler::new(problem).with_seed(1).sample(&table).unwrap();
    assert_eq!(outcome.sample.len(), 3000);

    let query = sql::compile(
        "SELECT country, parameter, AVG(value) FROM openaq GROUP BY country, parameter",
    )
    .unwrap();
    let truth = query.execute(&table).unwrap();
    let est = cvopt_core::estimate::estimate(&outcome.sample, &query).unwrap();
    let errors = relative_errors_all(&truth, &est, 0.0);
    let summary = ErrorSummary::from_errors(&errors);

    // Every group answered; errors bounded.
    assert_eq!(est[0].num_groups(), truth[0].num_groups());
    assert!(summary.mean < 0.25, "mean error {}", summary.mean);
    assert!(summary.median < 0.20, "median error {}", summary.median);
}

#[test]
fn allocation_sums_to_budget_and_respects_groups() {
    let table = generate_openaq(&OpenAqConfig::with_rows(50_000));
    let problem =
        SamplingProblem::single(QuerySpec::group_by(&["country"]).aggregate("value"), 1_000);
    let plan = CvOptSampler::new(problem).plan(&table).unwrap();
    assert_eq!(plan.allocation.total(), 1_000);
    for (size, pop) in plan.allocation.sizes.iter().zip(&plan.stats.populations) {
        assert!(size <= pop);
        assert!(*size >= 1, "every stratum represented");
    }
}

#[test]
fn linf_and_l2_disagree_on_allocation() {
    let table = generate_openaq(&OpenAqConfig::with_rows(50_000));
    let spec = QuerySpec::group_by(&["country"]).aggregate("value");
    let l2 = CvOptSampler::new(SamplingProblem::single(spec.clone(), 800)).plan(&table).unwrap();
    let linf = CvOptSampler::new(SamplingProblem::single(spec, 800).with_norm(Norm::LInf))
        .plan(&table)
        .unwrap();
    assert_ne!(
        l2.allocation.sizes, linf.allocation.sizes,
        "the two norms should allocate differently on skewed data"
    );
}

#[test]
fn estimates_converge_with_budget() {
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let query = sql::compile("SELECT country, AVG(value) FROM openaq GROUP BY country").unwrap();
    let truth = query.execute(&table).unwrap();

    let mean_err = |budget: usize| -> f64 {
        let problem =
            SamplingProblem::single(QuerySpec::group_by(&["country"]).aggregate("value"), budget);
        // Average over a few seeds to tame noise.
        let mut acc = 0.0;
        for seed in 0..3 {
            let outcome =
                CvOptSampler::new(problem.clone()).with_seed(seed).sample(&table).unwrap();
            let est = cvopt_core::estimate::estimate(&outcome.sample, &query).unwrap();
            acc += ErrorSummary::from_errors(&relative_errors_all(&truth, &est, 0.0)).mean;
        }
        acc / 3.0
    };
    let coarse = mean_err(300);
    let fine = mean_err(9_000);
    assert!(fine < coarse, "30x budget should reduce mean error: {coarse} -> {fine}");
}

#[test]
fn full_budget_reproduces_exact_answers() {
    let table = generate_openaq(&OpenAqConfig::with_rows(20_000));
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country"]).aggregate("value"),
        table.num_rows(),
    );
    let outcome = CvOptSampler::new(problem).sample(&table).unwrap();
    assert_eq!(outcome.sample.len(), table.num_rows());

    let query = sql::compile(
        "SELECT country, AVG(value), COUNT(*), SUM(value) FROM openaq GROUP BY country",
    )
    .unwrap();
    let truth = &query.execute(&table).unwrap()[0];
    let est = estimate_single(&outcome.sample, &query).unwrap();
    for (key, values) in truth.iter() {
        for (j, v) in values.iter().enumerate() {
            let e = est.value(key, j).unwrap();
            assert!((e - v).abs() < 1e-6 * (1.0 + v.abs()), "{key:?}/{j}: {e} vs {v}");
        }
    }
}

//! Determinism under parallelism: the execution layer guarantees that
//! plans, group ids, and drawn samples are identical for every thread
//! count. These tests pin that guarantee for all three norms and for the
//! group-index build on random tables.

use proptest::prelude::*;

use cvopt_core::{CvOptSampler, ExecOptions, Norm, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::{DataType, GroupIndex, ScalarExpr, Table, TableBuilder, Value};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn skewed_table() -> Table {
    generate_openaq(&OpenAqConfig::with_rows(20_000))
}

fn problem(norm: Norm) -> SamplingProblem {
    SamplingProblem::single(QuerySpec::group_by(&["country", "parameter"]).aggregate("value"), 400)
        .with_norm(norm)
}

/// Plans (statistics, betas, allocation) and samples (origin rows, weights)
/// must be identical across thread counts, bit for bit, for every norm.
#[test]
fn plan_and_sample_identical_across_threads() {
    let table = skewed_table();
    for norm in [Norm::L2, Norm::Lp(4.0), Norm::LInf] {
        let reference = CvOptSampler::new(problem(norm))
            .with_seed(7)
            .with_exec(ExecOptions::sequential())
            .sample(&table)
            .unwrap();
        for threads in THREAD_COUNTS {
            let outcome = CvOptSampler::new(problem(norm))
                .with_seed(7)
                .with_threads(threads)
                .sample(&table)
                .unwrap();
            // Plan: allocation and betas, bit-exact.
            assert_eq!(
                outcome.plan.allocation.sizes, reference.plan.allocation.sizes,
                "{norm:?}, threads {threads}: allocation differs"
            );
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&outcome.plan.betas),
                bits(&reference.plan.betas),
                "{norm:?}, threads {threads}: betas differ"
            );
            // Statistics: populations and per-stratum means, bit-exact.
            assert_eq!(outcome.plan.stats.populations, reference.plan.stats.populations);
            for s in 0..outcome.plan.num_strata() {
                assert_eq!(
                    outcome.plan.stats.mean(s, 0).to_bits(),
                    reference.plan.stats.mean(s, 0).to_bits(),
                    "{norm:?}, threads {threads}: stratum {s} mean differs"
                );
            }
            // Sample: the exact same rows with the exact same weights.
            assert_eq!(
                outcome.sample.origin, reference.sample.origin,
                "{norm:?}, threads {threads}: drawn rows differ"
            );
            assert_eq!(bits(&outcome.sample.weights), bits(&reference.sample.weights));
        }
    }
}

/// Group ids assigned by the parallel build equal the sequential build's on
/// the standard dataset (all dimension kinds).
#[test]
fn group_ids_identical_across_threads() {
    let table = skewed_table();
    let exprs =
        [ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::hour("local_time")];
    let reference = GroupIndex::build_with(&table, &exprs, &ExecOptions::sequential()).unwrap();
    for threads in THREAD_COUNTS {
        let index = GroupIndex::build_with(&table, &exprs, &ExecOptions::new(threads)).unwrap();
        assert_eq!(index.row_groups(), reference.row_groups(), "threads {threads}");
        assert_eq!(index.sizes(), reference.sizes());
        for g in 0..reference.num_groups() as u32 {
            assert_eq!(index.key(g), reference.key(g));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel `GroupIndex::build` matches sequential on random tables:
    /// same per-row group ids, same first-occurrence key order, same sizes.
    #[test]
    fn parallel_group_index_matches_sequential_on_random_tables(
        rows in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..400),
    ) {
        let mut b = TableBuilder::new(&[
            ("s", DataType::Str),
            ("i", DataType::Int64),
            ("j", DataType::Int64),
        ]);
        for (s, i, j) in &rows {
            b.push_row(&[
                Value::str(format!("k{}", s % 11)),
                Value::Int64((i % 13) as i64),
                Value::Int64((j % 5) as i64),
            ])
            .unwrap();
        }
        let table = b.finish();
        // Both the ≤2-dim packed path and the general path.
        for exprs in [
            vec![ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i"), ScalarExpr::col("j")],
        ] {
            let seq =
                GroupIndex::build_with(&table, &exprs, &ExecOptions::sequential()).unwrap();
            for threads in [2usize, 8] {
                let par =
                    GroupIndex::build_with(&table, &exprs, &ExecOptions::new(threads))
                        .unwrap();
                prop_assert_eq!(par.row_groups(), seq.row_groups());
                prop_assert_eq!(par.sizes(), seq.sizes());
                prop_assert_eq!(par.num_groups(), seq.num_groups());
                for g in 0..seq.num_groups() as u32 {
                    prop_assert_eq!(par.key(g), seq.key(g));
                }
            }
        }
    }

    /// Seeded sampling is a pure function of `(table, problem, seed)` —
    /// never of the thread count — on random tables and budgets.
    #[test]
    fn sampling_thread_invariant_on_random_tables(
        rows in proptest::collection::vec((any::<u8>(), 0.5f64..1e3), 20..300),
        budget in 5usize..100,
        seed in any::<u64>(),
    ) {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("x", DataType::Float64),
        ]);
        for (g, x) in &rows {
            b.push_row(&[Value::str(format!("g{}", g % 6)), Value::Float64(*x)]).unwrap();
        }
        let table = b.finish();
        let spec = SamplingProblem::single(
            QuerySpec::group_by(&["g"]).aggregate("x"),
            budget,
        );
        let reference = CvOptSampler::new(spec.clone())
            .with_seed(seed)
            .with_threads(1)
            .sample(&table)
            .unwrap();
        for threads in [2usize, 8] {
            let outcome = CvOptSampler::new(spec.clone())
                .with_seed(seed)
                .with_threads(threads)
                .sample(&table)
                .unwrap();
            prop_assert_eq!(&outcome.sample.origin, &reference.sample.origin);
            prop_assert_eq!(
                &outcome.plan.allocation.sizes,
                &reference.plan.allocation.sizes
            );
        }
    }
}

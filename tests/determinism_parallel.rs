//! Determinism under parallelism: the execution layer guarantees that
//! plans, group ids, and drawn samples are identical for every thread
//! count. These tests pin that guarantee for all three norms and for the
//! group-index build on random tables, for the two-phase scatter behind
//! the stratified draw, and for the lane-merge statistics kernels.
//!
//! CI runs this suite in a `threads: [1, 4]` matrix with `CVOPT_THREADS`
//! pinned; the pinned count is folded into every sweep below so the
//! scatter and kernels are exercised at that concurrency level on real
//! multi-core runners.

use proptest::prelude::*;

use cvopt_core::{CvOptSampler, ExecOptions, Norm, QuerySpec, SamplingProblem, StratifiedSample};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::agg::AggState;
use cvopt_table::exec;
use cvopt_table::{DataType, GroupIndex, ScalarExpr, Table, TableBuilder, Value};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The standard sweep plus the CI matrix's pinned `CVOPT_THREADS` count.
fn thread_counts() -> Vec<usize> {
    let mut counts = THREAD_COUNTS.to_vec();
    if let Some(pinned) = std::env::var("CVOPT_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

fn skewed_table() -> Table {
    generate_openaq(&OpenAqConfig::with_rows(20_000))
}

fn problem(norm: Norm) -> SamplingProblem {
    SamplingProblem::single(QuerySpec::group_by(&["country", "parameter"]).aggregate("value"), 400)
        .with_norm(norm)
}

/// Plans (statistics, betas, allocation) and samples (origin rows, weights)
/// must be identical across thread counts, bit for bit, for every norm.
#[test]
fn plan_and_sample_identical_across_threads() {
    let table = skewed_table();
    for norm in [Norm::L2, Norm::Lp(4.0), Norm::LInf] {
        let reference = CvOptSampler::new(problem(norm))
            .with_seed(7)
            .with_exec(ExecOptions::sequential())
            .sample(&table)
            .unwrap();
        for threads in thread_counts() {
            let outcome = CvOptSampler::new(problem(norm))
                .with_seed(7)
                .with_threads(threads)
                .sample(&table)
                .unwrap();
            // Plan: allocation and betas, bit-exact.
            assert_eq!(
                outcome.plan.allocation.sizes, reference.plan.allocation.sizes,
                "{norm:?}, threads {threads}: allocation differs"
            );
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&outcome.plan.betas),
                bits(&reference.plan.betas),
                "{norm:?}, threads {threads}: betas differ"
            );
            // Statistics: populations and per-stratum means, bit-exact.
            assert_eq!(outcome.plan.stats.populations, reference.plan.stats.populations);
            for s in 0..outcome.plan.num_strata() {
                assert_eq!(
                    outcome.plan.stats.mean(s, 0).to_bits(),
                    reference.plan.stats.mean(s, 0).to_bits(),
                    "{norm:?}, threads {threads}: stratum {s} mean differs"
                );
            }
            // Sample: the exact same rows with the exact same weights.
            assert_eq!(
                outcome.sample.origin, reference.sample.origin,
                "{norm:?}, threads {threads}: drawn rows differ"
            );
            assert_eq!(bits(&outcome.sample.weights), bits(&reference.sample.weights));
        }
    }
}

/// Group ids assigned by the parallel build equal the sequential build's on
/// the standard dataset (all dimension kinds).
#[test]
fn group_ids_identical_across_threads() {
    let table = skewed_table();
    let exprs =
        [ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::hour("local_time")];
    let reference = GroupIndex::build_with(&table, &exprs, &ExecOptions::sequential()).unwrap();
    for threads in thread_counts() {
        let index = GroupIndex::build_with(&table, &exprs, &ExecOptions::new(threads)).unwrap();
        assert_eq!(index.row_groups(), reference.row_groups(), "threads {threads}");
        assert_eq!(index.sizes(), reference.sizes());
        for g in 0..reference.num_groups() as u32 {
            assert_eq!(index.key(g), reference.key(g));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel `GroupIndex::build` matches sequential on random tables:
    /// same per-row group ids, same first-occurrence key order, same sizes.
    #[test]
    fn parallel_group_index_matches_sequential_on_random_tables(
        rows in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..400),
    ) {
        let mut b = TableBuilder::new(&[
            ("s", DataType::Str),
            ("i", DataType::Int64),
            ("j", DataType::Int64),
        ]);
        for (s, i, j) in &rows {
            b.push_row(&[
                Value::str(format!("k{}", s % 11)),
                Value::Int64((i % 13) as i64),
                Value::Int64((j % 5) as i64),
            ])
            .unwrap();
        }
        let table = b.finish();
        // Both the ≤2-dim packed path and the general path.
        for exprs in [
            vec![ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i"), ScalarExpr::col("j")],
        ] {
            let seq =
                GroupIndex::build_with(&table, &exprs, &ExecOptions::sequential()).unwrap();
            for threads in thread_counts().into_iter().filter(|&t| t > 1) {
                let par =
                    GroupIndex::build_with(&table, &exprs, &ExecOptions::new(threads))
                        .unwrap();
                prop_assert_eq!(par.row_groups(), seq.row_groups());
                prop_assert_eq!(par.sizes(), seq.sizes());
                prop_assert_eq!(par.num_groups(), seq.num_groups());
                for g in 0..seq.num_groups() as u32 {
                    prop_assert_eq!(par.key(g), seq.key(g));
                }
            }
        }
    }

    /// Seeded sampling is a pure function of `(table, problem, seed)` —
    /// never of the thread count — on random tables and budgets.
    #[test]
    fn sampling_thread_invariant_on_random_tables(
        rows in proptest::collection::vec((any::<u8>(), 0.5f64..1e3), 20..300),
        budget in 5usize..100,
        seed in any::<u64>(),
    ) {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("x", DataType::Float64),
        ]);
        for (g, x) in &rows {
            b.push_row(&[Value::str(format!("g{}", g % 6)), Value::Float64(*x)]).unwrap();
        }
        let table = b.finish();
        let spec = SamplingProblem::single(
            QuerySpec::group_by(&["g"]).aggregate("x"),
            budget,
        );
        let reference = CvOptSampler::new(spec.clone())
            .with_seed(seed)
            .with_threads(1)
            .sample(&table)
            .unwrap();
        for threads in thread_counts().into_iter().filter(|&t| t > 1) {
            let outcome = CvOptSampler::new(spec.clone())
                .with_seed(seed)
                .with_threads(threads)
                .sample(&table)
                .unwrap();
            prop_assert_eq!(&outcome.sample.origin, &reference.sample.origin);
            prop_assert_eq!(
                &outcome.plan.allocation.sizes,
                &reference.plan.allocation.sizes
            );
        }
    }
}

/// Deterministic pseudo-random stratum assignment (no RNG dependency).
fn random_strata(n: usize, num_strata: usize, seed: u64) -> Vec<u32> {
    let mut state = seed;
    (0..n)
        .map(|row| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(row as u64 | 1)
                .rotate_left(23);
            (state % num_strata as u64) as u32
        })
        .collect()
}

/// The two-phase parallel scatter equals the sequential stable counting
/// sort at the sizes where prefix/offset bugs hide: empty input, a single
/// row, and row counts that are not a multiple of the partition size.
#[test]
fn two_phase_scatter_matches_counting_sort_at_boundary_sizes() {
    for n in [0usize, 1, 65, exec::CHUNK_ROWS - 1, exec::CHUNK_ROWS + 1, 2 * exec::CHUNK_ROWS + 321]
    {
        let strata = random_strata(n, 11, 0xDECAF);
        let reference = exec::bucket_rows_sequential(&strata, 11);
        for threads in thread_counts() {
            let par = exec::bucket_rows(&strata, 11, &ExecOptions::new(threads));
            assert_eq!(par, reference, "n = {n}, threads = {threads}");
        }
    }
}

/// End to end through the draw: bucketing a real group index with the
/// scatter and running the per-stratum reservoirs yields bit-identical
/// samples for every thread count, including the CI-pinned one.
#[test]
fn stratified_draw_identical_across_threads_with_scatter() {
    let table = skewed_table();
    let index =
        GroupIndex::build(&table, &[ScalarExpr::col("country"), ScalarExpr::col("parameter")])
            .unwrap();
    let allocation: Vec<u64> = index.sizes().iter().map(|&n| (n / 8).max(1)).collect();
    let reference = StratifiedSample::draw(&index, &allocation, 99, &ExecOptions::sequential());
    for threads in thread_counts() {
        let par = StratifiedSample::draw(&index, &allocation, 99, &ExecOptions::new(threads));
        assert_eq!(par.rows_per_stratum, reference.rows_per_stratum, "threads {threads}");
    }
}

/// The optimized lane kernel matches its scalar reference with exact
/// `f64` equality on the deterministic lane-merge, on a buffer long enough
/// to exercise both the unrolled chunks and the remainder. This repeats
/// the `agg.rs` proptest contract on purpose: the CI determinism matrix
/// runs only this suite, and the kernel-exactness assertion must ride in
/// it.
#[test]
fn lane_kernel_matches_scalar_reference_bit_for_bit() {
    for len in [0usize, 1, 3, 4, 5, 1023, 100_003] {
        let values: Vec<f64> = (0..len).map(|i| (i as f64 * 0.61).sin() * 1e4).collect();
        let mut optimized = AggState::default();
        optimized.update_slice(&values);
        let mut reference = AggState::default();
        reference.update_slice_reference(&values);
        assert_eq!(optimized.count, reference.count, "len {len}");
        assert_eq!(optimized.sum.to_bits(), reference.sum.to_bits(), "len {len}");
        assert_eq!(optimized.mean.to_bits(), reference.mean.to_bits(), "len {len}");
        assert_eq!(optimized.m2.to_bits(), reference.m2.to_bits(), "len {len}");
        assert_eq!(optimized.min.to_bits(), reference.min.to_bits(), "len {len}");
        assert_eq!(optimized.max.to_bits(), reference.max.to_bits(), "len {len}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two-phase scatter output equals the sequential counting sort for
    /// random stratum assignments spanning a partition boundary.
    #[test]
    fn two_phase_scatter_matches_counting_sort_random_strata(
        seed in any::<u64>(),
        num_strata in 1usize..60,
        extra in 0usize..200,
    ) {
        let n = exec::CHUNK_ROWS + extra;
        let strata = random_strata(n, num_strata, seed);
        let reference = exec::bucket_rows_sequential(&strata, num_strata);
        for threads in thread_counts().into_iter().filter(|&t| t > 1) {
            let par = exec::bucket_rows(&strata, num_strata, &ExecOptions::new(threads));
            prop_assert_eq!(&par, &reference, "threads = {}", threads);
        }
    }
}

//! Workload-driven weighting end-to-end (paper §4.3): a sample tuned for a
//! workload answers the workload's queries better than an untuned one.

use cvopt_core::{CvOptSampler, SamplingProblem, Workload, WorkloadQuery};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::{relative_errors_all, ErrorSummary};
use cvopt_table::{sql, CmpOp, Predicate, Table};

fn openaq() -> Table {
    generate_openaq(&OpenAqConfig::with_rows(80_000))
}

/// The scheduled query our warehouse runs every night: co measurements per
/// country.
fn scheduled_sql() -> &'static str {
    "SELECT country, AVG(value) FROM openaq WHERE parameter = 'co' GROUP BY country"
}

fn mean_err(table: &Table, sample: &cvopt_core::MaterializedSample) -> f64 {
    let query = sql::compile(scheduled_sql()).unwrap();
    let truth = query.execute(table).unwrap();
    let est = cvopt_core::estimate::estimate(sample, &query).unwrap();
    ErrorSummary::from_errors(&relative_errors_all(&truth, &est, 0.0)).mean
}

#[test]
fn workload_tuned_sample_beats_untuned_on_the_scheduled_query() {
    let table = openaq();
    let budget = 1_600; // 2%

    // Tuned: stratify by (country, parameter), weight only the groups the
    // scheduled query touches.
    let mut workload = Workload::new();
    workload.push(
        WorkloadQuery::new(&["country", "parameter"], &["value"], 10)
            .with_predicate(Predicate::cmp("parameter", CmpOp::Eq, "co")),
    );
    let tuned_specs = workload.derive_specs(&table).unwrap();
    let tuned_problem = SamplingProblem::multi(tuned_specs, budget).with_min_per_stratum(0);
    // Untuned: same stratification, uniform weights.
    let untuned_problem = SamplingProblem::single(
        cvopt_core::QuerySpec::group_by(&["country", "parameter"]).aggregate("value"),
        budget,
    );

    let mut tuned_total = 0.0;
    let mut untuned_total = 0.0;
    let reps = 3;
    for seed in 0..reps {
        let tuned =
            CvOptSampler::new(tuned_problem.clone()).with_seed(seed).sample(&table).unwrap();
        let untuned =
            CvOptSampler::new(untuned_problem.clone()).with_seed(seed).sample(&table).unwrap();
        tuned_total += mean_err(&table, &tuned.sample);
        untuned_total += mean_err(&table, &untuned.sample);
    }
    assert!(
        tuned_total < untuned_total,
        "workload tuning should help its own query: tuned {tuned_total} vs untuned {untuned_total}"
    );
}

#[test]
fn derived_weights_match_workload_frequencies() {
    let table = openaq();
    let mut workload = Workload::new();
    workload.push(WorkloadQuery::new(&["country"], &["value"], 7));
    workload.push(WorkloadQuery::new(&["country"], &["value"], 5));
    let specs = workload.derive_specs(&table).unwrap();
    assert_eq!(specs.len(), 1, "same signature merges");
    let agg = &specs[0].aggregates[0];
    // Every country group accumulated 7 + 5 = 12.
    for &w in agg.group_weights.values() {
        assert_eq!(w, 12.0);
    }
}

#[test]
fn zero_weight_strata_still_queryable_via_minimum() {
    let table = openaq();
    let mut workload = Workload::new();
    workload.push(
        WorkloadQuery::new(&["country", "parameter"], &["value"], 1)
            .with_predicate(Predicate::cmp("parameter", CmpOp::Eq, "co")),
    );
    let specs = workload.derive_specs(&table).unwrap();
    // Default min_per_stratum = 1 keeps even zero-weight strata represented.
    let problem = SamplingProblem::multi(specs, 2_000);
    let outcome = CvOptSampler::new(problem).with_seed(2).sample(&table).unwrap();
    let query =
        sql::compile("SELECT country, parameter, COUNT(*) FROM openaq GROUP BY country, parameter")
            .unwrap();
    let truth = &query.execute(&table).unwrap()[0];
    let est = cvopt_core::estimate::estimate_single(&outcome.sample, &query).unwrap();
    assert_eq!(
        est.num_groups(),
        truth.num_groups(),
        "every (country, parameter) group must be answerable"
    );
}

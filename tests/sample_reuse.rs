//! The paper's reuse claims (§6.3): one materialized sample answers queries
//! with query-time predicates, different predicates than it was built for,
//! and even different group-by attributes — including through the
//! [`Engine`]'s prepared-sample cache, which must be estimate-for-estimate
//! identical to a fresh sampler run.

use cvopt_core::{
    CatalogTable, CvOptSampler, Engine, ExecOptions, MaterializedSample, QueryMode, QuerySpec,
    ReuseInfo, SamplingProblem,
};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::{relative_errors_all, ErrorSummary};
use cvopt_eval::queries;
use cvopt_table::{QueryResult, ShardedTable, Table};
use proptest::prelude::*;

fn sample_for_aq3(table: &Table, budget: usize) -> MaterializedSample {
    let pq = queries::aq3();
    let problem = SamplingProblem::multi(pq.specs, budget);
    CvOptSampler::new(problem).with_seed(5).sample(table).unwrap().sample
}

fn mean_error(table: &Table, sample: &MaterializedSample, pq: &cvopt_eval::PaperQuery) -> f64 {
    let truth = pq.query.execute(table).unwrap();
    let est = cvopt_core::estimate::estimate(sample, &pq.query).unwrap();
    ErrorSummary::from_errors(&relative_errors_all(&truth, &est, 0.0)).mean
}

#[test]
fn one_sample_serves_selectivity_variants() {
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let sample = sample_for_aq3(&table, 1_800); // 3%
                                                // The tighter the predicate, the fewer sample rows survive per group:
                                                // a 25% selectivity leaves ~1 row per stratum at this scale, so the
                                                // bound loosens with selectivity (the trend itself is asserted below).
    for (pq, bound) in [
        (queries::aq3(), 0.35),
        (queries::aq3_variant('c'), 0.55),
        (queries::aq3_variant('b'), 0.60),
        (queries::aq3_variant('a'), 0.75),
    ] {
        let err = mean_error(&table, &sample, &pq);
        assert!(err < bound, "{}: mean error {err} (bound {bound})", pq.id);
    }
}

#[test]
fn lower_selectivity_means_higher_error() {
    // Fewer matching rows in the sample → noisier estimates (paper Fig. 4).
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let sample = sample_for_aq3(&table, 1_200);
    let err_25 = mean_error(&table, &sample, &queries::aq3_variant('a'));
    let err_100 = mean_error(&table, &sample, &queries::aq3());
    assert!(
        err_100 <= err_25,
        "100% selectivity ({err_100}) should not be worse than 25% ({err_25})"
    );
}

#[test]
fn different_predicate_and_grouping_still_answerable() {
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let sample = sample_for_aq3(&table, 1_800);
    // AQ5: different predicate (latitude > 0).
    let aq5_err = mean_error(&table, &sample, &queries::aq5());
    assert!(aq5_err < 0.4, "AQ5 from AQ3 sample: {aq5_err}");
    // AQ6: different predicate AND different group-by attributes.
    let pq6 = queries::aq6();
    let truth = pq6.query.execute(&table).unwrap();
    let est = cvopt_core::estimate::estimate(&sample, &pq6.query).unwrap();
    assert!(
        est[0].num_groups() >= truth[0].num_groups() / 2,
        "AQ6 regrouping should find most groups"
    );
}

/// A cached `SampleHandle` answering a query with a *new* predicate and a
/// *coarser* grouping must produce bit-identical estimates to a fresh
/// `CvOptSampler` + `estimate` run with the same seed.
#[test]
fn cached_handle_matches_fresh_sampler_bit_for_bit() {
    let seed = 5;
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let pq = queries::aq3();
    let problem = SamplingProblem::multi(pq.specs.clone(), 1_800);

    let mut engine = Engine::new().with_seed(seed);
    engine.register("openaq", table.clone());
    let first = engine.prepare("openaq", problem.clone()).unwrap();
    assert!(!first.is_cache_hit());
    let handle = engine.prepare("openaq", problem.clone()).unwrap();
    assert!(handle.is_cache_hit(), "second prepare must come from the cache");
    assert_eq!(engine.stats_passes(), 1, "one statistics pass for two prepares");

    let fresh = CvOptSampler::new(problem).with_seed(seed).sample(&table).unwrap();
    assert_eq!(handle.sample().origin, fresh.sample.origin, "same drawn rows");

    // New predicate (latitude > 0, never planned for) and a coarser
    // grouping (country only, vs the sample's country/parameter/unit).
    let statements = [
        "SELECT country, parameter, unit, AVG(value) FROM openaq \
         WHERE latitude > 0 GROUP BY country, parameter, unit",
        "SELECT country, AVG(value), SUM(value), COUNT(*) FROM openaq GROUP BY country",
    ];
    for stmt in statements {
        let query = cvopt_table::sql::compile(stmt).unwrap();
        let cached = handle.estimate(&query).unwrap();
        let direct = cvopt_core::estimate::estimate(&fresh.sample, &query).unwrap();
        assert_eq!(cached[0].keys, direct[0].keys, "{stmt}");
        for (row, (a, b)) in cached[0].values.iter().zip(&direct[0].values).enumerate() {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{stmt}: row {row} diverged");
            }
        }
    }
}

/// The SQL path of the engine: a second approximate query on the same
/// (table, problem) is served from the cache — no second statistics pass —
/// and still matches a fresh sampler bit for bit.
#[test]
fn engine_query_reuses_cache_across_predicates() {
    let seed = 9;
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let mut engine = Engine::new().with_seed(seed);
    engine.register("openaq", table.clone());

    let base = "SELECT country, parameter, AVG(value) FROM openaq GROUP BY country, parameter";
    let first = engine.query(base, cvopt_core::QueryMode::Approximate).unwrap();
    assert_eq!(first.report.cache_hit, Some(false));

    let filtered = "SELECT country, parameter, AVG(value) FROM openaq \
                    WHERE latitude > 0 GROUP BY country, parameter";
    let second = engine.query(filtered, cvopt_core::QueryMode::Approximate).unwrap();
    assert_eq!(second.report.cache_hit, Some(true), "same derived problem must hit");
    assert_eq!(engine.stats_passes(), 1, "the cached sample answers both");

    // Bit-identical to the low-level pipeline with the same seed.
    let query = cvopt_table::sql::compile(filtered).unwrap();
    let budget = cvopt_core::budget_for_rate(&table, 0.01).unwrap();
    let problem = cvopt_core::problem_for_query(&query, budget).unwrap();
    let outcome = CvOptSampler::new(problem).with_seed(seed).sample(&table).unwrap();
    let direct = cvopt_core::estimate::estimate(&outcome.sample, &query).unwrap();
    assert_eq!(second.results[0].keys, direct[0].keys);
    for (a, b) in second.results[0].values.iter().zip(&direct[0].values) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

fn assert_same_bits(a: &[QueryResult], b: &[QueryResult], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}");
    for (ra, rb) in a.iter().zip(b) {
        assert_eq!(ra.keys, rb.keys, "{ctx}");
        for (row, (va, vb)) in ra.values.iter().zip(&rb.values).enumerate() {
            for (x, y) in va.iter().zip(vb) {
                assert_eq!(x.to_bits(), y.to_bits(), "{ctx}: row {row} diverged");
            }
        }
    }
}

/// The engine's reuse planner: an explicitly prepared fine sample answers a
/// coarser, predicate-filtered query with **zero** new draws, and the
/// derived answer is bit-identical to re-aggregating the cached sample
/// directly — for every thread count and shard layout, and identical
/// *across* them (scatter-gather passes are byte-compatible with their
/// single-table counterparts, so the layout is invisible in the bits).
#[test]
fn derived_reuse_bit_identical_across_threads_and_shards() {
    let seed = 7;
    let table = generate_openaq(&OpenAqConfig::with_rows(30_000));
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country", "parameter"]).aggregate("value"),
        900,
    );
    // Coarser grouping (country only) plus a predicate the sample was never
    // planned for: the classic sampling-algebra derivation.
    let stmt = "SELECT country, AVG(value), SUM(value) FROM openaq \
                WHERE latitude > 0 GROUP BY country";
    let query = cvopt_table::sql::compile(stmt).unwrap();

    let mut reference: Option<Vec<QueryResult>> = None;
    for threads in [1usize, 4] {
        for shards in [1usize, 3] {
            let ctx = format!("threads={threads} shards={shards}");
            let mut engine = Engine::new().with_seed(seed).with_exec(ExecOptions::new(threads));
            if shards == 1 {
                engine.register("openaq", table.clone());
            } else {
                engine.register("openaq", ShardedTable::split(&table, shards).unwrap());
            }
            let handle = engine.prepare("openaq", problem.clone()).unwrap();
            let answer = engine.query(stmt, QueryMode::Approximate).unwrap();
            assert!(
                matches!(answer.report.reuse, ReuseInfo::Derived { .. }),
                "{ctx}: expected a derived answer, got {:?}",
                answer.report.reuse
            );
            assert_eq!(engine.stats_passes(), 1, "{ctx}: a reused answer must not draw");
            assert_eq!(engine.draws_avoided(), 1, "{ctx}");

            // The determinism contract: byte-identical to re-aggregating
            // the source sample directly.
            let direct = handle.estimate(&query).unwrap();
            assert_same_bits(&answer.results, &direct, &ctx);

            // And byte-identical across every thread/shard configuration.
            match &reference {
                None => reference = Some(answer.results),
                Some(r) => assert_same_bits(r, &answer.results, &ctx),
            }
        }
    }
}

/// Subset-predicate reuse through the engine: the prepared sample carries no
/// predicate, so *any* conjunction the query adds is applied at estimation
/// time and reported as dropped.
#[test]
fn subset_predicate_reuse_reports_dropped_atoms() {
    let table = generate_openaq(&OpenAqConfig::with_rows(30_000));
    let mut engine = Engine::new().with_seed(11);
    engine.register("openaq", table);
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country", "parameter"]).aggregate("value"),
        900,
    );
    engine.prepare("openaq", problem).unwrap();

    let answer = engine
        .query(
            "SELECT country, AVG(value) FROM openaq \
             WHERE latitude > 0 AND value > 1 GROUP BY country",
            QueryMode::Approximate,
        )
        .unwrap();
    match &answer.report.reuse {
        ReuseInfo::Derived { coarsened_groups, dropped_predicates, .. } => {
            assert_eq!(coarsened_groups, &["parameter".to_string()]);
            assert_eq!(dropped_predicates, &["latitude > 0".to_string(), "value > 1".to_string()]);
        }
        other => panic!("expected a derived answer, got {other:?}"),
    }
    assert_eq!(engine.stats_passes(), 1);
}

/// Build a problem from bitmasks over fixed attribute pools (the vendored
/// proptest has no subsequence strategy; nonzero masks encode nonempty
/// subsets deterministically).
fn mask_problem(groups: u8, aggs: u8, budget: usize, min: u64) -> SamplingProblem {
    let gs: Vec<&str> = ["a", "b", "c", "d"]
        .iter()
        .enumerate()
        .filter(|(i, _)| groups & (1 << i) != 0)
        .map(|(_, s)| *s)
        .collect();
    let mut spec = QuerySpec::group_by(&gs);
    for (i, col) in ["x", "y", "z"].iter().enumerate() {
        if aggs & (1 << i) != 0 {
            spec = spec.aggregate(*col);
        }
    }
    SamplingProblem::single(spec, budget).with_min_per_stratum(min)
}

fn name_set(exprs: &[cvopt_table::ScalarExpr]) -> std::collections::BTreeSet<String> {
    exprs.iter().map(|e| e.display_name()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subsumption is reflexive, and antisymmetric up to canonical form:
    /// mutual subsumption forces equal budgets, knobs, and attribute sets.
    #[test]
    fn subsumption_is_reflexive_and_antisymmetric(
        ga in 1u8..16, aa in 1u8..8, ba in 1usize..500, ma in 0u64..4,
        gb in 1u8..16, ab in 1u8..8, bb in 1usize..500, mb in 0u64..4,
    ) {
        let a = mask_problem(ga, aa, ba, ma);
        let b = mask_problem(gb, ab, bb, mb);
        prop_assert!(a.subsumes(&a), "subsumption must be reflexive");
        prop_assert!(b.subsumes(&b));
        if a.subsumes(&b) && b.subsumes(&a) {
            prop_assert_eq!(a.budget, b.budget);
            prop_assert_eq!(a.min_per_stratum, b.min_per_stratum);
            prop_assert_eq!(a.norm, b.norm);
            prop_assert_eq!(
                name_set(&a.finest_stratification()),
                name_set(&b.finest_stratification())
            );
            prop_assert_eq!(
                name_set(&a.aggregate_columns()),
                name_set(&b.aggregate_columns())
            );
        }
    }

    /// The reuse planner keys candidates by the catalog entry's layout
    /// fingerprint, so a sample prepared under one shard layout can never be
    /// matched to a problem planned under another: distinct layouts fold the
    /// same base fingerprint to distinct keys.
    #[test]
    fn layout_fingerprints_never_match_across_layouts(
        rows in 10usize..200,
        k in 2usize..=5,
        base in any::<u64>(),
    ) {
        let mut b = cvopt_table::TableBuilder::new(&[
            ("g", cvopt_table::DataType::Str),
            ("x", cvopt_table::DataType::Float64),
        ]);
        for i in 0..rows {
            b.push_row(&[
                cvopt_table::Value::str(["a", "b"][i % 2]),
                cvopt_table::Value::Float64(i as f64),
            ]).unwrap();
        }
        let table = b.finish();

        let single = CatalogTable::Single(table.clone());
        let sharded = CatalogTable::Sharded(ShardedTable::split(&table, k).unwrap());
        let resharded = CatalogTable::Sharded(ShardedTable::split(&table, k + 1).unwrap());

        prop_assert_eq!(single.layout_fingerprint(base), base, "single tables fold to identity");
        prop_assert_ne!(sharded.layout_fingerprint(base), base);
        prop_assert_ne!(sharded.layout_fingerprint(base), resharded.layout_fingerprint(base));
    }
}

#[test]
fn count_estimates_exact_without_predicate() {
    // With full stratum coverage and no predicate, COUNT per stratum-aligned
    // group is n_c exactly.
    let table = generate_openaq(&OpenAqConfig::with_rows(30_000));
    let sample = sample_for_aq3(&table, 900);
    let query = cvopt_table::sql::compile(
        "SELECT country, parameter, unit, COUNT(*) FROM openaq \
         GROUP BY country, parameter, unit",
    )
    .unwrap();
    let truth = &query.execute(&table).unwrap()[0];
    let est = cvopt_core::estimate::estimate_single(&sample, &query).unwrap();
    for (key, values) in truth.iter() {
        let e = est.value(key, 0).unwrap();
        assert!((e - values[0]).abs() < 1e-6, "{key:?}: {e} vs {}", values[0]);
    }
}

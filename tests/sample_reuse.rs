//! The paper's reuse claims (§6.3): one materialized sample answers queries
//! with query-time predicates, different predicates than it was built for,
//! and even different group-by attributes — including through the
//! [`Engine`]'s prepared-sample cache, which must be estimate-for-estimate
//! identical to a fresh sampler run.

use cvopt_core::{CvOptSampler, Engine, MaterializedSample, SamplingProblem};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::{relative_errors_all, ErrorSummary};
use cvopt_eval::queries;
use cvopt_table::Table;

fn sample_for_aq3(table: &Table, budget: usize) -> MaterializedSample {
    let pq = queries::aq3();
    let problem = SamplingProblem::multi(pq.specs, budget);
    CvOptSampler::new(problem).with_seed(5).sample(table).unwrap().sample
}

fn mean_error(table: &Table, sample: &MaterializedSample, pq: &cvopt_eval::PaperQuery) -> f64 {
    let truth = pq.query.execute(table).unwrap();
    let est = cvopt_core::estimate::estimate(sample, &pq.query).unwrap();
    ErrorSummary::from_errors(&relative_errors_all(&truth, &est, 0.0)).mean
}

#[test]
fn one_sample_serves_selectivity_variants() {
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let sample = sample_for_aq3(&table, 1_800); // 3%
                                                // The tighter the predicate, the fewer sample rows survive per group:
                                                // a 25% selectivity leaves ~1 row per stratum at this scale, so the
                                                // bound loosens with selectivity (the trend itself is asserted below).
    for (pq, bound) in [
        (queries::aq3(), 0.35),
        (queries::aq3_variant('c'), 0.55),
        (queries::aq3_variant('b'), 0.60),
        (queries::aq3_variant('a'), 0.75),
    ] {
        let err = mean_error(&table, &sample, &pq);
        assert!(err < bound, "{}: mean error {err} (bound {bound})", pq.id);
    }
}

#[test]
fn lower_selectivity_means_higher_error() {
    // Fewer matching rows in the sample → noisier estimates (paper Fig. 4).
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let sample = sample_for_aq3(&table, 1_200);
    let err_25 = mean_error(&table, &sample, &queries::aq3_variant('a'));
    let err_100 = mean_error(&table, &sample, &queries::aq3());
    assert!(
        err_100 <= err_25,
        "100% selectivity ({err_100}) should not be worse than 25% ({err_25})"
    );
}

#[test]
fn different_predicate_and_grouping_still_answerable() {
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let sample = sample_for_aq3(&table, 1_800);
    // AQ5: different predicate (latitude > 0).
    let aq5_err = mean_error(&table, &sample, &queries::aq5());
    assert!(aq5_err < 0.4, "AQ5 from AQ3 sample: {aq5_err}");
    // AQ6: different predicate AND different group-by attributes.
    let pq6 = queries::aq6();
    let truth = pq6.query.execute(&table).unwrap();
    let est = cvopt_core::estimate::estimate(&sample, &pq6.query).unwrap();
    assert!(
        est[0].num_groups() >= truth[0].num_groups() / 2,
        "AQ6 regrouping should find most groups"
    );
}

/// A cached `SampleHandle` answering a query with a *new* predicate and a
/// *coarser* grouping must produce bit-identical estimates to a fresh
/// `CvOptSampler` + `estimate` run with the same seed.
#[test]
fn cached_handle_matches_fresh_sampler_bit_for_bit() {
    let seed = 5;
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let pq = queries::aq3();
    let problem = SamplingProblem::multi(pq.specs.clone(), 1_800);

    let mut engine = Engine::new().with_seed(seed);
    engine.register_table("openaq", table.clone());
    let first = engine.prepare("openaq", problem.clone()).unwrap();
    assert!(!first.is_cache_hit());
    let handle = engine.prepare("openaq", problem.clone()).unwrap();
    assert!(handle.is_cache_hit(), "second prepare must come from the cache");
    assert_eq!(engine.stats_passes(), 1, "one statistics pass for two prepares");

    let fresh = CvOptSampler::new(problem).with_seed(seed).sample(&table).unwrap();
    assert_eq!(handle.sample().origin, fresh.sample.origin, "same drawn rows");

    // New predicate (latitude > 0, never planned for) and a coarser
    // grouping (country only, vs the sample's country/parameter/unit).
    let statements = [
        "SELECT country, parameter, unit, AVG(value) FROM openaq \
         WHERE latitude > 0 GROUP BY country, parameter, unit",
        "SELECT country, AVG(value), SUM(value), COUNT(*) FROM openaq GROUP BY country",
    ];
    for stmt in statements {
        let query = cvopt_table::sql::compile(stmt).unwrap();
        let cached = handle.estimate(&query).unwrap();
        let direct = cvopt_core::estimate::estimate(&fresh.sample, &query).unwrap();
        assert_eq!(cached[0].keys, direct[0].keys, "{stmt}");
        for (row, (a, b)) in cached[0].values.iter().zip(&direct[0].values).enumerate() {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "{stmt}: row {row} diverged");
            }
        }
    }
}

/// The SQL path of the engine: a second approximate query on the same
/// (table, problem) is served from the cache — no second statistics pass —
/// and still matches a fresh sampler bit for bit.
#[test]
fn engine_query_reuses_cache_across_predicates() {
    let seed = 9;
    let table = generate_openaq(&OpenAqConfig::with_rows(60_000));
    let mut engine = Engine::new().with_seed(seed);
    engine.register_table("openaq", table.clone());

    let base = "SELECT country, parameter, AVG(value) FROM openaq GROUP BY country, parameter";
    let first = engine.query(base, cvopt_core::QueryMode::Approximate).unwrap();
    assert_eq!(first.report.cache_hit, Some(false));

    let filtered = "SELECT country, parameter, AVG(value) FROM openaq \
                    WHERE latitude > 0 GROUP BY country, parameter";
    let second = engine.query(filtered, cvopt_core::QueryMode::Approximate).unwrap();
    assert_eq!(second.report.cache_hit, Some(true), "same derived problem must hit");
    assert_eq!(engine.stats_passes(), 1, "the cached sample answers both");

    // Bit-identical to the low-level pipeline with the same seed.
    let query = cvopt_table::sql::compile(filtered).unwrap();
    let budget = cvopt_core::budget_for_rate(&table, 0.01).unwrap();
    let problem = cvopt_core::problem_for_query(&query, budget).unwrap();
    let outcome = CvOptSampler::new(problem).with_seed(seed).sample(&table).unwrap();
    let direct = cvopt_core::estimate::estimate(&outcome.sample, &query).unwrap();
    assert_eq!(second.results[0].keys, direct[0].keys);
    for (a, b) in second.results[0].values.iter().zip(&direct[0].values) {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn count_estimates_exact_without_predicate() {
    // With full stratum coverage and no predicate, COUNT per stratum-aligned
    // group is n_c exactly.
    let table = generate_openaq(&OpenAqConfig::with_rows(30_000));
    let sample = sample_for_aq3(&table, 900);
    let query = cvopt_table::sql::compile(
        "SELECT country, parameter, unit, COUNT(*) FROM openaq \
         GROUP BY country, parameter, unit",
    )
    .unwrap();
    let truth = &query.execute(&table).unwrap()[0];
    let est = cvopt_core::estimate::estimate_single(&sample, &query).unwrap();
    for (key, values) in truth.iter() {
        let e = est.value(key, 0).unwrap();
        assert!((e - values[0]).abs() < 1e-6, "{key:?}: {e} vs {}", values[0]);
    }
}

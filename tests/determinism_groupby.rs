//! Sort-vs-hash group-by equivalence: the sort-based group index build is
//! an *implementation detail* — for any table, any dimension shape, any
//! thread count, and any shard layout it must produce **byte-identical**
//! output to the hash build (same per-row group ids, same first-occurrence
//! key order, same sizes). The planner may therefore switch strategies
//! freely without changing a single answer byte.
//!
//! CI runs this suite in the `CVOPT_THREADS` × `CVOPT_SHARDS` matrix with
//! both values pinned; the pinned counts are folded into every sweep.

use proptest::prelude::*;

use cvopt_core::{Engine, ExecOptions, QueryMode};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::{
    DataType, GroupIndex, GroupStrategy, ScalarExpr, ShardedTable, TableBuilder, Value,
};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The standard thread sweep plus the CI matrix's pinned `CVOPT_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = THREAD_COUNTS.to_vec();
    if let Some(pinned) = std::env::var("CVOPT_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

/// `CVOPT_GROUP_STRATEGY` is process-global and read by the planner per
/// query; tests that set it (or assert on the planner's choice) hold this.
fn strategy_env_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn assert_identical(sort: &GroupIndex, hash: &GroupIndex, context: &str) {
    assert_eq!(sort.row_groups(), hash.row_groups(), "{context}: row groups");
    assert_eq!(sort.sizes(), hash.sizes(), "{context}: sizes");
    assert_eq!(sort.num_groups(), hash.num_groups(), "{context}: group count");
    for g in 0..hash.num_groups() as u32 {
        assert_eq!(sort.key(g), hash.key(g), "{context}: key of group {g}");
    }
}

/// The standard dataset, all dimension shapes: the sort build equals the
/// hash build bit for bit at every thread count.
#[test]
fn sort_build_matches_hash_build_on_openaq() {
    let table = generate_openaq(&OpenAqConfig::with_rows(20_000));
    let shapes: [Vec<ScalarExpr>; 4] = [
        vec![ScalarExpr::col("country")],
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::col("unit")],
        vec![ScalarExpr::hour("local_time"), ScalarExpr::month("local_time")],
    ];
    for exprs in &shapes {
        for threads in thread_counts() {
            let options = ExecOptions::new(threads);
            let hash =
                GroupIndex::build_with_strategy(&table, exprs, &options, GroupStrategy::Hash)
                    .unwrap();
            let sort =
                GroupIndex::build_with_strategy(&table, exprs, &options, GroupStrategy::Sort)
                    .unwrap();
            assert_identical(&sort, &hash, &format!("{exprs:?}, threads {threads}"));
        }
    }
}

/// Forcing either strategy through the environment override never changes
/// a query answer — exact or approximate — only the plan report.
#[test]
fn forced_strategy_never_changes_answer_bytes() {
    let _guard = strategy_env_lock();
    let table = generate_openaq(&OpenAqConfig::with_rows(20_000));
    let answers: Vec<_> = ["hash", "sort"]
        .iter()
        .map(|forced| {
            std::env::set_var("CVOPT_GROUP_STRATEGY", forced);
            let mut engine = Engine::new().with_seed(11);
            engine.register("openaq", table.clone());
            let exact = engine
                .query(
                    "SELECT country, parameter, SUM(value) FROM openaq \
                     GROUP BY country, parameter",
                    QueryMode::Exact,
                )
                .unwrap();
            let approx = engine
                .query(
                    "SELECT country, AVG(value) FROM openaq GROUP BY country",
                    QueryMode::Approximate,
                )
                .unwrap();
            std::env::remove_var("CVOPT_GROUP_STRATEGY");
            assert_eq!(exact.report.group_by_strategy, *forced);
            assert!(exact.report.group_by_reason.contains("forced"));
            (exact, approx)
        })
        .collect();
    let bits = |vs: &[Vec<f64>]| -> Vec<Vec<u64>> {
        vs.iter().map(|row| row.iter().map(|v| v.to_bits()).collect()).collect()
    };
    let (a, b) = (&answers[0], &answers[1]);
    assert_eq!(a.0.results[0].keys, b.0.results[0].keys, "exact keys");
    assert_eq!(bits(&a.0.results[0].values), bits(&b.0.results[0].values), "exact values");
    assert_eq!(a.1.results[0].keys, b.1.results[0].keys, "approximate keys");
    assert_eq!(bits(&a.1.results[0].values), bits(&b.1.results[0].values), "approximate values");
    assert_eq!(a.1.report.fingerprint, b.1.report.fingerprint, "sample fingerprints");
}

/// The sharded build composes with the sort strategy: shard group indexes
/// built sorted merge to the same global index as hash-built ones.
#[test]
fn sorted_build_is_invisible_to_sharded_grouping() {
    let _guard = strategy_env_lock();
    let table = generate_openaq(&OpenAqConfig::with_rows(20_000));
    let sql = "SELECT country, parameter, SUM(value), COUNT(*) FROM openaq \
               GROUP BY country, parameter";
    let mut reference = Engine::new().with_seed(11);
    reference.register("openaq", table.clone());
    let want = reference.query(sql, QueryMode::Exact).unwrap();

    for shards in [2usize, 3] {
        for forced in ["hash", "sort"] {
            std::env::set_var("CVOPT_GROUP_STRATEGY", forced);
            let mut engine = Engine::new().with_seed(11);
            engine.register("openaq", ShardedTable::split(&table, shards).unwrap());
            let got = engine.query(sql, QueryMode::Exact).unwrap();
            std::env::remove_var("CVOPT_GROUP_STRATEGY");
            assert_eq!(got.results[0].keys, want.results[0].keys, "{shards} shards, {forced}");
            assert_eq!(got.results[0].values, want.results[0].values, "{shards} shards, {forced}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random tables, both the ≤2-dim packed sort path and the general
    /// lexicographic path, across the thread sweep: sort == hash, bit for
    /// bit.
    #[test]
    fn sort_build_matches_hash_build_on_random_tables(
        rows in proptest::collection::vec((any::<u8>(), any::<u8>(), any::<u8>()), 1..400),
    ) {
        let mut b = TableBuilder::new(&[
            ("s", DataType::Str),
            ("i", DataType::Int64),
            ("j", DataType::Int64),
        ]);
        for (s, i, j) in &rows {
            b.push_row(&[
                Value::str(format!("k{}", s % 7)),
                Value::Int64((i % 17) as i64),
                Value::Int64((j % 3) as i64),
            ])
            .unwrap();
        }
        let table = b.finish();
        for exprs in [
            vec![ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i")],
            vec![ScalarExpr::col("s"), ScalarExpr::col("i"), ScalarExpr::col("j")],
        ] {
            for threads in thread_counts() {
                let options = ExecOptions::new(threads);
                let hash = GroupIndex::build_with_strategy(
                    &table, &exprs, &options, GroupStrategy::Hash,
                ).unwrap();
                let sort = GroupIndex::build_with_strategy(
                    &table, &exprs, &options, GroupStrategy::Sort,
                ).unwrap();
                prop_assert_eq!(sort.row_groups(), hash.row_groups(), "threads {}", threads);
                prop_assert_eq!(sort.sizes(), hash.sizes());
                prop_assert_eq!(sort.num_groups(), hash.num_groups());
                for g in 0..hash.num_groups() as u32 {
                    prop_assert_eq!(sort.key(g), hash.key(g));
                }
            }
        }
    }
}

/// Partition-boundary sizes — where renumbering and merge bugs hide.
#[test]
fn sort_build_matches_hash_at_boundary_sizes() {
    use cvopt_table::exec::CHUNK_ROWS;
    for n in [0usize, 1, 2, CHUNK_ROWS - 1, CHUNK_ROWS, CHUNK_ROWS + 1, 2 * CHUNK_ROWS + 321] {
        let mut b = TableBuilder::new(&[("g", DataType::Int64)]);
        let mut state = 0x1234_5678_9abc_def0u64;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            b.push_row(&[Value::Int64((state % 23) as i64)]).unwrap();
        }
        let table = b.finish();
        let exprs = [ScalarExpr::col("g")];
        for threads in thread_counts() {
            let options = ExecOptions::new(threads);
            let hash =
                GroupIndex::build_with_strategy(&table, &exprs, &options, GroupStrategy::Hash)
                    .unwrap();
            let sort =
                GroupIndex::build_with_strategy(&table, &exprs, &options, GroupStrategy::Sort)
                    .unwrap();
            assert_identical(&sort, &hash, &format!("n {n}, threads {threads}"));
        }
    }
}

//! Ingest-replay determinism: replaying the same stream of appended rows
//! into a windowed table must leave the engine in a **bit-identical**
//! state no matter how the stream is chopped into batches, how many
//! threads run the passes, or how the base table is sharded — and that
//! state must equal registering the final table fresh and preparing from
//! scratch.
//!
//! This is the contract the `/ingest` endpoint serves under: a replayed
//! ingest log yields byte-identical samples and `/query` answers,
//! independent of batch boundaries, thread count, and shard layout.
//!
//! CI runs this suite in the determinism matrix (`CVOPT_SHARDS` ×
//! `CVOPT_THREADS` pinned); both pinned values are folded into the sweep
//! below like the other determinism suites.

use cvopt_core::{Engine, ExecOptions, QueryMode, QuerySpec, SampleHandle, SamplingProblem};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::{ShardedTable, Table};

const BASE_ROWS: usize = 6_000;
const STREAM_ROWS: usize = 3_000;
/// Budget prepared at `BASE_ROWS`; maintenance rescales it to
/// `BUDGET * (BASE_ROWS + STREAM_ROWS) / BASE_ROWS` as rows arrive.
const BUDGET: usize = 200;
const SCALED_BUDGET: usize = BUDGET * (BASE_ROWS + STREAM_ROWS) / BASE_ROWS;

const STATEMENT: &str = "SELECT country, AVG(value) FROM openaq GROUP BY country";

/// The standard thread sweep plus the CI matrix's pinned `CVOPT_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1, 4];
    if let Some(pinned) = std::env::var("CVOPT_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

/// The standard shard sweep plus the CI matrix's pinned `CVOPT_SHARDS`.
fn shard_counts() -> Vec<usize> {
    let mut counts = vec![1, 3];
    if let Some(pinned) = std::env::var("CVOPT_SHARDS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if pinned > 0 && !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

/// Batch boundaries to replay the stream through: one big batch, a few
/// even batches, and a deliberately ragged split with a 1-row batch.
fn splits() -> Vec<Vec<usize>> {
    vec![vec![STREAM_ROWS], vec![1_000, 1_000, 1_000], vec![1, 1_499, 700, 800]]
}

fn problem(budget: usize) -> SamplingProblem {
    SamplingProblem::single(QuerySpec::group_by(&["country"]).aggregate("value"), budget)
}

/// Register the windowed fixture over `rows` rows in the given layout.
fn engine_with(table: &Table, shards: usize, threads: usize) -> Engine {
    let mut engine =
        Engine::new().with_seed(11).with_exec(ExecOptions::new(threads)).with_auto_threshold(1);
    if shards == 1 {
        engine.register_windowed("openaq", table.clone(), "local_time").unwrap();
    } else {
        let sharded = ShardedTable::split(table, shards).unwrap();
        engine.register_windowed("openaq", sharded, "local_time").unwrap();
    }
    engine
}

/// The sample bits behind a handle, flattened for comparison.
fn sample_bits(handle: &SampleHandle) -> (Vec<u32>, Vec<u64>, Vec<u32>) {
    let s = handle.sample();
    (s.origin.clone(), s.weights.iter().map(|w| w.to_bits()).collect(), s.row_stratum.clone())
}

#[test]
fn replayed_ingest_is_batch_thread_and_layout_invariant() {
    let full = generate_openaq(&OpenAqConfig::with_rows(BASE_ROWS + STREAM_ROWS));
    let base = full.take(&(0..BASE_ROWS).collect::<Vec<_>>());

    // The reference state: the final table registered fresh, prepared at
    // the budget maintenance will have rescaled to. Sequential and
    // unsharded — every matrix point below must reproduce it bit for bit.
    let reference = engine_with(&full, 1, 1);
    let handle = reference.prepare("openaq", problem(SCALED_BUDGET)).unwrap();
    let want_bits = sample_bits(&handle);
    let want_answer = reference.query(STATEMENT, QueryMode::Approximate).unwrap();
    let want_rows = format!("{:?}{:?}", want_answer.results, want_answer.confidence);

    for threads in thread_counts() {
        for shards in shard_counts() {
            for split in splits() {
                let mut live = engine_with(&base, shards, threads);
                live.prepare("openaq", problem(BUDGET)).unwrap();
                let passes = live.stats_passes();
                let mut start = BASE_ROWS;
                for len in &split {
                    let batch = full.take(&(start..start + len).collect::<Vec<_>>());
                    live.ingest("openaq", &batch).unwrap();
                    start += len;
                }
                assert_eq!(start, BASE_ROWS + STREAM_ROWS, "splits must cover the stream");
                assert_eq!(
                    live.stats_passes(),
                    passes,
                    "maintenance re-scanned (threads {threads}, shards {shards}, split {split:?})"
                );

                // The maintained sample must be the fresh preparation,
                // bit for bit — probing it must hit the cache.
                let handle = live.prepare("openaq", problem(SCALED_BUDGET)).unwrap();
                assert!(
                    handle.is_cache_hit(),
                    "the maintained sample must be cached (threads {threads}, shards {shards})"
                );
                assert_eq!(
                    sample_bits(&handle),
                    want_bits,
                    "sample bits diverged (threads {threads}, shards {shards}, split {split:?})"
                );

                // And the answer bytes must match the reference answer.
                let answer = live.query(STATEMENT, QueryMode::Approximate).unwrap();
                assert_eq!(
                    format!("{:?}{:?}", answer.results, answer.confidence),
                    want_rows,
                    "answers diverged (threads {threads}, shards {shards}, split {split:?})"
                );
            }
        }
    }
}

#[test]
fn rotation_is_layout_and_thread_invariant() {
    let full = generate_openaq(&OpenAqConfig::with_rows(BASE_ROWS));
    // Cut at the midpoint of the window column.
    let cutoff = match full.column_by_name("local_time").unwrap() {
        cvopt_table::Column::Timestamp(v) => {
            let (min, max) = (v.iter().min().unwrap(), v.iter().max().unwrap());
            min + (max - min) / 2
        }
        other => panic!("local_time must be a timestamp, got {other:?}"),
    };

    let mut expected: Option<(u64, String)> = None;
    for threads in thread_counts() {
        for shards in shard_counts() {
            let mut live = engine_with(&full, shards, threads);
            let report = live.rotate("openaq", cutoff).unwrap();
            let answer = live.query(STATEMENT, QueryMode::Approximate).unwrap();
            let got = (report.retired as u64, format!("{:?}", answer.results));
            match &expected {
                None => expected = Some(got),
                Some(want) => {
                    assert_eq!(&got, want, "rotation diverged (threads {threads}, shards {shards})")
                }
            }
        }
    }
}

//! Cross-crate comparison of all sampling methods: the paper's qualitative
//! claims must hold at test scale.

use cvopt_baselines::{paper_methods, CvOptL2, RoschLehner, SamplingMethod, Uniform};
use cvopt_core::SamplingProblem;
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::{relative_errors_all, ErrorSummary};
use cvopt_eval::queries;
use cvopt_table::Table;

fn openaq() -> Table {
    generate_openaq(&OpenAqConfig::with_rows(60_000))
}

fn max_and_mean(
    table: &Table,
    method: &dyn SamplingMethod,
    pq: &cvopt_eval::PaperQuery,
    budget: usize,
    reps: u64,
) -> (f64, f64) {
    let truth = pq.query.execute(table).unwrap();
    let problem = SamplingProblem::multi(pq.specs.clone(), budget);
    let mut max = 0.0;
    let mut mean = 0.0;
    for seed in 0..reps {
        let sample = method.draw(table, &problem, seed).unwrap();
        let est = cvopt_core::estimate::estimate(&sample, &pq.query).unwrap();
        let s = ErrorSummary::from_errors(&relative_errors_all(&truth, &est, 0.0));
        max += s.max;
        mean += s.mean;
    }
    (max / reps as f64, mean / reps as f64)
}

#[test]
fn cvopt_beats_uniform_by_a_wide_margin() {
    let table = openaq();
    let pq = queries::aq3();
    let budget = 1_200; // 2%: ~2.5 rows per (country,parameter,unit) stratum
    let (uni_max, uni_mean) = max_and_mean(&table, &Uniform, &pq, budget, 3);
    let (cv_max, cv_mean) = max_and_mean(&table, &CvOptL2::default(), &pq, budget, 3);
    // Max error at this scale is dominated by single-row strata of a
    // heavy-tailed distribution, so require a plain win on max and a wide
    // (>2x) win on the mean, mirroring the paper's Fig. 1 + Table 4 combo.
    assert!(cv_max < uni_max, "CVOPT max {cv_max} should beat Uniform max {uni_max}");
    // At 60k rows the per-stratum samples are tiny (~2.5 rows), so the gap
    // is smaller than the paper's 5x (200M rows); 1.4x is already >3 sigma
    // here, and the `reproduce` harness shows the full-scale margins.
    assert!(
        cv_mean * 1.4 < uni_mean,
        "expected a wide margin on mean: CVOPT {cv_mean} vs Uniform {uni_mean}"
    );
}

#[test]
fn cvopt_no_worse_than_rl_on_mean_error() {
    let table = openaq();
    let pq = queries::aq3();
    let budget = 1_200;
    let (_, rl_mean) = max_and_mean(&table, &RoschLehner, &pq, budget, 3);
    let (_, cv_mean) = max_and_mean(&table, &CvOptL2::default(), &pq, budget, 3);
    assert!(
        cv_mean <= rl_mean * 1.15,
        "CVOPT mean {cv_mean} should be <= RL mean {rl_mean} (within noise)"
    );
}

#[test]
fn every_method_handles_masg_and_cube() {
    let table = openaq();
    for pq in [queries::aq2(), queries::aq7()] {
        for method in paper_methods() {
            let problem = SamplingProblem::multi(pq.specs.clone(), 1_000);
            let sample = method.draw(&table, &problem, 0).unwrap();
            let est = cvopt_core::estimate::estimate(&sample, &pq.query).unwrap();
            assert!(
                est[0].num_groups() > 0,
                "{} produced empty estimate for {}",
                method.name(),
                pq.id
            );
        }
    }
}

#[test]
fn stratified_methods_cover_all_groups_uniform_does_not() {
    let table = openaq();
    let pq = queries::aq3();
    let truth = pq.query.execute(&table).unwrap();
    let problem = SamplingProblem::multi(pq.specs.clone(), 600); // 1%
    let coverage = |method: &dyn SamplingMethod| -> usize {
        let sample = method.draw(&table, &problem, 2).unwrap();
        let est = cvopt_core::estimate::estimate(&sample, &pq.query).unwrap();
        est[0].num_groups()
    };
    let total = truth[0].num_groups();
    assert_eq!(coverage(&CvOptL2::default()), total, "CVOPT must cover every group");
    assert!(
        coverage(&Uniform) < total,
        "Uniform at 1% should miss at least one of {total} skewed groups"
    );
}

//! JOIN differential battery: every `fact JOIN dim` query through the
//! Engine must answer **byte-identically** to the same query over a
//! pre-joined table built by an independent nested-loop reference join —
//! for every thread count and shard layout in the CI matrix.
//!
//! CI runs this suite in the `CVOPT_THREADS` × `CVOPT_SHARDS` matrix; both
//! pinned values are folded into the sweeps below. The columnar store has
//! no null bitmap, so the "null key" cases of a classic join battery appear
//! here as their closest analogs: empty-string keys, fact keys missing
//! from the dimension side (dropped by the inner join), and duplicate
//! dimension keys (fan-out in dimension row order).

use proptest::prelude::*;

use cvopt_core::{Engine, ExecOptions, QueryMode};
use cvopt_table::{DataType, QueryResult, Schema, ShardedTable, Table, TableBuilder, Value};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];
const SHARD_COUNTS: [usize; 3] = [1, 3, 5];

/// The standard thread sweep plus the CI matrix's pinned `CVOPT_THREADS`.
fn thread_counts() -> Vec<usize> {
    let mut counts = THREAD_COUNTS.to_vec();
    if let Some(pinned) = std::env::var("CVOPT_THREADS").ok().and_then(|v| v.parse::<usize>().ok())
    {
        if !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

/// The standard shard sweep plus the CI matrix's pinned `CVOPT_SHARDS`.
fn shard_counts() -> Vec<usize> {
    let mut counts = SHARD_COUNTS.to_vec();
    if let Some(pinned) = std::env::var("CVOPT_SHARDS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if pinned > 0 && !counts.contains(&pinned) {
            counts.push(pinned);
        }
    }
    counts
}

/// Independent reference join: a nested loop over dynamically typed
/// values, sharing no code with `cvopt_table::hash_join`. Output rows in
/// fact-row order, duplicate dimension matches in dimension-row order —
/// the contract the hash join must reproduce.
fn nested_loop_join(fact: &Table, dim: &Table, fact_key: &str, dim_key: &str) -> Table {
    let fk = fact.schema().index_of(fact_key).unwrap();
    let dk = dim.schema().index_of(dim_key).unwrap();
    let mut fields = fact.schema().fields().to_vec();
    for (idx, field) in dim.schema().fields().iter().enumerate() {
        if idx != dk {
            fields.push(field.clone());
        }
    }
    let mut b = TableBuilder::from_schema(Schema::from_fields(fields));
    for fr in 0..fact.num_rows() {
        let key = fact.column(fk).value(fr);
        for dr in 0..dim.num_rows() {
            if dim.column(dk).value(dr) != key {
                continue;
            }
            let mut row: Vec<Value> = fact.row(fr);
            for (idx, column) in dim.columns().iter().enumerate() {
                if idx != dk {
                    row.push(column.value(dr));
                }
            }
            b.push_row(&row).unwrap();
        }
    }
    b.finish()
}

/// Fact side: stores × items with skewed quantities; `i7`/`i8` have no
/// dimension row, and every 37th row carries an empty-string key.
fn sales(rows: usize) -> Table {
    let mut b = TableBuilder::new(&[
        ("store", DataType::Str),
        ("item", DataType::Str),
        ("qty", DataType::Float64),
        ("units", DataType::Int64),
    ]);
    let mut state = 0x5eed_cafe_d00d_f00du64;
    for i in 0..rows {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let item = if i % 37 == 0 { String::new() } else { format!("i{}", state % 9) };
        b.push_row(&[
            Value::str(format!("s{}", i % 5)),
            Value::str(item),
            Value::Float64(((state % 97) as f64) / 3.0),
            Value::Int64((state % 11) as i64),
        ])
        .unwrap();
    }
    b.finish()
}

/// Dimension side: items `i0..i6` (7 and 8 deliberately missing), one
/// duplicated key (`i3` twice — fan-out), and no empty-string key.
fn items() -> Table {
    let mut b = TableBuilder::new(&[
        ("item", DataType::Str),
        ("category", DataType::Str),
        ("weight", DataType::Float64),
    ]);
    for i in 0..7 {
        b.push_row(&[
            Value::str(format!("i{i}")),
            Value::str(["food", "tools", "toys"][i % 3]),
            Value::Float64(1.0 + i as f64 / 2.0),
        ])
        .unwrap();
        if i == 3 {
            b.push_row(&[Value::str("i3"), Value::str("dup"), Value::Float64(9.5)]).unwrap();
        }
    }
    b.finish()
}

/// The join queries under differential test, each exercising a different
/// corner: plain aggregate, reversed ON sides + arithmetic, WHERE over a
/// fact column, CASE over a dimension column, COUNT_IF.
const JOIN_QUERIES: [(&str, &str); 5] = [
    (
        "SELECT category, SUM(qty) FROM sales JOIN items ON sales.item = items.item \
         GROUP BY category",
        "SELECT category, SUM(qty) FROM joined GROUP BY category",
    ),
    (
        "SELECT store, category, AVG(qty * weight) FROM sales \
         JOIN items ON items.item = sales.item GROUP BY store, category",
        "SELECT store, category, AVG(qty * weight) FROM joined GROUP BY store, category",
    ),
    (
        "SELECT category, COUNT(*) FROM sales JOIN items ON sales.item = items.item \
         WHERE qty > 10 GROUP BY category",
        "SELECT category, COUNT(*) FROM joined WHERE qty > 10 GROUP BY category",
    ),
    (
        "SELECT store, SUM(CASE WHEN weight > 2 THEN qty ELSE 0 END) FROM sales \
         JOIN items ON sales.item = items.item GROUP BY store",
        "SELECT store, SUM(CASE WHEN weight > 2 THEN qty ELSE 0 END) FROM joined \
         GROUP BY store",
    ),
    (
        "SELECT category, COUNT_IF(units > 5) FROM sales \
         JOIN items ON sales.item = items.item GROUP BY category",
        "SELECT category, COUNT_IF(units > 5) FROM joined GROUP BY category",
    ),
];

fn assert_bit_identical(got: &[QueryResult], want: &[QueryResult], context: &str) {
    assert_eq!(got.len(), want.len(), "{context}: result count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.keys, w.keys, "{context}: keys");
        assert_eq!(g.group_rows, w.group_rows, "{context}: group rows");
        let bits = |vs: &[Vec<f64>]| -> Vec<Vec<u64>> {
            vs.iter().map(|row| row.iter().map(|v| v.to_bits()).collect()).collect()
        };
        assert_eq!(bits(&g.values), bits(&w.values), "{context}: values");
    }
}

/// The battery: every join query, across the full thread × shard sweep,
/// answers bit-identically to the nested-loop reference over a pre-joined
/// table on a sequential unsharded engine.
#[test]
fn join_queries_match_prejoined_reference_across_matrix() {
    let fact = sales(4_000);
    let dim = items();
    let joined = nested_loop_join(&fact, &dim, "item", "item");
    assert!(joined.num_rows() > 0, "fixture must produce matches");

    let mut reference = Engine::new().with_seed(1).with_exec(ExecOptions::sequential());
    reference.register("joined", joined);

    for threads in thread_counts() {
        for shards in shard_counts() {
            let mut engine = Engine::new().with_seed(1).with_exec(ExecOptions::new(threads));
            if shards > 1 {
                engine.register("sales", ShardedTable::split(&fact, shards).unwrap());
            } else {
                engine.register("sales", fact.clone());
            }
            engine.register("items", dim.clone());
            for (join_sql, prejoined_sql) in JOIN_QUERIES {
                let got = engine.query(join_sql, QueryMode::Exact).unwrap();
                let want = reference.query(prejoined_sql, QueryMode::Exact).unwrap();
                assert_bit_identical(
                    &got.results,
                    &want.results,
                    &format!("threads {threads}, shards {shards}: {join_sql}"),
                );
                assert!(got.report.join.is_some(), "{join_sql}: report must name the join");
            }
        }
    }
}

/// A sharded dimension side answers exactly like an unsharded one.
#[test]
fn sharded_dimension_side_is_invisible() {
    let fact = sales(2_000);
    let dim = items();
    let sql = JOIN_QUERIES[0].0;

    let mut plain = Engine::new().with_seed(1);
    plain.register("sales", fact.clone());
    plain.register("items", dim.clone());
    let want = plain.query(sql, QueryMode::Exact).unwrap();

    let mut sharded = Engine::new().with_seed(1);
    sharded.register("sales", fact);
    sharded.register("items", ShardedTable::split(&dim, 3).unwrap());
    let got = sharded.query(sql, QueryMode::Exact).unwrap();
    assert_bit_identical(&got.results, &want.results, "sharded dim");
}

/// EXPLAIN over a join plans without executing, and the report carries the
/// join description plus a group-by strategy with its reason.
#[test]
fn explain_join_reports_without_executing() {
    let mut engine = Engine::new().with_seed(1);
    engine.register("sales", sales(500));
    engine.register("items", items());
    let ans = engine
        .query(
            "EXPLAIN SELECT category, SUM(qty) FROM sales JOIN items \
             ON sales.item = items.item GROUP BY category",
            QueryMode::Auto,
        )
        .unwrap();
    assert!(ans.results.is_empty(), "EXPLAIN must not execute");
    assert_eq!(ans.report.join.as_deref(), Some("items ON sales.item = items.item"));
    assert_eq!(ans.report.mode, QueryMode::Exact, "joins answer exactly");
    assert!(!ans.report.group_by_reason.is_empty());
    let line = ans.report.to_line();
    assert!(line.contains("join items"), "{line}");
    assert!(line.contains("group-by"), "{line}");
}

/// Join error paths are caught at plan time with informative messages.
#[test]
fn join_error_paths_are_informative() {
    let mut engine = Engine::new().with_seed(1);
    engine.register("sales", sales(500));
    engine.register("items", items());

    let sql = "SELECT category, SUM(qty) FROM sales JOIN items \
               ON sales.item = items.item GROUP BY category";
    let err = engine.query(sql, QueryMode::Approximate).unwrap_err();
    assert!(err.to_string().contains("exactly"), "{err}");

    let err = engine
        .query(
            "SELECT category, SUM(qty) FROM sales JOIN nope \
             ON sales.item = nope.item GROUP BY category",
            QueryMode::Exact,
        )
        .unwrap_err();
    assert!(err.to_string().to_lowercase().contains("table"), "{err}");

    // Auto mode answers joins exactly instead of erroring.
    let ans = engine.query(sql, QueryMode::Auto).unwrap();
    assert_eq!(ans.report.mode, QueryMode::Exact);
    assert_eq!(ans.report.reason, "join queries answer exactly");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random fact/dim tables — keys with empty strings, keys missing from
    /// the dimension, duplicate dimension keys — joined through the Engine
    /// match the nested-loop reference over the pre-joined table, at every
    /// swept thread count and a shard split.
    #[test]
    fn random_joins_match_reference(
        fact_rows in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..200),
        dim_rows in proptest::collection::vec((0u8..10, any::<u8>()), 0..20),
    ) {
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("v", DataType::Int64)]);
        for (k, v) in &fact_rows {
            // k % 16 > 9 yields keys no dimension row can carry; 0 maps to
            // the empty string.
            let key = match k % 16 {
                0 => String::new(),
                other => format!("k{other}"),
            };
            b.push_row(&[Value::str(key), Value::Int64(*v as i64)]).unwrap();
        }
        let fact = b.finish();
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("w", DataType::Int64)]);
        for (k, w) in &dim_rows {
            // Dimension keys stay in k0..k9; repeats are genuine duplicate
            // keys and must fan out.
            b.push_row(&[Value::str(format!("k{k}")), Value::Int64(*w as i64)]).unwrap();
        }
        let dim = b.finish();

        let joined = nested_loop_join(&fact, &dim, "k", "k");
        let mut reference = Engine::new().with_seed(1).with_exec(ExecOptions::sequential());
        reference.register("joined", joined);
        let sql = "SELECT k, SUM(v), SUM(w), COUNT(*) FROM fact JOIN dim ON fact.k = dim.k \
                   GROUP BY k";
        let ref_sql = "SELECT k, SUM(v), SUM(w), COUNT(*) FROM joined GROUP BY k";
        // The join key collides on both sides; the dimension drops its copy,
        // so grouping by `k` resolves to the fact column either way.
        let want = match reference.query(ref_sql, QueryMode::Exact) {
            Ok(ans) => ans,
            // An all-unmatched fixture joins to zero rows; grouping an
            // empty table is still well-defined, so this must not happen.
            Err(e) => return Err(format!("reference: {e}")),
        };

        for threads in thread_counts() {
            let mut engine = Engine::new().with_seed(1).with_exec(ExecOptions::new(threads));
            engine.register("fact", fact.clone());
            engine.register("dim", dim.clone());
            let got = engine.query(sql, QueryMode::Exact).unwrap();
            prop_assert_eq!(&got.results.len(), &want.results.len());
            for (g, w) in got.results.iter().zip(&want.results) {
                prop_assert_eq!(&g.keys, &w.keys, "threads {}", threads);
                prop_assert_eq!(&g.values, &w.values, "threads {}", threads);
                prop_assert_eq!(&g.group_rows, &w.group_rows, "threads {}", threads);
            }
        }
        for shards in shard_counts().into_iter().filter(|&s| s > 1) {
            let mut engine = Engine::new().with_seed(1);
            match ShardedTable::split(&fact, shards) {
                Ok(sharded) => { engine.register("fact", sharded); }
                Err(_) => continue, // fewer rows than shards
            }
            engine.register("dim", dim.clone());
            let got = engine.query(sql, QueryMode::Exact).unwrap();
            for (g, w) in got.results.iter().zip(&want.results) {
                prop_assert_eq!(&g.keys, &w.keys, "shards {}", shards);
                prop_assert_eq!(&g.values, &w.values, "shards {}", shards);
            }
        }
    }
}

//! Offline stand-in for the `criterion` bench harness.
//!
//! Implements the subset of criterion's API the workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, the `criterion_group!`/`criterion_main!` macros) with a
//! simple measure-N-iterations harness instead of criterion's statistical
//! machinery.
//!
//! Results are printed to stdout and appended to `BENCH_<group>.json` in
//! the working directory (override the directory with `CVOPT_BENCH_DIR`),
//! so bench numbers are tracked across PRs.
//!
//! Like real criterion, passing `--bench` or test filters on the command
//! line is tolerated; filters select benchmark ids by substring match.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion-compatible).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Just `parameter` (for groups benching one function over inputs).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    iters: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `f`, called once per iteration.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // One untimed warmup call (page in data, warm caches).
        std_black_box(f());
        self.samples.clear();
        self.samples.reserve(self.iters as usize);
        for _ in 0..self.iters {
            let start = Instant::now();
            std_black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&mut self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2].as_nanos()
    }

    fn mean_ns(&self) -> u128 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.iter().map(|d| d.as_nanos()).sum::<u128>() / self.samples.len() as u128
    }
}

struct Recorded {
    id: String,
    median_ns: u128,
    mean_ns: u128,
    iters: u64,
    throughput: Option<Throughput>,
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    results: Vec<Recorded>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Number of timed iterations per benchmark (criterion-compatible
    /// knob; the default is 10).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(1) as u64;
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmark a closure that receives `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: String, mut f: impl FnMut(&mut Bencher)) {
        if !self.criterion.filter_matches(&format!("{}/{}", self.name, id)) {
            return;
        }
        let mut bencher = Bencher { iters: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        let median = bencher.median_ns();
        let mean = bencher.mean_ns();
        println!(
            "{}/{}: median {} mean {} ({} iters){}",
            self.name,
            id,
            fmt_ns(median),
            fmt_ns(mean),
            self.sample_size,
            fmt_throughput(self.throughput, median),
        );
        self.results.push(Recorded {
            id,
            median_ns: median,
            mean_ns: mean,
            iters: self.sample_size,
            throughput: self.throughput,
        });
    }

    /// Write the group's results to `BENCH_<group>.json`.
    pub fn finish(&mut self) {
        if self.results.is_empty() {
            return;
        }
        let mut json = String::from("{\n");
        let _ = writeln!(json, "  \"group\": \"{}\",", self.name);
        json.push_str("  \"benchmarks\": {\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 < self.results.len() { "," } else { "" };
            let throughput = match r.throughput {
                Some(Throughput::Elements(n)) => {
                    format!(", \"elements_per_iter\": {n}")
                }
                Some(Throughput::Bytes(n)) => format!(", \"bytes_per_iter\": {n}"),
                None => String::new(),
            };
            let _ = writeln!(
                json,
                "    \"{}\": {{\"median_ns\": {}, \"mean_ns\": {}, \"iters\": {}{}}}{}",
                r.id, r.median_ns, r.mean_ns, r.iters, throughput, comma
            );
        }
        json.push_str("  }\n}\n");

        let dir = std::env::var("CVOPT_BENCH_DIR").unwrap_or_else(|_| ".".into());
        let safe_name: String =
            self.name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
        let path = std::path::Path::new(&dir).join(format!("BENCH_{safe_name}.json"));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        self.results.clear();
    }
}

/// The bench harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Criterion {
    fn from_args() -> Self {
        // Accept and ignore harness flags (--bench, --exact, ...); bare
        // arguments act as substring filters like libtest's.
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        Criterion { filters }
    }

    fn filter_matches(&self, full_id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_id.contains(f))
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 10,
            results: Vec::new(),
        }
    }

    /// Benchmark a standalone function (no group).
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn fmt_throughput(t: Option<Throughput>, median_ns: u128) -> String {
    if median_ns == 0 {
        return String::new();
    }
    match t {
        Some(Throughput::Elements(n)) => {
            let per_sec = n as f64 * 1e9 / median_ns as f64;
            format!(", {:.2} Melem/s", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) => {
            let per_sec = n as f64 * 1e9 / median_ns as f64;
            format!(", {:.2} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        None => String::new(),
    }
}

/// Bundle bench functions into a group runner (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::__from_args_internal();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

impl Criterion {
    /// Internal: construct from CLI args (used by `criterion_group!`).
    #[doc(hidden)]
    pub fn __from_args_internal() -> Self {
        Self::from_args()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        std::env::set_var("CVOPT_BENCH_DIR", std::env::temp_dir());
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("selftest");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut calls = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls >= 4, "warmup + 3 samples, got {calls}");
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| b.iter(|| x * 2));
        group.finish();
        let path = std::env::temp_dir().join("BENCH_selftest.json");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"count\""));
        assert!(json.contains("\"with_input/7\""));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn filters_select_by_substring() {
        let c = Criterion { filters: vec!["stats".into()] };
        assert!(c.filter_matches("stats_pass/collect/2"));
        assert!(!c.filter_matches("reservoir/algorithm_l"));
        let open = Criterion::default();
        assert!(open.filter_matches("anything"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("collect", 4).to_string(), "collect/4");
        assert_eq!(BenchmarkId::from_parameter("CVOPT").to_string(), "CVOPT");
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] for numeric ranges / `any::<T>()` /
//! tuples, [`collection::vec`], `prop_assert!`/`prop_assert_eq!`, and
//! [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, by design:
//!
//! * cases are generated from a fixed seed, so runs are fully
//!   deterministic (no persisted failure files);
//! * there is no shrinking — a failing case is reported as-is with its
//!   case index, and the fixed seed makes it trivially replayable.

use rand::rngs::StdRng;
pub use rand::SeedableRng;
use rand::{Rng, RngExt};

/// Number of cases run per property unless overridden with
/// `#![proptest_config(...)]`.
pub const DEFAULT_CASES: u32 = 256;

/// Test-runner configuration (only the knobs the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.random_range(0..span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u64;
                let off = rng.random_range(0..=span);
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.random::<f64>()
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.random::<f32>()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::RngExt;

    /// Strategy for a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `vec(element, min_len..max_len)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test module needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy,
    };
}

/// Assert inside a property body; on failure the case is reported with its
/// generated inputs (via the panic message) and the test fails.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err(format!($($fmt)*));
        }
    };
}

/// `prop_assert!(a == b)` with value reporting. Compares by reference, so
/// non-`Copy` operands are not moved.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_eq!($left, $right, "");
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`) {}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                format!($($fmt)*),
            ));
        }
    }};
}

/// `prop_assert!(a != b)` with value reporting.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        $crate::prop_assert_ne!($left, $right, "");
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err(format!(
                "assertion failed: `{} != {}` (both: `{:?}`) {}",
                stringify!($left),
                stringify!($right),
                l,
                format!($($fmt)*),
            ));
        }
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random cases.
#[macro_export]
macro_rules! proptest {
    // Internal recursion arms first: the public entry arms end in a
    // catch-all that would otherwise swallow `@funcs`.
    (@funcs ($config:expr)) => {};
    (@funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::Strategy as _;
            let config: $crate::ProptestConfig = $config;
            // Per-test deterministic seed, derived from the test name so
            // distinct properties explore distinct sequences.
            let mut seed = 0xC0FF_EE00u64;
            for b in stringify!($name).bytes() {
                seed = seed.wrapping_mul(31).wrapping_add(b as u64);
            }
            let mut rng: $crate::TestRng = $crate::SeedableRng::seed_from_u64(seed);
            for case in 0..config.cases {
                $(let $arg = ($strategy).generate(&mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    Ok(())
                })();
                if let Err(message) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}\n(deterministic seed {}; \
                         inputs: {})",
                        stringify!($name),
                        case,
                        config.cases,
                        message,
                        seed,
                        format!(
                            concat!($(stringify!($arg), " = {:?} "),+),
                            $($arg),+
                        ),
                    );
                }
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 9);
        }

        #[test]
        fn tuples_compose(pair in (any::<bool>(), 1usize..4)) {
            let (_b, n) = pair;
            prop_assert!((1..4).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_applies(_x in 0u8..10) {
            // Runs exactly 7 times; nothing to assert beyond not panicking.
            prop_assert!(true);
        }
    }

    #[test]
    fn determinism() {
        use crate::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..50);
        let mut a: crate::TestRng = crate::SeedableRng::seed_from_u64(9);
        let mut b: crate::TestRng = crate::SeedableRng::seed_from_u64(9);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! small slice of `rand`'s API the project uses is implemented in-tree:
//!
//! * [`Rng`] — the core trait (a source of `u64`s),
//! * [`RngExt`] — extension methods `random`, `random_range`, `random_bool`
//!   (blanket-implemented for every [`Rng`]),
//! * [`SeedableRng`] with `seed_from_u64`,
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64.
//!
//! The generator is deliberately *stable*: `StdRng` is pinned to
//! xoshiro256++ and will not change between versions of this workspace, so
//! seeded samples are reproducible forever. That is a stronger guarantee
//! than the real `rand` crate makes for its `StdRng`.

/// A source of random 64-bit words.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be produced uniformly from an RNG via
/// [`RngExt::random`].
pub trait FromRng: Sized {
    /// Draw one value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer types that support uniform range sampling.
pub trait UniformInt: Copy {
    /// Widen to `u64` (for unsigned span arithmetic).
    fn to_u64(self) -> u64;
    /// Narrow from `u64`.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_u64(v: u64) -> $t {
                v as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize);

/// Uniform draw from `[0, span)` without modulo bias (rejection sampling).
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection zone: the largest multiple of `span` that fits in u64.
    let zone = u64::MAX - u64::MAX.wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v < zone || zone == 0 {
            return v.wrapping_rem(span);
        }
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_u64(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + uniform_below(rng, span + 1))
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + (self.end - self.start) * f64::from_rng(rng)
    }
}

/// Convenience methods over any [`Rng`].
pub trait RngExt: Rng {
    /// A uniform value of `T` (`f64`/`f32` in `[0, 1)`; integers over the
    /// full domain; `bool` fair).
    #[inline]
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniform value from `range` (half-open or inclusive).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded internally).
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step; used for seed expansion and substream derivation.
#[inline]
pub fn split_mix_64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix_64, Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded by SplitMix64 expansion of a 64-bit seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
                split_mix_64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_bounds_and_uniformity() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.random_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_500..11_500).contains(&c), "bucket count {c}");
        }
        for _ in 0..1000 {
            let v = rng.random_range(5..=7u64);
            assert!((5..=7).contains(&v));
        }
        assert_eq!(rng.random_range(3..4usize), 3);
        assert_eq!(rng.random_range(9..=9u64), 9);
    }

    #[test]
    fn full_u64_inclusive_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.random_range(5..5usize);
    }

    #[test]
    fn works_through_mut_ref() {
        fn take(mut rng: impl Rng) -> u64 {
            rng.next_u64()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = take(&mut rng);
        let b = take(&mut rng);
        assert_ne!(a, b);
    }
}

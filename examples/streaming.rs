//! Streaming CVOPT: build a variance-aware stratified sample in ONE pass
//! over arriving rows (no offline statistics pass), then answer group-by
//! queries from it. Implements the paper's §8 future-work item (3).
//!
//! Run with: `cargo run --release --example streaming`

use cvopt_core::sample::MaterializedSample;
use cvopt_core::{StreamingConfig, StreamingSampler};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::{sql, KeyAtom};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Simulate a stream by replaying the rows of a synthetic table.
    let table = generate_openaq(&OpenAqConfig::with_rows(300_000));
    let country = table.column_by_name("country")?;
    let value = table.column_by_name("value")?;

    let mut sampler = StreamingSampler::new(
        1,
        StreamingConfig { budget: 3_000, epoch: 20_000, seed: 5, ..Default::default() },
    );
    for row in 0..table.num_rows() {
        let key = [KeyAtom::Str(match country.value(row) {
            cvopt_table::Value::Str(s) => s,
            _ => unreachable!("country is a string column"),
        })];
        sampler.offer(&key, &[value.f64_at(row).expect("numeric value")], row as u32);
    }
    println!(
        "stream: {} rows -> {} strata, {} sampled rows held",
        sampler.arrivals(),
        sampler.num_strata(),
        sampler.held()
    );

    // Materialize the streamed sample and answer a query from it.
    let strata = sampler.finish();
    let mut rows = Vec::new();
    let mut weights = Vec::new();
    for s in &strata {
        for &r in &s.rows {
            rows.push(r);
            weights.push(s.weight);
        }
    }
    let sample = MaterializedSample::from_rows(&table, rows, weights);

    let query = sql::compile("SELECT country, AVG(value) FROM t GROUP BY country")?;
    let truth = &query.execute(&table)?[0];
    let approx = cvopt_core::estimate::estimate_single(&sample, &query)?;

    let mut worst: f64 = 0.0;
    let mut mean = 0.0;
    for (key, tv) in truth.iter() {
        let est = approx.value(key, 0).unwrap_or(f64::NAN);
        let err = ((est - tv[0]) / tv[0]).abs();
        worst = worst.max(err);
        mean += err;
    }
    mean /= truth.num_groups() as f64;
    println!(
        "one-pass sample answers AVG(value) per country: mean err {:.2}%, max err {:.2}% \
         over {} groups",
        100.0 * mean,
        100.0 * worst,
        truth.num_groups()
    );
    Ok(())
}

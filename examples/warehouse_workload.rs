//! Workload-driven sampling (paper §4.3): derive per-aggregation-group
//! weights from a query workload (the paper's Student example, Tables 1–3)
//! and build a sample tuned to it.
//!
//! Run with: `cargo run --release --example warehouse_workload`

use cvopt_core::{CvOptSampler, SamplingProblem, Workload, WorkloadQuery};
use cvopt_datagen::student_table;
use cvopt_table::{CmpOp, Predicate};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = student_table();
    println!("Student table ({} rows):", table.num_rows());
    for row in 0..table.num_rows() {
        println!("  {:?}", table.row(row));
    }

    // The paper's workload (Table 2): A ×20, B ×10, C ×15.
    let mut workload = Workload::new();
    workload.push(WorkloadQuery::new(&["major"], &["age", "gpa"], 20));
    workload.push(WorkloadQuery::new(&["college"], &["age", "sat"], 10));
    workload.push(WorkloadQuery::new(&["major"], &["gpa"], 15).with_predicate(Predicate::cmp(
        "college",
        CmpOp::Eq,
        "Science",
    )));

    // Deduce aggregation-group frequencies (paper Table 3) → weights.
    let specs = workload.derive_specs(&table)?;
    println!("\nDerived aggregation-group weights:");
    for spec in &specs {
        let dims: Vec<String> = spec.group_by.iter().map(|e| e.display_name()).collect();
        println!("  GROUP BY {}", dims.join(", "));
        for agg in &spec.aggregates {
            let mut entries: Vec<String> = agg
                .group_weights
                .iter()
                .map(|(k, w)| {
                    let key: Vec<String> = k.iter().map(|a| a.to_string()).collect();
                    format!("{}={w}", key.join("|"))
                })
                .collect();
            entries.sort();
            println!("    {}: {}", agg.column.display_name(), entries.join(", "));
        }
    }

    // Sample 4 of the 8 rows, optimally for this workload.
    let problem = SamplingProblem::multi(specs, 4);
    let outcome = CvOptSampler::new(problem).with_seed(1).sample(&table)?;
    println!("\nAllocation over the finest stratification (major × college):");
    for (key, size) in outcome.plan.strata_keys.iter().zip(&outcome.plan.allocation.sizes) {
        let k: Vec<String> = key.iter().map(|a| a.to_string()).collect();
        println!("  {:<22} -> {} rows", k.join("|"), size);
    }
    Ok(())
}

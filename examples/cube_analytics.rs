//! Cube analytics (paper §4.1): one CVOPT sample jointly optimized for all
//! grouping sets of `GROUP BY country, parameter WITH CUBE`, answering the
//! full cube approximately.
//!
//! Run with: `cargo run --release --example cube_analytics`

use cvopt_core::{CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::relative_errors_all;
use cvopt_table::sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = generate_openaq(&OpenAqConfig::with_rows(150_000));

    // One spec per cube grouping set: (country, parameter), (country),
    // (parameter), ().
    let specs = QuerySpec::group_by(&["country", "parameter"]).aggregate("value").cube();
    println!("cube expands to {} grouping sets", specs.len());
    let problem = SamplingProblem::multi(specs, table.num_rows() / 100);
    let outcome = CvOptSampler::new(problem).with_seed(3).sample(&table)?;
    println!("sample: {} rows over {} strata", outcome.sample.len(), outcome.plan.num_strata());

    let query = sql::compile(
        "SELECT country, parameter, SUM(value) FROM openaq \
         GROUP BY country, parameter WITH CUBE",
    )?;
    let truth = query.execute(&table)?;
    let est = cvopt_core::estimate::estimate(&outcome.sample, &query)?;

    println!("\nper-grouping-set accuracy:");
    for (t, e) in truth.iter().zip(&est) {
        let errors = relative_errors_all(std::slice::from_ref(t), std::slice::from_ref(e), 0.0);
        let mean = errors.iter().sum::<f64>() / errors.len().max(1) as f64;
        let max = errors.iter().cloned().fold(0.0f64, f64::max);
        let label =
            if t.grouping.is_empty() { "(full table)".to_string() } else { t.grouping.join(", ") };
        println!(
            "  {:<24} {:>4} groups  avg {:>6.2}%  max {:>6.2}%",
            label,
            t.num_groups(),
            100.0 * mean,
            100.0 * max
        );
    }

    // Show the coarsest cell: the full-table SUM.
    let exact_total = truth.last().expect("cube has sets").values[0][0];
    let approx_total = est.last().expect("cube has sets").values[0][0];
    println!(
        "\nfull-table SUM(value): exact {exact_total:.1}, approx {approx_total:.1} \
         ({:+.3}%)",
        100.0 * (approx_total - exact_total) / exact_total
    );
    Ok(())
}

//! Error bars on approximate answers: estimate per-group means *with
//! standard errors and 95% confidence intervals* from a CVOPT sample
//! (stratified domain estimation — see `cvopt_core::confidence`).
//!
//! Run with: `cargo run --release --example error_bars`

use cvopt_core::{budget_for_rate, CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::{sql, ScalarExpr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = generate_openaq(&OpenAqConfig::with_rows(200_000));

    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["parameter"]).aggregate("value"),
        budget_for_rate(&table, 0.01)?,
    );
    let outcome = CvOptSampler::new(problem).with_seed(11).sample(&table)?;
    println!("1% CVOPT sample: {} rows\n", outcome.sample.len());

    let estimates = cvopt_core::estimate_avg_with_error(
        &outcome.sample,
        &[ScalarExpr::col("parameter")],
        &ScalarExpr::col("value"),
        None,
    )?;

    // Ground truth for comparison.
    let truth =
        sql::run(&table, "SELECT parameter, AVG(value) FROM t GROUP BY parameter")?.remove(0);

    println!(
        "{:<10} {:>10} {:>22} {:>8} {:>10} {:>8}",
        "parameter", "estimate", "95% CI", "est. CV", "truth", "covered"
    );
    let mut covered = 0;
    for e in &estimates {
        let (lo, hi) = e.ci95();
        let t = truth.value(&e.key, 0).unwrap_or(f64::NAN);
        let inside = t >= lo && t <= hi;
        covered += u32::from(inside);
        println!(
            "{:<10} {:>10.3} [{:>9.3}, {:>9.3}] {:>7.2}% {:>10.3} {:>8}",
            e.key[0].to_string(),
            e.estimate,
            lo,
            hi,
            100.0 * e.cv,
            t,
            if inside { "yes" } else { "NO" }
        );
    }
    println!("\n{covered}/{} intervals cover the truth (nominal 95%)", estimates.len());
    Ok(())
}

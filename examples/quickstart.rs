//! Quickstart: register a table with the [`Engine`], answer a group-by
//! query exactly and approximately through one SQL entry point, and see the
//! prepared-sample cache at work.
//!
//! Run with: `cargo run --release --example quickstart`

use cvopt_core::{Engine, QueryMode};
use cvopt_table::{DataType, TableBuilder, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A table of sensor readings: three countries with very different
    //    value distributions and sizes.
    let mut builder =
        TableBuilder::new(&[("country", DataType::Str), ("value", DataType::Float64)]);
    for i in 0..200_000u32 {
        let (country, value) = match i % 100 {
            0 => ("NO", 500.0 + (i % 977) as f64),    // rare, wild
            1..=20 => ("VN", 80.0 + (i % 13) as f64), // mid-size, calm
            _ => ("US", 10.0 + (i % 7) as f64 * 0.1), // huge, very calm
        };
        builder.push_row(&[Value::str(country), Value::Float64(value)])?;
    }

    // 2. A session: catalog + prepared-sample cache. The default sampling
    //    rate is the paper's 1%.
    let mut engine = Engine::new().with_seed(42);
    engine.register("sensors", builder.finish());

    let sql = "SELECT country, AVG(value) FROM sensors GROUP BY country";

    // 3. Exact answer (full scan) and approximate answer (1% CVOPT sample,
    //    prepared on first use) through the same entry point.
    let exact = engine.query(sql, QueryMode::Exact)?;
    let approx = engine.query(sql, QueryMode::Approximate)?;
    println!("approximate plan: {}", approx.report.to_line());

    println!("\n{:<8} {:>12} {:>12} {:>8}", "country", "exact", "approx", "err");
    for (key, exact_vals) in exact.results[0].iter() {
        let e = exact_vals[0];
        let a = approx.results[0].value(key, 0).unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>7.3}%",
            key[0].to_string(),
            e,
            a,
            100.0 * (a - e).abs() / e
        );
    }

    // 4. A second approximate query with a *new* predicate reuses the
    //    cached sample — no second statistics pass over the base table.
    let filtered = engine.query(
        "SELECT country, AVG(value) FROM sensors WHERE value > 50 GROUP BY country",
        QueryMode::Approximate,
    )?;
    println!("\nfiltered plan:    {}", filtered.report.to_line());
    println!("statistics passes run by the engine: {}", engine.stats_passes());
    Ok(())
}

//! Quickstart: build a table, draw a CVOPT sample, answer a group-by query
//! approximately, and compare with the exact answer.
//!
//! Run with: `cargo run --release --example quickstart`

use cvopt_core::estimate::estimate_single;
use cvopt_core::{budget_for_rate, CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_table::{sql, DataType, TableBuilder, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A table of sensor readings: three countries with very different
    //    value distributions and sizes.
    let mut builder =
        TableBuilder::new(&[("country", DataType::Str), ("value", DataType::Float64)]);
    for i in 0..200_000u32 {
        let (country, value) = match i % 100 {
            0 => ("NO", 500.0 + (i % 977) as f64),    // rare, wild
            1..=20 => ("VN", 80.0 + (i % 13) as f64), // mid-size, calm
            _ => ("US", 10.0 + (i % 7) as f64 * 0.1), // huge, very calm
        };
        builder.push_row(&[Value::str(country), Value::Float64(value)])?;
    }
    let table = builder.finish();

    // 2. Draw a 1% CVOPT sample optimized for AVG(value) GROUP BY country.
    let problem = SamplingProblem::single(
        QuerySpec::group_by(&["country"]).aggregate("value"),
        budget_for_rate(&table, 0.01),
    );
    let outcome = CvOptSampler::new(problem).with_seed(42).sample(&table)?;
    println!(
        "sampled {} of {} rows ({} strata)",
        outcome.sample.len(),
        table.num_rows(),
        outcome.plan.num_strata()
    );
    for (key, size) in outcome.plan.strata_keys.iter().zip(&outcome.plan.allocation.sizes) {
        println!("  stratum {:>2}: {} rows", key[0].to_string(), size);
    }

    // 3. Answer the query from the sample and from the full data.
    let query = sql::compile("SELECT country, AVG(value) FROM t GROUP BY country")?;
    let approx = estimate_single(&outcome.sample, &query)?;
    let exact = &query.execute(&table)?[0];

    println!("\n{:<8} {:>12} {:>12} {:>8}", "country", "exact", "approx", "err");
    for (key, exact_vals) in exact.iter() {
        let e = exact_vals[0];
        let a = approx.value(key, 0).unwrap_or(f64::NAN);
        println!(
            "{:<8} {:>12.4} {:>12.4} {:>7.3}%",
            key[0].to_string(),
            e,
            a,
            100.0 * (a - e).abs() / e
        );
    }
    Ok(())
}

//! Serving session: one long-lived [`Engine`] answering a mixed
//! exact/approximate workload over two registered tables from a single
//! prepared-sample cache — the API shape the future async serving layer
//! will wrap.
//!
//! Run with: `cargo run --release --example serving_session`

use cvopt_core::{Engine, QueryMode};
use cvopt_datagen::{generate_bikes, generate_openaq, BikesConfig, OpenAqConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut engine = Engine::new().with_seed(7).with_auto_threshold(50_000);
    engine.register("openaq", generate_openaq(&OpenAqConfig::with_rows(150_000)));
    engine.register("bikes", generate_bikes(&BikesConfig::with_rows(80_000)));
    println!("catalog: {:?}\n", engine.table_names());

    // A session workload: repeated groupings, shifting predicates, both
    // tables, some queries pinned exact and the rest left to Auto routing.
    let workload: &[(&str, QueryMode)] = &[
        (
            "SELECT country, parameter, AVG(value) FROM openaq GROUP BY country, parameter",
            QueryMode::Auto,
        ),
        // Same grouping + value column, new predicate: served from cache.
        (
            "SELECT country, parameter, AVG(value) FROM openaq \
             WHERE HOUR(local_time) BETWEEN 6 AND 18 GROUP BY country, parameter",
            QueryMode::Auto,
        ),
        // Another predicate variant over the same prepared sample.
        (
            "SELECT country, parameter, SUM(value) FROM openaq \
             WHERE latitude > 0 GROUP BY country, parameter",
            QueryMode::Auto,
        ),
        // Different table → its own prepared sample.
        (
            "SELECT from_station_id, AVG(trip_duration) FROM bikes \
             GROUP BY from_station_id",
            QueryMode::Auto,
        ),
        // Repeat on bikes: cache hit again.
        (
            "SELECT from_station_id, AVG(trip_duration) FROM bikes \
             WHERE age > 30 GROUP BY from_station_id",
            QueryMode::Auto,
        ),
        // An audit query the operator wants exact, same session.
        ("SELECT country, COUNT(*) FROM openaq GROUP BY country", QueryMode::Exact),
    ];

    for (i, (statement, mode)) in workload.iter().enumerate() {
        // EXPLAIN first: what will this cost? (Never scans or samples.)
        let plan = engine.explain_mode(statement, *mode)?;
        println!("Q{i}: {statement}");
        println!("  plan:   {}", plan.to_line());
        let answer = engine.query(statement, *mode)?;
        println!("  ran:    {}", answer.report.to_line());
        println!("  groups: {}", answer.results[0].num_groups());
        if let Some(conf) = answer.confidence.first() {
            let widest = conf
                .estimates
                .iter()
                .max_by(|a, b| a.std_error.total_cmp(&b.std_error))
                .expect("at least one group");
            let (lo, hi) = widest.ci95();
            let key: Vec<String> = widest.key.iter().map(|a| a.to_string()).collect();
            println!(
                "  widest 95% CI: {} = {:.3} [{:.3}, {:.3}]",
                key.join("|"),
                widest.estimate,
                lo,
                hi
            );
        }
        println!();
    }

    println!(
        "session summary: {} queries, {} statistics passes, {} cached samples",
        workload.len(),
        engine.stats_passes(),
        engine.cached_samples()
    );
    Ok(())
}

//! Air-quality scenario (the paper's OpenAQ workload): compare Uniform,
//! CS, RL and CVOPT on query AQ3 — average measurement per
//! (country, parameter, unit) — from a 1% sample.
//!
//! Run with: `cargo run --release --example air_quality`

use cvopt_baselines::figure_methods;
use cvopt_core::SamplingProblem;
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_eval::metrics::{relative_errors_all, ErrorSummary};
use cvopt_eval::queries;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = generate_openaq(&OpenAqConfig::with_rows(300_000));
    let pq = queries::aq3();
    let truth = pq.query.execute(&table)?;
    println!("OpenAQ: {} rows, AQ3 has {} groups", table.num_rows(), truth[0].num_groups());

    let budget = table.num_rows() / 100; // 1%
    let problem = SamplingProblem::multi(pq.specs.clone(), budget);

    println!("\n{:<10} {:>10} {:>10} {:>10}", "method", "max err", "avg err", "median");
    for method in figure_methods() {
        let mut max = 0.0;
        let mut mean = 0.0;
        let mut median = 0.0;
        let reps = 3;
        for seed in 0..reps {
            let sample = method.draw(&table, &problem, seed)?;
            let est = cvopt_core::estimate::estimate(&sample, &pq.query)?;
            let s = ErrorSummary::from_errors(&relative_errors_all(&truth, &est, 0.0));
            max += s.max;
            mean += s.mean;
            median += s.median;
        }
        let k = reps as f64;
        println!(
            "{:<10} {:>9.2}% {:>9.2}% {:>9.2}%",
            method.name(),
            100.0 * max / k,
            100.0 * mean / k,
            100.0 * median / k
        );
    }
    println!("\n(the paper's Fig. 1 shape: Uniform ~100%, CS/RL tens of %, CVOPT ~11%)");
    Ok(())
}

//! Bike-share scenario with *weighted aggregates* (paper §6.2): one sample,
//! two aggregates (rider age, trip duration), and a user-controlled
//! priority knob between them.
//!
//! Run with: `cargo run --release --example bike_share`

use cvopt_core::estimate::estimate_single;
use cvopt_core::{AggColumn, CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_bikes, BikesConfig};
use cvopt_eval::metrics::relative_errors;
use cvopt_table::{sql, Table};

fn avg_errors(table: &Table, w_age: f64, w_duration: f64) -> (f64, f64) {
    let spec = QuerySpec::group_by(&["from_station_id"])
        .aggregate_column(AggColumn::new("age").with_weight(w_age))
        .aggregate_column(AggColumn::new("trip_duration").with_weight(w_duration));
    let problem = SamplingProblem::single(spec, table.num_rows() / 20); // 5%
    let outcome = CvOptSampler::new(problem).with_seed(7).sample(table).expect("sampling");

    let query = sql::compile(
        "SELECT from_station_id, AVG(age) agg1, AVG(trip_duration) agg2 \
         FROM bikes WHERE age > 0 GROUP BY from_station_id",
    )
    .expect("valid SQL");
    let truth = &query.execute(table).expect("exact run")[0];
    let est = estimate_single(&outcome.sample, &query).expect("estimate");
    let errs = relative_errors(truth, &est, 0.0);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    (mean(&errs[0]), mean(&errs[1]))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let table = generate_bikes(&BikesConfig::with_rows(200_000));
    println!("Bikes: {} rows; 5% CVOPT samples, per-aggregate weights\n", table.num_rows());
    println!("{:>12} {:>14} {:>14}", "w_age/w_dur", "AVG(age) err", "AVG(dur) err");
    for (w1, w2) in [(0.1, 0.9), (0.5, 0.5), (0.9, 0.1)] {
        let (e1, e2) = avg_errors(&table, w1, w2);
        println!("{:>12} {:>13.3}% {:>13.3}%", format!("{w1}/{w2}"), 100.0 * e1, 100.0 * e2);
    }
    println!(
        "\n(raising an aggregate's weight lowers its error at the other's expense — paper Fig. 2)"
    );
    Ok(())
}

//! Serving: the sampling service end to end — start a server, register a
//! table over HTTP, query it exactly and approximately, read the plan and
//! the counters.
//!
//! Prints each exchange as the equivalent `curl` invocation followed by
//! the response body, which is exactly the transcript in the README's
//! "Serving" section (and the one the CI smoke job replays against
//! `cvopt-served`).
//!
//! Run with: `cargo run --release --example serving`

use cvopt_core::Engine;
use cvopt_serve::{client, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The same shape `cvopt-served --port 0 --workers 2 --threads 2` binds.
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_capacity: 16,
        thread_budget: 2,
        ..ServerConfig::default()
    };
    let server = Server::start(Engine::new().with_seed(7), config)?;
    let addr = server.addr();
    println!("# cvopt-served listening on http://{addr}\n");

    let show = |method: &str, path: &str, body: Option<&str>| -> Result<String, std::io::Error> {
        match body {
            Some(b) => println!("$ curl -s -X {method} 'localhost:{}{path}' -d '{b}'", addr.port()),
            None => println!("$ curl -s 'localhost:{}{path}'", addr.port()),
        }
        let (status, text) = client::request_parsed(addr, method, path, body)?;
        assert_eq!(status, 200, "{text}");
        println!("{text}\n");
        Ok(text)
    };

    // 1. Liveness.
    show("GET", "/healthz", None)?;

    // 2. Register a generated table (CSV uploads work the same way, with
    //    "csv" + "columns" instead of "generated" + "rows").
    show("POST", "/tables", Some(r#"{"name":"openaq","generated":"openaq","rows":20000}"#))?;

    // 3. First approximate query: cache miss, one statistics pass, CIs
    //    attached to the AVG aggregate.
    let query =
        r#"{"sql":"SELECT country, AVG(value) FROM openaq GROUP BY country","mode":"approximate"}"#;
    show("POST", "/query", Some(query))?;

    // 4. The repeat is answered from the prepared-sample cache: same
    //    bytes except the plan report now says "cache_hit":true, and the
    //    server ran zero additional scans.
    show("POST", "/query", Some(query))?;

    // 5. The plan alone, without executing.
    show(
        "GET",
        "/explain?sql=SELECT%20country,%20AVG(value)%20FROM%20openaq%20GROUP%20BY%20country&mode=approximate",
        None,
    )?;

    // 6. Counters: one pass, one miss, one hit — the cache economy over
    //    the wire.
    let stats = show("GET", "/stats", None)?;
    let parsed = cvopt_serve::Json::parse(&stats)?;
    assert_eq!(parsed.get("stats_passes").and_then(|v| v.as_u64()), Some(1));
    assert_eq!(parsed.get("cache_hits").and_then(|v| v.as_u64()), Some(1));

    server.shutdown();
    println!("# server drained and stopped");
    Ok(())
}

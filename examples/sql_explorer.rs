//! SQL explorer: run ad-hoc SQL (exact and sampled) against the synthetic
//! datasets from the command line.
//!
//! ```text
//! cargo run --release --example sql_explorer -- \
//!     "SELECT country, parameter, AVG(value) FROM openaq \
//!      WHERE HOUR(local_time) BETWEEN 6 AND 18 GROUP BY country, parameter"
//! ```
//!
//! The `FROM` table may be `openaq` or `bikes`. Without an argument a demo
//! query runs. The query is answered exactly AND from a 1% CVOPT sample so
//! you can eyeball the estimation quality.

use cvopt_core::{CvOptSampler, QuerySpec, SamplingProblem};
use cvopt_datagen::{generate_bikes, generate_openaq, BikesConfig, OpenAqConfig};
use cvopt_table::sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let statement = std::env::args().nth(1).unwrap_or_else(|| {
        "SELECT country, parameter, AVG(value), COUNT(*) FROM openaq \
         WHERE HOUR(local_time) BETWEEN 6 AND 18 GROUP BY country, parameter"
            .to_string()
    });

    let parsed = sql::parse(&statement)?;
    let table = match parsed.table.to_ascii_lowercase().as_str() {
        "openaq" => generate_openaq(&OpenAqConfig::with_rows(120_000)),
        "bikes" => generate_bikes(&BikesConfig::with_rows(120_000)),
        other => {
            eprintln!("unknown table {other}; use openaq or bikes");
            std::process::exit(2);
        }
    };
    let query = parsed.into_query()?;

    println!("-- exact ({} rows scanned) --", table.num_rows());
    let exact = query.execute(&table)?;
    print!("{}", exact[0].to_text());

    // Build a 1% sample optimized for this query's grouping/aggregates.
    let mut spec = QuerySpec::group_by_exprs(query.group_by.clone());
    for agg in &query.aggregates {
        if let Some(input) = &agg.input {
            if !spec.aggregates.iter().any(|a| a.column.display_name() == input.display_name()) {
                spec = spec.aggregate_column(cvopt_core::AggColumn::from_expr(input.clone()));
            }
        }
    }
    if spec.aggregates.is_empty() {
        println!("\n(no value column to optimize for; skipping the sampled run)");
        return Ok(());
    }
    let specs = if query.cube { spec.cube() } else { vec![spec] };
    let problem = SamplingProblem::multi(specs, (table.num_rows() / 100).max(1));
    let outcome = CvOptSampler::new(problem).with_seed(11).sample(&table)?;

    println!("\n-- approximate (1% CVOPT sample: {} rows) --", outcome.sample.len());
    let approx = cvopt_core::estimate::estimate(&outcome.sample, &query)?;
    print!("{}", approx[0].to_text());
    Ok(())
}

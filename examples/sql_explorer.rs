//! SQL explorer: run ad-hoc SQL (exact and sampled) against the synthetic
//! datasets from the command line, through the [`Engine`] session API.
//!
//! ```text
//! cargo run --release --example sql_explorer -- \
//!     "SELECT country, parameter, AVG(value) FROM openaq \
//!      WHERE HOUR(local_time) BETWEEN 6 AND 18 GROUP BY country, parameter"
//! ```
//!
//! The `FROM` table may be `openaq` or `bikes`; both are registered in the
//! engine's catalog. Without an argument a demo query runs. The query is
//! answered exactly AND from a 1% CVOPT sample so you can eyeball the
//! estimation quality, with the engine's EXPLAIN report for each plan.

use cvopt_core::{Engine, QueryMode};
use cvopt_datagen::{generate_bikes, generate_openaq, BikesConfig, OpenAqConfig};
use cvopt_table::sql;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let statement = std::env::args().nth(1).unwrap_or_else(|| {
        "SELECT country, parameter, AVG(value), COUNT(*) FROM openaq \
         WHERE HOUR(local_time) BETWEEN 6 AND 18 GROUP BY country, parameter"
            .to_string()
    });

    // Generate only the dataset the statement's FROM clause references.
    let from = sql::parse(&statement)?.table.to_ascii_lowercase();
    let mut engine = Engine::new().with_seed(11);
    match from.as_str() {
        "openaq" => engine.register("openaq", generate_openaq(&OpenAqConfig::with_rows(120_000))),
        "bikes" => engine.register("bikes", generate_bikes(&BikesConfig::with_rows(120_000))),
        other => {
            eprintln!("unknown table {other}; use openaq or bikes");
            std::process::exit(2);
        }
    };

    let exact = engine.query(&statement, QueryMode::Exact)?;
    println!("-- exact: {} --", exact.report.to_line());
    print!("{}", exact.results[0].to_text());

    match engine.query(&statement, QueryMode::Approximate) {
        Ok(approx) => {
            println!("\n-- approximate: {} --", approx.report.to_line());
            print!("{}", approx.results[0].to_text());
            for conf in &approx.confidence {
                let name = &approx.results[0].agg_names[conf.agg_index];
                println!("\n95% confidence intervals for {name}:");
                for est in &conf.estimates {
                    let (lo, hi) = est.ci95();
                    let key: Vec<String> = est.key.iter().map(|a| a.to_string()).collect();
                    println!(
                        "  {:<24} {:>10.4} [{:>10.4}, {:>10.4}]",
                        key.join("|"),
                        est.estimate,
                        lo,
                        hi
                    );
                }
            }
        }
        Err(e) => println!("\n(no sampled run: {e})"),
    }
    Ok(())
}

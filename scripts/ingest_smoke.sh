#!/usr/bin/env bash
# Smoke-test the ingest path: replay the committed ingest log
# (crates/serve/golden/ingest_log.jsonl — 1000 seeded OpenAQ rows,
# regenerate with `openaq-rows --rows 21000 --start 20000`) against
# cvopt-served **twice with different batch boundaries**, and insist the
# runs are byte-identical to each other and to the committed goldens.
#
# This is the serving layer's replay-determinism contract: a windowed
# table under `POST /ingest` answers `/query` with the same bytes no
# matter how the stream was chopped into batches, because the engine
# maintains its durable samples incrementally to exactly the state a
# from-scratch preparation would reach. Each run registers the 20 000-row
# smoke table with a retention window, seeds two query shapes,
# consolidates them with `/reoptimize` into a maintained sample, replays
# the log in two batches, then rotates the window — diffing the final
# `/query`, `/rotate`, and `/stats` bytes.
#
# Usage:
#   scripts/ingest_smoke.sh [path/to/cvopt-served] [--update]
#
# --update rewrites the goldens from the first replay instead of diffing.
set -euo pipefail

cd "$(dirname "$0")/.."
. scripts/smoke_lib.sh

BIN=target/release/cvopt-served
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    *) BIN="$arg" ;;
  esac
done
GOLDEN=crates/serve/golden
LOG=$GOLDEN/ingest_log.jsonl
smoke_init

QUERY='{"sql":"SELECT country, AVG(value) FROM openaq GROUP BY country","mode":"approximate"}'
QUERY2='{"sql":"SELECT parameter, AVG(value) FROM openaq GROUP BY parameter","mode":"approximate"}'
# Midpoint of the 21 000-row fixture's local_time range (1420075485 ..
# 1546295080) — retires a fixed, nonzero slice of the window.
CUTOFF=1483185282

# replay <outdir> <split> — one full ingest session. <split> is the line
# count of the first batch; the second batch is the rest of the log. Both
# runs ingest the same 1000 rows in the same order and the same number of
# batches, so every post-replay response must be byte-identical.
replay() {
  local dir="$1" split="$2" base rows
  mkdir -p "$dir"
  launch_bg "$dir/server.log" "$BIN" --port 0 --workers 2 --threads 2 --queue 16 --seed 7
  base="http://$(scrape_addr "$dir/server.log")"
  echo "cvopt-served up on $base (first batch: $split rows)"

  curl -sS -X POST "$base/tables" \
    -d '{"name":"openaq","generated":"openaq","rows":20000,"shards":2,"window":"local_time"}' \
    >"$dir/tables_windowed.json"
  # Seed two query shapes and consolidate them into one durable — and,
  # on a windowed table, incrementally maintained — sample.
  curl -sS -X POST "$base/query" -d "$QUERY"  >/dev/null
  curl -sS -X POST "$base/query" -d "$QUERY2" >/dev/null
  curl -sS -X POST "$base/reoptimize" -d '{"table":"openaq"}' >"$dir/reoptimize.json"

  rows=$(sed -n "1,${split}p" "$LOG" | paste -sd, -)
  curl -sS -X POST "$base/ingest" -d "{\"table\":\"openaq\",\"rows\":[$rows]}" >"$dir/ingest_1.json"
  rows=$(sed -n "$((split + 1)),\$p" "$LOG" | paste -sd, -)
  curl -sS -X POST "$base/ingest" -d "{\"table\":\"openaq\",\"rows\":[$rows]}" >"$dir/ingest_2.json"
  grep -q '"error"' "$dir/ingest_1.json" "$dir/ingest_2.json" && {
    echo "MISMATCH: ingest failed:"; cat "$dir/ingest_1.json" "$dir/ingest_2.json"; exit 1; }

  curl -sS -X POST "$base/query" -d "$QUERY" >"$dir/query_ingested.json"
  curl -sS -X POST "$base/rotate" -d "{\"table\":\"openaq\",\"cutoff\":$CUTOFF}" >"$dir/rotate.json"
  curl -sS -X POST "$base/query" -d "$QUERY" >"$dir/query_rotated.json"
  curl -sS "$base/stats" >"$dir/stats_ingest.json"

  kill "${SMOKE_PIDS[${#SMOKE_PIDS[@]}-1]}" 2>/dev/null || true
}

# Everything after the replay must not depend on where the batch boundary
# fell (the per-batch acks legitimately differ, so they are not compared).
FILES="tables_windowed reoptimize query_ingested rotate query_rotated stats_ingest"

replay "$OUT/a" 500
replay "$OUT/b" 1

STATUS=0
for f in $FILES; do
  if ! diff -u "$OUT/a/$f.json" "$OUT/b/$f.json"; then
    echo "MISMATCH between batch splits: $f"
    STATUS=1
  fi
done
[ "$STATUS" = 0 ] || { echo "replay is batch-boundary DEPENDENT"; exit "$STATUS"; }
echo "both replays byte-identical across batch splits"

if [ "$UPDATE" = 1 ]; then
  for f in $FILES; do cp "$OUT/a/$f.json" "$GOLDEN/$f.json"; done
  echo "goldens updated in $GOLDEN"
  exit 0
fi

# shellcheck disable=SC2086
diff_golden "$GOLDEN" "$OUT/a" $FILES && echo "ingest smoke OK"

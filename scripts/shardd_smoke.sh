#!/usr/bin/env bash
# Smoke-test the distributed path: two cvopt-shardd shard servers on
# ephemeral ports, a cvopt-served coordinator registering the smoke table
# *remotely* across them, and the serve_smoke.sh transcript replayed on
# top. The determinism contract says the network must be invisible in the
# bytes: after normalizing the one field that reports the topology
# (`remote_shards`) and the process-wide network counters in /stats, every
# response must byte-match the committed local goldens in
# crates/serve/golden/.
#
# Usage:
#   scripts/shardd_smoke.sh [--served path] [--shardd path]
set -euo pipefail

cd "$(dirname "$0")/.."
. scripts/smoke_lib.sh

SERVED=target/release/cvopt-served
SHARDD=target/release/cvopt-shardd
while [ $# -gt 0 ]; do
  case "$1" in
    --served) SERVED="$2"; shift 2 ;;
    --shardd) SHARDD="$2"; shift 2 ;;
    *) echo "unknown argument '$1'"; exit 2 ;;
  esac
done
GOLDEN=crates/serve/golden
smoke_init

# ── Two shard servers on ephemeral ports ────────────────────────────────
launch_bg "$OUT/shardd_a.log" "$SHARDD" --port 0 --workers 2
ADDR_A=$(scrape_addr "$OUT/shardd_a.log")
launch_bg "$OUT/shardd_b.log" "$SHARDD" --port 0 --workers 2
ADDR_B=$(scrape_addr "$OUT/shardd_b.log")
echo "cvopt-shardd pair up on $ADDR_A and $ADDR_B"

# ── The coordinator, configured exactly like serve_smoke.sh ─────────────
launch_bg "$OUT/server.log" "$SERVED" --port 0 --workers 2 --threads 2 --queue 16 --seed 7
BASE="http://$(scrape_addr "$OUT/server.log")"
echo "cvopt-served up on $BASE"

# The serve_smoke transcript, with the table's two shards registered over
# the wire (one per shard server) instead of in-process.
QUERY='{"sql":"SELECT country, AVG(value) FROM openaq GROUP BY country","mode":"approximate"}'
EXPLAIN='/explain?sql=SELECT%20country,%20AVG(value)%20FROM%20openaq%20GROUP%20BY%20country&mode=approximate'

curl -sS "$BASE/healthz" >"$OUT/healthz.json"
curl -sS -X POST "$BASE/tables" \
  -d "{\"name\":\"openaq\",\"generated\":\"openaq\",\"rows\":20000,\"shards\":2,\"remote\":[\"$ADDR_A\",\"$ADDR_B\"]}" \
  >"$OUT/tables.json"
curl -sS -X POST "$BASE/query" -d "$QUERY" >"$OUT/query_miss.json"
curl -sS -X POST "$BASE/query" -d "$QUERY" >"$OUT/query_hit.json"
curl -sS "$BASE$EXPLAIN"                   >"$OUT/explain.json"
curl -sS "$BASE/stats"                     >"$OUT/stats.json"

# The traffic really went over the wire: the coordinator's network
# counters must show the registration and the scatter-gather passes.
grep -q '"net_requests":0' "$OUT/stats.json" && {
  echo "MISMATCH: /stats shows no network traffic:"; cat "$OUT/stats.json"; exit 1; }
grep -q '"net_bytes_sent":0' "$OUT/stats.json" && {
  echo "MISMATCH: /stats shows no bytes sent:"; cat "$OUT/stats.json"; exit 1; }

# Normalize the things that legitimately differ from the local run: the
# explain topology fields, and the process-wide network counters. The
# group-by planning reason is topology-dependent too (remote shards intern
# on the serving side, so the plan can't cite local key statistics);
# rewrite it to the local golden's wording.
LOCAL_REASON=$(grep -o '"group_by_reason":"[^"]*"' "$GOLDEN/explain.json" | head -1)
for f in query_miss query_hit explain; do
  sed -i 's/"remote_shards":2/"remote_shards":null/' "$OUT/$f.json"
  sed -i "s/\"group_by_reason\":\"[^\"]*\"/$LOCAL_REASON/" "$OUT/$f.json"
done
sed -i -E 's/"(net_requests|net_retries|net_circuit_opens|net_bytes_sent|net_bytes_received)":[0-9]+/"\1":0/g' \
  "$OUT/stats.json"

diff_golden "$GOLDEN" "$OUT" healthz tables query_miss query_hit explain stats \
  && echo "shardd smoke OK: remote answers are byte-identical to local"

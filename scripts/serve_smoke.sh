#!/usr/bin/env bash
# Smoke-test cvopt-served: launch on an ephemeral port, replay the README
# curl transcript, and diff every response against the committed goldens
# in crates/serve/golden/. Responses are byte-deterministic (pinned seed,
# pinned worker/thread configuration, no clock-dependent headers), so a
# straight `diff` is the whole check.
#
# Usage:
#   scripts/serve_smoke.sh [path/to/cvopt-served] [--update]
#
# --update rewrites the goldens from the live server instead of diffing.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=target/release/cvopt-served
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    *) BIN="$arg" ;;
  esac
done
GOLDEN=crates/serve/golden
OUT=$(mktemp -d)

# The transcript's counters depend on this exact configuration; keep it in
# lockstep with the goldens and the README.
"$BIN" --port 0 --workers 2 --threads 2 --queue 16 --seed 7 >"$OUT/server.log" 2>&1 &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$OUT"' EXIT

PORT=""
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*listening on http:\/\/127\.0\.0\.1:\([0-9]*\).*/\1/p' "$OUT/server.log")
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server exited early:"; cat "$OUT/server.log"; exit 1; }
  sleep 0.1
done
[ -n "$PORT" ] || { echo "server never reported its port:"; cat "$OUT/server.log"; exit 1; }
BASE="http://127.0.0.1:$PORT"
echo "cvopt-served up on $BASE"

QUERY='{"sql":"SELECT country, AVG(value) FROM openaq GROUP BY country","mode":"approximate"}'
EXPLAIN='/explain?sql=SELECT%20country,%20AVG(value)%20FROM%20openaq%20GROUP%20BY%20country&mode=approximate'

curl -sS "$BASE/healthz"                          >"$OUT/healthz.json"
curl -sS -X POST "$BASE/tables" \
  -d '{"name":"openaq","generated":"openaq","rows":20000,"shards":2}' >"$OUT/tables.json"
curl -sS -X POST "$BASE/query" -d "$QUERY"        >"$OUT/query_miss.json"
curl -sS -X POST "$BASE/query" -d "$QUERY"        >"$OUT/query_hit.json"
curl -sS "$BASE$EXPLAIN"                          >"$OUT/explain.json"
curl -sS "$BASE/stats"                            >"$OUT/stats.json"

FILES="healthz tables query_miss query_hit explain stats"
if [ "$UPDATE" = 1 ]; then
  mkdir -p "$GOLDEN"
  for f in $FILES; do cp "$OUT/$f.json" "$GOLDEN/$f.json"; done
  echo "goldens updated in $GOLDEN"
  exit 0
fi

STATUS=0
for f in $FILES; do
  if diff -u "$GOLDEN/$f.json" "$OUT/$f.json"; then
    echo "ok: $f"
  else
    echo "MISMATCH: $f"
    STATUS=1
  fi
done
[ "$STATUS" = 0 ] && echo "serve smoke OK"
exit "$STATUS"

#!/usr/bin/env bash
# Smoke-test cvopt-served: launch on an ephemeral port, replay the README
# curl transcript, and diff every response against the committed goldens
# in crates/serve/golden/. Responses are byte-deterministic (pinned seed,
# pinned worker/thread configuration, no clock-dependent headers), so a
# straight `diff` is the whole check.
#
# Usage:
#   scripts/serve_smoke.sh [path/to/cvopt-served] [--update]
#
# --update rewrites the goldens from the live server instead of diffing.
set -euo pipefail

cd "$(dirname "$0")/.."
. scripts/smoke_lib.sh

BIN=target/release/cvopt-served
UPDATE=0
for arg in "$@"; do
  case "$arg" in
    --update) UPDATE=1 ;;
    *) BIN="$arg" ;;
  esac
done
GOLDEN=crates/serve/golden
smoke_init

# The transcript's counters depend on this exact configuration; keep it in
# lockstep with the goldens and the README.
launch_bg "$OUT/server.log" "$BIN" --port 0 --workers 2 --threads 2 --queue 16 --seed 7
BASE="http://$(scrape_addr "$OUT/server.log")"
echo "cvopt-served up on $BASE"

QUERY='{"sql":"SELECT country, AVG(value) FROM openaq GROUP BY country","mode":"approximate"}'
EXPLAIN='/explain?sql=SELECT%20country,%20AVG(value)%20FROM%20openaq%20GROUP%20BY%20country&mode=approximate'

curl -sS "$BASE/healthz"                          >"$OUT/healthz.json"
curl -sS -X POST "$BASE/tables" \
  -d '{"name":"openaq","generated":"openaq","rows":20000,"shards":2}' >"$OUT/tables.json"
curl -sS -X POST "$BASE/query" -d "$QUERY"        >"$OUT/query_miss.json"
curl -sS -X POST "$BASE/query" -d "$QUERY"        >"$OUT/query_hit.json"
curl -sS "$BASE$EXPLAIN"                          >"$OUT/explain.json"
curl -sS "$BASE/stats"                            >"$OUT/stats.json"

# SQL depth, past the /stats snapshot so the counter bytes above stay in
# lockstep with shardd_smoke.sh (which replays the transcript up to here):
# an EXPLAIN statement through /query, and a fact-to-dimension JOIN.
EXPLAIN_STMT='{"sql":"EXPLAIN SELECT country, AVG(value) FROM openaq GROUP BY country","mode":"approximate"}'
JOIN_QUERY='{"sql":"SELECT region, SUM(value) FROM openaq JOIN regions ON openaq.country = regions.country GROUP BY region","mode":"exact"}'

curl -sS -X POST "$BASE/query" -d "$EXPLAIN_STMT" >"$OUT/query_explain.json"
curl -sS -X POST "$BASE/tables" \
  -d '{"name":"regions","csv":"country,region\nC00,emea\nC01,apac\nC02,amer\nC03,emea\nC04,apac\nC05,amer\n","columns":[["country","str"],["region","str"]]}' \
  >"$OUT/tables_regions.json"
curl -sS -X POST "$BASE/query" -d "$JOIN_QUERY"   >"$OUT/query_join.json"

FILES="healthz tables query_miss query_hit explain stats query_explain tables_regions query_join"
if [ "$UPDATE" = 1 ]; then
  mkdir -p "$GOLDEN"
  for f in $FILES; do cp "$OUT/$f.json" "$GOLDEN/$f.json"; done
  echo "goldens updated in $GOLDEN"
  exit 0
fi

# shellcheck disable=SC2086
diff_golden "$GOLDEN" "$OUT" $FILES && echo "serve smoke OK"

# Shared plumbing for the smoke scripts: background server launch, port
# scraping, and cleanup. Source this after `set -euo pipefail`, then call
# `smoke_init` before launching anything:
#
#   . "$(dirname "$0")/smoke_lib.sh"
#   smoke_init
#   launch_bg "$OUT/server.log" target/release/cvopt-served --port 0 ...
#   ADDR=$(scrape_addr "$OUT/server.log")
#
# Every launched pid is killed and $OUT removed on exit, success or not.

SMOKE_PIDS=()
OUT=""

smoke_init() {
  OUT=$(mktemp -d)
  trap smoke_cleanup EXIT
}

smoke_cleanup() {
  local pid
  for pid in ${SMOKE_PIDS[@]+"${SMOKE_PIDS[@]}"}; do
    kill "$pid" 2>/dev/null || true
  done
  [ -n "$OUT" ] && rm -rf "$OUT"
}

# launch_bg <logfile> <bin> [args...]: start a server in the background,
# logging both streams, and record its pid for cleanup and liveness
# checks.
launch_bg() {
  local log="$1"
  shift
  "$@" >"$log" 2>&1 &
  SMOKE_PIDS+=($!)
}

# scrape_addr <logfile>: poll the log for the "listening on" line and echo
# the host:port. Fails fast if the most recently launched process dies
# before reporting, and after ~10s either way.
scrape_addr() {
  local log="$1" addr="" last_pid="${SMOKE_PIDS[${#SMOKE_PIDS[@]}-1]}"
  for _ in $(seq 1 100); do
    addr=$(sed -n "s/.*listening on \(http:\/\/\)\?\(127\.0\.0\.1:[0-9]*\).*/\2/p" "$log")
    [ -n "$addr" ] && break
    kill -0 "$last_pid" 2>/dev/null || {
      echo "server exited early; $log says:" >&2
      cat "$log" >&2
      exit 1
    }
    sleep 0.1
  done
  [ -n "$addr" ] || {
    echo "server never reported its address; $log says:" >&2
    cat "$log" >&2
    exit 1
  }
  echo "$addr"
}

# diff_golden <goldendir> <outdir> <name>...: byte-diff each <name>.json
# against its golden; prints ok/MISMATCH per file and returns nonzero if
# any differ.
diff_golden() {
  local golden="$1" out="$2" status=0 f
  shift 2
  for f in "$@"; do
    if diff -u "$golden/$f.json" "$out/$f.json"; then
      echo "ok: $f"
    else
      echo "MISMATCH: $f"
      status=1
    fi
  done
  return "$status"
}

//! CVOPT wrapped behind the common [`SamplingMethod`] interface.

use cvopt_core::{CvOptSampler, ExecOptions, MaterializedSample, Norm, Result, SamplingProblem};
use cvopt_table::Table;

use crate::SamplingMethod;

/// CVOPT with the ℓ2 norm (the paper's headline method).
#[derive(Debug, Clone, Copy, Default)]
pub struct CvOptL2 {
    /// Execution options for both passes (default: all cores).
    pub exec: ExecOptions,
}

impl SamplingMethod for CvOptL2 {
    fn name(&self) -> &'static str {
        "CVOPT"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample> {
        let problem = problem.clone().with_norm(Norm::L2);
        let sampler = CvOptSampler::new(problem).with_seed(seed).with_exec(self.exec);
        Ok(sampler.sample(table)?.sample)
    }
}

/// CVOPT-INF: the ℓ∞ (minimax) variant of paper §5.
#[derive(Debug, Clone, Copy, Default)]
pub struct CvOptLInf {
    /// Execution options for both passes (default: all cores).
    pub exec: ExecOptions,
}

impl SamplingMethod for CvOptLInf {
    fn name(&self) -> &'static str {
        "CVOPT-INF"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample> {
        let problem = problem.clone().with_norm(Norm::LInf);
        let sampler = CvOptSampler::new(problem).with_seed(seed).with_exec(self.exec);
        Ok(sampler.sample(table)?.sample)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::skewed_table;
    use cvopt_core::QuerySpec;

    #[test]
    fn l2_wrapper_draws_budget() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 300);
        let s = CvOptL2::default().draw(&t, &problem, 1).unwrap();
        assert_eq!(s.len(), 300);
        assert!(s.is_stratified());
    }

    #[test]
    fn linf_wrapper_draws() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 300);
        let s = CvOptLInf::default().draw(&t, &problem, 1).unwrap();
        assert!(s.len() <= 300);
        assert!(!s.is_empty());
    }

    #[test]
    fn wrapper_overrides_norm() {
        // Even if the problem says LInf, the L2 wrapper forces L2 (and
        // vice versa) so method line-ups stay consistent.
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 200)
            .with_norm(Norm::LInf);
        let s = CvOptL2::default().draw(&t, &problem, 1).unwrap();
        assert_eq!(s.len(), 200);
    }
}

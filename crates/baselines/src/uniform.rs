//! Uniform row-level sampling.

use cvopt_core::sample::reservoir::Reservoir;
use cvopt_core::{MaterializedSample, Result, SamplingProblem};
use cvopt_table::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::SamplingMethod;

/// Uniform sampling without replacement via a single reservoir.
///
/// The baseline every AQP paper starts from: unbiased, single pass, but
/// groups are represented proportionally to their volume, so small groups
/// get few or zero rows (the source of its 100%+ max errors in the paper's
/// Fig. 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct Uniform;

impl SamplingMethod for Uniform {
    fn name(&self) -> &'static str {
        "Uniform"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample> {
        problem.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut reservoir = Reservoir::new(problem.budget.min(table.num_rows()));
        for row in 0..table.num_rows() {
            reservoir.offer(row as u32, &mut rng);
        }
        let mut rows = reservoir.into_items();
        rows.sort_unstable();
        Ok(MaterializedSample::uniform(table, rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::skewed_table;
    use cvopt_core::QuerySpec;

    #[test]
    fn draws_exact_budget() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 500);
        let s = Uniform.draw(&t, &problem, 3).unwrap();
        assert_eq!(s.len(), 500);
        // Every weight is N/M.
        let expected = t.num_rows() as f64 / 500.0;
        assert!(s.weights.iter().all(|&w| (w - expected).abs() < 1e-12));
    }

    #[test]
    fn misses_tiny_groups_sometimes() {
        // With 8 tiny-group rows in 9628 and a 1% sample (96 rows), the tiny
        // group has ≈ 0.08 expected rows; across several seeds it must be
        // absent at least once — the failure mode the paper highlights.
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 96);
        let mut absent = 0;
        for seed in 0..10 {
            let s = Uniform.draw(&t, &problem, seed).unwrap();
            let has_tiny =
                (0..s.len()).any(|i| s.table.column(0).value(i) == cvopt_table::Value::str("tiny"));
            if !has_tiny {
                absent += 1;
            }
        }
        assert!(absent > 0, "tiny group was always present, which is wildly unlikely");
    }

    #[test]
    fn budget_larger_than_table() {
        let t = skewed_table();
        let problem =
            SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 1_000_000);
        let s = Uniform.draw(&t, &problem, 3).unwrap();
        assert_eq!(s.len(), t.num_rows());
        assert!(s.weights.iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }
}

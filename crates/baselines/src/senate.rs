//! SENATE: equal allocation per group.

use cvopt_core::alloc::proportional_allocation;
use cvopt_core::sample::StratifiedSample;
use cvopt_core::{MaterializedSample, Result, SamplingProblem};
use cvopt_table::{ExecOptions, GroupIndex, Table};

use crate::SamplingMethod;

/// Equal allocation: every stratum of the finest stratification receives
/// `M/r` rows (water-filled when a stratum is smaller than its share).
///
/// This is the "senate" component of congressional sampling, and the
/// strawman the paper's §3.1 argues against: it ignores both group variance
/// and group mean.
#[derive(Debug, Clone, Copy, Default)]
pub struct Senate;

impl SamplingMethod for Senate {
    fn name(&self) -> &'static str {
        "Senate"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample> {
        problem.validate()?;
        let exprs = problem.finest_stratification();
        let index = GroupIndex::build(table, &exprs)?;
        let prefs = vec![1.0; index.num_groups()];
        let alloc = proportional_allocation(&prefs, index.sizes(), problem.budget as u64, 0);
        let drawn = StratifiedSample::draw(&index, &alloc.sizes, seed, &ExecOptions::default());
        Ok(drawn.materialize(table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::skewed_table;
    use cvopt_core::QuerySpec;

    #[test]
    fn equal_split_across_groups() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 400);
        let s = Senate.draw(&t, &problem, 1).unwrap();
        assert_eq!(s.len(), 400);
        // Four groups; "tiny" saturates at 8 rows, the rest split the
        // remainder nearly equally.
        let count_of = |name: &str| {
            s.strata.iter().find(|st| st.key[0].to_string() == name).map(|st| st.sampled).unwrap()
        };
        assert_eq!(count_of("tiny"), 8);
        let small = count_of("small");
        let mid = count_of("mid");
        let big = count_of("big");
        assert_eq!(small, 120); // also saturated (share is (400-8)/3 = 130.67)
        assert!((mid as i64 - big as i64).abs() <= 1, "mid {mid} big {big}");
        assert_eq!(8 + small + mid + big, 400);
    }

    #[test]
    fn every_group_represented() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 40);
        let s = Senate.draw(&t, &problem, 2).unwrap();
        assert!(s.strata.iter().all(|st| st.sampled > 0));
    }
}

//! Congressional sampling (Acharya, Gibbons, Poosala, SIGMOD 2000).
//!
//! CS allocates to the finest strata by taking, per stratum, the *maximum*
//! of the shares it would receive under
//!
//! * **house** — proportional to stratum frequency (`M·n_c/N`), and
//! * **senate, per grouping** — for every grouping `A_i` the sample must
//!   serve: each group `a ∈ A_i` receives an equal share `M/|A_i|`,
//!   subdivided among its strata proportionally to frequency
//!   (`M/|A_i| · n_c/n_a`).
//!
//! The max-vector is then scaled down to the budget ("scaled congress").
//! Unlike CVOPT, only frequencies enter the allocation — variances and means
//! are ignored, which is exactly the gap the paper exploits.

use cvopt_core::alloc::proportional_allocation;
use cvopt_core::sample::StratifiedSample;
use cvopt_core::{CvError, MaterializedSample, Result, SamplingProblem};
use cvopt_table::{ExecOptions, GroupIndex, Table};

use crate::SamplingMethod;

/// Congressional sampling over the problem's groupings.
#[derive(Debug, Clone, Copy, Default)]
pub struct Congressional;

impl Congressional {
    /// The unnormalized congress preference vector over finest strata:
    /// `max(house_c, max_i senate_c(A_i))`.
    pub fn preferences(index: &GroupIndex, problem: &SamplingProblem) -> Result<Vec<f64>> {
        let budget = problem.budget as f64;
        let n_total: u64 = index.sizes().iter().sum();
        let num_strata = index.num_groups();
        if n_total == 0 {
            return Ok(vec![0.0; num_strata]);
        }

        // House: proportional to frequency.
        let mut prefs: Vec<f64> =
            index.sizes().iter().map(|&n| budget * n as f64 / n_total as f64).collect();

        // One senate per grouping.
        let strata_names: Vec<String> = index.dim_names().to_vec();
        for query in &problem.queries {
            let dims: Vec<usize> = query
                .group_by
                .iter()
                .map(|e| {
                    let name = e.display_name();
                    strata_names.iter().position(|s| *s == name).ok_or_else(|| {
                        CvError::invalid(format!(
                            "query group-by {name} missing from stratification"
                        ))
                    })
                })
                .collect::<Result<_>>()?;
            let proj = index.project(&dims);
            let mut group_pops = vec![0u64; proj.num_groups()];
            for (c, &n) in index.sizes().iter().enumerate() {
                group_pops[proj.coarse_of(c as u32) as usize] += n;
            }
            let share = budget / proj.num_groups() as f64;
            for (c, pref) in prefs.iter_mut().enumerate() {
                let a = proj.coarse_of(c as u32) as usize;
                let n_c = index.size(c as u32) as f64;
                let senate_c = share * n_c / group_pops[a] as f64;
                if senate_c > *pref {
                    *pref = senate_c;
                }
            }
        }
        Ok(prefs)
    }
}

impl SamplingMethod for Congressional {
    fn name(&self) -> &'static str {
        "CS"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample> {
        problem.validate()?;
        let exprs = problem.finest_stratification();
        let index = GroupIndex::build(table, &exprs)?;
        let prefs = Self::preferences(&index, problem)?;
        let alloc = proportional_allocation(&prefs, index.sizes(), problem.budget as u64, 0);
        let drawn = StratifiedSample::draw(&index, &alloc.sizes, seed, &ExecOptions::default());
        Ok(drawn.materialize(table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::skewed_table;
    use cvopt_core::QuerySpec;
    use cvopt_table::ScalarExpr;

    #[test]
    fn single_grouping_congress_is_max_of_house_and_senate() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 400);
        let index = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        let prefs = Congressional::preferences(&index, &problem).unwrap();
        let n_total: u64 = index.sizes().iter().sum();
        for (c, &pref) in prefs.iter().enumerate() {
            let house = 400.0 * index.size(c as u32) as f64 / n_total as f64;
            let senate = 400.0 / 4.0;
            assert!(
                (pref - house.max(senate)).abs() < 1e-9,
                "stratum {c}: pref {pref}, house {house}, senate {senate}"
            );
        }
    }

    #[test]
    fn small_groups_get_more_than_house() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 400);
        let s = Congressional.draw(&t, &problem, 1).unwrap();
        // tiny group (8 rows of 9628) would get ~0.3 rows under house-only;
        // senate lifts it to its full 8 rows.
        let tiny = s.strata.iter().find(|st| st.key[0].to_string() == "tiny").unwrap();
        assert_eq!(tiny.sampled, 8);
        assert_eq!(s.len(), 400);
    }

    #[test]
    fn multiple_groupings_expand_stratification() {
        let t = skewed_table();
        let q1 = QuerySpec::group_by(&["g"]).aggregate("x");
        let q2 = QuerySpec::group_by(&["h"]).aggregate("x");
        let problem = SamplingProblem::multi(vec![q1, q2], 300);
        let s = Congressional.draw(&t, &problem, 1).unwrap();
        // Finest stratification is (g, h) → 8 strata.
        assert_eq!(s.strata.len(), 8);
        assert_eq!(s.len(), 300);
        assert!(s.strata.iter().all(|st| st.sampled > 0));
    }

    #[test]
    fn frequencies_only_no_variance_sensitivity() {
        // Two tables with identical group sizes but different variances must
        // receive identical CS allocations (CS ignores variance).
        use cvopt_table::{DataType, TableBuilder, Value};
        let build = |spread: f64| {
            let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
            for i in 0..100 {
                let g = if i % 4 == 0 { "a" } else { "b" };
                let x = 10.0 + spread * ((i % 7) as f64 - 3.0);
                b.push_row(&[Value::str(g), Value::Float64(x)]).unwrap();
            }
            b.finish()
        };
        let t1 = build(0.1);
        let t2 = build(3.0);
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 30);
        let s1 = Congressional.draw(&t1, &problem, 5).unwrap();
        let s2 = Congressional.draw(&t2, &problem, 5).unwrap();
        let sizes = |s: &cvopt_core::MaterializedSample| {
            s.strata.iter().map(|st| st.sampled).collect::<Vec<_>>()
        };
        assert_eq!(sizes(&s1), sizes(&s2));
    }
}

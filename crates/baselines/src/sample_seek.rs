//! Measure-biased sampling (the sampling half of Ding et al.'s Sample+Seek,
//! SIGMOD 2016).
//!
//! Following the original definition, `m` rows are drawn **with
//! replacement**, each draw picking row `i` with probability `v_i/V` where
//! `v_i` is the row's value on the aggregation column ("measure") and
//! `V = Σ v`. Each sampled row carries the Horvitz–Thompson-style weight
//! `V/(m·v_i)`, which makes `COUNT`/`SUM` estimators exactly unbiased.
//!
//! As the CVOPT paper notes (§1.2), measure-biased sampling ignores
//! *within-group variability*: a group of many rows with the same large
//! value still soaks up budget even though one row would pin its mean
//! exactly. The "seek" index for low-selectivity predicates is out of scope
//! here; its absence shows up in the same experiments where the paper
//! reports Sample+Seek's errors blowing up (up to 173% maximum error).

use cvopt_core::{CvError, MaterializedSample, Result, SamplingProblem};
use cvopt_table::Table;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::SamplingMethod;

/// The measure-biased sampler. Uses the first aggregation column of the
/// first query as the measure (Sample+Seek builds one sample per measure).
#[derive(Debug, Clone, Copy, Default)]
pub struct SampleSeek;

impl SamplingMethod for SampleSeek {
    fn name(&self) -> &'static str {
        "Sample+Seek"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample> {
        problem.validate()?;
        let measure_expr = &problem.queries[0].aggregates[0].column;
        let measure = measure_expr.bind(table)?;

        // Prefix sums of |v| for categorical draws.
        let n = table.num_rows();
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for row in 0..n {
            let v = measure.f64_at(row).ok_or_else(|| {
                CvError::invalid(format!(
                    "measure column {} is not numeric",
                    measure_expr.display_name()
                ))
            })?;
            total += v.abs();
            cumulative.push(total);
        }
        if total <= 0.0 {
            return Err(CvError::invalid(
                "measure-biased sampling needs a measure with non-zero total",
            ));
        }

        let m = problem.budget.min(n);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<u32> = (0..m)
            .map(|_| {
                let u: f64 = rng.random::<f64>() * total;
                cumulative.partition_point(|&c| c <= u) as u32
            })
            .collect();
        rows.sort_unstable();

        let weights: Vec<f64> = rows
            .iter()
            .map(|&r| {
                let v = measure.f64_at(r as usize).expect("validated numeric").abs();
                total / (m as f64 * v)
            })
            .collect();
        Ok(MaterializedSample::from_rows(table, rows, weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::skewed_table;
    use cvopt_core::estimate::estimate_single;
    use cvopt_core::QuerySpec;
    use cvopt_table::{AggExpr, GroupByQuery, ScalarExpr};

    #[test]
    fn biased_toward_large_measures() {
        let t = skewed_table();
        // "mid" has mean 100 vs "big" mean 5: mid rows must be heavily
        // over-represented relative to its population share.
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 500);
        let s = SampleSeek.draw(&t, &problem, 1).unwrap();
        let mid_rows = (0..s.len())
            .filter(|&i| s.table.column(0).value(i) == cvopt_table::Value::str("mid"))
            .count();
        let mid_pop_share = 1_500.0 / t.num_rows() as f64;
        let mid_sample_share = mid_rows as f64 / s.len() as f64;
        assert!(
            mid_sample_share > 2.0 * mid_pop_share,
            "mid share {mid_sample_share} vs population {mid_pop_share}"
        );
    }

    #[test]
    fn weighted_count_roughly_unbiased() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 2_000);
        let s = SampleSeek.draw(&t, &problem, 2).unwrap();
        // Total weight should approximate the table size.
        let ratio = s.total_weight() / t.num_rows() as f64;
        assert!(ratio > 0.8 && ratio < 1.2, "total weight ratio {ratio}");
    }

    #[test]
    fn sum_estimates_reasonable() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 2_000);
        let s = SampleSeek.draw(&t, &problem, 3).unwrap();
        let q = GroupByQuery::new(vec![ScalarExpr::col("g")], vec![AggExpr::sum("x")]);
        let est = estimate_single(&s, &q).unwrap();
        let exact = &q.execute(&t).unwrap()[0];
        for (key, values) in exact.iter() {
            // Groups with a small measure share ("tiny", "small") get few
            // draws and are inherently noisy under measure-biased sampling —
            // that is the paper's criticism of Sample+Seek. Only the
            // measure-heavy groups admit a tight single-seed check.
            let name = key[0].to_string();
            if name != "mid" && name != "big" {
                continue;
            }
            let got = est.value(key, 0).unwrap();
            let rel = (got - values[0]).abs() / values[0];
            assert!(rel < 0.3, "group {key:?}: rel error {rel}");
        }
    }

    #[test]
    fn sum_unbiased_over_many_seeds() {
        // Average the full-table SUM estimate over seeds: must converge to
        // the exact total (with-replacement measure-biased SUM is unbiased).
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 500);
        let q = GroupByQuery::new(vec![], vec![AggExpr::sum("x")]);
        let exact = q.execute(&t).unwrap()[0].values[0][0];
        let mut acc = 0.0;
        let runs = 30;
        for seed in 0..runs {
            let s = SampleSeek.draw(&t, &problem, seed).unwrap();
            acc += estimate_single(&s, &q).unwrap().values[0][0];
        }
        let avg = acc / runs as f64;
        let rel = (avg - exact).abs() / exact;
        assert!(rel < 0.05, "mean-of-estimates rel error {rel}");
    }

    #[test]
    fn rejects_non_numeric_measure() {
        let t = skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["x"]).aggregate("g"), 100);
        assert!(SampleSeek.draw(&t, &problem, 1).is_err());
    }
}

//! The Rösch–Lehner heuristic (EDBT 2009).
//!
//! RL allocates sample sizes proportionally to each group's coefficient of
//! variation, *without* taking group size into account — the paper's §6.1
//! explicitly discusses the consequence: on real data with small groups, RL
//! can allocate a group more rows than it has. We reproduce that behaviour
//! faithfully: the per-group target is `M·cv_i/Σcv_j`, and groups simply
//! cannot yield more than `n_i` rows, so the excess budget is *wasted* (no
//! redistribution) — this is the gap CVOPT's capped re-solve closes, and the
//! `ablation_capping` experiment quantifies it.
//!
//! For multiple aggregates the group CV is averaged over the aggregation
//! columns; for multiple groupings RL stratifies hierarchically on the
//! finest stratification (its "hierarchical partitioning").

use cvopt_core::sample::StratifiedSample;
use cvopt_core::stats::StratumStatistics;
use cvopt_core::{MaterializedSample, Result, SamplingProblem};
use cvopt_table::{ExecOptions, GroupIndex, Table};

use crate::SamplingMethod;

/// The RL sampler.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoschLehner;

impl RoschLehner {
    /// The RL allocation: `s_i = round(M·cv_i/Σcv)`, clamped to `n_i`
    /// afterwards (no redistribution — the documented flaw).
    pub fn allocation(stats: &StratumStatistics, problem: &SamplingProblem) -> Vec<u64> {
        let r = stats.num_strata();
        let ncols = stats.num_columns();
        let mut cvs = vec![0.0f64; r];
        for (i, cv_slot) in cvs.iter_mut().enumerate() {
            let mut acc = 0.0;
            for j in 0..ncols {
                let cv = stats.cv(i, j, problem.variance);
                if cv.is_finite() {
                    acc += cv;
                }
            }
            *cv_slot = acc / ncols as f64;
        }
        let total_cv: f64 = cvs.iter().sum();
        if total_cv == 0.0 {
            // Degenerate: all groups constant. Fall back to equal split.
            let each = (problem.budget as u64) / r.max(1) as u64;
            return stats.populations.iter().map(|&n| each.min(n)).collect();
        }
        cvs.iter()
            .zip(&stats.populations)
            .map(|(&cv, &n)| {
                let target = (problem.budget as f64 * cv / total_cv).round() as u64;
                target.min(n)
            })
            .collect()
    }
}

impl SamplingMethod for RoschLehner {
    fn name(&self) -> &'static str {
        "RL"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample> {
        problem.validate()?;
        let exprs = problem.finest_stratification();
        let index = GroupIndex::build(table, &exprs)?;
        let stats = StratumStatistics::collect(table, &index, &problem.aggregate_columns())?;
        let sizes = Self::allocation(&stats, problem);
        let drawn = StratifiedSample::draw(&index, &sizes, seed, &ExecOptions::default());
        Ok(drawn.materialize(table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::skewed_table;
    use cvopt_core::QuerySpec;

    #[test]
    fn allocation_proportional_to_cv_ignores_size() {
        use cvopt_table::{DataType, TableBuilder, Value};
        // Two groups with identical value distribution but 10x different
        // sizes: RL must allocate them (nearly) the same.
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..1000 {
            b.push_row(&[Value::str("big"), Value::Float64(10.0 + (i % 10) as f64)]).unwrap();
        }
        for i in 0..100 {
            b.push_row(&[Value::str("small"), Value::Float64(10.0 + (i % 10) as f64)]).unwrap();
        }
        let t = b.finish();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 100);
        let s = RoschLehner.draw(&t, &problem, 1).unwrap();
        let sizes: Vec<u64> = s.strata.iter().map(|st| st.sampled).collect();
        assert!(
            (sizes[0] as i64 - sizes[1] as i64).abs() <= 2,
            "RL should ignore group size: {sizes:?}"
        );
    }

    #[test]
    fn budget_wasted_on_small_high_cv_groups() {
        let t = skewed_table();
        // "tiny" has by far the largest CV but only 8 rows; RL's target for
        // it exceeds 8, and the excess is NOT redistributed.
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 400);
        let s = RoschLehner.draw(&t, &problem, 1).unwrap();
        let tiny = s.strata.iter().find(|st| st.key[0].to_string() == "tiny").unwrap();
        assert_eq!(tiny.sampled, 8);
        assert!(s.len() < 400, "RL wasted budget should leave the sample short: got {}", s.len());
    }

    #[test]
    fn constant_groups_fall_back_to_equal() {
        use cvopt_table::{DataType, TableBuilder, Value};
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..60 {
            let g = if i % 2 == 0 { "a" } else { "b" };
            b.push_row(&[Value::str(g), Value::Float64(5.0)]).unwrap();
        }
        let t = b.finish();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 10);
        let s = RoschLehner.draw(&t, &problem, 1).unwrap();
        let sizes: Vec<u64> = s.strata.iter().map(|st| st.sampled).collect();
        assert_eq!(sizes, vec![5, 5]);
    }
}

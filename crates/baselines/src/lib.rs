//! # cvopt-baselines
//!
//! The competing sampling methods from the CVOPT paper's evaluation
//! (paper §1.2 and §6), all behind one [`SamplingMethod`] trait so the
//! experiment harness treats every sampler uniformly:
//!
//! * [`Uniform`] — unbiased row-level sampling (reservoir).
//! * [`Senate`] — equal allocation per group (a component of CS).
//! * [`Congressional`] — Acharya, Gibbons, Poosala's house/senate hybrid,
//!   with the *scaled congress* generalization for multiple groupings.
//! * [`RoschLehner`] — the CV-proportional heuristic of Rösch & Lehner,
//!   including its documented flaw (group size is ignored, so small groups
//!   can be over-allocated and budget wasted).
//! * [`SampleSeek`] — measure-biased sampling from Ding et al.'s
//!   Sample+Seek (the sampling half; the "seek" index is out of scope and
//!   its absence is visible exactly where the paper says it hurts).
//! * [`CvOptL2`] / [`CvOptLInf`] — the paper's methods, wrapped for the
//!   same interface.
//!
//! Every method consumes the same [`SamplingProblem`] and produces a
//! [`MaterializedSample`], so accuracy comparisons are apples-to-apples.

mod congress;
mod cvopt_method;
mod rl;
mod sample_seek;
mod senate;
mod uniform;

pub use congress::Congressional;
pub use cvopt_method::{CvOptL2, CvOptLInf};
pub use rl::RoschLehner;
pub use sample_seek::SampleSeek;
pub use senate::Senate;
pub use uniform::Uniform;

use cvopt_core::{MaterializedSample, Result, SamplingProblem};
use cvopt_table::Table;

/// A sampling method: turns a table + problem spec into a weighted sample.
pub trait SamplingMethod: Send + Sync {
    /// Display name used in reports ("Uniform", "CS", "RL", "CVOPT", ...).
    fn name(&self) -> &'static str;

    /// Draw a sample of `problem.budget` rows (best effort) from `table`.
    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> Result<MaterializedSample>;
}

/// The method line-up used throughout the paper's accuracy experiments:
/// Uniform, Sample+Seek, CS, RL, CVOPT (in the paper's table order).
pub fn paper_methods() -> Vec<Box<dyn SamplingMethod>> {
    vec![
        Box::new(Uniform),
        Box::new(SampleSeek),
        Box::new(Congressional),
        Box::new(RoschLehner),
        Box::new(CvOptL2::default()),
    ]
}

/// The reduced line-up used in most figures: Uniform, CS, RL, CVOPT.
pub fn figure_methods() -> Vec<Box<dyn SamplingMethod>> {
    vec![
        Box::new(Uniform),
        Box::new(Congressional),
        Box::new(RoschLehner),
        Box::new(CvOptL2::default()),
    ]
}

#[cfg(test)]
pub(crate) mod test_support {
    use cvopt_table::{DataType, Table, TableBuilder, Value};

    /// A table with skewed group sizes and heterogeneous means/variances:
    /// the setting where the methods differ most.
    pub fn skewed_table() -> Table {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("h", DataType::Str),
            ("x", DataType::Float64),
            ("y", DataType::Float64),
        ]);
        let specs: [(&str, usize, f64, f64); 4] = [
            ("tiny", 8, 50.0, 30.0),
            ("small", 120, 10.0, 0.5),
            ("mid", 1_500, 100.0, 50.0),
            ("big", 8_000, 5.0, 0.2),
        ];
        let mut k = 0u64;
        for (name, count, mean, spread) in specs {
            for i in 0..count {
                // Deterministic pseudo-noise, no RNG needed.
                k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((k >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                let h = if i % 3 == 0 { "p" } else { "q" };
                let x = (mean + noise * 2.0 * spread).max(0.01);
                let y = 100.0 + (i % 11) as f64;
                b.push_row(&[
                    Value::str(name),
                    Value::str(h),
                    Value::Float64(x),
                    Value::Float64(y),
                ])
                .unwrap();
            }
        }
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_core::QuerySpec;

    #[test]
    fn all_methods_draw_within_budget() {
        let t = test_support::skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 400);
        for m in paper_methods() {
            let s = m.draw(&t, &problem, 1).unwrap();
            assert!(s.len() <= 400 + 4, "{} drew {} rows for budget 400", m.name(), s.len());
            assert!(!s.is_empty(), "{} drew nothing", m.name());
        }
    }

    #[test]
    fn method_names_match_paper() {
        let names: Vec<&str> = paper_methods().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["Uniform", "Sample+Seek", "CS", "RL", "CVOPT"]);
    }

    #[test]
    fn methods_are_seed_deterministic() {
        let t = test_support::skewed_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 200);
        for m in paper_methods() {
            let a = m.draw(&t, &problem, 7).unwrap();
            let b = m.draw(&t, &problem, 7).unwrap();
            assert_eq!(a.origin, b.origin, "{} is not deterministic", m.name());
        }
    }
}

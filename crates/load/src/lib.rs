//! # cvopt-load
//!
//! A closed-loop load harness for the CVOPT serving layer: a seeded
//! workload mix (cache-hot, cache-cold, and exact statements over the
//! OpenAQ fixture), a worker pool with a target-rate scheduler driving
//! persistent [`cvopt_serve::Client`] connections, and a snapshot writer
//! that records the run into `BENCH_serving.json` in the bench harness's
//! shape.
//!
//! The snapshot carries two classes of rows:
//!
//! * **Deterministic counters** (`counters/...`): statistics passes,
//!   cache hits/misses/evictions, bytes held, keep-alive reuses, client
//!   connects. Every one is a pure function of the seeded schedule — the
//!   engine coalesces concurrent misses, so even under a racing worker
//!   pool the totals are fixed — and `bench_diff` **fails CI** when one
//!   moves.
//! * **Wall-clock rows** (latency quantiles, mean request time):
//!   advisory only, like every other timing snapshot in the workspace.
//!
//! The `cvopt-load` binary ties the pieces together: it spawns an
//! in-process [`cvopt_serve::Server`] (or targets `--addr`), seeds the
//! engine's query log with the hot/cold statements, consolidates the log
//! through `POST /reoptimize`, replays the full schedule concurrently
//! (the derived pool is answered by the reuse planner — `draws_avoided`
//! stays above zero by construction), then runs a sequential phase
//! against a tiny cache budget (deterministic evictions), and writes the
//! snapshot. See the README's "Serving" section for usage.

#![warn(missing_docs)]

pub mod mix;
pub mod report;
pub mod runner;
pub mod stats;

pub use mix::{expected, schedule, seeding, Class, Expected, Statement};
pub use report::{snapshot_json, write_snapshot, Row};
pub use runner::{run, RunConfig, RunReport};
pub use stats::{summarize, LatencySummary};

//! The seeded workload mix: which statement each request sends.
//!
//! Three statement classes over the OpenAQ fixture table:
//!
//! * **Hot** — a small pool of approximate statements drawn at random;
//!   after each pool entry's first use every repeat is a prepared-sample
//!   cache hit.
//! * **Cold** — approximate statements cycled from a disjoint pool of
//!   distinct problems; each new grouping set costs a statistics pass.
//! * **Exact** — full-scan statements that never touch the sample cache.
//!
//! Every approximate statement uses the same aggregate (`AVG(value)`),
//! no predicate, and a distinct `GROUP BY` set, so **distinct SQL text ↔
//! distinct prepared problem**: the engine counters for a schedule are a
//! pure function of its statement multiset ([`expected`]), independent
//! of client interleaving (concurrent misses for one problem coalesce
//! into a single pass).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The fixture table every statement reads.
pub const TABLE: &str = "openaq";

/// Grouping sets for the hot pool (drawn at random, mostly repeats).
const HOT_GROUPS: [&str; 4] = ["country", "parameter", "unit", "country, parameter"];

/// Grouping sets for the cold pool (cycled in order), disjoint from
/// [`HOT_GROUPS`] so the two classes never share a prepared problem.
const COLD_GROUPS: [&str; 4] =
    ["location", "country, unit", "parameter, unit", "country, parameter, unit"];

/// Exact statements: full scans, no sampling, no cache traffic.
const EXACT_SQL: [&str; 3] = [
    "SELECT country, SUM(value), COUNT(*) FROM openaq GROUP BY country",
    "SELECT parameter, MIN(value), MAX(value) FROM openaq GROUP BY parameter",
    "SELECT unit, COUNT(*) FROM openaq GROUP BY unit",
];

/// Which pool a scheduled statement came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Approximate, drawn from the small hot pool (mostly cache hits).
    Hot,
    /// Approximate, cycled from the cold pool (cache misses until the
    /// pool wraps).
    Cold,
    /// Exact full scan (no cache traffic).
    Exact,
}

/// One scheduled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// The SQL text.
    pub sql: String,
    /// The `/query` mode field: `"approximate"` or `"exact"`.
    pub mode: &'static str,
    /// The pool this statement came from.
    pub class: Class,
}

impl Statement {
    /// The `/query` request body for this statement.
    pub fn query_body(&self) -> String {
        format!(r#"{{"sql":"{}","mode":"{}"}}"#, self.sql, self.mode)
    }
}

fn approximate(group: &str, class: Class) -> Statement {
    Statement {
        sql: format!("SELECT {group}, AVG(value) FROM {TABLE} GROUP BY {group}"),
        mode: "approximate",
        class,
    }
}

/// Build the seeded schedule: `total` statements, ~50% hot / ~30% cold /
/// ~20% exact. Pure function of `(seed, total)`.
pub fn schedule(seed: u64, total: usize) -> Vec<Statement> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cold_next = 0usize;
    (0..total)
        .map(|_| match rng.random_range(0..10u32) {
            0..=4 => approximate(HOT_GROUPS[rng.random_range(0..HOT_GROUPS.len())], Class::Hot),
            5..=7 => {
                let group = COLD_GROUPS[cold_next % COLD_GROUPS.len()];
                cold_next += 1;
                approximate(group, Class::Cold)
            }
            _ => Statement {
                sql: EXACT_SQL[rng.random_range(0..EXACT_SQL.len())].to_string(),
                mode: "exact",
                class: Class::Exact,
            },
        })
        .collect()
}

/// The engine-counter totals a schedule must produce, however its
/// statements are interleaved across clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expected {
    /// Total statements.
    pub total: usize,
    /// Approximate statements (each probes the prepared-sample cache).
    pub approximate: usize,
    /// Exact statements.
    pub exact: usize,
    /// Distinct prepared problems among the approximate statements: the
    /// schedule's statistics passes, cache misses, and (under an
    /// unbounded budget) resident cache entries. Hits are
    /// `approximate - distinct_problems`.
    pub distinct_problems: usize,
}

/// Compute [`Expected`] for a schedule. Distinct problems are counted as
/// distinct SQL texts among the approximate statements — exact by
/// construction (see the module docs).
pub fn expected(schedule: &[Statement]) -> Expected {
    let mut distinct: Vec<&str> = Vec::new();
    let mut approximate = 0usize;
    for stmt in schedule {
        if stmt.mode == "approximate" {
            approximate += 1;
            if !distinct.contains(&stmt.sql.as_str()) {
                distinct.push(&stmt.sql);
            }
        }
    }
    Expected {
        total: schedule.len(),
        approximate,
        exact: schedule.len() - approximate,
        distinct_problems: distinct.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_total() {
        assert_eq!(schedule(7, 64), schedule(7, 64));
        assert_ne!(schedule(7, 64), schedule(8, 64));
        // A longer schedule extends the shorter one's independent draws
        // in count, not necessarily as a prefix — only length matters.
        assert_eq!(schedule(7, 64).len(), 64);
    }

    #[test]
    fn expected_counts_are_consistent() {
        let sched = schedule(7, 120);
        let exp = expected(&sched);
        assert_eq!(exp.total, 120);
        assert_eq!(exp.approximate + exp.exact, exp.total);
        assert!(exp.approximate > exp.exact, "the mix leans approximate");
        assert!(exp.distinct_problems <= HOT_GROUPS.len() + COLD_GROUPS.len());
        assert!(exp.distinct_problems >= COLD_GROUPS.len(), "cold pool cycles through");
    }

    #[test]
    fn pools_are_disjoint() {
        for g in HOT_GROUPS {
            assert!(!COLD_GROUPS.contains(&g), "{g} in both pools");
        }
    }

    /// The load harness's accounting contract: the engine's counters for
    /// a schedule equal [`expected`]'s pure computation. Runs the whole
    /// schedule sequentially against a real engine.
    #[test]
    fn engine_counters_match_expected() {
        use cvopt_core::{Engine, QueryMode};
        use cvopt_datagen::{generate_openaq, OpenAqConfig};

        let mut engine = Engine::new().with_seed(7);
        engine.register_table(TABLE, generate_openaq(&OpenAqConfig::with_rows(20_000)));

        let sched = schedule(7, 40);
        let exp = expected(&sched);
        for stmt in &sched {
            let mode = if stmt.mode == "exact" { QueryMode::Exact } else { QueryMode::Approximate };
            engine.query(&stmt.sql, mode).expect("workload statement");
        }
        assert_eq!(engine.stats_passes(), exp.distinct_problems as u64);
        assert_eq!(engine.cache_misses(), exp.distinct_problems as u64);
        assert_eq!(engine.cache_hits(), (exp.approximate - exp.distinct_problems) as u64);
        assert_eq!(engine.cached_samples(), exp.distinct_problems);
        assert_eq!(engine.cache_evictions(), 0);
    }
}

//! The seeded workload mix: which statement each request sends.
//!
//! Four statement classes over the OpenAQ fixture table:
//!
//! * **Hot** — a small pool of approximate statements drawn at random;
//!   after each pool entry's first use every repeat is a prepared-sample
//!   cache hit (or, once the table is re-optimized, a derived answer).
//! * **Cold** — approximate statements cycled from a disjoint pool of
//!   distinct problems; each new grouping set costs a statistics pass.
//! * **Derived** — approximate statements over grouping sets that never
//!   appear in the seeding run but are *subsumed* by the union of the hot
//!   and cold shapes: after `/reoptimize` consolidates the query log, the
//!   reuse planner answers them from the consolidated sample without
//!   drawing anything (`draws_avoided`).
//! * **Exact** — full-scan statements that never touch the sample cache.
//!
//! Every approximate statement uses the same aggregate (`AVG(value)`),
//! no predicate, and a distinct `GROUP BY` set, so **distinct SQL text ↔
//! distinct prepared problem**: the engine counters for the harness's
//! seed → re-optimize → replay flow are a pure function of the schedule
//! ([`expected`]), independent of client interleaving (concurrent misses
//! for one problem coalesce into a single pass, and the durable reuse set
//! is frozen once `/reoptimize` returns).

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The fixture table every statement reads.
pub const TABLE: &str = "openaq";

/// Grouping sets for the hot pool (drawn at random, mostly repeats).
const HOT_GROUPS: [&str; 4] = ["country", "parameter", "unit", "country, parameter"];

/// Grouping sets for the cold pool (cycled in order), disjoint from
/// [`HOT_GROUPS`] so the two classes never share a prepared problem.
const COLD_GROUPS: [&str; 4] =
    ["location", "country, unit", "parameter, unit", "country, parameter, unit"];

/// Grouping sets for the derived pool (cycled in order): subsets of the
/// hot∪cold attribute union `{country, parameter, unit, location}` that
/// appear in neither pool, so they are never seeded and can only be
/// answered by the reuse planner (or a fresh draw if the union was never
/// consolidated).
const DERIVED_GROUPS: [&str; 3] =
    ["country, location", "parameter, location", "country, unit, location"];

/// Exact statements: full scans, no sampling, no cache traffic.
const EXACT_SQL: [&str; 3] = [
    "SELECT country, SUM(value), COUNT(*) FROM openaq GROUP BY country",
    "SELECT parameter, MIN(value), MAX(value) FROM openaq GROUP BY parameter",
    "SELECT unit, COUNT(*) FROM openaq GROUP BY unit",
];

/// Which pool a scheduled statement came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Approximate, drawn from the small hot pool (mostly cache hits).
    Hot,
    /// Approximate, cycled from the cold pool (cache misses until the
    /// pool wraps).
    Cold,
    /// Approximate, cycled from the derived pool (never seeded; answered
    /// by sample reuse after `/reoptimize`).
    Derived,
    /// Exact full scan (no cache traffic).
    Exact,
}

/// One scheduled request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// The SQL text.
    pub sql: String,
    /// The `/query` mode field: `"approximate"` or `"exact"`.
    pub mode: &'static str,
    /// The pool this statement came from.
    pub class: Class,
    /// The `GROUP BY` column list for approximate statements (`None` for
    /// exact scans) — what [`expected`] feeds the subsumption check.
    pub group: Option<&'static str>,
}

impl Statement {
    /// The `/query` request body for this statement.
    pub fn query_body(&self) -> String {
        format!(r#"{{"sql":"{}","mode":"{}"}}"#, self.sql, self.mode)
    }
}

fn approximate(group: &'static str, class: Class) -> Statement {
    Statement {
        sql: format!("SELECT {group}, AVG(value) FROM {TABLE} GROUP BY {group}"),
        mode: "approximate",
        class,
        group: Some(group),
    }
}

/// Build the seeded schedule: `total` statements, ~40% hot / ~20% cold /
/// ~20% derived / ~20% exact. Pure function of `(seed, total)`.
pub fn schedule(seed: u64, total: usize) -> Vec<Statement> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cold_next = 0usize;
    let mut derived_next = 0usize;
    (0..total)
        .map(|_| match rng.random_range(0..10u32) {
            0..=3 => approximate(HOT_GROUPS[rng.random_range(0..HOT_GROUPS.len())], Class::Hot),
            4..=5 => {
                let group = COLD_GROUPS[cold_next % COLD_GROUPS.len()];
                cold_next += 1;
                approximate(group, Class::Cold)
            }
            6..=7 => {
                let group = DERIVED_GROUPS[derived_next % DERIVED_GROUPS.len()];
                derived_next += 1;
                approximate(group, Class::Derived)
            }
            _ => Statement {
                sql: EXACT_SQL[rng.random_range(0..EXACT_SQL.len())].to_string(),
                mode: "exact",
                class: Class::Exact,
                group: None,
            },
        })
        .collect()
}

/// The harness's seeding run: the schedule with the derived pool filtered
/// out, in order. Run sequentially before `/reoptimize` so the query log
/// holds exactly the hot/cold shapes.
pub fn seeding(schedule: &[Statement]) -> Vec<Statement> {
    schedule.iter().filter(|s| s.class != Class::Derived).cloned().collect()
}

/// The engine-counter totals the harness flow — sequential [`seeding`]
/// run, one `/reoptimize`, then the full schedule however its statements
/// are interleaved across clients — must produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expected {
    /// Total statements in the full schedule.
    pub total: usize,
    /// Approximate statements in the full schedule.
    pub approximate: usize,
    /// Exact statements in the full schedule.
    pub exact: usize,
    /// Distinct prepared problems among the approximate statements.
    pub distinct_problems: usize,
    /// Statements in the seeding run (the schedule minus the derived
    /// pool).
    pub seeded: usize,
    /// Fresh statistics passes across the whole flow.
    pub stats_passes: u64,
    /// Prepared-sample cache hits across the whole flow.
    pub cache_hits: u64,
    /// Prepared-sample cache misses across the whole flow.
    pub cache_misses: u64,
    /// Resident cache entries after the flow (unbounded budget).
    pub cached_samples: u64,
    /// Answers derived from a subsuming sample (= `draws_avoided`).
    pub reuse_hits: u64,
}

fn attrs(group: &str) -> BTreeSet<&str> {
    group.split(',').map(str::trim).collect()
}

/// Simulate the seed → re-optimize → replay flow for a schedule.
///
/// The simulation mirrors the engine's documented decision rules exactly:
///
/// * Seeding (sequential): each distinct approximate problem costs one
///   miss + statistics pass; repeats are hits. Every one is query-drawn,
///   so none is a durable reuse candidate.
/// * `/reoptimize`: consolidates the logged shapes into one durable
///   sample — a fresh miss + pass, unless the log holds exactly one
///   once-seen shape, in which case the consolidated problem *is* that
///   shape and the existing entry is adopted (a cache hit).
/// * Replay (concurrent): a statement whose problem the consolidated
///   sample subsumes is answered **derived** (`reuse_hits`, no cache
///   traffic) — durable reuse outranks any query-drawn exact entry, whose
///   presence under concurrency is a race. Statements outside the union
///   miss once and then hit; statements matching the consolidated
///   problem's own fingerprint hit durably.
pub fn expected(schedule: &[Statement]) -> Expected {
    // Distinct approximate statements in first-appearance order, with
    // occurrence counts, for the seeding run and the full schedule.
    let mut seeded: Vec<(&Statement, u64)> = Vec::new();
    let mut all: Vec<(&Statement, u64)> = Vec::new();
    let mut approximate = 0usize;
    let mut seeded_total = 0u64;
    for stmt in schedule {
        if stmt.mode != "approximate" {
            continue;
        }
        approximate += 1;
        if stmt.class != Class::Derived {
            seeded_total += 1;
            match seeded.iter_mut().find(|(s, _)| s.sql == stmt.sql) {
                Some((_, n)) => *n += 1,
                None => seeded.push((stmt, 1)),
            }
        }
        match all.iter_mut().find(|(s, _)| s.sql == stmt.sql) {
            Some((_, n)) => *n += 1,
            None => all.push((stmt, 1)),
        }
    }

    // Seeding run.
    let mut misses = seeded.len() as u64;
    let mut hits = seeded_total - misses;
    let mut stats = seeded.len() as u64;
    let mut cached = seeded.len() as u64;

    // Re-optimization. The consolidated problem collides with a seeded one
    // only in the degenerate single-shape-seen-once log (count weights
    // leave the spec untouched).
    let consolidated = !seeded.is_empty();
    let consolidated_is_seeded = seeded.len() == 1 && seeded[0].1 == 1;
    let union: BTreeSet<&str> = seeded
        .iter()
        .flat_map(|(s, _)| attrs(s.group.expect("approximate statements carry groups")))
        .collect();
    if consolidated {
        if consolidated_is_seeded {
            hits += 1;
        } else {
            misses += 1;
            stats += 1;
            cached += 1;
        }
    }

    // Concurrent replay of the full schedule.
    let mut reuse = 0u64;
    for (stmt, count) in &all {
        let group = attrs(stmt.group.expect("approximate statements carry groups"));
        let durable_exact = consolidated_is_seeded && seeded[0].0.sql == stmt.sql;
        if durable_exact {
            hits += count;
        } else if consolidated && group.is_subset(&union) {
            reuse += count;
        } else if seeded.iter().any(|(s, _)| s.sql == stmt.sql) {
            // Seeded but outside the union is impossible (seeded shapes
            // built the union); kept for clarity.
            hits += count;
        } else {
            misses += 1;
            stats += 1;
            cached += 1;
            hits += count - 1;
        }
    }

    Expected {
        total: schedule.len(),
        approximate,
        exact: schedule.len() - approximate,
        distinct_problems: all.len(),
        seeded: schedule.len() - (approximate - seeded_total as usize),
        stats_passes: stats,
        cache_hits: hits,
        cache_misses: misses,
        cached_samples: cached,
        reuse_hits: reuse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_a_pure_function_of_seed_and_total() {
        assert_eq!(schedule(7, 64), schedule(7, 64));
        assert_ne!(schedule(7, 64), schedule(8, 64));
        // A longer schedule extends the shorter one's independent draws
        // in count, not necessarily as a prefix — only length matters.
        assert_eq!(schedule(7, 64).len(), 64);
    }

    #[test]
    fn expected_counts_are_consistent() {
        let sched = schedule(7, 120);
        let exp = expected(&sched);
        assert_eq!(exp.total, 120);
        assert_eq!(exp.approximate + exp.exact, exp.total);
        assert!(exp.approximate > exp.exact, "the mix leans approximate");
        let pools = HOT_GROUPS.len() + COLD_GROUPS.len() + DERIVED_GROUPS.len();
        assert!(exp.distinct_problems <= pools);
        assert!(exp.distinct_problems >= COLD_GROUPS.len(), "cold pool cycles through");
        assert_eq!(exp.seeded, seeding(&sched).len());
        assert!(exp.seeded < exp.total, "the derived pool is real");
        assert!(exp.reuse_hits > 0, "the seeded mix must exercise the reuse planner");
    }

    #[test]
    fn pools_are_disjoint_and_derived_is_subsumed() {
        for g in HOT_GROUPS {
            assert!(!COLD_GROUPS.contains(&g), "{g} in both pools");
            assert!(!DERIVED_GROUPS.contains(&g), "{g} in both pools");
        }
        for g in DERIVED_GROUPS {
            assert!(!COLD_GROUPS.contains(&g), "{g} in both pools");
        }
        // Every derived grouping set is a subset of the hot∪cold attribute
        // union, so a consolidated sample answers it.
        let union: BTreeSet<&str> =
            HOT_GROUPS.iter().chain(&COLD_GROUPS).flat_map(|g| attrs(g)).collect();
        for g in DERIVED_GROUPS {
            assert!(attrs(g).is_subset(&union), "{g} escapes the seeded union");
        }
    }

    /// The load harness's accounting contract: the engine's counters for
    /// the seed → re-optimize → replay flow equal [`expected`]'s pure
    /// computation. Runs the whole flow sequentially against a real
    /// engine.
    #[test]
    fn engine_counters_match_expected() {
        use cvopt_core::{Engine, QueryMode};
        use cvopt_datagen::{generate_openaq, OpenAqConfig};

        let mut engine = Engine::new().with_seed(7);
        engine.register(TABLE, generate_openaq(&OpenAqConfig::with_rows(20_000)));

        let sched = schedule(7, 40);
        let exp = expected(&sched);
        let run = |engine: &Engine, stmts: &[Statement]| {
            for stmt in stmts {
                let mode =
                    if stmt.mode == "exact" { QueryMode::Exact } else { QueryMode::Approximate };
                engine.query(&stmt.sql, mode).expect("workload statement");
            }
        };
        run(&engine, &seeding(&sched));
        engine.reoptimize(TABLE).expect("reoptimize").expect("seeded log is non-empty");
        run(&engine, &sched);

        assert_eq!(engine.stats_passes(), exp.stats_passes);
        assert_eq!(engine.cache_misses(), exp.cache_misses);
        assert_eq!(engine.cache_hits(), exp.cache_hits);
        assert_eq!(engine.reuse_hits(), exp.reuse_hits);
        assert_eq!(engine.draws_avoided(), exp.reuse_hits);
        assert_eq!(engine.cached_samples() as u64, exp.cached_samples);
        assert_eq!(engine.cache_evictions(), 0);
        assert!(exp.reuse_hits > 0, "the replay must derive answers");
    }
}

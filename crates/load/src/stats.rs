//! Latency aggregation: quantiles and means over per-request durations.

/// Summary quantiles over one run's per-request latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Requests measured.
    pub count: usize,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Slowest request, nanoseconds.
    pub max_ns: u64,
    /// Mean latency, nanoseconds.
    pub mean_ns: u64,
}

/// Summarize `latencies` (nanoseconds per request). An empty slice
/// summarizes to all zeros.
pub fn summarize(latencies: &[u64]) -> LatencySummary {
    if latencies.is_empty() {
        return LatencySummary { count: 0, p50_ns: 0, p90_ns: 0, p99_ns: 0, max_ns: 0, mean_ns: 0 };
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let total: u128 = sorted.iter().map(|&v| v as u128).sum();
    LatencySummary {
        count: sorted.len(),
        p50_ns: quantile(&sorted, 0.50),
        p90_ns: quantile(&sorted, 0.90),
        p99_ns: quantile(&sorted, 0.99),
        max_ns: *sorted.last().expect("non-empty"),
        mean_ns: (total / sorted.len() as u128) as u64,
    }
}

/// Nearest-rank quantile over an ascending slice.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_summarizes_to_zeros() {
        let s = summarize(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn quantiles_of_a_known_sequence() {
        // 1..=100 ns, shuffled order must not matter.
        let mut values: Vec<u64> = (1..=100).rev().collect();
        values.swap(0, 50);
        let s = summarize(&values);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ns, 51, "nearest rank of the median over 1..=100");
        assert_eq!(s.p90_ns, 90);
        assert_eq!(s.p99_ns, 99);
        assert_eq!(s.max_ns, 100);
        assert_eq!(s.mean_ns, 50, "floor of 50.5");
    }

    #[test]
    fn single_sample_is_every_quantile() {
        let s = summarize(&[42]);
        assert_eq!((s.p50_ns, s.p99_ns, s.max_ns, s.mean_ns), (42, 42, 42, 42));
    }
}

//! The load runner: a worker pool of persistent HTTP clients driving a
//! schedule at a target request rate.
//!
//! The schedule is split round-robin across the workers; each worker
//! opens one keep-alive [`Client`] and paces itself against an open-loop
//! deadline ladder (request `i` is *due* at `start + i × interval`; a
//! worker that falls behind sends immediately — queueing shows up as
//! latency, the way a real closed client sees it). The per-request
//! latencies and the client connect counts come back in the
//! [`RunReport`]; the engine-side counters are read from `/stats` by the
//! caller.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cvopt_serve::Client;

use crate::mix::Statement;

/// How many times one statement may be re-sent after `503`s before the
/// run is declared stuck.
pub const MAX_ATTEMPTS: u32 = 100;

/// Load-generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Concurrent load workers (each with one persistent connection).
    pub workers: usize,
    /// Aggregate target request rate, requests/second, spread evenly
    /// across the workers. `0.0` disables pacing (send back-to-back).
    pub target_rps: f64,
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-request latencies, nanoseconds, in worker-merge order.
    pub latencies_ns: Vec<u64>,
    /// Wall-clock time from the synchronized start to the last response.
    pub elapsed: Duration,
    /// TCP connections opened across all workers (keep-alive pins this
    /// to exactly one per worker).
    pub connects: u64,
    /// Requests issued (every one eventually answered `200 OK`).
    pub requests: usize,
    /// `503` answers received (queue backpressure or admission control).
    pub rejected_503: u64,
    /// Requests re-sent after a `503` (each rejection is retried with a
    /// linear backoff until it succeeds or the attempt cap trips).
    pub retries: u64,
}

/// Drive `schedule` against the server at `addr`. A `503` (backpressure
/// or admission control) is retried with a linear backoff — it counts in
/// `rejected_503`/`retries`, and its latency row covers the whole
/// retried exchange, the way a polite real client experiences it. Panics
/// on any other non-`200` response, on transport errors, and when one
/// statement is rejected [`MAX_ATTEMPTS`] times — the harness's counters
/// are only meaningful for a fully-served schedule.
pub fn run(addr: SocketAddr, schedule: &[Statement], config: RunConfig) -> RunReport {
    let workers = config.workers.max(1);
    // Open-loop deadline spacing per worker: the aggregate rate divided
    // by the pool, expressed as the gap between one worker's requests.
    let interval = (config.target_rps > 0.0)
        .then(|| Duration::from_secs_f64(workers as f64 / config.target_rps));
    let barrier = Arc::new(Barrier::new(workers + 1));

    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let statements: Vec<Statement> =
                schedule.iter().skip(w).step_by(workers).cloned().collect();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::new(addr);
                let mut latencies = Vec::with_capacity(statements.len());
                let mut rejected = 0u64;
                let mut retries = 0u64;
                barrier.wait();
                let start = Instant::now();
                for (i, stmt) in statements.iter().enumerate() {
                    if let Some(interval) = interval {
                        let due = start + interval * i as u32;
                        let now = Instant::now();
                        if due > now {
                            std::thread::sleep(due - now);
                        }
                    }
                    let sent = Instant::now();
                    let mut attempt = 0u32;
                    let (status, body) = loop {
                        let (status, body) =
                            client.post("/query", &stmt.query_body()).expect("load request");
                        if status != 503 {
                            break (status, body);
                        }
                        rejected += 1;
                        attempt += 1;
                        assert!(
                            attempt < MAX_ATTEMPTS,
                            "{}: still 503 after {MAX_ATTEMPTS} attempts",
                            stmt.sql
                        );
                        retries += 1;
                        std::thread::sleep(Duration::from_millis(2 * u64::from(attempt)));
                    };
                    assert_eq!(status, 200, "{}: {body}", stmt.sql);
                    latencies.push(sent.elapsed().as_nanos() as u64);
                }
                (latencies, client.connects(), rejected, retries)
            })
        })
        .collect();

    barrier.wait();
    let start = Instant::now();
    let mut latencies_ns = Vec::with_capacity(schedule.len());
    let mut connects = 0u64;
    let mut rejected_503 = 0u64;
    let mut retries = 0u64;
    for handle in handles {
        let (lat, conns, rej, ret) = handle.join().expect("load worker");
        latencies_ns.extend(lat);
        connects += conns;
        rejected_503 += rej;
        retries += ret;
    }
    let elapsed = start.elapsed();
    RunReport {
        requests: latencies_ns.len(),
        latencies_ns,
        elapsed,
        connects,
        rejected_503,
        retries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix;
    use cvopt_core::Engine;
    use cvopt_datagen::{generate_openaq, OpenAqConfig};
    use cvopt_serve::{client, Json, Server, ServerConfig};

    fn fixture_server(workers: usize) -> Server {
        let mut engine = Engine::new().with_seed(7);
        engine.register(mix::TABLE, generate_openaq(&OpenAqConfig::with_rows(20_000)));
        let config = ServerConfig {
            workers,
            thread_budget: workers,
            keepalive_idle: Duration::from_secs(300),
            keepalive_max_requests: usize::MAX,
            ..ServerConfig::default()
        };
        Server::start(engine, config).expect("start server")
    }

    fn stat(stats: &Json, field: &str) -> u64 {
        stats.get(field).and_then(Json::as_u64).unwrap_or_else(|| panic!("stat {field}"))
    }

    /// A bare replay (no seeding or re-optimization): a concurrent pool
    /// over keep-alive connections misses once per distinct problem
    /// (coalesced) and hits on every repeat, with one TCP connect per
    /// worker.
    #[test]
    fn concurrent_run_matches_expected_counters() {
        let server = fixture_server(2);
        let schedule = mix::schedule(7, 24);
        let expected = mix::expected(&schedule);

        let report = run(server.addr(), &schedule, RunConfig { workers: 3, target_rps: 0.0 });
        assert_eq!(report.requests, 24);
        assert_eq!(report.latencies_ns.len(), 24);
        assert_eq!(report.connects, 3, "keep-alive: one connect per load worker");

        let (status, body) = client::get(server.addr(), "/stats").expect("stats");
        assert_eq!(status, 200);
        let stats = Json::parse(&body).expect("stats json");
        assert_eq!(stat(&stats, "stats_passes"), expected.distinct_problems as u64);
        assert_eq!(stat(&stats, "cache_misses"), expected.distinct_problems as u64);
        assert_eq!(
            stat(&stats, "cache_hits"),
            (expected.approximate - expected.distinct_problems) as u64
        );
        assert_eq!(stat(&stats, "cache_evictions"), 0);
        // requests_served counts the /stats probe itself; reuses count
        // every request after the first on each load connection.
        assert_eq!(stat(&stats, "requests_served"), 24 + 1);
        assert_eq!(stat(&stats, "keepalive_reuses"), 24 - 3);
        server.shutdown();
    }

    /// With per-peer admission control on, the runner absorbs the 503s:
    /// every statement is still served, the rejections and re-sends are
    /// counted, and the server-side `admission_rejections` counter
    /// agrees with the client-side tally.
    #[test]
    fn admission_rejections_are_retried_and_counted() {
        let mut engine = Engine::new().with_seed(7);
        engine.register(mix::TABLE, generate_openaq(&OpenAqConfig::with_rows(20_000)));
        let config = ServerConfig {
            workers: 2,
            thread_budget: 2,
            keepalive_idle: Duration::from_secs(300),
            keepalive_max_requests: usize::MAX,
            admission_rate: 20.0,
            admission_burst: 2.0,
            ..ServerConfig::default()
        };
        let server = Server::start(engine, config).expect("start server");

        let schedule = mix::schedule(5, 12);
        let report = run(server.addr(), &schedule, RunConfig { workers: 2, target_rps: 0.0 });
        assert_eq!(report.requests, 12, "every request is eventually answered");
        assert!(
            report.rejected_503 > 0,
            "12 back-to-back requests against burst 2 at 20 req/s must see rejections"
        );
        assert_eq!(report.retries, report.rejected_503, "each 503 is re-sent exactly once");

        // The /stats probe passes admission too: give the bucket time to
        // refill a token before asking.
        std::thread::sleep(Duration::from_millis(150));
        let (status, body) = client::get(server.addr(), "/stats").expect("stats");
        assert_eq!(status, 200);
        let stats = Json::parse(&body).expect("stats json");
        assert_eq!(stat(&stats, "admission_rejections"), report.rejected_503);
        assert_eq!(stat(&stats, "requests_rejected"), 0, "no queue backpressure in this run");
        server.shutdown();
    }

    /// Pacing stretches the run: 8 requests at 100 req/s aggregate must
    /// take at least the deadline ladder's span.
    #[test]
    fn target_rate_paces_the_run() {
        let server = fixture_server(2);
        // Warm the cache so per-request service time is small and the
        // floor below is pacing, not sampling work.
        let schedule = mix::schedule(3, 8);
        run(server.addr(), &schedule, RunConfig { workers: 2, target_rps: 0.0 });

        let report = run(server.addr(), &schedule, RunConfig { workers: 2, target_rps: 100.0 });
        // Each of 2 workers sends 4 requests 20ms apart: last is due at
        // 60ms. Allow generous slop below that for coarse sleeping.
        assert!(
            report.elapsed >= Duration::from_millis(55),
            "paced run finished in {:?}",
            report.elapsed
        );
        server.shutdown();
    }
}

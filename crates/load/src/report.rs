//! The snapshot writer: `BENCH_serving.json` in the bench harness's
//! shape, so `bench_diff` needs no second parser.
//!
//! Rows whose id starts with `counters/` become gating rows once the
//! group prefix is joined on (`serving/counters/...`): `bench_diff`
//! fails CI when one moves more than its threshold in either direction.
//! Every other row (latency quantiles, throughput) diffs as advisory
//! wall-clock time.

use std::path::{Path, PathBuf};

/// One snapshot row. The value lands in `median_ns`/`mean_ns` — a
/// counter value for `counters/...` ids, nanoseconds otherwise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Benchmark id within the group, e.g. `counters/phase1/cache_hits`.
    pub id: String,
    /// The recorded value.
    pub value: u64,
}

impl Row {
    /// Shorthand constructor.
    pub fn new(id: impl Into<String>, value: u64) -> Row {
        Row { id: id.into(), value }
    }
}

/// Render the snapshot JSON for `group`.
pub fn snapshot_json(group: &str, rows: &[Row]) -> String {
    let mut body = format!("{{\n  \"group\": \"{group}\",\n  \"benchmarks\": {{\n");
    for (i, row) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        body.push_str(&format!(
            "    \"{}\": {{\"median_ns\": {v}, \"mean_ns\": {v}, \"iters\": 1}}{comma}\n",
            row.id,
            v = row.value,
        ));
    }
    body.push_str("  }\n}\n");
    body
}

/// Write `BENCH_<group>.json` under `dir` and return its path.
pub fn write_snapshot(dir: &Path, group: &str, rows: &[Row]) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{group}.json"));
    std::fs::write(&path, snapshot_json(group, rows))?;
    Ok(path)
}

/// The snapshot directory: `CVOPT_BENCH_DIR`, defaulting to the current
/// directory (same contract as the bench harness and the `counters`
/// bin).
pub fn bench_dir() -> PathBuf {
    PathBuf::from(std::env::var("CVOPT_BENCH_DIR").unwrap_or_else(|_| ".".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_shape_matches_the_bench_harness() {
        let rows = [Row::new("counters/phase1/cache_hits", 17), Row::new("latency/p50", 1_250_000)];
        let json = snapshot_json("serving", &rows);
        assert!(json.contains("\"group\": \"serving\""));
        assert!(json.contains(
            "\"counters/phase1/cache_hits\": {\"median_ns\": 17, \"mean_ns\": 17, \"iters\": 1},"
        ));
        assert!(json.contains(
            "\"latency/p50\": {\"median_ns\": 1250000, \"mean_ns\": 1250000, \"iters\": 1}\n"
        ));
        // Valid JSON seam: last row carries no trailing comma.
        assert!(json.ends_with("  }\n}\n"));
    }

    #[test]
    fn write_snapshot_names_the_file_after_the_group() {
        let dir = std::env::temp_dir().join(format!("cvopt_load_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = write_snapshot(&dir, "serving", &[Row::new("counters/x", 1)]).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_serving.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"counters/x\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

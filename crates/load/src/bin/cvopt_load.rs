//! `cvopt-load` — drive a seeded workload against the CVOPT server and
//! snapshot the run into `BENCH_serving.json`.
//!
//! ```text
//! cvopt-load [--workers N] [--requests N] [--rate R] [--seed N]
//!            [--rows N] [--cache-bytes N] [--addr HOST:PORT]
//! ```
//!
//! Two phases, one snapshot:
//!
//! 1. **Seed → re-optimize → concurrent replay, unbounded cache** — the
//!    hot/cold statements run sequentially to populate the query log,
//!    one `POST /reoptimize` consolidates it into a durable sample, then
//!    a worker pool of persistent keep-alive clients paced at `--rate`
//!    aggregate requests/second replays the full schedule (including the
//!    never-seeded derived pool, answered by the reuse planner without
//!    drawing — `draws_avoided`). Coalescing and the frozen durable set
//!    make the engine counters a pure function of the schedule; the
//!    harness asserts they match [`cvopt_load::expected`] before
//!    recording them.
//! 2. **Sequential, tiny cache budget** (`--cache-bytes`) — the same
//!    schedule through one connection against one worker, so the
//!    eviction counters are fully deterministic.
//! 3. **Streaming ingest into a windowed table** — the last slice of the
//!    fixture is held back, registered with a retention window, and
//!    replayed in `POST /ingest` batches; the durable sample created by
//!    `/reoptimize` must stay maintained without a single extra
//!    statistics pass, and one `/rotate` retires the old half of the
//!    window. Every counter is a pure function of `--rows` and `--seed`.
//!
//! The snapshot lands in `CVOPT_BENCH_DIR` (default `.`); its
//! `counters/...` rows gate in `bench_diff`, the latency rows are
//! advisory.

use std::net::SocketAddr;
use std::time::Duration;

use cvopt_core::Engine;
use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_load::{expected, mix, schedule, summarize, Row, RunConfig, RunReport};
use cvopt_serve::{client, Json, Server, ServerConfig};
use cvopt_table::{Column, Table, Value};

fn main() {
    let mut workers: usize = 4;
    let mut requests: usize = 120;
    let mut rate: f64 = 400.0;
    let mut seed: u64 = 7;
    let mut rows: usize = 60_000;
    let mut cache_bytes: u64 = 96 * 1024;
    let mut external: Option<SocketAddr> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--workers" => workers = parse(&value("--workers"), "--workers"),
            "--requests" => requests = parse(&value("--requests"), "--requests"),
            "--rate" => rate = parse(&value("--rate"), "--rate"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--rows" => rows = parse(&value("--rows"), "--rows"),
            "--cache-bytes" => cache_bytes = parse(&value("--cache-bytes"), "--cache-bytes"),
            "--addr" => external = Some(parse(&value("--addr"), "--addr")),
            "--help" | "-h" => {
                println!(
                    "cvopt-load: seeded load harness for the CVOPT server\n\n\
                     options:\n  \
                     --workers N      concurrent load clients (default 4)\n  \
                     --requests N     statements per phase (default 120)\n  \
                     --rate R         aggregate target requests/second; 0 = unpaced (default 400)\n  \
                     --seed N         workload mix and engine seed (default 7)\n  \
                     --rows N         fixture table rows (default 60000)\n  \
                     --cache-bytes N  phase-2 cache budget (default 98304)\n  \
                     --addr H:P       drive an already-running server for phase 1\n\n\
                     writes BENCH_serving.json into CVOPT_BENCH_DIR (default .)"
                );
                return;
            }
            other => fail(&format!("unknown argument '{other}' (try --help)")),
        }
    }
    if workers == 0 || requests == 0 {
        fail("--workers and --requests must be at least 1");
    }

    let table = generate_openaq(&OpenAqConfig::with_rows(rows));
    let sched = schedule(seed, requests);
    let seed_sched = cvopt_load::seeding(&sched);
    let exp = expected(&sched);
    println!(
        "schedule: {} statements ({} approximate over {} distinct problems, {} exact), seed {seed}",
        exp.total, exp.approximate, exp.distinct_problems, exp.exact
    );
    let mut snapshot: Vec<Row> = Vec::new();

    // ── Phase 1: seed → re-optimize → concurrent replay ─────────────────
    let in_process = external.is_none();
    let server = if in_process {
        let mut engine = Engine::new().with_seed(seed);
        engine.register(mix::TABLE, table.clone());
        Some(Server::start(engine, server_config(2)).unwrap_or_else(|e| fail(&e.to_string())))
    } else {
        None
    };
    let addr = external.unwrap_or_else(|| server.as_ref().expect("spawned").addr());

    println!("phase 1: seeding {} hot/cold statements against http://{addr}", seed_sched.len());
    let seed_report = cvopt_load::run(addr, &seed_sched, RunConfig { workers: 1, target_rps: 0.0 });
    let (status, body) =
        client::post(addr, "/reoptimize", &format!(r#"{{"table":"{}"}}"#, mix::TABLE))
            .unwrap_or_else(|e| fail(&e.to_string()));
    if status != 200 {
        fail(&format!("/reoptimize answered {status}: {body}"));
    }
    println!("phase 1: re-optimized; {workers} workers at {rate} req/s replay the full schedule");
    let report = cvopt_load::run(addr, &sched, RunConfig { workers, target_rps: rate });
    let stats = fetch_stats(addr);
    if in_process {
        // The gating contract: coalescing and the frozen durable reuse
        // set make these counters pure functions of the schedule. Fail
        // loudly before snapshotting a nondeterministic run.
        check(&stats, "stats_passes", exp.stats_passes);
        check(&stats, "cache_misses", exp.cache_misses);
        check(&stats, "cache_hits", exp.cache_hits);
        check(&stats, "cached_samples", exp.cached_samples);
        check(&stats, "reuse_hits", exp.reuse_hits);
        check(&stats, "draws_avoided", exp.reuse_hits);
        check(&stats, "cache_evictions", 0);
        // Served: the seeding run, the /reoptimize call, the replay, and
        // the /stats probe itself.
        check(&stats, "requests_served", (exp.seeded + exp.total) as u64 + 2);
        check(&stats, "keepalive_reuses", (exp.seeded - 1 + exp.total - workers) as u64);
        assert_eq!(seed_report.connects, 1, "seeding runs on one connection");
        assert_eq!(report.connects, workers as u64, "keep-alive: one connect per worker");
        assert!(
            stat(&stats, "draws_avoided") > 0,
            "the seeded mix must exercise the reuse planner"
        );
    }
    snapshot.push(Row::new("counters/phase1/seed_requests", exp.seeded as u64));
    snapshot.push(Row::new("counters/phase1/requests", exp.total as u64));
    snapshot.push(Row::new("counters/phase1/client_connects", report.connects));
    // Deterministically zero against the in-process server (admission
    // control is off and the queue never fills); against `--addr` they
    // record how much of the run was absorbed by 503-retries.
    snapshot.push(Row::new("counters/phase1/rejected_503", report.rejected_503));
    snapshot.push(Row::new("counters/phase1/retries", report.retries));
    for field in [
        "stats_passes",
        "cache_misses",
        "cache_hits",
        "reuse_hits",
        "draws_avoided",
        "cached_samples",
        "cache_bytes_held",
        "cache_evictions",
        "keepalive_reuses",
    ] {
        snapshot.push(Row::new(format!("counters/phase1/{field}"), stat(&stats, field)));
    }
    record_latency(&mut snapshot, &report);
    if let Some(server) = server {
        server.shutdown();
    }

    // ── Phase 2: one sequential client, tiny cache budget ───────────────
    println!("phase 2: sequential run under a {cache_bytes}-byte cache budget");
    let mut engine = Engine::new().with_seed(seed).with_cache_bytes(Some(cache_bytes));
    engine.register(mix::TABLE, table.clone());
    let server = Server::start(engine, server_config(1)).unwrap_or_else(|e| fail(&e.to_string()));
    let report = cvopt_load::run(server.addr(), &sched, RunConfig { workers: 1, target_rps: 0.0 });
    let stats = fetch_stats(server.addr());
    let evictions = stat(&stats, "cache_evictions");
    let held = stat(&stats, "cache_bytes_held");
    assert!(evictions > 0, "the phase-2 budget ({cache_bytes}B) must force evictions");
    assert!(held <= cache_bytes, "cache over budget: {held} > {cache_bytes}");
    assert_eq!(report.connects, 1, "sequential phase uses one connection");
    for field in
        ["stats_passes", "cache_misses", "cached_samples", "cache_bytes_held", "cache_evictions"]
    {
        snapshot.push(Row::new(format!("counters/phase2/{field}"), stat(&stats, field)));
    }
    server.shutdown();

    // ── Phase 3: streaming ingest into a windowed table ─────────────────
    let batches: usize = 4;
    let batch_rows: usize = 500;
    let stream_rows = batches * batch_rows;
    if rows <= stream_rows * 2 {
        fail(&format!("--rows must exceed {} for the ingest phase", stream_rows * 2));
    }
    println!("phase 3: {batches} ingest batches of {batch_rows} rows into a windowed table");
    let base = table.take(&(0..rows - stream_rows).collect::<Vec<_>>());
    let mut engine = Engine::new().with_seed(seed);
    engine
        .register_windowed(mix::TABLE, base, "local_time")
        .unwrap_or_else(|e| fail(&e.to_string()));
    let server = Server::start(engine, server_config(1)).unwrap_or_else(|e| fail(&e.to_string()));
    let addr = server.addr();
    let stmt = "SELECT country, AVG(value) FROM openaq GROUP BY country";
    // Seed the query log with two shapes, then consolidate them into one
    // durable — and, on a windowed table, incrementally maintained —
    // sample. (Two shapes so the consolidated multi-spec problem is not
    // already cached; a cache hit would prepare nothing.)
    query_ok(addr, stmt);
    query_ok(addr, "SELECT parameter, AVG(value) FROM openaq GROUP BY parameter");
    let (status, body) =
        client::post(addr, "/reoptimize", &format!(r#"{{"table":"{}"}}"#, mix::TABLE))
            .unwrap_or_else(|e| fail(&e.to_string()));
    if status != 200 {
        fail(&format!("/reoptimize answered {status}: {body}"));
    }
    let passes_before = stat(&fetch_stats(addr), "stats_passes");
    for b in 0..batches {
        let start = rows - stream_rows + b * batch_rows;
        let (status, body) = client::post(addr, "/ingest", &ingest_body(&table, start, batch_rows))
            .unwrap_or_else(|e| fail(&e.to_string()));
        if status != 200 {
            fail(&format!("/ingest answered {status}: {body}"));
        }
    }
    // The post-ingest query must see the appended rows without a fresh
    // statistics pass: the maintained sample answers it.
    query_ok(addr, stmt);
    let stats = fetch_stats(addr);
    check(&stats, "ingested_rows", stream_rows as u64);
    check(&stats, "ingest_batches", batches as u64);
    check(&stats, "maintained_samples", 1);
    check(&stats, "stats_passes", passes_before);
    // Retention: one rotation at the midpoint of the window column; the
    // rebuild behind it is the only permitted extra pass.
    let cutoff = window_midpoint(&table);
    let (status, body) = client::post(
        addr,
        "/rotate",
        &format!(r#"{{"table":"{}","cutoff":{cutoff}}}"#, mix::TABLE),
    )
    .unwrap_or_else(|e| fail(&e.to_string()));
    if status != 200 {
        fail(&format!("/rotate answered {status}: {body}"));
    }
    let stats = fetch_stats(addr);
    check(&stats, "rotations", 1);
    check(&stats, "stats_passes", passes_before + 1);
    if stat(&stats, "rows_retired") == 0 {
        fail("the midpoint rotation must retire rows");
    }
    for field in
        ["ingested_rows", "ingest_batches", "maintained_samples", "stats_passes", "rows_retired"]
    {
        snapshot.push(Row::new(format!("counters/phase3/{field}"), stat(&stats, field)));
    }
    server.shutdown();

    let dir = cvopt_load::report::bench_dir();
    let path = cvopt_load::write_snapshot(&dir, "serving", &snapshot)
        .unwrap_or_else(|e| fail(&format!("write snapshot: {e}")));
    println!("wrote {} ({} rows)", path.display(), snapshot.len());
}

/// The pinned server shape for in-process phases: enough keep-alive
/// headroom that every load connection survives the whole run.
fn server_config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        thread_budget: workers,
        queue_capacity: 64,
        keepalive_idle: Duration::from_secs(300),
        keepalive_max_requests: usize::MAX,
        ..ServerConfig::default()
    }
}

/// POST one approximate statement and insist on a 200.
fn query_ok(addr: SocketAddr, sql: &str) -> Json {
    let (status, body) =
        client::post(addr, "/query", &format!(r#"{{"sql":"{sql}","mode":"approximate"}}"#))
            .unwrap_or_else(|e| fail(&e.to_string()));
    if status != 200 {
        fail(&format!("/query answered {status}: {body}"));
    }
    Json::parse(&body).unwrap_or_else(|e| fail(&format!("bad /query JSON: {e}")))
}

/// Serialize rows `[start, start + len)` of the fixture as a `/ingest`
/// body — one JSON array per row, values in schema order.
fn ingest_body(table: &Table, start: usize, len: usize) -> String {
    let rows = (start..start + len)
        .map(|r| {
            Json::Array(
                table
                    .columns()
                    .iter()
                    .map(|c| match c.value(r) {
                        Value::Int64(v) => Json::Int(v),
                        Value::Float64(v) => Json::Number(v),
                        Value::Bool(v) => Json::Bool(v),
                        Value::Str(s) => Json::string(s.to_string()),
                        Value::Timestamp(v) => Json::Int(v),
                        Value::Null => Json::Null,
                    })
                    .collect(),
            )
        })
        .collect();
    Json::object(vec![("table", Json::string(mix::TABLE)), ("rows", Json::Array(rows))]).to_string()
}

/// The midpoint of the fixture's `local_time` range — a rotation cutoff
/// that deterministically retires roughly half the window.
fn window_midpoint(table: &Table) -> i64 {
    match table.column_by_name("local_time") {
        Ok(Column::Timestamp(v)) => {
            let (min, max) = (v.iter().min().unwrap(), v.iter().max().unwrap());
            min + (max - min) / 2
        }
        other => fail(&format!("local_time must be a timestamp column, got {other:?}")),
    }
}

fn fetch_stats(addr: SocketAddr) -> Json {
    let (status, body) = client::get(addr, "/stats").unwrap_or_else(|e| fail(&e.to_string()));
    if status != 200 {
        fail(&format!("/stats answered {status}: {body}"));
    }
    Json::parse(&body).unwrap_or_else(|e| fail(&format!("bad /stats JSON: {e}")))
}

fn stat(stats: &Json, field: &str) -> u64 {
    stats
        .get(field)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| fail(&format!("/stats lacks {field}: {stats}")))
}

fn check(stats: &Json, field: &str, want: u64) {
    let got = stat(stats, field);
    if got != want {
        fail(&format!("nondeterministic run: {field} = {got}, schedule predicts {want}"));
    }
}

fn record_latency(snapshot: &mut Vec<Row>, report: &RunReport) {
    let summary = summarize(&report.latencies_ns);
    snapshot.push(Row::new("latency/p50", summary.p50_ns));
    snapshot.push(Row::new("latency/p90", summary.p90_ns));
    snapshot.push(Row::new("latency/p99", summary.p99_ns));
    snapshot.push(Row::new("latency/max", summary.max_ns));
    snapshot.push(Row::new(
        "throughput/mean_request_ns",
        (report.elapsed.as_nanos() / report.requests.max(1) as u128) as u64,
    ));
    let rps = report.requests as f64 / report.elapsed.as_secs_f64().max(1e-9);
    println!(
        "  {} requests in {:?} ({rps:.0} req/s), p50 {}µs p99 {}µs",
        report.requests,
        report.elapsed,
        summary.p50_ns / 1_000,
        summary.p99_ns / 1_000,
    );
}

fn parse<T: std::str::FromStr>(value: &str, name: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("invalid value '{value}' for {name}")))
}

fn fail(message: &str) -> ! {
    eprintln!("cvopt-load: {message}");
    std::process::exit(2);
}

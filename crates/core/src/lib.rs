//! # cvopt-core
//!
//! A faithful implementation of **CVOPT** — the query- and data-driven
//! stratified sampling framework of *"Random Sampling for Group-By Queries"*
//! (Nguyen, Shih, Parvathaneni, Xu, Srivastava, Tirthapura; ICDE 2020,
//! [arXiv:1909.02629](https://arxiv.org/abs/1909.02629)).
//!
//! Given a table, a set of group-by queries, and a row budget `M`, CVOPT
//! builds a stratified random sample whose per-stratum sizes *provably
//! minimize* the ℓ2 (or ℓ∞) norm of the coefficients of variation of all
//! per-group estimates.
//!
//! ## Pipeline
//!
//! 1. **Spec** ([`SamplingProblem`], [`QuerySpec`]) — which queries must the
//!    sample answer, with what weights, under which norm.
//! 2. **Statistics** ([`stats::StratumStatistics`]) — one pass computing
//!    `(n_c, μ_{c,ℓ}, σ²_{c,ℓ})` per finest stratum.
//! 3. **Allocation** ([`alloc`]) — the β coefficients of the paper's
//!    Theorems 1–2 / Lemmas 2–3 and the box-constrained √β-proportional
//!    solve (or the ℓ∞ binary search of §5).
//! 4. **Draw** ([`sample`]) — per-stratum reservoir sampling in a second
//!    pass, materialized with Horvitz–Thompson weights.
//! 5. **Estimate** ([`estimate`]) — answer (possibly *new*) group-by
//!    queries, with predicates supplied at query time, from the sample.
//!
//! For serving workloads, the recommended entry point is the long-lived
//! [`Engine`] (see [`engine`]): a table catalog, a prepared-sample cache
//! keyed by canonical problem fingerprints ([`SamplingProblem::fingerprint`]
//! — structurally equal problems hash equal, so repeat queries are
//! zero-scan cache hits), and a unified exact/approximate SQL front-end
//! ([`Engine::query`] with [`QueryMode`]). The engine is safe to share
//! across threads (`&self` queries, coalesced cache misses); the
//! `cvopt-serve` crate wraps it in an HTTP server. The one-call low-level
//! primitive is [`CvOptSampler`]:
//!
//! ```
//! use cvopt_core::{budget_for_rate, CvOptSampler, QuerySpec, SamplingProblem};
//! use cvopt_core::estimate::estimate_single;
//! use cvopt_table::{sql, DataType, TableBuilder, Value};
//!
//! // A toy table: sensor values grouped by country.
//! let mut b = TableBuilder::new(&[("country", DataType::Str), ("value", DataType::Float64)]);
//! for i in 0..5000u32 {
//!     let c = ["US", "VN", "IN"][(i % 3) as usize];
//!     b.push_row(&[Value::str(c), Value::Float64(1.0 + (i % 101) as f64)]).unwrap();
//! }
//! let table = b.finish();
//!
//! // Build a 2% CVOPT sample optimized for AVG(value) GROUP BY country.
//! let problem = SamplingProblem::single(
//!     QuerySpec::group_by(&["country"]).aggregate("value"),
//!     budget_for_rate(&table, 0.02).unwrap(),
//! );
//! let outcome = CvOptSampler::new(problem).with_seed(42).sample(&table).unwrap();
//!
//! // Approximate the query from the sample.
//! let query = sql::compile("SELECT country, AVG(value) FROM t GROUP BY country").unwrap();
//! let approx = estimate_single(&outcome.sample, &query).unwrap();
//! assert_eq!(approx.num_groups(), 3);
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod confidence;
pub mod engine;
pub mod error;
pub mod estimate;
pub mod framework;
pub(crate) mod maintain;
pub mod sample;
pub mod spec;
pub mod stats;
pub mod stream;
pub mod workload;

pub use alloc::{
    compute_betas, linf_allocation, lp_allocation, proportional_allocation, sqrt_allocation,
    Allocation,
};
pub use confidence::{estimate_avg_with_error, AvgEstimate};
pub use cvopt_table::exec::ExecOptions;
pub use cvopt_table::{LocalShard, ShardReader, ShardSet, ShardedTable};
pub use engine::{
    problem_for_query, AggConfidence, CatalogTable, Engine, ExplainReport, IngestReport,
    QueryAnswer, QueryLogEntry, QueryMode, ReoptimizeReport, ReuseInfo, RotateReport, SampleHandle,
    TableSource,
};
pub use error::CvError;
pub use framework::{
    budget_for_rate, budget_for_rows, total_draws, total_draws_avoided, CvOptOutcome, CvOptPlan,
    CvOptSampler,
};
pub use sample::{MaterializedSample, Reservoir, StratifiedSample};
pub use spec::{
    conjunction_atoms, predicate_subsumes, AggColumn, Fingerprinter, Norm, QuerySpec,
    SamplingProblem, VarianceKind,
};
pub use stats::{total_stats_passes, StratumStatistics};
pub use stream::{StreamStratum, StreamingConfig, StreamingSampler};
pub use workload::{Workload, WorkloadQuery};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CvError>;

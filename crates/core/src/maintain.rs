//! Incremental sample maintenance for ingesting tables.
//!
//! A [`MaintainedSample`] keeps, alongside a prepared sample's outcome, the
//! two artifacts the two-pass pipeline derives from the raw rows: the
//! finest-stratification [`GroupIndex`] and the per-partition statistics
//! partials (`partials[partition][group][column]`). Both are *mergeable
//! under append* through contracts the codebase already pins:
//!
//! - The group index merges by first-occurrence key order
//!   ([`GroupIndex::merge_locals`]): folding a batch-local index into the
//!   maintained one yields exactly the index a fresh build over the
//!   extended table would produce — old strata keep their ids, new strata
//!   take the next ids.
//! - Statistics partials are whole **global** partitions (fixed 64Ki-row
//!   ranges anchored to the logical row space), so appending rows dirties
//!   only the partitions at or past `old_rows / CHUNK_ROWS`. Clean
//!   partials are replayed from the cache; a cached partial padded with
//!   default accumulators for strata first seen in the batch is
//!   bit-identical to the fresh kernel's output for that partition, because
//!   a new stratum by definition has no rows there.
//!
//! Allocation and the stratified draw then re-run through the *same* code
//! paths a fresh preparation uses, over bit-identical inputs. The upshot is
//! the maintenance contract the ingest CI pins:
//!
//! > After any sequence of appends, a maintained sample is **byte-identical
//! > to re-preparing from scratch** over the extended table — independent
//! > of how the row stream was split into batches, of thread count, and of
//! > shard layout — while only the appended tail of the table is ever
//! > rescanned.
//!
//! A maintained sample also keeps its sampling **rate** rather than its
//! absolute row budget: on append (or rotation) the problem's budget is
//! rescaled from the creation-time `(budget, rows)` pair to the current row
//! count, so the sample keeps matching the row-count-derived budgets the
//! engine's query planner produces. The rescaled budget is a pure function
//! of the creation state and the *current* row count — never of the batch
//! history — which keeps replayed ingest logs byte-identical for any batch
//! split.
//!
//! Each maintained sample additionally feeds appended rows through a
//! [`StreamingSampler`] — a per-stratum reservoir sketch of the live stream
//! (`stream_held` / `arrivals` surface as ingest telemetry). The sketch
//! never enters the served outcome: served bytes come from the maintained
//! two-pass sample above, which is what makes them provably equal to a
//! from-scratch preparation.

use std::sync::Arc;

use cvopt_table::agg::AggState;
use cvopt_table::exec::{ExecOptions, CHUNK_ROWS};
use cvopt_table::{GroupIndex, ScalarExpr, ShardedTable, Table};

use crate::error::CvError;
use crate::framework::{note_draw, CvOptOutcome, CvOptSampler};
use crate::sample::StratifiedSample;
use crate::spec::SamplingProblem;
use crate::stats::{self, StratumStatistics};
use crate::stream::{StreamingConfig, StreamingSampler};
use crate::Result;

/// A borrowed view of a local catalog table (single or sharded) — the
/// layouts whose rows live in this process and can therefore be maintained
/// incrementally. Remote catalogs append at their shard server and are
/// invalidation-only.
#[derive(Clone, Copy)]
pub(crate) enum LocalCatalog<'a> {
    /// One local table.
    Single(&'a Table),
    /// A local sharded layout.
    Sharded(&'a ShardedTable),
}

impl LocalCatalog<'_> {
    fn num_rows(&self) -> usize {
        match self {
            LocalCatalog::Single(t) => t.num_rows(),
            LocalCatalog::Sharded(t) => t.num_rows(),
        }
    }

    fn build_index(&self, exprs: &[ScalarExpr], exec: &ExecOptions) -> Result<GroupIndex> {
        Ok(match self {
            LocalCatalog::Single(t) => GroupIndex::build_with(t, exprs, exec)?,
            LocalCatalog::Sharded(t) => GroupIndex::build_sharded(t, exprs, exec)?,
        })
    }

    fn tail_partials(
        &self,
        index: &GroupIndex,
        columns: &[ScalarExpr],
        exec: &ExecOptions,
        from_partition: usize,
    ) -> Result<Vec<Vec<Vec<AggState>>>> {
        match self {
            LocalCatalog::Single(t) => {
                stats::tail_partials(t, index, columns, exec, from_partition)
            }
            LocalCatalog::Sharded(t) => {
                stats::tail_partials_sharded(t, index, columns, exec, from_partition)
            }
        }
    }

    /// Draw + materialize through the exact pass a fresh
    /// [`CvOptSampler::sample`]/[`CvOptSampler::sample_sharded`] runs.
    fn draw(
        &self,
        index: &GroupIndex,
        allocation: &[u64],
        seed: u64,
        exec: &ExecOptions,
    ) -> crate::sample::MaterializedSample {
        note_draw();
        match self {
            LocalCatalog::Single(t) => {
                StratifiedSample::draw(index, allocation, seed, exec).materialize(t)
            }
            LocalCatalog::Sharded(t) => {
                StratifiedSample::draw_sharded(index, t, allocation, seed, exec)
                    .materialize_sharded(t)
            }
        }
    }
}

/// One durable prepared sample kept incrementally up to date under append
/// (see the module docs for the maintenance contract).
#[derive(Debug)]
pub(crate) struct MaintainedSample {
    /// The problem the sample currently answers; its budget rescales with
    /// the table (see [`MaintainedSample::scaled_budget`]).
    problem: SamplingProblem,
    /// Budget and row count at creation: the pinned sampling rate.
    base_budget: usize,
    base_rows: usize,
    strata_exprs: Vec<ScalarExpr>,
    /// Maintained finest-stratification index over the current rows.
    index: GroupIndex,
    /// Cached per-partition statistics partials over the current rows.
    partials: Vec<Vec<Vec<AggState>>>,
    /// The maintained outcome — always equal to a fresh preparation.
    outcome: Arc<CvOptOutcome>,
    /// Live per-stratum reservoir sketch of the appended stream (telemetry).
    sketch: StreamingSampler,
}

impl MaintainedSample {
    /// Prepare `problem` over `catalog` and capture the maintenance state.
    /// The outcome is bit-identical to [`CvOptSampler::sample`] (or
    /// `sample_sharded`) with the same seed and options; this counts as one
    /// statistics pass and one draw, exactly like the fresh path.
    pub(crate) fn build(
        problem: SamplingProblem,
        catalog: LocalCatalog<'_>,
        seed: u64,
        exec: &ExecOptions,
    ) -> Result<MaintainedSample> {
        problem.validate()?;
        let strata_exprs = problem.finest_stratification();
        let index = catalog.build_index(&strata_exprs, exec)?;
        let columns = problem.aggregate_columns();
        let partials = catalog.tail_partials(&index, &columns, exec, 0)?;
        stats::record_pass();
        let stats = StratumStatistics::from_partials(&index, &columns, &partials);
        let sampler = CvOptSampler::new(problem.clone()).with_seed(seed).with_exec(*exec);
        let plan = sampler.allocate(strata_exprs.clone(), &index, stats)?;
        let sample = catalog.draw(&index, &plan.allocation.sizes, seed, exec);
        let sketch = StreamingSampler::new(
            columns.len().max(1),
            StreamingConfig { budget: problem.budget.max(1), seed, ..Default::default() },
        );
        Ok(MaintainedSample {
            base_budget: problem.budget,
            base_rows: catalog.num_rows(),
            problem,
            strata_exprs,
            index,
            partials,
            outcome: Arc::new(CvOptOutcome { sample, plan }),
            sketch,
        })
    }

    /// The problem the maintained outcome currently answers.
    pub(crate) fn problem(&self) -> &SamplingProblem {
        &self.problem
    }

    /// The maintained outcome.
    pub(crate) fn outcome(&self) -> &Arc<CvOptOutcome> {
        &self.outcome
    }

    /// Rows held by the live stream sketch.
    #[cfg(test)]
    pub(crate) fn sketch_held(&self) -> usize {
        self.sketch.held()
    }

    /// The creation-time rate projected onto `rows` table rows: a pure
    /// function of `(base_budget, base_rows, rows)`, so replayed ingest
    /// logs rescale identically for any batch split.
    fn scaled_budget(&self, rows: usize) -> usize {
        if self.base_rows == 0 {
            return self.base_budget.max(1);
        }
        let scaled = rows as f64 * self.base_budget as f64 / self.base_rows as f64;
        (scaled.round() as usize).max(1)
    }

    /// Fold an appended batch into the maintained state. `catalog` is the
    /// **already-extended** table whose last `batch.num_rows()` rows are
    /// the batch. Only the dirty partition tail is rescanned; no
    /// statistics pass is recorded. Afterwards [`Self::outcome`] equals a
    /// fresh preparation over `catalog`.
    pub(crate) fn apply_append(
        &mut self,
        catalog: LocalCatalog<'_>,
        batch: &Table,
        seed: u64,
        exec: &ExecOptions,
    ) -> Result<()> {
        let old_rows = self.index.num_rows();
        let new_rows = catalog.num_rows();
        if old_rows + batch.num_rows() != new_rows {
            return Err(CvError::invalid(format!(
                "maintained sample covers {old_rows} rows + batch of {} != table of {new_rows}",
                batch.num_rows()
            )));
        }
        if batch.num_rows() == 0 {
            return Ok(());
        }

        // Batch-local index, merged in row order: identical to rebuilding
        // over the extended table.
        let batch_index = GroupIndex::build_with(batch, &self.strata_exprs, exec)?;
        self.offer_to_sketch(batch, &batch_index, old_rows)?;
        let merged = GroupIndex::merge_locals(&[self.index.clone(), batch_index])?;

        // Replay clean partials, rescan the dirty tail. Partition
        // boundaries are anchored to the global row space, so every
        // partition strictly before `old_rows / CHUNK_ROWS` is untouched
        // by the append; padding a kept partial to the merged width adds
        // default accumulators for batch-new strata, which is exactly what
        // a fresh kernel computes for a stratum absent from the partition.
        let columns = self.problem.aggregate_columns();
        let ncols = columns.len();
        let first_dirty = old_rows / CHUNK_ROWS;
        let tail = catalog.tail_partials(&merged, &columns, exec, first_dirty)?;
        self.partials.truncate(first_dirty);
        for partial in &mut self.partials {
            partial.resize(merged.num_groups(), vec![AggState::default(); ncols]);
        }
        self.partials.extend(tail);

        let stats = StratumStatistics::from_partials(&merged, &columns, &self.partials);
        self.problem.budget = self.scaled_budget(new_rows);
        let sampler = CvOptSampler::new(self.problem.clone()).with_seed(seed).with_exec(*exec);
        let plan = sampler.allocate(self.strata_exprs.clone(), &merged, stats)?;
        let sample = catalog.draw(&merged, &plan.allocation.sizes, seed, exec);
        self.outcome = Arc::new(CvOptOutcome { sample, plan });
        self.index = merged;
        Ok(())
    }

    /// Rebuild from scratch over `catalog` (after a retention rotation,
    /// whose row drops invalidate cached partials wholesale). Costs a full
    /// statistics pass; the budget rescales to the surviving row count.
    pub(crate) fn rebuild(
        &mut self,
        catalog: LocalCatalog<'_>,
        seed: u64,
        exec: &ExecOptions,
    ) -> Result<()> {
        let mut problem = self.problem.clone();
        problem.budget = self.scaled_budget(catalog.num_rows());
        let mut fresh = MaintainedSample::build(problem, catalog, seed, exec)?;
        fresh.base_budget = self.base_budget;
        fresh.base_rows = self.base_rows;
        std::mem::swap(self, &mut fresh);
        self.sketch = std::mem::replace(&mut fresh.sketch, Self::placeholder_sketch(seed));
        Ok(())
    }

    fn placeholder_sketch(seed: u64) -> StreamingSampler {
        StreamingSampler::new(1, StreamingConfig { seed, ..Default::default() })
    }

    /// Feed the batch rows to the live reservoir sketch (telemetry only;
    /// deterministic in row order, so batch splits do not change it).
    fn offer_to_sketch(
        &mut self,
        batch: &Table,
        batch_index: &GroupIndex,
        global_offset: usize,
    ) -> Result<()> {
        let columns = self.problem.aggregate_columns();
        let bound: Vec<_> =
            columns.iter().map(|c| c.bind(batch)).collect::<std::result::Result<_, _>>()?;
        let mut values = vec![0.0f64; columns.len().max(1)];
        for row in 0..batch.num_rows() {
            for (slot, expr) in values.iter_mut().zip(&bound) {
                *slot = expr.f64_at(row).unwrap_or(0.0);
            }
            let gid = batch_index.group_of(row);
            self.sketch.offer(batch_index.key(gid), &values, (global_offset + row) as u32);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QuerySpec;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn row_stream(n: usize) -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::str(["a", "b", "c", "d"][i % 4]),
                    Value::Float64(((i as f64) * 0.61).sin() * 50.0 + (i % 13) as f64),
                    Value::Int64(i as i64),
                ]
            })
            .collect()
    }

    fn schema() -> Vec<(&'static str, DataType)> {
        vec![("g", DataType::Str), ("x", DataType::Float64), ("ts", DataType::Int64)]
    }

    fn table_of(rows: &[Vec<Value>]) -> Table {
        let mut b = TableBuilder::new(&schema());
        for row in rows {
            b.push_row(row).unwrap();
        }
        b.finish()
    }

    fn problem(budget: usize) -> SamplingProblem {
        SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), budget)
    }

    fn assert_outcomes_equal(a: &CvOptOutcome, b: &CvOptOutcome, what: &str) {
        assert_eq!(a.sample.origin, b.sample.origin, "{what}: origin rows");
        assert_eq!(a.sample.row_stratum, b.sample.row_stratum, "{what}: strata");
        let wa: Vec<u64> = a.sample.weights.iter().map(|w| w.to_bits()).collect();
        let wb: Vec<u64> = b.sample.weights.iter().map(|w| w.to_bits()).collect();
        assert_eq!(wa, wb, "{what}: weights");
        assert_eq!(a.plan.allocation.sizes, b.plan.allocation.sizes, "{what}: allocation");
        for (sa, sb) in a.plan.stats.states.iter().zip(&b.plan.stats.states) {
            for (ca, cb) in sa.iter().zip(sb) {
                assert_eq!(ca.mean.to_bits(), cb.mean.to_bits(), "{what}: stats mean");
                assert_eq!(ca.m2.to_bits(), cb.m2.to_bits(), "{what}: stats m2");
            }
        }
    }

    /// Appending in any batch split yields the same maintained outcome as
    /// re-preparing from scratch over the final table.
    #[test]
    fn append_matches_fresh_prepare_for_any_split() {
        let rows = row_stream(3000);
        let seed = 11;
        let exec = ExecOptions::new(2);
        let base = table_of(&rows[..1000]);
        for splits in [vec![1000, 3000], vec![1000, 1500, 2200, 3000], vec![1000, 1001, 3000]] {
            let mut m =
                MaintainedSample::build(problem(50), LocalCatalog::Single(&base), seed, &exec)
                    .unwrap();
            let mut current = base.clone();
            for window in splits.windows(2) {
                let batch = table_of(&rows[window[0]..window[1]]);
                current = current.extended(&batch).unwrap();
                m.apply_append(LocalCatalog::Single(&current), &batch, seed, &exec).unwrap();
            }
            let fresh = CvOptSampler::new(m.problem().clone())
                .with_seed(seed)
                .with_exec(exec)
                .sample(&table_of(&rows))
                .unwrap();
            assert_outcomes_equal(m.outcome(), &fresh, &format!("split {splits:?}"));
            assert_eq!(m.problem().budget, 150, "rate 5% of 3000 rows");
        }
    }

    /// The same holds over a sharded layout, with the batch appended to the
    /// live (last) shard.
    #[test]
    fn sharded_append_matches_fresh_prepare() {
        let rows = row_stream(2400);
        let seed = 4;
        let exec = ExecOptions::new(3);
        let base = ShardedTable::split(&table_of(&rows[..1800]), 3).unwrap();
        let mut m = MaintainedSample::build(problem(90), LocalCatalog::Sharded(&base), seed, &exec)
            .unwrap();
        let mut current = base;
        for bounds in [(1800, 2000), (2000, 2400)] {
            let batch = table_of(&rows[bounds.0..bounds.1]);
            current = current.extended(&batch).unwrap();
            m.apply_append(LocalCatalog::Sharded(&current), &batch, seed, &exec).unwrap();
        }
        let fresh = CvOptSampler::new(m.problem().clone())
            .with_seed(seed)
            .with_exec(exec)
            .sample_sharded(&current)
            .unwrap();
        assert_outcomes_equal(m.outcome(), &fresh, "sharded append");
        assert!(m.sketch_held() > 0, "sketch saw the appended rows");
    }

    /// Appends that introduce brand-new strata pad cached partials
    /// correctly: the maintained stats still match a full re-collect.
    #[test]
    fn append_with_new_strata_matches() {
        let base_rows = row_stream(500);
        let seed = 7;
        let exec = ExecOptions::sequential();
        let base = table_of(&base_rows);
        let mut m =
            MaintainedSample::build(problem(40), LocalCatalog::Single(&base), seed, &exec).unwrap();
        // A batch whose group key was never seen before.
        let mut b = TableBuilder::new(&schema());
        for i in 0..200usize {
            b.push_row(&[
                Value::str("zz-new"),
                Value::Float64(1000.0 + i as f64),
                Value::Int64((500 + i) as i64),
            ])
            .unwrap();
        }
        let batch = b.finish();
        let current = base.extended(&batch).unwrap();
        m.apply_append(LocalCatalog::Single(&current), &batch, seed, &exec).unwrap();
        let fresh = CvOptSampler::new(m.problem().clone())
            .with_seed(seed)
            .with_exec(exec)
            .sample(&current)
            .unwrap();
        assert_outcomes_equal(m.outcome(), &fresh, "new-strata append");
        assert_eq!(m.outcome().plan.num_strata(), 5);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// **Batch-boundary invariance**: any partition of the same row
        /// stream into ingest batches yields a bit-identical maintained
        /// sample — the one a fresh preparation over the final table
        /// produces.
        #[test]
        fn maintenance_is_batch_boundary_invariant(
            cuts in proptest::collection::vec(1usize..1400, 0..6),
            seed in 0u64..32,
        ) {
            let rows = row_stream(2000);
            let exec = ExecOptions::new(2);
            let base = table_of(&rows[..600]);
            let mut bounds: Vec<usize> = cuts.iter().map(|c| 600 + c).collect();
            bounds.push(600);
            bounds.push(2000);
            bounds.sort_unstable();
            bounds.dedup();
            let mut m = MaintainedSample::build(
                problem(30),
                LocalCatalog::Single(&base),
                seed,
                &exec,
            )
            .unwrap();
            let mut current = base;
            for window in bounds.windows(2) {
                let batch = table_of(&rows[window[0]..window[1]]);
                current = current.extended(&batch).unwrap();
                m.apply_append(LocalCatalog::Single(&current), &batch, seed, &exec).unwrap();
            }
            let fresh = CvOptSampler::new(m.problem().clone())
                .with_seed(seed)
                .with_exec(exec)
                .sample(&current)
                .unwrap();
            proptest::prop_assert_eq!(&m.outcome().sample.origin, &fresh.sample.origin);
            let wa: Vec<u64> = m.outcome().sample.weights.iter().map(|w| w.to_bits()).collect();
            let wb: Vec<u64> = fresh.sample.weights.iter().map(|w| w.to_bits()).collect();
            proptest::prop_assert_eq!(wa, wb);
            proptest::prop_assert_eq!(
                &m.outcome().plan.allocation.sizes,
                &fresh.plan.allocation.sizes
            );
            proptest::prop_assert_eq!(m.problem().budget, 100, "5% of 2000 rows");
        }
    }

    /// Rebuild (post-rotation) rescales the budget from the pinned rate.
    #[test]
    fn rebuild_rescales_budget() {
        let rows = row_stream(1000);
        let seed = 1;
        let exec = ExecOptions::sequential();
        let base = table_of(&rows);
        let mut m = MaintainedSample::build(problem(100), LocalCatalog::Single(&base), seed, &exec)
            .unwrap();
        let kept = table_of(&rows[600..]);
        m.rebuild(LocalCatalog::Single(&kept), seed, &exec).unwrap();
        assert_eq!(m.problem().budget, 40, "10% of the surviving 400 rows");
        let fresh = CvOptSampler::new(m.problem().clone())
            .with_seed(seed)
            .with_exec(exec)
            .sample(&kept)
            .unwrap();
        assert_outcomes_equal(m.outcome(), &fresh, "rebuild");
    }
}

//! Streaming CVOPT: adaptive stratified sampling over a stream of rows
//! (the paper's §8 future-work item (3), in the spirit of the authors' own
//! follow-up "Stratified random sampling over streaming and stored data",
//! EDBT 2019).
//!
//! The batch algorithm needs two passes; a stream allows one. The sampler
//! processes the stream in *epochs*:
//!
//! 1. Within an epoch, every arriving row updates its stratum's running
//!    statistics (always exact) and is offered to the stratum's reservoir.
//! 2. At epoch boundaries the CVOPT allocation is re-solved from the
//!    statistics so far, and reservoir capacities are adapted: shrinking
//!    evicts uniformly at random (which preserves uniformity of the kept
//!    set), growing raises the capacity for future arrivals.
//!
//! Growing a reservoir mid-stream cannot retroactively sample the past, so
//! per-stratum samples are *approximately* uniform after capacity
//! increases — the same trade-off accepted by single-pass adaptive
//! stratified samplers in the literature (e.g. S-VOILA). The
//! [`StreamingSampler::finish`] weights use the realized `n_c/s_c`, so
//! COUNT/SUM estimators stay unbiased under within-stratum uniformity.
//!
//! New strata (unseen group keys) are admitted on arrival with a seed
//! capacity, so late-appearing groups are never lost outright.

use cvopt_table::agg::AggState;
use cvopt_table::fxhash::FxHashMap;
use cvopt_table::KeyAtom;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::alloc::sqrt_allocation;
use crate::spec::VarianceKind;

/// Running state for one stratum of the stream.
#[derive(Debug, Clone)]
struct StratumState {
    key: Vec<KeyAtom>,
    stats: Vec<AggState>,
    seen: u64,
    capacity: usize,
    /// Sampled caller-supplied row ids.
    rows: Vec<u32>,
}

/// Configuration for the streaming sampler.
#[derive(Debug, Clone)]
pub struct StreamingConfig {
    /// Total sample budget across strata.
    pub budget: usize,
    /// Re-solve the allocation every this many arriving rows.
    pub epoch: usize,
    /// Capacity granted to a brand-new stratum until the next re-solve.
    pub seed_capacity: usize,
    /// RNG seed.
    pub seed: u64,
    /// Variance estimator for the β computation.
    pub variance: VarianceKind,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            budget: 10_000,
            epoch: 50_000,
            seed_capacity: 8,
            seed: 0,
            variance: VarianceKind::Sample,
        }
    }
}

/// A single-pass, epoch-adaptive CVOPT sampler for one group-by spec with
/// one or more aggregate columns.
#[derive(Debug)]
pub struct StreamingSampler {
    config: StreamingConfig,
    num_columns: usize,
    strata: Vec<StratumState>,
    index: FxHashMap<Vec<KeyAtom>, u32>,
    rng: StdRng,
    arrivals: u64,
}

impl StreamingSampler {
    /// Sampler tracking `num_columns` aggregate columns per row.
    pub fn new(num_columns: usize, config: StreamingConfig) -> Self {
        assert!(num_columns > 0, "need at least one aggregate column");
        assert!(config.budget > 0, "budget must be positive");
        assert!(config.epoch > 0, "epoch must be positive");
        let rng = StdRng::seed_from_u64(config.seed);
        StreamingSampler {
            config,
            num_columns,
            strata: Vec::new(),
            index: FxHashMap::default(),
            rng,
            arrivals: 0,
        }
    }

    /// Number of strata seen so far.
    pub fn num_strata(&self) -> usize {
        self.strata.len()
    }

    /// Rows offered so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Currently held sample rows.
    pub fn held(&self) -> usize {
        self.strata.iter().map(|s| s.rows.len()).sum()
    }

    /// Offer a stream row: its group key, its aggregate values, and an
    /// opaque row id the caller can resolve later.
    pub fn offer(&mut self, key: &[KeyAtom], values: &[f64], row_id: u32) {
        assert_eq!(values.len(), self.num_columns, "one value per tracked column");
        self.arrivals += 1;
        let sid = match self.index.get(key) {
            Some(&sid) => sid,
            None => {
                let sid = self.strata.len() as u32;
                self.index.insert(key.to_vec(), sid);
                self.strata.push(StratumState {
                    key: key.to_vec(),
                    stats: vec![AggState::default(); self.num_columns],
                    seen: 0,
                    capacity: self.config.seed_capacity,
                    rows: Vec::new(),
                });
                sid
            }
        };
        let stratum = &mut self.strata[sid as usize];
        stratum.seen += 1;
        for (slot, &v) in stratum.stats.iter_mut().zip(values) {
            slot.update(v);
        }
        // Algorithm R against the stratum's current capacity.
        if stratum.rows.len() < stratum.capacity {
            stratum.rows.push(row_id);
        } else if stratum.capacity > 0 {
            let j = self.rng.random_range(0..stratum.seen);
            if (j as usize) < stratum.capacity {
                stratum.rows[j as usize] = row_id;
            }
        }

        if self.arrivals.is_multiple_of(self.config.epoch as u64) {
            self.reallocate();
        }
    }

    /// Re-solve the CVOPT allocation from the running statistics and adapt
    /// reservoir capacities (public so callers can force an adaptation,
    /// e.g. at the end of a day's load).
    pub fn reallocate(&mut self) {
        if self.strata.is_empty() {
            return;
        }
        // SASG/MASG β: Σ_j σ²_j/μ²_j per stratum (weights 1).
        let alpha_of = |s: &StratumState| {
            let mut alpha = 0.0;
            for st in &s.stats {
                let mu = st.mean;
                let sigma2 = match self.config.variance {
                    VarianceKind::Sample => st.sample_variance(),
                    VarianceKind::Population => st.population_variance(),
                };
                if sigma2 > 0.0 && mu != 0.0 {
                    alpha += sigma2 / (mu * mu);
                }
            }
            alpha
        };
        let alphas: Vec<f64> = self.strata.iter().map(alpha_of).collect();
        let caps: Vec<u64> = self.strata.iter().map(|s| s.seen).collect();
        let alloc = sqrt_allocation(&alphas, &caps, self.config.budget as u64, 1);
        for (s, &target) in self.strata.iter_mut().zip(&alloc.sizes) {
            let target = target as usize;
            if target < s.rows.len() {
                // Shrink: uniform random eviction keeps the kept set uniform.
                while s.rows.len() > target {
                    let victim = self.rng.random_range(0..s.rows.len());
                    s.rows.swap_remove(victim);
                }
            }
            s.capacity = target;
        }
    }

    /// Finish the stream: final re-solve, then emit `(key, population,
    /// sampled_row_ids, weight)` per stratum, weight = `n_c / s_c`.
    pub fn finish(mut self) -> Vec<StreamStratum> {
        self.reallocate();
        self.strata
            .into_iter()
            .map(|s| {
                let weight = if s.rows.is_empty() {
                    f64::INFINITY
                } else {
                    s.seen as f64 / s.rows.len() as f64
                };
                StreamStratum { key: s.key, population: s.seen, rows: s.rows, weight }
            })
            .collect()
    }
}

/// Output of a finished streaming pass, per stratum.
#[derive(Debug, Clone)]
pub struct StreamStratum {
    /// Group key.
    pub key: Vec<KeyAtom>,
    /// Rows seen in this stratum.
    pub population: u64,
    /// Sampled row ids.
    pub rows: Vec<u32>,
    /// Horvitz–Thompson expansion weight `n_c / s_c`.
    pub weight: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key_of(name: &str) -> Vec<KeyAtom> {
        vec![KeyAtom::from(name)]
    }

    /// Deterministic value stream: three groups with different sizes,
    /// means, and spreads.
    fn run_stream(budget: usize, epoch: usize) -> Vec<StreamStratum> {
        let mut sampler = StreamingSampler::new(
            1,
            StreamingConfig { budget, epoch, seed: 7, ..Default::default() },
        );
        let mut k = 1u64;
        let mut row_id = 0u32;
        for block in 0..100 {
            for (name, count, mean, spread) in
                [("big", 90usize, 10.0, 0.5), ("mid", 9, 100.0, 50.0), ("rare", 1, 40.0, 20.0)]
            {
                for _ in 0..count {
                    k = k.wrapping_mul(6364136223846793005).wrapping_add(99);
                    let u = ((k >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                    sampler.offer(&key_of(name), &[mean + u * 2.0 * spread], row_id);
                    row_id += 1;
                }
            }
            let _ = block;
        }
        sampler.finish()
    }

    #[test]
    fn respects_budget_and_covers_all_strata() {
        let strata = run_stream(500, 1000);
        assert_eq!(strata.len(), 3);
        let total: usize = strata.iter().map(|s| s.rows.len()).sum();
        assert!(total <= 500, "held {total} > budget");
        assert!(total >= 450, "held {total}, budget mostly unused");
        for s in &strata {
            assert!(!s.rows.is_empty(), "stratum {:?} lost entirely", s.key);
            assert!(s.rows.len() as u64 <= s.population);
        }
    }

    #[test]
    fn populations_are_exact() {
        let strata = run_stream(300, 700);
        let by_name = |n: &str| strata.iter().find(|s| s.key[0].to_string() == n).unwrap();
        assert_eq!(by_name("big").population, 9000);
        assert_eq!(by_name("mid").population, 900);
        assert_eq!(by_name("rare").population, 100);
    }

    #[test]
    fn high_variance_stratum_gets_more_than_proportional() {
        let strata = run_stream(500, 1000);
        let by_name = |n: &str| strata.iter().find(|s| s.key[0].to_string() == n).unwrap();
        let big = by_name("big");
        let mid = by_name("mid");
        // "mid" is 10x smaller but far more variable (CV 0.5/... vs 0.05);
        // CVOPT must allocate it more than its population share.
        let mid_share = mid.rows.len() as f64 / (mid.rows.len() + big.rows.len()) as f64;
        let mid_pop_share = 900.0 / 9900.0;
        assert!(
            mid_share > 2.0 * mid_pop_share,
            "mid sample share {mid_share} vs population share {mid_pop_share}"
        );
    }

    #[test]
    fn weights_reconstruct_population() {
        let strata = run_stream(400, 900);
        let total: f64 = strata.iter().map(|s| s.weight * s.rows.len() as f64).sum();
        assert!((total - 10_000.0).abs() < 1e-6, "weighted total {total}");
    }

    #[test]
    fn sample_mean_tracks_stream_mean() {
        // The kept rows of each stratum should have a mean near the
        // stratum's true running mean (uniformity sanity check). We re-run
        // the stream capturing values by row id.
        let mut sampler = StreamingSampler::new(
            1,
            StreamingConfig { budget: 600, epoch: 500, seed: 3, ..Default::default() },
        );
        let mut values = Vec::new();
        let mut k = 9u64;
        for i in 0..8000u32 {
            k = k.wrapping_mul(6364136223846793005).wrapping_add(1);
            let u = ((k >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
            let (name, v) = if i % 10 == 0 { ("a", 50.0 + u * 40.0) } else { ("b", 5.0 + u) };
            values.push(v);
            sampler.offer(&key_of(name), &[v], i);
        }
        let strata = sampler.finish();
        for s in &strata {
            let sample_mean: f64 =
                s.rows.iter().map(|&r| values[r as usize]).sum::<f64>() / s.rows.len() as f64;
            let name = s.key[0].to_string();
            let true_mean = if name == "a" { 50.0 } else { 5.0 };
            let tolerance = if name == "a" { 6.0 } else { 0.4 };
            assert!(
                (sample_mean - true_mean).abs() < tolerance,
                "{name}: sample mean {sample_mean} vs ~{true_mean}"
            );
        }
    }

    #[test]
    fn late_arriving_stratum_admitted() {
        let mut sampler = StreamingSampler::new(
            1,
            StreamingConfig { budget: 100, epoch: 200, seed: 1, ..Default::default() },
        );
        for i in 0..1000u32 {
            sampler.offer(&key_of("early"), &[10.0 + (i % 7) as f64], i);
        }
        for i in 1000..1020u32 {
            sampler.offer(&key_of("late"), &[99.0 + (i % 3) as f64], i);
        }
        let strata = sampler.finish();
        let late = strata.iter().find(|s| s.key[0].to_string() == "late").unwrap();
        assert!(!late.rows.is_empty(), "late stratum must be sampled");
        assert_eq!(late.population, 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_stream(300, 800);
        let b = run_stream(300, 800);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rows, y.rows);
        }
    }

    #[test]
    #[should_panic(expected = "one value per tracked column")]
    fn arity_checked() {
        let mut s = StreamingSampler::new(2, StreamingConfig::default());
        s.offer(&key_of("x"), &[1.0], 0);
    }
}

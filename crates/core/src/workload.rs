//! Workload-driven weights (paper §4.3).
//!
//! A workload is a multiset of group-by queries (e.g. from a warehouse's
//! periodic-query log). Each query *stratifies its aggregation columns into
//! aggregation groups* — pairs of (aggregation column, group-by value
//! assignment) restricted to groups that actually match the query's
//! predicate. The frequency of each aggregation group across the workload
//! becomes its weight in the CVOPT optimization.
//!
//! Note: the paper's Table 3 lists frequency 25 for the `(age, major=*)`
//! groups, which is not reproducible from Table 2's stated repeats
//! (A=20, B=10, C=15): only query A produces those groups, giving 20. We
//! implement the defined semantics (sum of repeats of producing queries) and
//! document the discrepancy here.

use cvopt_table::{GroupIndex, Predicate, ScalarExpr, Table};

use crate::spec::{AggColumn, QuerySpec};
use crate::Result;

/// One query pattern in a workload, with its observed frequency.
#[derive(Debug, Clone)]
pub struct WorkloadQuery {
    /// Group-by expressions.
    pub group_by: Vec<ScalarExpr>,
    /// Aggregated columns.
    pub agg_columns: Vec<ScalarExpr>,
    /// Optional predicate (restricts which aggregation groups the query
    /// produces).
    pub predicate: Option<Predicate>,
    /// Number of occurrences in the workload.
    pub repeats: u64,
}

impl WorkloadQuery {
    /// Query grouping by `group_by` columns and averaging `agg_columns`.
    pub fn new(group_by: &[&str], agg_columns: &[&str], repeats: u64) -> Self {
        WorkloadQuery {
            group_by: group_by.iter().map(|c| ScalarExpr::col(*c)).collect(),
            agg_columns: agg_columns.iter().map(|c| ScalarExpr::col(*c)).collect(),
            predicate: None,
            repeats,
        }
    }

    /// Attach a predicate.
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = Some(predicate);
        self
    }
}

/// A workload: query patterns plus frequencies.
#[derive(Debug, Clone, Default)]
pub struct Workload {
    /// The query patterns.
    pub queries: Vec<WorkloadQuery>,
}

impl Workload {
    /// Empty workload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a query pattern.
    pub fn push(&mut self, query: WorkloadQuery) -> &mut Self {
        self.queries.push(query);
        self
    }

    /// Total workload size (sum of repeats).
    pub fn total_repeats(&self) -> u64 {
        self.queries.iter().map(|q| q.repeats).sum()
    }

    /// Deduce aggregation groups and their frequencies against `table`, and
    /// emit weighted [`QuerySpec`]s for the CVOPT planner.
    ///
    /// Queries with the same group-by signature are merged: their columns'
    /// per-group weights are the summed frequencies of every workload query
    /// producing that aggregation group. Groups never requested get weight 0
    /// (they are still covered by the planner's per-stratum minimum).
    pub fn derive_specs(&self, table: &Table) -> Result<Vec<QuerySpec>> {
        // signature -> (group_by exprs, column name -> AggColumn builder)
        let mut order: Vec<String> = Vec::new();
        let mut specs: Vec<QuerySpec> = Vec::new();

        for wq in &self.queries {
            let signature: Vec<String> = wq.group_by.iter().map(|e| e.display_name()).collect();
            let sig_key = signature.join("\u{1}");
            let spec_idx = match order.iter().position(|s| *s == sig_key) {
                Some(i) => i,
                None => {
                    order.push(sig_key);
                    specs.push(QuerySpec { group_by: wq.group_by.clone(), aggregates: Vec::new() });
                    specs.len() - 1
                }
            };

            // Which groups does this query produce? (those matching the
            // predicate at least once)
            let index = GroupIndex::build(table, &wq.group_by)?;
            let mut produced = vec![false; index.num_groups()];
            match &wq.predicate {
                None => produced.fill(true),
                Some(p) => {
                    let bound = p.bind(table)?;
                    for row in 0..table.num_rows() {
                        if bound.matches(row) {
                            produced[index.group_of(row) as usize] = true;
                        }
                    }
                }
            }

            for col in &wq.agg_columns {
                let col_name = col.display_name();
                let spec = &mut specs[spec_idx];
                let agg_idx = match spec
                    .aggregates
                    .iter()
                    .position(|a| a.column.display_name() == col_name)
                {
                    Some(i) => i,
                    None => {
                        spec.aggregates.push(AggColumn::from_expr(col.clone()).with_weight(0.0));
                        spec.aggregates.len() - 1
                    }
                };
                let agg = &mut spec.aggregates[agg_idx];
                for (gid, &hit) in produced.iter().enumerate() {
                    if hit {
                        let key = index.key(gid as u32).to_vec();
                        *agg.group_weights.entry(key).or_insert(0.0) += wq.repeats as f64;
                    }
                }
            }
        }
        Ok(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{CmpOp, DataType, KeyAtom, TableBuilder, Value};

    /// The paper's Student table (Table 1).
    fn student_table() -> Table {
        let mut b = TableBuilder::new(&[
            ("age", DataType::Int64),
            ("gpa", DataType::Float64),
            ("sat", DataType::Int64),
            ("major", DataType::Str),
            ("college", DataType::Str),
        ]);
        let rows: [(i64, f64, i64, &str, &str); 8] = [
            (25, 3.4, 1250, "CS", "Science"),
            (22, 3.1, 1280, "CS", "Science"),
            (24, 3.8, 1230, "Math", "Science"),
            (28, 3.6, 1270, "Math", "Science"),
            (21, 3.5, 1210, "EE", "Engineering"),
            (23, 3.2, 1260, "EE", "Engineering"),
            (27, 3.7, 1220, "ME", "Engineering"),
            (26, 3.3, 1230, "ME", "Engineering"),
        ];
        for (age, gpa, sat, major, college) in rows {
            b.push_row(&[
                Value::Int64(age),
                Value::Float64(gpa),
                Value::Int64(sat),
                Value::str(major),
                Value::str(college),
            ])
            .unwrap();
        }
        b.finish()
    }

    /// The paper's example workload (Table 2): A×20, B×10, C×15.
    fn paper_workload() -> Workload {
        let mut w = Workload::new();
        w.push(WorkloadQuery::new(&["major"], &["age", "gpa"], 20));
        w.push(WorkloadQuery::new(&["college"], &["age", "sat"], 10));
        w.push(WorkloadQuery::new(&["major"], &["gpa"], 15).with_predicate(Predicate::cmp(
            "college",
            CmpOp::Eq,
            "Science",
        )));
        w
    }

    #[test]
    fn paper_example_weights() {
        let t = student_table();
        let specs = paper_workload().derive_specs(&t).unwrap();
        assert_eq!(specs.len(), 2, "two distinct group-by signatures");

        // Signature 1: GROUP BY major, columns age and gpa.
        let major = &specs[0];
        assert_eq!(major.aggregates.len(), 2);
        let age = &major.aggregates[0];
        assert_eq!(age.column.display_name(), "age");
        // (age, major=X) produced only by query A → weight 20.
        // (The paper's Table 3 prints 25 here; see module docs.)
        for m in ["CS", "Math", "EE", "ME"] {
            assert_eq!(age.weight_for(&[KeyAtom::from(m)]), 20.0, "age/{m}");
        }
        let gpa = &major.aggregates[1];
        // (gpa, major=CS/Math) from A (20) + C (15, predicate keeps Science
        // majors only) = 35; EE/ME only from A = 20.
        assert_eq!(gpa.weight_for(&[KeyAtom::from("CS")]), 35.0);
        assert_eq!(gpa.weight_for(&[KeyAtom::from("Math")]), 35.0);
        assert_eq!(gpa.weight_for(&[KeyAtom::from("EE")]), 20.0);
        assert_eq!(gpa.weight_for(&[KeyAtom::from("ME")]), 20.0);

        // Signature 2: GROUP BY college, columns age and sat → weight 10.
        let college = &specs[1];
        for agg in &college.aggregates {
            for c in ["Science", "Engineering"] {
                assert_eq!(agg.weight_for(&[KeyAtom::from(c)]), 10.0);
            }
        }
    }

    #[test]
    fn unrequested_groups_weight_zero() {
        let t = student_table();
        let mut w = Workload::new();
        w.push(WorkloadQuery::new(&["major"], &["gpa"], 5).with_predicate(Predicate::cmp(
            "college",
            CmpOp::Eq,
            "Science",
        )));
        let specs = w.derive_specs(&t).unwrap();
        let gpa = &specs[0].aggregates[0];
        assert_eq!(gpa.weight_for(&[KeyAtom::from("CS")]), 5.0);
        // EE never matches the predicate → falls back to base weight 0.
        assert_eq!(gpa.weight_for(&[KeyAtom::from("EE")]), 0.0);
    }

    #[test]
    fn total_repeats() {
        assert_eq!(paper_workload().total_repeats(), 45);
    }

    #[test]
    fn empty_workload() {
        let t = student_table();
        let specs = Workload::new().derive_specs(&t).unwrap();
        assert!(specs.is_empty());
    }
}

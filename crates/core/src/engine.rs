//! The long-lived serving API: a table catalog, a prepared-sample cache,
//! and one SQL entry point that answers queries exactly or approximately.
//!
//! The paper's central economy (§6.3) is that one stratified sample —
//! because sampled rows carry *all* attributes — keeps answering later
//! queries with new predicates and new groupings. [`Engine`] turns that
//! into an API: samples are prepared once per `(table, problem)` and served
//! from a cache keyed by the problem's canonical fingerprint
//! ([`SamplingProblem::fingerprint`]), so repeat queries never re-scan the
//! base table.
//!
//! * [`Engine::register`] — add a table to the catalog from any
//!   [`TableSource`] (a local table, local shards, or a remote shard set);
//!   SQL `FROM` names resolve against it (case-insensitive).
//! * [`Engine::prepare`] — plan + draw a CVOPT sample for a problem, or
//!   return the cached one; yields a [`SampleHandle`]. Explicitly prepared
//!   samples become **reuse candidates**: later queries whose derived
//!   problem is [subsumed](SamplingProblem::subsumes) by one are answered
//!   by re-aggregating it instead of drawing (see [`ReuseInfo`]).
//! * [`Engine::query`] — compile SQL and answer it in
//!   [`QueryMode::Exact`], [`QueryMode::Approximate`] (HT estimation over
//!   the prepared sample, with per-group confidence intervals for `AVG`
//!   aggregates), or [`QueryMode::Auto`].
//! * [`Engine::explain`] — a structured plan report (chosen mode, the
//!   reason for it, cache hit/miss, reuse provenance, strata, partitions,
//!   budget) without executing anything.
//! * [`Engine::reoptimize`] — consolidate the per-table query log into one
//!   workload-tuned sample that subsumes the observed mix.
//!
//! ```
//! use cvopt_core::{Engine, QueryMode};
//! use cvopt_table::{DataType, TableBuilder, Value};
//!
//! let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
//! for i in 0..4000u32 {
//!     let g = ["a", "b", "c"][(i % 3) as usize];
//!     b.push_row(&[Value::str(g), Value::Float64((i % 37) as f64)]).unwrap();
//! }
//!
//! let mut engine = Engine::new().with_seed(7);
//! engine.register("events", b.finish());
//!
//! let sql = "SELECT g, AVG(x) FROM events GROUP BY g";
//! let exact = engine.query(sql, QueryMode::Exact).unwrap();
//! let approx = engine.query(sql, QueryMode::Approximate).unwrap();
//! assert_eq!(exact.results[0].num_groups(), approx.results[0].num_groups());
//! // The second approximate query is served from the prepared-sample cache.
//! let again = engine.query(sql, QueryMode::Approximate).unwrap();
//! assert_eq!(again.report.cache_hit, Some(true));
//! assert_eq!(engine.stats_passes(), 1);
//! ```

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use cvopt_table::exec::{partition_rows, ExecOptions};
use cvopt_table::groupby::{choose_strategy, estimate_keys};
use cvopt_table::{
    hash_join, hash_join_sharded, sql, AggKind, GroupByQuery, GroupIndex, GroupStrategy,
    QueryResult, ScalarExpr, ShardSet, ShardedTable, Table,
};

use crate::confidence::{estimate_avg_with_error, AvgEstimate};
use crate::error::CvError;
use crate::estimate::estimate_with;
use crate::framework::{budget_for_rows, note_draw_avoided, CvOptOutcome, CvOptPlan, CvOptSampler};
use crate::maintain::{LocalCatalog, MaintainedSample};
use crate::sample::MaterializedSample;
use crate::spec::{AggColumn, Fingerprinter, QuerySpec, SamplingProblem};
use crate::Result;

/// A catalog entry: one contiguous table, a locally sharded one, or a set
/// of shards answering over the shard-pass surface (local, remote, or
/// mixed). All kinds answer every query identically — scatter-gather passes
/// are byte-identical to their single-table counterparts — so the choice is
/// purely a deployment concern (ingest layout, which box owns the rows).
#[derive(Debug, Clone)]
pub enum CatalogTable {
    /// One contiguous in-memory table.
    Single(Table),
    /// A table split across independently-owned shards, served by
    /// scatter-gather passes.
    Sharded(ShardedTable),
    /// A table whose shards answer through [`ShardReader`]s — possibly in
    /// another process, over the wire.
    ///
    /// [`ShardReader`]: cvopt_table::ShardReader
    Remote(ShardSet),
}

impl CatalogTable {
    /// Total logical rows.
    pub fn num_rows(&self) -> usize {
        match self {
            CatalogTable::Single(t) => t.num_rows(),
            CatalogTable::Sharded(t) => t.num_rows(),
            CatalogTable::Remote(s) => s.num_rows(),
        }
    }

    /// Shard count for sharded and remote entries, `None` for single
    /// tables.
    pub fn num_shards(&self) -> Option<usize> {
        match self {
            CatalogTable::Single(_) => None,
            CatalogTable::Sharded(t) => Some(t.num_shards()),
            CatalogTable::Remote(s) => Some(s.num_shards()),
        }
    }

    /// Shard count for remote entries only (`None` for single and locally
    /// sharded tables) — the `/explain` topology marker.
    pub fn remote_shards(&self) -> Option<usize> {
        match self {
            CatalogTable::Remote(s) => Some(s.num_shards()),
            _ => None,
        }
    }

    /// Fold the shard layout into `base` so cache keys distinguish a table
    /// from a re-sharded version of itself: byte-identical results make
    /// that distinction unnecessary for correctness of *answers*, but plan
    /// reports (shard counts, per-shard partitions) hang off the cache key
    /// and must never describe a stale layout.
    ///
    /// Remote sets fold **identically** to local sharded tables: where the
    /// shards live never changes the answer bytes, so it must not change
    /// the cache key either — a sample prepared locally is exactly the
    /// sample a remote layout of the same shape would prepare.
    ///
    /// Public so reuse tests can pin the converse: two catalog entries
    /// with different shard layouts fold the same problem to different
    /// keys, so the reuse planner can never match across layouts.
    pub fn layout_fingerprint(&self, base: u64) -> u64 {
        let shard_rows = match self {
            CatalogTable::Single(_) => return base,
            CatalogTable::Sharded(t) => t.shard_rows(),
            CatalogTable::Remote(s) => s.shard_rows(),
        };
        let mut fp = Fingerprinter::new();
        fp.write_tag(b'S');
        fp.write_u64(base);
        fp.write_u64(shard_rows.len() as u64);
        for rows in shard_rows {
            fp.write_u64(rows as u64);
        }
        fp.finish()
    }
}

/// What [`Engine::register`] registers: a builder-style source for one
/// catalog entry. The three variants correspond one-to-one with
/// [`CatalogTable`] kinds; `From` impls let callers pass a bare [`Table`],
/// [`ShardedTable`], or [`ShardSet`] and have the kind inferred.
#[derive(Debug, Clone)]
pub enum TableSource {
    /// One contiguous in-memory table.
    Local(Table),
    /// A table split across local shards (scatter-gather passes).
    Sharded(ShardedTable),
    /// A table whose shards answer through shard readers, possibly over
    /// the wire.
    Remote(ShardSet),
}

impl From<Table> for TableSource {
    fn from(table: Table) -> Self {
        TableSource::Local(table)
    }
}

impl From<ShardedTable> for TableSource {
    fn from(table: ShardedTable) -> Self {
        TableSource::Sharded(table)
    }
}

impl From<ShardSet> for TableSource {
    fn from(set: ShardSet) -> Self {
        TableSource::Remote(set)
    }
}

/// How [`Engine::query`] answers a statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Scan the base table with the exact executor.
    Exact,
    /// Estimate from a prepared CVOPT sample (preparing one on first use).
    Approximate,
    /// Approximate when the table is large enough and the query is
    /// estimable (has at least one value aggregate); exact otherwise.
    #[default]
    Auto,
}

/// A prepared sample checked out of the engine cache.
///
/// The handle shares the cached [`CvOptOutcome`]; answering queries through
/// it never re-scans the base table.
#[derive(Debug, Clone)]
pub struct SampleHandle {
    table: String,
    fingerprint: u64,
    cache_hit: bool,
    exec: ExecOptions,
    outcome: Arc<CvOptOutcome>,
}

impl SampleHandle {
    /// Catalog name of the table the sample was drawn from.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The cache key: the problem's canonical fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Whether this handle was served from the cache (no statistics pass).
    pub fn is_cache_hit(&self) -> bool {
        self.cache_hit
    }

    /// The materialized weighted sample.
    pub fn sample(&self) -> &MaterializedSample {
        &self.outcome.sample
    }

    /// The plan (statistics + allocation) that produced the sample.
    pub fn plan(&self) -> &CvOptPlan {
        &self.outcome.plan
    }

    /// Answer `query` from the prepared sample by Horvitz–Thompson
    /// estimation, under the engine's execution options. The query may
    /// carry predicates and groupings the sample was never planned for
    /// (paper §6.3).
    pub fn estimate(&self, query: &GroupByQuery) -> Result<Vec<QueryResult>> {
        estimate_with(&self.outcome.sample, query, &self.exec)
    }
}

/// Confidence intervals for one `AVG` aggregate of an approximate answer.
///
/// The intervals come from the stratified domain estimator of
/// [`crate::confidence`], which runs its own pass over the sample: its
/// point estimates agree with the corresponding [`QueryResult`] values
/// analytically but may differ in the last float bits (different
/// accumulation order). Treat `estimates[i].estimate` as the interval
/// center and the `QueryResult` as the canonical point answer.
#[derive(Debug, Clone)]
pub struct AggConfidence {
    /// Index into the query's aggregate list (and into
    /// [`QueryResult::agg_names`]).
    pub agg_index: usize,
    /// Per-group estimates with standard errors, sorted by group key.
    pub estimates: Vec<AvgEstimate>,
}

/// How an approximate answer relates to the prepared-sample cache: not at
/// all, an exact fingerprint hit, or a **derived** answer re-aggregated
/// from a cached sample whose problem subsumes the requested one (see
/// [`SamplingProblem::subsumes`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ReuseInfo {
    /// No cached sample was involved (exact plans, and approximate misses
    /// that drew a fresh sample).
    #[default]
    None,
    /// The statement's derived problem was cached under exactly this
    /// layout-folded fingerprint.
    Exact {
        /// The matching cache fingerprint (same value as
        /// [`ExplainReport::fingerprint`]).
        fingerprint: u64,
    },
    /// The answer was re-aggregated from a cached sample prepared for a
    /// *different* (subsuming) problem — no statistics pass, no draw.
    Derived {
        /// Fingerprint of the cached sample actually answering.
        source_fingerprint: u64,
        /// Group-by columns the source sample stratifies on beyond the
        /// requested ones (the groups the estimator merged away).
        coarsened_groups: Vec<String>,
        /// Conjunction atoms of the statement's predicate, applied at
        /// estimation time rather than baked into the sample. Engine
        /// samples are drawn unfiltered, so every requested atom lands
        /// here.
        dropped_predicates: Vec<String>,
    },
}

/// A structured plan report: what [`Engine::query`] did (or, via
/// [`Engine::explain`], would do) for a statement.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// Catalog name the `FROM` clause resolved to.
    pub table: String,
    /// Rows in the base table.
    pub table_rows: usize,
    /// The mode actually chosen (never [`QueryMode::Auto`]).
    pub mode: QueryMode,
    /// Why that mode was chosen — `"mode requested"` when the caller fixed
    /// it, otherwise the Auto rule that fired (threshold, cached sample,
    /// reusable sample, or no estimable aggregate).
    pub reason: &'static str,
    /// For `JOIN` statements: the resolved join, rendered as
    /// `"dim ON fact.key = dim.key"`. `None` for single-table statements.
    pub join: Option<String>,
    /// How the group index will intern keys: `"hash"` or `"sort"` (see
    /// [`GroupStrategy`]). The strategies produce byte-identical results;
    /// this reports the planner's performance choice.
    pub group_by_strategy: &'static str,
    /// Why that strategy was chosen (metadata key estimate vs row count,
    /// `CVOPT_GROUP_STRATEGY` override, remote layout, …).
    pub group_by_reason: String,
    /// How the answer relates to the prepared-sample cache. `Derived`
    /// means the sampling algebra answered from a subsuming cached sample;
    /// `cache_hit` stays `Some(false)` in that case (the exact fingerprint
    /// was *not* cached).
    pub reuse: ReuseInfo,
    /// For approximate plans: whether the prepared sample was already
    /// cached. `None` for exact plans.
    pub cache_hit: Option<bool>,
    /// For approximate plans: the problem fingerprint keying the cache.
    pub fingerprint: Option<u64>,
    /// For approximate plans: the allocated row budget.
    pub budget: Option<usize>,
    /// Strata in the prepared sample (known only once a plan exists, i.e.
    /// on cache hits and after execution).
    pub strata: Option<usize>,
    /// Rows actually drawn into the sample (same availability as `strata`).
    pub sample_rows: Option<usize>,
    /// Partitions a base-table scan splits into under the session-level
    /// execution options (global row space; shard boundaries never move
    /// partition boundaries).
    pub partitions: usize,
    /// Worker threads of the session-level execution options.
    pub threads: usize,
    /// Shard count when the `FROM` table is sharded; `None` otherwise.
    pub shards: Option<usize>,
    /// Per-shard partition counts (shard-local passes such as the index
    /// build and the draw's scatter partition each shard by its own row
    /// count). Same availability as `shards`.
    pub shard_partitions: Option<Vec<usize>>,
    /// Shard count when the `FROM` table's shards answer over the wire
    /// (a [`CatalogTable::Remote`] entry); `None` for single and locally
    /// sharded tables. The **only** report field that distinguishes a
    /// remote layout from the identical local one.
    pub remote_shards: Option<usize>,
}

impl ExplainReport {
    /// One-line rendering for logs and examples.
    pub fn to_line(&self) -> String {
        let mut line = format!(
            "{:?} on {} ({} rows, {} partitions, {} threads)",
            self.mode, self.table, self.table_rows, self.partitions, self.threads
        );
        if let Some(shards) = self.shards {
            line.push_str(&format!(", {shards} shards"));
            if self.remote_shards.is_some() {
                line.push_str(" (remote)");
            }
        }
        if let Some(hit) = self.cache_hit {
            line.push_str(if hit { ", cache HIT" } else { ", cache MISS" });
        }
        if let ReuseInfo::Derived { source_fingerprint, .. } = &self.reuse {
            line.push_str(&format!(", reused {source_fingerprint:#018x}"));
        }
        if let Some(budget) = self.budget {
            line.push_str(&format!(", budget {budget}"));
        }
        if let Some(strata) = self.strata {
            line.push_str(&format!(", {strata} strata"));
        }
        if let Some(rows) = self.sample_rows {
            line.push_str(&format!(", {rows} sampled"));
        }
        if let Some(join) = &self.join {
            line.push_str(&format!(", join {join}"));
        }
        line.push_str(&format!(", group-by {}", self.group_by_strategy));
        line.push_str(&format!(" [{}]", self.reason));
        line
    }
}

/// An answered query: results plus the plan report and, for approximate
/// `AVG` aggregates, per-group confidence intervals.
#[derive(Debug, Clone)]
pub struct QueryAnswer {
    /// One result per grouping set (a single entry unless `WITH CUBE`).
    pub results: Vec<QueryResult>,
    /// What the engine did to produce them.
    pub report: ExplainReport,
    /// Confidence intervals for `AVG` aggregates (approximate,
    /// non-cube answers over stratified samples only; empty otherwise).
    pub confidence: Vec<AggConfidence>,
}

/// Derive the [`SamplingProblem`] the engine prepares for `query`: group by
/// the query's grouping expressions (expanded per cube subset when `WITH
/// CUBE`), aggregating every distinct value column the query touches, with
/// the given row budget.
///
/// Errors when the query has no value aggregate (e.g. `COUNT(*)` only) —
/// there is nothing to optimize a sample for, so such queries stay exact.
pub fn problem_for_query(query: &GroupByQuery, budget: usize) -> Result<SamplingProblem> {
    let mut spec = QuerySpec::group_by_exprs(query.group_by.clone());
    for agg in &query.aggregates {
        if let Some(input) = &agg.input {
            if !spec.aggregates.iter().any(|a| a.column.display_name() == input.display_name()) {
                spec = spec.aggregate_column(AggColumn::from_expr(input.clone()));
            }
        }
    }
    if spec.aggregates.is_empty() {
        return Err(CvError::invalid(
            "query has no value aggregate to optimize a sample for; run it exactly",
        ));
    }
    let specs = if query.cube { spec.cube() } else { vec![spec] };
    Ok(SamplingProblem::multi(specs, budget))
}

/// One prepared sample plus the problem it was prepared for. The problem
/// is kept so a fingerprint collision is detected by structural equality
/// and costs only a redundant preparation, never a wrong answer.
///
/// The economy fields feed eviction: `bytes` is what the entry costs to
/// hold, `passes_saved` is what it has earned (each cache hit is one
/// statistics pass + draw the engine did not re-run), and `last_used`
/// breaks ties LRU-wise. The atomics are bumped under the cache **read**
/// lock, so hits never serialize.
#[derive(Debug)]
struct CachedSample {
    problem: SamplingProblem,
    outcome: Arc<CvOptOutcome>,
    /// Approximate bytes held by the outcome (pure function of the data).
    bytes: u64,
    /// Statistics passes this entry has saved (cache hits served).
    passes_saved: AtomicU64,
    /// Logical clock stamp of the most recent use.
    last_used: AtomicU64,
    /// Whether the reuse planner may answer *other* problems from this
    /// entry. Only entries published (or later exact-hit) by an explicit
    /// [`Engine::prepare`] or [`Engine::reoptimize`] are reusable: those
    /// operations are application-serialized, so the reusable set — unlike
    /// the full cache under concurrent queries — changes at well-defined
    /// points, keeping every reuse decision a pure function of
    /// (catalog, reusable set, problem) and never of query timing.
    reusable: AtomicBool,
}

/// The eviction rank of a cache entry: entries are evicted in ascending
/// order of `(bytes × passes-saved, last-used stamp)`.
///
/// The product is the sampling-algebra view of a cached sample's worth —
/// the re-draw work it has saved, weighted by what it costs to hold — so
/// an entry that never earned a hit (`passes_saved == 0`) ranks at zero
/// and goes first, and among equals the least-recently-used entry goes
/// first. The rank is a **pure function** of the three inputs (pinned by a
/// property test), which is what makes eviction order — and therefore the
/// `cache_evictions` counter — deterministic for a serialized workload.
pub fn eviction_rank(bytes: u64, passes_saved: u64, last_used: u64) -> (u128, u64) {
    ((bytes as u128) * (passes_saved as u128), last_used)
}

/// Approximate bytes a cached [`CvOptOutcome`] holds: the materialized
/// sample (columns, weights, origins, stratum ids) plus flat per-stratum
/// charges for the plan. Pure function of the data — fixed per-element
/// widths, never `size_of` — so the `cache_bytes_held` counter is
/// identical on every platform and safe to snapshot into bench diffs.
fn outcome_bytes(outcome: &CvOptOutcome) -> u64 {
    /// Flat charge per stratum for plan metadata (key, statistics,
    /// allocation slot).
    const STRATUM_OVERHEAD: u64 = 64;
    let sample = &outcome.sample;
    let rows = sample.len() as u64;
    sample.table.approx_bytes()
        + 8 * rows // weights
        + 4 * rows // origin row ids
        + 4 * sample.row_stratum.len() as u64
        + outcome.plan.num_strata() as u64 * STRATUM_OVERHEAD
        + 8 * outcome.plan.betas.len() as u64
}

/// One in-flight sample preparation that concurrent cache misses for the
/// same `(table, fingerprint, problem)` coalesce onto: exactly one caller
/// runs the statistics pass and the draw (inside the cell's
/// `get_or_init`), every other caller blocks on the cell and shares the
/// outcome. The `bool` is `true` when the value came from a fresh scan
/// (as opposed to a cache entry that appeared while we were queueing).
#[derive(Debug)]
struct PendingRun {
    problem: SamplingProblem,
    cell: OnceLock<Result<(Arc<CvOptOutcome>, bool)>>,
}

/// The cache key: lowercased catalog name + layout-folded problem
/// fingerprint.
type CacheKey = (String, u64);

/// A long-lived session: catalog + prepared-sample cache + execution
/// options. The recommended entry point for serving workloads;
/// [`CvOptSampler`] remains the low-level one-shot two-pass primitive.
///
/// # Concurrency
///
/// Registration ([`Engine::register`], [`Engine::drop_table`]) takes
/// `&mut self`; everything else — [`Engine::query`], [`Engine::prepare`],
/// [`Engine::explain`], the counters — takes `&self` and is safe to call
/// from many threads at once (the cache and the counters use interior
/// mutability). A serving layer therefore wraps the engine in an
/// `RwLock<Engine>` where queries share a **read** lock — cache hits and
/// even cache misses never contend on the catalog — and only table
/// registration takes the write lock. Concurrent misses for the same
/// problem coalesce onto one sampling run (see [`Engine::prepare`]).
#[derive(Debug)]
pub struct Engine {
    tables: HashMap<String, (String, CatalogTable)>,
    /// Declared retention window columns, keyed like `tables`. A table
    /// with a window column supports [`Engine::rotate`] and marks its
    /// durable samples for incremental maintenance under ingest.
    windows: HashMap<String, String>,
    /// Incrementally maintained durable samples, keyed like `tables`.
    /// `RwLock` because creation happens on the `&self` prepare path.
    maintained: RwLock<HashMap<String, Vec<MaintainedSample>>>,
    cache: RwLock<HashMap<CacheKey, Vec<CachedSample>>>,
    pending: Mutex<HashMap<CacheKey, Vec<Arc<PendingRun>>>>,
    exec: ExecOptions,
    seed: u64,
    default_rate: f64,
    auto_threshold: usize,
    /// Byte budget for the prepared-sample cache; `None` is unbounded.
    cache_budget: Option<u64>,
    /// Approximate bytes currently held by cached samples.
    cache_bytes: AtomicU64,
    /// Entries evicted to stay under the budget.
    cache_evictions: AtomicU64,
    /// Logical clock for LRU stamps (bumped on every hit and insert).
    cache_clock: AtomicU64,
    stats_passes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    /// Approximate answers derived from a subsuming cached sample.
    reuse_hits: AtomicU64,
    /// Sample preparations (statistics pass + draw) the reuse planner
    /// avoided. Currently bumps in lockstep with `reuse_hits`; kept
    /// separate so batched reuse can diverge without a counter rename.
    draws_avoided: AtomicU64,
    /// Per-table bounded ring of observed approximate-query shapes,
    /// feeding [`Engine::reoptimize`]. Keyed by lowercased catalog name.
    query_log: Mutex<HashMap<String, VecDeque<QueryLogEntry>>>,
    /// Rows appended through [`Engine::ingest`].
    ingested_rows: AtomicU64,
    /// Batches accepted by [`Engine::ingest`].
    ingest_batches: AtomicU64,
    /// Retention rotations run by [`Engine::rotate`].
    rotations: AtomicU64,
    /// Rows dropped by retention rotations.
    rows_retired: AtomicU64,
}

/// At most this many maintained samples are kept per table; past the cap
/// the oldest is demoted to a plain cached sample (still correct, no
/// longer incrementally maintained).
const MAINTAINED_CAP: usize = 8;

/// Entries kept per table in the query log ring.
const QUERY_LOG_CAP: usize = 256;

/// One observed approximate query: the canonical shape of the problem the
/// engine derived for it. [`Engine::reoptimize`] consolidates these into a
/// single workload-tuned sample.
#[derive(Debug, Clone)]
pub struct QueryLogEntry {
    /// Layout-folded fingerprint of the derived problem (the cache key).
    pub fingerprint: u64,
    /// Row budget of the derived problem.
    pub budget: usize,
    /// Display names of the problem's finest stratification columns.
    pub group_by: Vec<String>,
    /// Display names of the aggregated value columns.
    pub aggregates: Vec<String>,
    /// SQL shape of the statement's predicate, if any (estimation-time
    /// filter; engine samples are drawn unfiltered).
    pub predicate: Option<String>,
    /// The query specs of the derived problem, kept verbatim so the
    /// re-optimizer can consolidate without re-deriving from SQL.
    pub specs: Vec<QuerySpec>,
    /// Whether the answer came from the sampling algebra (a derived reuse
    /// of a subsuming cached sample) rather than this problem's own sample.
    pub reused: bool,
}

/// What one [`Engine::ingest`] call did.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Catalog name of the table appended to.
    pub table: String,
    /// Rows in the accepted batch.
    pub rows: usize,
    /// Rows in the table after the append.
    pub total_rows: usize,
    /// Maintained samples brought up to date (and republished) in-place.
    pub maintained: usize,
}

/// What one [`Engine::rotate`] retention pass did.
#[derive(Debug, Clone)]
pub struct RotateReport {
    /// Catalog name of the rotated table.
    pub table: String,
    /// Rows dropped (window value below the cutoff).
    pub retired: usize,
    /// Rows surviving the rotation.
    pub remaining: usize,
    /// Maintained samples rebuilt over the surviving rows.
    pub maintained: usize,
}

/// Per-row keep decisions for a retention cutoff: `true` where the window
/// column (an `INT64`/`TIMESTAMP` column validated at registration) is at
/// or past `cutoff`.
fn keep_mask(table: &Table, window: &str, cutoff: i64) -> Result<Vec<bool>> {
    let idx = table.schema().index_of(window)?;
    match table.column(idx) {
        cvopt_table::Column::Int64(v) | cvopt_table::Column::Timestamp(v) => {
            Ok(v.iter().map(|&t| t >= cutoff).collect())
        }
        other => Err(CvError::invalid(format!(
            "window column '{window}' must be INT64 or TIMESTAMP, found {:?}",
            other.data_type()
        ))),
    }
}

/// What [`Engine::reoptimize`] did for one table.
#[derive(Debug, Clone)]
pub struct ReoptimizeReport {
    /// Catalog name of the re-optimized table.
    pub table: String,
    /// Query-log entries consolidated (the ring's current length).
    pub logged: usize,
    /// Distinct problem fingerprints among them.
    pub distinct_shapes: usize,
    /// Budget of the consolidated sample (max over logged budgets).
    pub budget: usize,
    /// Layout-folded fingerprint of the consolidated problem.
    pub fingerprint: u64,
    /// Whether the consolidated sample was already cached (re-optimizing
    /// an unchanged workload is idempotent and costs nothing).
    pub cache_hit: bool,
    /// Strata in the consolidated sample.
    pub strata: usize,
    /// Rows drawn into it.
    pub sample_rows: usize,
}

/// The shared front half of [`Engine::query`] and [`Engine::explain_mode`]:
/// the compiled query, the pre-execution plan report, and (for approximate
/// plans) the derived sampling problem with its layout-folded cache
/// fingerprint — computed once here and threaded through, never
/// recomputed. Keeping one derivation path guarantees EXPLAIN reports
/// exactly what `query` will do.
struct PlannedStatement {
    query: GroupByQuery,
    report: ExplainReport,
    problem: Option<SamplingProblem>,
    fingerprint: Option<u64>,
    /// For `JOIN` statements: the clause to materialize at execution time
    /// (join plans are always exact and never touch the sample cache).
    join: Option<sql::JoinClause>,
    /// When the reuse planner matched a subsuming cached sample at plan
    /// time, the captured source — `query` answers from exactly this
    /// outcome, so the decision probed and the sample answered can never
    /// diverge (eviction or publication in between notwithstanding).
    reuse: Option<ReusePlan>,
}

/// A reuse decision captured at plan time: the subsuming cached sample
/// and the provenance the report describes it with.
struct ReusePlan {
    source_fingerprint: u64,
    outcome: Arc<CvOptOutcome>,
}

impl Engine {
    /// An empty engine: default execution options (one worker per core),
    /// seed 0, 1% default sampling rate, and a 50 000-row auto threshold.
    pub fn new() -> Self {
        Engine {
            tables: HashMap::new(),
            windows: HashMap::new(),
            maintained: RwLock::new(HashMap::new()),
            cache: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            exec: ExecOptions::default(),
            seed: 0,
            default_rate: 0.01,
            auto_threshold: 50_000,
            cache_budget: None,
            cache_bytes: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            cache_clock: AtomicU64::new(0),
            stats_passes: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            reuse_hits: AtomicU64::new(0),
            draws_avoided: AtomicU64::new(0),
            query_log: Mutex::new(HashMap::new()),
            ingested_rows: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            rows_retired: AtomicU64::new(0),
        }
    }

    /// Bound the prepared-sample cache to approximately `budget` bytes
    /// (`None`, the default, is unbounded). When an insert pushes the held
    /// bytes over the budget, entries are evicted in ascending
    /// [`eviction_rank`] order — cheapest-to-re-earn first, LRU tie-break —
    /// until the cache fits. Entries with an in-flight coalesced miss are
    /// never evicted. Eviction changes *when* sampling work happens, never
    /// *what* a query answers: samples are pure functions of
    /// `(table, problem, seed)`, so a re-prepared sample is bit-identical
    /// to the evicted one.
    pub fn with_cache_bytes(mut self, budget: Option<u64>) -> Self {
        self.cache_budget = budget;
        self
    }

    /// Set the RNG seed used when preparing samples (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the session-level execution options; they govern every pass the
    /// engine runs (sampling, exact execution, estimation).
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// Set the sampling rate used when [`Engine::query`] derives a problem
    /// from a SQL statement (default 0.01, the paper's 1%).
    pub fn with_default_rate(mut self, rate: f64) -> Self {
        self.default_rate = rate;
        self
    }

    /// Set the row count at or above which [`QueryMode::Auto`] chooses the
    /// approximate path (default 50 000).
    pub fn with_auto_threshold(mut self, rows: usize) -> Self {
        self.auto_threshold = rows;
        self
    }

    /// The session-level execution options.
    pub fn exec(&self) -> &ExecOptions {
        &self.exec
    }

    /// The seed samples are prepared with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// How many statistics passes (fresh sample preparations) the engine
    /// has run. Cache hits do not increment this. Readable while other
    /// threads are querying (the counter is atomic), which is how a
    /// serving layer proves a cached answer cost zero scans.
    pub fn stats_passes(&self) -> u64 {
        self.stats_passes.load(Ordering::Relaxed)
    }

    /// How many [`Engine::prepare`] calls (including the ones implied by
    /// approximate [`Engine::query`]) were served from the cache — either
    /// a cached sample or an in-flight run they coalesced onto.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// How many [`Engine::prepare`] calls ran a fresh statistics pass and
    /// draw. `cache_hits() + cache_misses()` counts every prepared-sample
    /// lookup; failed preparations count as misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// How many approximate queries the sampling algebra answered from a
    /// *subsuming* cached sample (a [`ReuseInfo::Derived`] answer). These
    /// are neither cache hits nor misses: the exact fingerprint was not
    /// cached, and no preparation ran.
    pub fn reuse_hits(&self) -> u64 {
        self.reuse_hits.load(Ordering::Relaxed)
    }

    /// Sample preparations (statistics pass + draw) the reuse planner
    /// avoided by answering from a subsuming cached sample.
    pub fn draws_avoided(&self) -> u64 {
        self.draws_avoided.load(Ordering::Relaxed)
    }

    /// Number of prepared samples currently cached.
    pub fn cached_samples(&self) -> usize {
        self.cache.read().unwrap_or_else(|e| e.into_inner()).values().map(Vec::len).sum()
    }

    /// The configured cache byte budget (`None` = unbounded).
    pub fn cache_budget(&self) -> Option<u64> {
        self.cache_budget
    }

    /// Approximate bytes currently held by cached samples (see
    /// [`Table::approx_bytes`](cvopt_table::Table::approx_bytes) — a pure
    /// function of the cached data, identical on every platform).
    pub fn cache_bytes_held(&self) -> u64 {
        self.cache_bytes.load(Ordering::Relaxed)
    }

    /// Cache entries evicted so far to stay under the byte budget.
    pub fn cache_evictions(&self) -> u64 {
        self.cache_evictions.load(Ordering::Relaxed)
    }

    /// Rows appended through [`Engine::ingest`] over the engine's lifetime.
    pub fn ingested_rows(&self) -> u64 {
        self.ingested_rows.load(Ordering::Relaxed)
    }

    /// Batches accepted by [`Engine::ingest`].
    pub fn ingest_batches(&self) -> u64 {
        self.ingest_batches.load(Ordering::Relaxed)
    }

    /// Retention rotations run by [`Engine::rotate`].
    pub fn rotations(&self) -> u64 {
        self.rotations.load(Ordering::Relaxed)
    }

    /// Rows dropped by retention rotations.
    pub fn rows_retired(&self) -> u64 {
        self.rows_retired.load(Ordering::Relaxed)
    }

    /// Durable samples currently under incremental maintenance.
    pub fn maintained_samples(&self) -> usize {
        self.maintained.read().unwrap_or_else(|e| e.into_inner()).values().map(Vec::len).sum()
    }

    /// The declared retention window column of `name`, if any.
    pub fn window_column(&self, name: &str) -> Option<&str> {
        self.windows.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Register (or replace) a catalog table from any [`TableSource`].
    /// SQL `FROM` names resolve to it case-insensitively.
    ///
    /// A bare [`Table`], [`ShardedTable`], or [`ShardSet`] converts
    /// implicitly; `TableSource::{Local, Sharded, Remote}` spells the kind
    /// out. All kinds answer every query byte-identically — the choice is
    /// purely a deployment concern — and cache keys fold in the shard
    /// layout, so re-registering under a new layout can never serve a plan
    /// report describing the old one.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        source: impl Into<TableSource>,
    ) -> &mut Self {
        let table = match source.into() {
            TableSource::Local(t) => CatalogTable::Single(t),
            TableSource::Sharded(t) => CatalogTable::Sharded(t),
            TableSource::Remote(s) => CatalogTable::Remote(s),
        };
        self.register_catalog_table(name, table)
    }

    /// Register (or replace) a catalog table that **ingests**: `window`
    /// names a time-ordered `INT64`/`TIMESTAMP` column the table is
    /// retained by. A windowed table additionally supports
    /// [`Engine::rotate`] (drop rows older than a cutoff), and its durable
    /// prepared samples are **incrementally maintained** under
    /// [`Engine::ingest`] instead of being invalidated — each append folds
    /// into the maintained index and statistics, and the refreshed sample
    /// is byte-identical to re-preparing from scratch.
    ///
    /// Remote shard sets cannot be windowed here: their rows live at the
    /// shard servers, which own append and retention (the `cvopt-net`
    /// append/rotate passes).
    pub fn register_windowed(
        &mut self,
        name: impl Into<String>,
        source: impl Into<TableSource>,
        window: &str,
    ) -> Result<&mut Self> {
        let source = source.into();
        let schema = match &source {
            TableSource::Local(t) => t.schema(),
            TableSource::Sharded(t) => t.schema(),
            TableSource::Remote(_) => {
                return Err(CvError::invalid(
                    "remote shard sets cannot declare a window column; retention runs at the \
                     shard servers",
                ))
            }
        };
        let dtype = schema.type_of(window)?;
        if !matches!(dtype, cvopt_table::DataType::Int64 | cvopt_table::DataType::Timestamp) {
            return Err(CvError::invalid(format!(
                "window column '{window}' must be INT64 or TIMESTAMP, found {dtype:?}"
            )));
        }
        let name = name.into();
        let key = name.to_ascii_lowercase();
        self.register(name, source);
        self.windows.insert(key, window.to_string());
        Ok(self)
    }

    /// Register (or replace) a catalog table.
    #[deprecated(
        note = "use `Engine::register(name, table)`; a `Table` converts into a `TableSource` implicitly"
    )]
    pub fn register_table(&mut self, name: impl Into<String>, table: Table) -> &mut Self {
        self.register(name, table)
    }

    /// Register (or replace) a sharded catalog table.
    #[deprecated(
        note = "use `Engine::register(name, table)`; a `ShardedTable` converts into a `TableSource` implicitly"
    )]
    pub fn register_sharded_table(
        &mut self,
        name: impl Into<String>,
        table: ShardedTable,
    ) -> &mut Self {
        self.register(name, table)
    }

    /// Register (or replace) a table whose shards answer through
    /// [`ShardReader`]s.
    ///
    /// [`ShardReader`]: cvopt_table::ShardReader
    #[deprecated(
        note = "use `Engine::register(name, set)`; a `ShardSet` converts into a `TableSource` implicitly"
    )]
    pub fn register_remote_table(&mut self, name: impl Into<String>, set: ShardSet) -> &mut Self {
        self.register(name, set)
    }

    fn register_catalog_table(
        &mut self,
        name: impl Into<String>,
        table: CatalogTable,
    ) -> &mut Self {
        let name = name.into();
        let key = name.to_ascii_lowercase();
        // Samples drawn from a replaced table are stale, and so are logged
        // workload shapes (their budgets tracked the old row count).
        // `&mut self` guarantees no query (and so no pending run) is in
        // flight.
        self.forget_table_samples(&key);
        self.query_log.get_mut().unwrap_or_else(|e| e.into_inner()).remove(&key);
        self.windows.remove(&key);
        self.maintained.get_mut().unwrap_or_else(|e| e.into_inner()).remove(&key);
        self.tables.insert(key, (name, table));
        self
    }

    /// Remove a table, every sample prepared from it, and its query log.
    pub fn drop_table(&mut self, name: &str) -> bool {
        let key = name.to_ascii_lowercase();
        self.forget_table_samples(&key);
        self.query_log.get_mut().unwrap_or_else(|e| e.into_inner()).remove(&key);
        self.windows.remove(&key);
        self.maintained.get_mut().unwrap_or_else(|e| e.into_inner()).remove(&key);
        self.tables.remove(&key).is_some()
    }

    /// Append a batch of rows to a registered **local** table (sharded
    /// layouts append into their live — last — shard).
    ///
    /// Sample upkeep is the point of the pass: cached samples of the table
    /// are *never left stale*. Non-maintained entries are invalidated
    /// outright; the table's maintained samples (durable preparations on a
    /// windowed table) fold the batch into their index and statistics and
    /// are republished — each refreshed sample is byte-identical to
    /// re-preparing from scratch over the extended table, for any split of
    /// the same row stream into batches (see [`Engine::register_windowed`]).
    ///
    /// Remote tables reject the call: their rows live at the shard servers,
    /// which own the wire-level append pass.
    pub fn ingest(&mut self, name: &str, batch: &Table) -> Result<IngestReport> {
        let key = name.to_ascii_lowercase();
        let (display, extended) = {
            let (display, table) = self.resolve(name)?;
            let display = display.to_string();
            let extended = match table {
                CatalogTable::Single(t) => CatalogTable::Single(t.extended(batch)?),
                CatalogTable::Sharded(t) => CatalogTable::Sharded(t.extended(batch)?),
                CatalogTable::Remote(_) => {
                    return Err(CvError::invalid(format!(
                        "table '{display}' answers from remote shards; append through the shard \
                         servers and re-register"
                    )))
                }
            };
            (display, extended)
        };
        self.tables.insert(key.clone(), (display.clone(), extended));
        self.forget_table_samples(&key);
        let maintained = self.update_maintained(&key, Some(batch));
        self.ingested_rows.fetch_add(batch.num_rows() as u64, Ordering::Relaxed);
        self.ingest_batches.fetch_add(1, Ordering::Relaxed);
        let total_rows = self.tables.get(&key).map(|(_, t)| t.num_rows()).unwrap_or(0);
        self.enforce_budget();
        Ok(IngestReport { table: display, rows: batch.num_rows(), total_rows, maintained })
    }

    /// Drop rows whose window-column value is **below** `cutoff` from a
    /// windowed table — the retention rotation. Sharded layouts compact
    /// shard by shard, so a shard whose rows all age out falls off the
    /// layout entirely. Maintained samples rebuild over the surviving rows
    /// (their budgets rescale to the pinned sampling rate); all other
    /// cached samples are invalidated.
    pub fn rotate(&mut self, name: &str, cutoff: i64) -> Result<RotateReport> {
        let key = name.to_ascii_lowercase();
        let window = self.windows.get(&key).cloned().ok_or_else(|| {
            CvError::invalid(format!(
                "table '{name}' has no window column; register it with `register_windowed`"
            ))
        })?;
        let (display, rotated, before) = {
            let (display, table) = self.resolve(name)?;
            let display = display.to_string();
            let before = table.num_rows();
            let rotated = match table {
                CatalogTable::Single(t) => {
                    let keep = keep_mask(t, &window, cutoff)?;
                    let kept: Vec<usize> = (0..t.num_rows()).filter(|&i| keep[i]).collect();
                    CatalogTable::Single(t.take(&kept))
                }
                CatalogTable::Sharded(t) => {
                    let mut keep = Vec::with_capacity(t.num_rows());
                    for shard in t.shards() {
                        keep.extend(keep_mask(shard, &window, cutoff)?);
                    }
                    CatalogTable::Sharded(t.retained(|i| keep[i]))
                }
                CatalogTable::Remote(_) => {
                    return Err(CvError::invalid(format!(
                        "table '{display}' answers from remote shards; rotate at the shard \
                         servers and re-register"
                    )))
                }
            };
            (display, rotated, before)
        };
        let remaining = rotated.num_rows();
        let retired = before - remaining;
        self.tables.insert(key.clone(), (display.clone(), rotated));
        self.forget_table_samples(&key);
        let maintained = self.update_maintained(&key, None);
        self.rotations.fetch_add(1, Ordering::Relaxed);
        self.rows_retired.fetch_add(retired as u64, Ordering::Relaxed);
        self.enforce_budget();
        Ok(RotateReport { table: display, retired, remaining, maintained })
    }

    /// Bring the table's maintained samples up to date after a catalog
    /// mutation — fold in `batch` (ingest) or rebuild from scratch (`None`,
    /// rotation) — and republish each as a durable cached sample under the
    /// post-mutation layout fingerprint. Entries that fail to update (e.g.
    /// a batch that breaks their invariants) are dropped, never served
    /// stale. Returns how many maintained samples survive.
    fn update_maintained(&mut self, key: &str, batch: Option<&Table>) -> usize {
        let Some((_, base)) = self.tables.get(key) else { return 0 };
        let catalog = match base {
            CatalogTable::Single(t) => LocalCatalog::Single(t),
            CatalogTable::Sharded(t) => LocalCatalog::Sharded(t),
            CatalogTable::Remote(_) => return 0,
        };
        let seed = self.seed;
        let exec = self.exec;
        let maintained_map = self.maintained.get_mut().unwrap_or_else(|e| e.into_inner());
        let Some(entries) = maintained_map.get_mut(key) else { return 0 };
        let mut rebuilds = 0u64;
        entries.retain_mut(|m| match batch {
            Some(b) => m.apply_append(catalog, b, seed, &exec).is_ok(),
            // A rebuild re-scans the retained rows — a full statistics
            // pass, and the engine's gauge must say so.
            None => {
                let ok = m.rebuild(catalog, seed, &exec).is_ok();
                rebuilds += ok as u64;
                ok
            }
        });
        self.stats_passes.fetch_add(rebuilds, Ordering::Relaxed);
        let republish: Vec<(u64, SamplingProblem, Arc<CvOptOutcome>)> = entries
            .iter()
            .map(|m| {
                let fp = base.layout_fingerprint(m.problem().fingerprint());
                (fp, m.problem().clone(), Arc::clone(m.outcome()))
            })
            .collect();
        let count = entries.len();
        let cache = self.cache.get_mut().unwrap_or_else(|e| e.into_inner());
        for (fp, problem, outcome) in republish {
            let bucket = cache.entry((key.to_string(), fp)).or_default();
            if bucket.iter().any(|e| e.problem == problem) {
                continue;
            }
            let bytes = outcome_bytes(&outcome);
            let stamp = self.cache_clock.fetch_add(1, Ordering::Relaxed) + 1;
            bucket.push(CachedSample {
                problem,
                outcome,
                bytes,
                passes_saved: AtomicU64::new(0),
                last_used: AtomicU64::new(stamp),
                reusable: AtomicBool::new(true),
            });
            self.cache_bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        count
    }

    /// Drop every cached sample of table `key`, keeping the held-bytes
    /// gauge honest. Invalidation, not eviction: the eviction counter
    /// tracks only budget pressure.
    fn forget_table_samples(&mut self, key: &str) {
        let cache = self.cache.get_mut().unwrap_or_else(|e| e.into_inner());
        let mut freed = 0u64;
        cache.retain(|(t, _), bucket| {
            if t == key {
                freed += bucket.iter().map(|e| e.bytes).sum::<u64>();
                false
            } else {
                true
            }
        });
        self.cache_bytes.fetch_sub(freed, Ordering::Relaxed);
    }

    /// Evict until the cache fits the configured byte budget. Keys with an
    /// in-flight coalesced run are protected: evicting under a leader
    /// mid-publish would let the same problem occupy two generations of
    /// bytes and double-count evictions.
    ///
    /// Lock order is cache → pending, matching every other path (no path
    /// takes the cache lock while holding the pending lock), so this
    /// cannot deadlock.
    fn enforce_budget(&self) {
        let Some(budget) = self.cache_budget else { return };
        if self.cache_bytes.load(Ordering::Relaxed) <= budget {
            return;
        }
        let mut cache = self.cache.write().unwrap_or_else(|e| e.into_inner());
        let protected: HashSet<CacheKey> = {
            let pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            pending.keys().cloned().collect()
        };
        Self::enforce_budget_locked(
            &mut cache,
            &protected,
            budget,
            &self.cache_bytes,
            &self.cache_evictions,
        );
    }

    /// The eviction loop proper, factored over explicit state so tests can
    /// drive it with a hand-built cache and protected set. Repeatedly
    /// removes the unprotected entry with the smallest [`eviction_rank`]
    /// until the held bytes fit `budget` (or only protected entries
    /// remain), debiting `cache_bytes` and crediting `cache_evictions` per
    /// eviction.
    fn enforce_budget_locked(
        cache: &mut HashMap<CacheKey, Vec<CachedSample>>,
        protected: &HashSet<CacheKey>,
        budget: u64,
        cache_bytes: &AtomicU64,
        cache_evictions: &AtomicU64,
    ) {
        while cache_bytes.load(Ordering::Relaxed) > budget {
            let mut victim: Option<((u128, u64), CacheKey, usize)> = None;
            for (key, bucket) in cache.iter() {
                if protected.contains(key) {
                    continue;
                }
                for (idx, entry) in bucket.iter().enumerate() {
                    let rank = eviction_rank(
                        entry.bytes,
                        entry.passes_saved.load(Ordering::Relaxed),
                        entry.last_used.load(Ordering::Relaxed),
                    );
                    if victim.as_ref().is_none_or(|(best, _, _)| rank < *best) {
                        victim = Some((rank, key.clone(), idx));
                    }
                }
            }
            let Some((_, key, idx)) = victim else { break };
            let bucket = cache.get_mut(&key).expect("victim key present");
            let evicted = bucket.remove(idx);
            if bucket.is_empty() {
                cache.remove(&key);
            }
            cache_bytes.fetch_sub(evicted.bytes, Ordering::Relaxed);
            cache_evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Registered table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.values().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names
    }

    /// Look up a catalog entry (case-insensitive), whatever its kind.
    pub fn catalog_table(&self, name: &str) -> Option<&CatalogTable> {
        self.tables.get(&name.to_ascii_lowercase()).map(|(_, t)| t)
    }

    /// Look up a *single-table* catalog entry (case-insensitive). Sharded
    /// entries return `None`; use [`Engine::sharded_table`] or
    /// [`Engine::catalog_table`] for those.
    pub fn table(&self, name: &str) -> Option<&Table> {
        match self.catalog_table(name) {
            Some(CatalogTable::Single(t)) => Some(t),
            _ => None,
        }
    }

    /// Look up a *sharded* catalog entry (case-insensitive).
    pub fn sharded_table(&self, name: &str) -> Option<&ShardedTable> {
        match self.catalog_table(name) {
            Some(CatalogTable::Sharded(t)) => Some(t),
            _ => None,
        }
    }

    fn resolve(&self, name: &str) -> Result<(&str, &CatalogTable)> {
        self.tables.get(&name.to_ascii_lowercase()).map(|(n, t)| (n.as_str(), t)).ok_or_else(|| {
            let known =
                self.table_names().iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ");
            CvError::invalid(format!("table '{name}' is not registered (catalog: [{known}])"))
        })
    }

    /// Prepare (or fetch from cache) a CVOPT sample of `table` for
    /// `problem`. Validation happens up front, so invalid specs fail fast
    /// before any scan; a cache hit costs no table scan at all and takes
    /// only a read lock on the cache. A hit requires structural equality
    /// of the problem, not just a matching fingerprint, so hash collisions
    /// can never serve a wrong sample.
    ///
    /// Concurrent misses for the same `(table, problem)` **coalesce**:
    /// exactly one caller runs the statistics pass and the draw, the rest
    /// block on the in-flight run and share its outcome (reported as cache
    /// hits — they cost no scan of their own).
    ///
    /// Explicitly prepared samples are **durable reuse candidates**: later
    /// queries whose derived problem is subsumed by this one (see
    /// [`SamplingProblem::subsumes`]) are answered by re-aggregating it.
    /// Samples a query draws for itself are *not* candidates — the cache's
    /// contents under concurrent queries depend on timing, and restricting
    /// the reusable set to explicitly managed samples is what keeps reuse
    /// decisions pure functions of (catalog, reusable set, problem).
    pub fn prepare(&self, table: &str, problem: SamplingProblem) -> Result<SampleHandle> {
        let (catalog_name, base) = self.resolve(table)?;
        let fingerprint = base.layout_fingerprint(problem.fingerprint());
        self.prepare_keyed(catalog_name, base, problem, fingerprint, true)
    }

    /// The keyed back half of [`Engine::prepare`]: probe the cache under a
    /// read lock, otherwise coalesce onto (or become) the pending run for
    /// this key. `fingerprint` must already be layout-folded — callers that
    /// derived it during planning pass it through instead of recomputing.
    /// `durable` marks the entry (published or exact-hit) as a reuse
    /// candidate; explicit prepares and the re-optimizer pass `true`, the
    /// query path `false`.
    fn prepare_keyed(
        &self,
        catalog_name: &str,
        base: &CatalogTable,
        problem: SamplingProblem,
        fingerprint: u64,
        durable: bool,
    ) -> Result<SampleHandle> {
        // Validation happens before any probe or scan, so invalid specs
        // fail fast and can never occupy a pending slot.
        problem.validate()?;
        let key: CacheKey = (catalog_name.to_ascii_lowercase(), fingerprint);
        if let Some((outcome, _)) = self.cached_outcome(&key, &problem, durable) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(self.handle(catalog_name, fingerprint, true, outcome));
        }

        // Miss: join the pending run for this exact problem, creating it
        // if we are first. Structural equality guards the (astronomically
        // unlikely) fingerprint collision exactly as the cache does.
        let run = {
            let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
            let bucket = pending.entry(key.clone()).or_default();
            match bucket.iter().find(|r| r.problem == problem) {
                Some(run) => Arc::clone(run),
                None => {
                    let run =
                        Arc::new(PendingRun { problem: problem.clone(), cell: OnceLock::new() });
                    bucket.push(Arc::clone(&run));
                    run
                }
            }
        };
        let mut ran_here = false;
        let result = run.cell.get_or_init(|| {
            ran_here = true;
            // The cache may have been filled between our probe and this
            // run becoming the key's pending entry; a fresh scan would be
            // wasted work, so re-probe before scanning.
            if let Some((outcome, _)) = self.cached_outcome(&key, &run.problem, durable) {
                return Ok((outcome, false));
            }
            self.sample_uncached_keyed(&key.0, base, &run.problem, durable)
                .map(|outcome| (outcome, true))
        });
        if ran_here {
            // Leader duties: publish the outcome, then retire the pending
            // entry (in that order, so a late arrival always finds one of
            // the two).
            let mut published = false;
            if let Ok((outcome, true)) = result {
                let bytes = outcome_bytes(outcome);
                let mut cache = self.cache.write().unwrap_or_else(|e| e.into_inner());
                let bucket = cache.entry(key.clone()).or_default();
                if !bucket.iter().any(|e| e.problem == problem) {
                    bucket.push(CachedSample {
                        problem: problem.clone(),
                        outcome: Arc::clone(outcome),
                        bytes,
                        passes_saved: AtomicU64::new(0),
                        last_used: AtomicU64::new(self.tick()),
                        reusable: AtomicBool::new(durable),
                    });
                    self.cache_bytes.fetch_add(bytes, Ordering::Relaxed);
                    published = true;
                }
            }
            {
                let mut pending = self.pending.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(bucket) = pending.get_mut(&key) {
                    bucket.retain(|r| !Arc::ptr_eq(r, &run));
                    if bucket.is_empty() {
                        pending.remove(&key);
                    }
                }
            }
            // Budget pass runs after the pending entry is retired, so a
            // zero/tiny budget can evict even the entry just published —
            // late coalescers read the outcome from the run cell, never
            // the cache, so this costs nothing but a future re-prepare.
            if published {
                self.enforce_budget();
            }
        }
        match result {
            Ok((outcome, fresh)) => {
                let fresh_here = ran_here && *fresh;
                if fresh_here {
                    self.cache_misses.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.cache_hits.fetch_add(1, Ordering::Relaxed);
                }
                Ok(self.handle(catalog_name, fingerprint, !fresh_here, Arc::clone(outcome)))
            }
            Err(e) => {
                self.cache_misses.fetch_add(1, Ordering::Relaxed);
                Err(e.clone())
            }
        }
    }

    /// Next LRU stamp. Stamps start at 1 and are unique (atomic counter),
    /// so no two entries ever tie on `last_used`.
    fn tick(&self) -> u64 {
        self.cache_clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Probe the cache (read lock only) for a structurally equal problem.
    /// A hit credits the entry one saved statistics pass and freshens its
    /// LRU stamp — both atomics, so hits never serialize on the write
    /// lock. `mark_reusable` upgrades the entry to a reuse candidate: an
    /// explicit prepare that exact-hits a query-drawn entry adopts it into
    /// the durable set.
    /// Returns the outcome plus whether the entry is (now) a durable reuse
    /// candidate — the planner's Auto decision may only depend on the
    /// durable bit, never on mere presence.
    fn cached_outcome(
        &self,
        key: &CacheKey,
        problem: &SamplingProblem,
        mark_reusable: bool,
    ) -> Option<(Arc<CvOptOutcome>, bool)> {
        let cache = self.cache.read().unwrap_or_else(|e| e.into_inner());
        let entry = cache.get(key)?.iter().find(|e| &e.problem == problem)?;
        entry.passes_saved.fetch_add(1, Ordering::Relaxed);
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        if mark_reusable {
            entry.reusable.store(true, Ordering::Relaxed);
        }
        let durable = mark_reusable || entry.reusable.load(Ordering::Relaxed);
        Some((Arc::clone(&entry.outcome), durable))
    }

    /// The reuse planner: scan the table's cached samples for a **durable**
    /// entry whose problem subsumes `problem` under the current layout.
    /// Candidates are ranked by `(budget desc, fingerprint asc)` — a total,
    /// timing-free order — so which sample answers is a pure function of
    /// the reusable set. Returns the captured outcome plus the groups the
    /// estimator will merge away.
    fn find_reusable(
        &self,
        table_key: &str,
        base: &CatalogTable,
        problem: &SamplingProblem,
    ) -> Option<(ReusePlan, Vec<String>)> {
        let requested: HashSet<String> =
            problem.finest_stratification().iter().map(|e| e.display_name()).collect();
        let cache = self.cache.read().unwrap_or_else(|e| e.into_inner());
        let mut best: Option<(usize, u64, &CachedSample)> = None;
        for ((name, folded), bucket) in cache.iter() {
            if name != table_key {
                continue;
            }
            for entry in bucket {
                if !entry.reusable.load(Ordering::Relaxed) {
                    continue;
                }
                // Never match across layouts: the stored key folds the
                // shard layout, so an entry from a superseded layout (which
                // registration invalidates anyway) re-folds differently.
                if base.layout_fingerprint(entry.problem.fingerprint()) != *folded {
                    continue;
                }
                if !entry.problem.subsumes(problem) {
                    continue;
                }
                let rank = (entry.problem.budget, *folded);
                let better = match &best {
                    None => true,
                    Some((b, fp, _)) => rank.0 > *b || (rank.0 == *b && rank.1 < *fp),
                };
                if better {
                    best = Some((rank.0, rank.1, entry));
                }
            }
        }
        let (_, source_fingerprint, entry) = best?;
        // A derived answer is a use: it earns the source its keep exactly
        // like an exact hit would.
        entry.passes_saved.fetch_add(1, Ordering::Relaxed);
        entry.last_used.store(self.tick(), Ordering::Relaxed);
        let coarsened: Vec<String> = entry
            .problem
            .finest_stratification()
            .iter()
            .map(|e| e.display_name())
            .filter(|name| !requested.contains(name))
            .collect();
        Some((ReusePlan { source_fingerprint, outcome: Arc::clone(&entry.outcome) }, coarsened))
    }

    /// [`Engine::sample_uncached`], plus the maintenance hook: a *durable*
    /// preparation over a windowed local table is built through
    /// [`MaintainedSample::build`] — byte-identical to the plain two-pass
    /// path, but capturing the index and statistics partials so later
    /// [`Engine::ingest`] calls can fold batches in without a rescan.
    fn sample_uncached_keyed(
        &self,
        table_key: &str,
        base: &CatalogTable,
        problem: &SamplingProblem,
        durable: bool,
    ) -> Result<Arc<CvOptOutcome>> {
        if durable && self.windows.contains_key(table_key) {
            let catalog = match base {
                CatalogTable::Single(t) => Some(LocalCatalog::Single(t)),
                CatalogTable::Sharded(t) => Some(LocalCatalog::Sharded(t)),
                CatalogTable::Remote(_) => None,
            };
            if let Some(catalog) = catalog {
                let m = MaintainedSample::build(problem.clone(), catalog, self.seed, &self.exec)?;
                self.stats_passes.fetch_add(1, Ordering::Relaxed);
                let outcome = Arc::clone(m.outcome());
                let mut maintained = self.maintained.write().unwrap_or_else(|e| e.into_inner());
                let entries = maintained.entry(table_key.to_string()).or_default();
                entries.retain(|e| e.problem() != problem);
                entries.push(m);
                if entries.len() > MAINTAINED_CAP {
                    entries.remove(0);
                }
                return Ok(outcome);
            }
        }
        self.sample_uncached(base, problem)
    }

    /// Run the two-pass sampler for a problem that is not cached.
    fn sample_uncached(
        &self,
        base: &CatalogTable,
        problem: &SamplingProblem,
    ) -> Result<Arc<CvOptOutcome>> {
        let sampler = CvOptSampler::new(problem.clone()).with_seed(self.seed).with_exec(self.exec);
        let outcome = match base {
            CatalogTable::Single(t) => sampler.sample(t)?,
            CatalogTable::Sharded(t) => sampler.sample_sharded(t)?,
            CatalogTable::Remote(s) => sampler.sample_set(s)?,
        };
        self.stats_passes.fetch_add(1, Ordering::Relaxed);
        Ok(Arc::new(outcome))
    }

    fn handle(
        &self,
        catalog_name: &str,
        fingerprint: u64,
        cache_hit: bool,
        outcome: Arc<CvOptOutcome>,
    ) -> SampleHandle {
        SampleHandle {
            table: catalog_name.to_string(),
            fingerprint,
            cache_hit,
            exec: self.exec,
            outcome,
        }
    }

    /// Compile `statement`, resolve its `FROM` table against the catalog,
    /// and answer it in `mode`. Approximate answers estimate from the
    /// prepared sample for the statement's derived problem (preparing it on
    /// first use, serving it from the cache afterwards) and attach
    /// per-group confidence intervals for `AVG` aggregates.
    /// `EXPLAIN SELECT …` statements plan but never execute: the answer
    /// carries the report with empty results. `JOIN` statements materialize
    /// the join (fact side probed per partition, shard outputs concatenated
    /// in shard order) and answer exactly over the joined table.
    pub fn query(&self, statement: &str, mode: QueryMode) -> Result<QueryAnswer> {
        let (planned, is_explain) = self.plan_statement(statement, mode)?;
        let PlannedStatement { query, mut report, problem, fingerprint, reuse, join } = planned;
        if is_explain {
            return Ok(QueryAnswer { results: Vec::new(), report, confidence: Vec::new() });
        }
        if let Some(join) = join {
            let results = self.execute_join(&report.table, &join, &query)?;
            return Ok(QueryAnswer { results, report, confidence: Vec::new() });
        }
        let (catalog_name, base) = self.resolve(&report.table)?;
        match report.mode {
            QueryMode::Exact => {
                let results = match base {
                    CatalogTable::Single(t) => query.execute_with(t, &self.exec)?,
                    CatalogTable::Sharded(t) => query.execute_sharded(t, &self.exec)?,
                    CatalogTable::Remote(s) => query.execute_set(s, &self.exec)?,
                };
                Ok(QueryAnswer { results, report, confidence: Vec::new() })
            }
            _ => {
                let problem = problem.expect("approximate plans carry a problem");
                let fingerprint = fingerprint.expect("approximate plans carry a fingerprint");
                let handle = match reuse {
                    Some(plan) => {
                        // Derived answer: re-aggregate the subsuming cached
                        // sample the planner captured. This *is* the
                        // handle-estimate call a direct user of that sample
                        // would make, so the bytes are identical by
                        // construction; no statistics pass, no draw.
                        self.reuse_hits.fetch_add(1, Ordering::Relaxed);
                        self.draws_avoided.fetch_add(1, Ordering::Relaxed);
                        note_draw_avoided();
                        self.handle(catalog_name, plan.source_fingerprint, true, plan.outcome)
                    }
                    None => {
                        let handle = self.prepare_keyed(
                            catalog_name,
                            base,
                            problem.clone(),
                            fingerprint,
                            false,
                        )?;
                        // The plan's probe was advisory; the prepare just
                        // run is what actually happened.
                        report.cache_hit = Some(handle.is_cache_hit());
                        report.reuse = if handle.is_cache_hit() {
                            ReuseInfo::Exact { fingerprint }
                        } else {
                            ReuseInfo::None
                        };
                        handle
                    }
                };
                self.log_query(
                    &report.table,
                    &problem,
                    fingerprint,
                    &query,
                    matches!(report.reuse, ReuseInfo::Derived { .. }),
                );
                let results = handle.estimate(&query)?;
                let confidence = self.confidence_for(&handle, &query)?;
                report.strata = Some(handle.plan().num_strata());
                report.sample_rows = Some(handle.sample().len());
                Ok(QueryAnswer { results, report, confidence })
            }
        }
    }

    /// Append the executed approximate query's shape to the table's
    /// bounded log ring (oldest entries fall off past [`QUERY_LOG_CAP`]).
    fn log_query(
        &self,
        table: &str,
        problem: &SamplingProblem,
        fingerprint: u64,
        query: &GroupByQuery,
        reused: bool,
    ) {
        let entry = QueryLogEntry {
            fingerprint,
            budget: problem.budget,
            group_by: problem.finest_stratification().iter().map(|e| e.display_name()).collect(),
            aggregates: problem.aggregate_columns().iter().map(|e| e.display_name()).collect(),
            predicate: query.predicate.as_ref().map(|p| p.to_string()),
            specs: problem.queries.clone(),
            reused,
        };
        let mut log = self.query_log.lock().unwrap_or_else(|e| e.into_inner());
        let ring = log.entry(table.to_ascii_lowercase()).or_default();
        if ring.len() == QUERY_LOG_CAP {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// The table's current query log, oldest first. A snapshot: the ring
    /// keeps filling behind it.
    pub fn query_log(&self, table: &str) -> Vec<QueryLogEntry> {
        let log = self.query_log.lock().unwrap_or_else(|e| e.into_inner());
        log.get(&table.to_ascii_lowercase())
            .map(|r| r.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Consolidate the table's query log into **one** workload-tuned
    /// sample and prepare it as a durable reuse candidate.
    ///
    /// Logged shapes are grouped by problem fingerprint; the consolidated
    /// [`SamplingProblem::multi`] carries every logged spec with its
    /// aggregate weights scaled by the shape's observed frequency — hot
    /// shapes pull the CVOPT allocation toward the strata that serve them,
    /// while per-stratum variance enters through the statistics pass as
    /// usual — under the *maximum* logged budget. The consolidated problem
    /// therefore [subsumes](SamplingProblem::subsumes) every logged one:
    /// once prepared, any recurrence of a logged shape (and anything those
    /// shapes subsume) is answered without a draw.
    ///
    /// Pure function of the log snapshot (shapes are folded in fingerprint
    /// order, not arrival order), so re-optimizing an unchanged workload is
    /// idempotent: the second call exact-hits the cache. Returns `Ok(None)`
    /// when the table has no logged queries. Callable from a maintenance
    /// thread — it takes `&self` and coalesces with concurrent queries like
    /// any other preparation.
    pub fn reoptimize(&self, table: &str) -> Result<Option<ReoptimizeReport>> {
        let (catalog_name, base) = self.resolve(table)?;
        let entries = self.query_log(catalog_name);
        if entries.is_empty() {
            return Ok(None);
        }
        let mut counts: HashMap<u64, (u64, &QueryLogEntry)> = HashMap::new();
        for entry in &entries {
            counts.entry(entry.fingerprint).and_modify(|(n, _)| *n += 1).or_insert((1, entry));
        }
        let mut shapes: Vec<u64> = counts.keys().copied().collect();
        shapes.sort_unstable();
        let mut specs = Vec::new();
        let mut budget = 0usize;
        for fp in &shapes {
            let (count, entry) = counts[fp];
            budget = budget.max(entry.budget);
            for spec in &entry.specs {
                let mut spec = spec.clone();
                for agg in &mut spec.aggregates {
                    agg.weight *= count as f64;
                }
                specs.push(spec);
            }
        }
        let problem = SamplingProblem::multi(specs, budget);
        let fingerprint = base.layout_fingerprint(problem.fingerprint());
        let handle = self.prepare_keyed(catalog_name, base, problem, fingerprint, true)?;
        Ok(Some(ReoptimizeReport {
            table: catalog_name.to_string(),
            logged: entries.len(),
            distinct_shapes: shapes.len(),
            budget,
            fingerprint,
            cache_hit: handle.is_cache_hit(),
            strata: handle.plan().num_strata(),
            sample_rows: handle.sample().len(),
        }))
    }

    /// Report what [`Engine::query`] would do for `statement` in `mode`,
    /// without scanning, sampling, or mutating the cache. Strata and sample
    /// rows are filled in only when the plan is already cached.
    pub fn explain(&self, statement: &str) -> Result<ExplainReport> {
        self.explain_mode(statement, QueryMode::Auto)
    }

    /// [`Engine::explain`] with an explicit mode. Accepts both plain
    /// `SELECT`s and `EXPLAIN SELECT …` (the report is the same).
    pub fn explain_mode(&self, statement: &str, mode: QueryMode) -> Result<ExplainReport> {
        Ok(self.plan_statement(statement, mode)?.0.report)
    }

    /// The one derivation path behind [`Engine::query`] and
    /// [`Engine::explain_mode`]: compile, resolve, derive the problem,
    /// probe the cache *and the reuse planner*, and only then route. Auto
    /// consults the durable sample set **before** the size threshold, so a
    /// cached or subsuming prepared sample flips a small-table query to the
    /// approximate path (the report's `reason` says which rule fired).
    /// Never scans, samples, or mutates beyond cache bookkeeping atomics.
    fn plan_statement(&self, statement: &str, mode: QueryMode) -> Result<(PlannedStatement, bool)> {
        let (stmt, is_explain) = match sql::parse_statement(statement)? {
            sql::Statement::Select(stmt) => (stmt, false),
            sql::Statement::Explain(stmt) => (stmt, true),
        };
        Ok((self.plan_select(stmt, mode)?, is_explain))
    }

    /// Plan one parsed `SELECT`. `JOIN` statements branch off to
    /// [`Engine::plan_join`]; everything else follows the sampling planner.
    fn plan_select(&self, stmt: sql::SelectStmt, mode: QueryMode) -> Result<PlannedStatement> {
        let from = stmt.table.clone();
        let join = stmt.join.clone();
        let query = stmt.into_query()?;
        if let Some(join) = join {
            return self.plan_join(&from, join, query, mode);
        }
        let (catalog_name, base) = self.resolve(&from)?;
        let table_rows = base.num_rows();
        let estimable = query.aggregates.iter().any(|a| a.input.is_some());
        // Derive the problem up front for every potentially-approximate
        // plan. The one place the spec fingerprint is computed: `query`
        // threads it through to `prepare_keyed`, so a cache miss never
        // canonicalizes the problem twice.
        let mut derived: Option<(SamplingProblem, u64, usize)> = None;
        if mode == QueryMode::Approximate || (mode == QueryMode::Auto && estimable) {
            let budget = budget_for_rows(table_rows, self.default_rate)?;
            let problem = problem_for_query(&query, budget)?;
            let fingerprint = base.layout_fingerprint(problem.fingerprint());
            derived = Some((problem, fingerprint, budget));
        }
        // Probe before routing. Every *decision* here — Auto's flip and
        // whether the answer derives from a subsuming sample — depends
        // only on **durable** entries (explicitly prepared or
        // re-optimized): which query-drawn entries happen to be cached is
        // a race under concurrent traffic, and the repo's contract is that
        // answer bytes and chosen modes never are. The probe result itself
        // still prefills the advisory `cache_hit` for EXPLAIN.
        let table_key = catalog_name.to_ascii_lowercase();
        let cached = derived
            .as_ref()
            .and_then(|(p, fp, _)| self.cached_outcome(&(table_key.clone(), *fp), p, false));
        let durable_hit = cached.as_ref().is_some_and(|(_, durable)| *durable);
        let reusable = if durable_hit {
            // A durable exact hit always wins; `Derived` is reserved for
            // answers from a *different* problem's sample.
            None
        } else {
            derived.as_ref().and_then(|(p, _, _)| self.find_reusable(&table_key, base, p))
        };
        let (chosen, reason) = match mode {
            QueryMode::Exact | QueryMode::Approximate => (mode, "mode requested"),
            QueryMode::Auto => {
                if !estimable {
                    (QueryMode::Exact, "no value aggregate to estimate")
                } else if durable_hit {
                    (QueryMode::Approximate, "prepared sample matches exactly")
                } else if reusable.is_some() {
                    (QueryMode::Approximate, "prepared sample subsumes the problem")
                } else if table_rows >= self.auto_threshold {
                    (QueryMode::Approximate, "table at or above the auto threshold")
                } else {
                    (QueryMode::Exact, "table below the auto threshold")
                }
            }
        };
        let shard_partitions = match base {
            CatalogTable::Single(_) => None,
            CatalogTable::Sharded(t) => {
                Some(t.shards().iter().map(|s| partition_rows(s.num_rows()).len()).collect())
            }
            CatalogTable::Remote(s) => {
                Some(s.shard_rows().iter().map(|&rows| partition_rows(rows).len()).collect())
            }
        };
        let (strategy, group_by_reason) = Self::plan_group_strategy(base, &query.group_by);
        let mut report = ExplainReport {
            table: catalog_name.to_string(),
            table_rows,
            mode: chosen,
            reason,
            join: None,
            group_by_strategy: strategy.name(),
            group_by_reason,
            reuse: ReuseInfo::None,
            cache_hit: None,
            fingerprint: None,
            budget: None,
            strata: None,
            sample_rows: None,
            partitions: partition_rows(table_rows).len(),
            threads: self.exec.threads(),
            shards: base.num_shards(),
            shard_partitions,
            remote_shards: base.remote_shards(),
        };
        let mut problem = None;
        let mut planned_fingerprint = None;
        let mut reuse_plan = None;
        if chosen == QueryMode::Approximate {
            let (problem_derived, fingerprint, budget) =
                derived.expect("approximate plans derive a problem");
            report.fingerprint = Some(fingerprint);
            report.budget = Some(budget);
            if let Some((plan, coarsened)) = reusable {
                // The derived answer wins over any non-durable exact entry
                // (whose presence is timing-dependent): `cache_hit` stays
                // false because the statement's own fingerprint does not
                // answer it.
                report.cache_hit = Some(false);
                report.reuse = ReuseInfo::Derived {
                    source_fingerprint: plan.source_fingerprint,
                    coarsened_groups: coarsened,
                    dropped_predicates: query
                        .predicate
                        .as_ref()
                        .and_then(crate::spec::conjunction_atoms)
                        .map(|atoms| atoms.iter().map(|a| a.to_string()).collect())
                        .unwrap_or_else(|| query.predicate.iter().map(|p| p.to_string()).collect()),
                };
                // For derived plans these describe the *source* sample —
                // the one that will answer.
                report.strata = Some(plan.outcome.plan.num_strata());
                report.sample_rows = Some(plan.outcome.sample.len());
                reuse_plan = Some(plan);
            } else {
                match cached {
                    Some((outcome, _)) => {
                        report.cache_hit = Some(true);
                        report.reuse = ReuseInfo::Exact { fingerprint };
                        report.strata = Some(outcome.plan.num_strata());
                        report.sample_rows = Some(outcome.sample.len());
                    }
                    None => report.cache_hit = Some(false),
                }
            }
            problem = Some(problem_derived);
            planned_fingerprint = Some(fingerprint);
        }
        Ok(PlannedStatement {
            query,
            report,
            problem,
            fingerprint: planned_fingerprint,
            reuse: reuse_plan,
            join: None,
        })
    }

    /// The group-index interning strategy the execution layer will choose
    /// for `group_by` over `base`, with its reason — reported by `EXPLAIN`.
    /// Sharded tables build shard-locally, so the report summarizes at
    /// table scale with the widest per-shard key estimate; remote shards
    /// choose on their side of the wire.
    fn plan_group_strategy(
        base: &CatalogTable,
        group_by: &[ScalarExpr],
    ) -> (GroupStrategy, String) {
        if group_by.is_empty() {
            return (GroupStrategy::Hash, "no grouping dimensions".into());
        }
        match base {
            CatalogTable::Single(t) => GroupIndex::strategy_for(t, group_by),
            CatalogTable::Sharded(t) => {
                let mut estimate = Some(0u64);
                for shard in t.shards() {
                    estimate = match (estimate, estimate_keys(shard, group_by)) {
                        (Some(acc), Some(e)) => Some(acc.max(e)),
                        _ => None,
                    };
                    if estimate.is_none() {
                        break;
                    }
                }
                choose_strategy(t.num_rows(), estimate)
            }
            CatalogTable::Remote(_) => {
                let (strategy, _) = choose_strategy(base.num_rows(), None);
                (
                    strategy,
                    "remote shards intern on the serving side; hash build unless forced".into(),
                )
            }
        }
    }

    /// Plan a `JOIN` statement: always exact (the sampling algebra has no
    /// join rule), never cached, local tables only. The joined table is
    /// materialized at execution time; the key estimate for the group
    /// strategy is therefore unavailable at plan time and the heuristic
    /// falls back to the hash build (`CVOPT_GROUP_STRATEGY` still forces).
    fn plan_join(
        &self,
        from: &str,
        join: sql::JoinClause,
        query: GroupByQuery,
        mode: QueryMode,
    ) -> Result<PlannedStatement> {
        let (fact_name, fact) = self.resolve(from)?;
        let (dim_name, dim) = self.resolve(&join.table)?;
        if matches!(fact, CatalogTable::Remote(_)) || matches!(dim, CatalogTable::Remote(_)) {
            return Err(CvError::invalid(format!(
                "JOIN needs local rows on both sides; a remote table cannot be joined \
                 (fact {fact_name}, dim {dim_name})"
            )));
        }
        if mode == QueryMode::Approximate {
            return Err(CvError::invalid(
                "JOIN queries answer exactly; approximate mode is not supported over joins",
            ));
        }
        let reason = match mode {
            QueryMode::Exact => "mode requested",
            _ => "join queries answer exactly",
        };
        let (strategy, group_by_reason) = if query.group_by.is_empty() {
            (GroupStrategy::Hash, "no grouping dimensions".to_string())
        } else {
            choose_strategy(fact.num_rows(), None)
        };
        let table_rows = fact.num_rows();
        let shard_partitions = match fact {
            CatalogTable::Single(_) | CatalogTable::Remote(_) => None,
            CatalogTable::Sharded(t) => {
                Some(t.shards().iter().map(|s| partition_rows(s.num_rows()).len()).collect())
            }
        };
        let report = ExplainReport {
            table: fact_name.to_string(),
            table_rows,
            mode: QueryMode::Exact,
            reason,
            join: Some(format!(
                "{dim_name} ON {fact_name}.{} = {dim_name}.{}",
                join.fact_key, join.dim_key
            )),
            group_by_strategy: strategy.name(),
            group_by_reason,
            reuse: ReuseInfo::None,
            cache_hit: None,
            fingerprint: None,
            budget: None,
            strata: None,
            sample_rows: None,
            partitions: partition_rows(table_rows).len(),
            threads: self.exec.threads(),
            shards: fact.num_shards(),
            shard_partitions,
            remote_shards: None,
        };
        Ok(PlannedStatement {
            query,
            report,
            problem: None,
            fingerprint: None,
            reuse: None,
            join: Some(join),
        })
    }

    /// Materialize the join and answer `query` over its output. The fact
    /// side joins per shard in shard order (global row order), so the
    /// output — and therefore the answer bytes — is identical for any
    /// shard layout and any thread count.
    fn execute_join(
        &self,
        fact_name: &str,
        join: &sql::JoinClause,
        query: &GroupByQuery,
    ) -> Result<Vec<QueryResult>> {
        let (_, fact) = self.resolve(fact_name)?;
        let (dim_name, dim) = self.resolve(&join.table)?;
        let dim_owned;
        let dim_table: &Table = match dim {
            CatalogTable::Single(t) => t,
            CatalogTable::Sharded(t) => {
                dim_owned = t.to_table();
                &dim_owned
            }
            CatalogTable::Remote(_) => {
                return Err(CvError::invalid(format!(
                    "dimension table {dim_name} answers over the wire; JOIN needs local rows"
                )))
            }
        };
        let joined = match fact {
            CatalogTable::Single(t) => {
                hash_join(t, dim_table, &join.fact_key, &join.dim_key, &self.exec)?
            }
            CatalogTable::Sharded(t) => {
                hash_join_sharded(t, dim_table, &join.fact_key, &join.dim_key, &self.exec)?
            }
            CatalogTable::Remote(_) => {
                return Err(CvError::invalid(format!(
                    "fact table {fact_name} answers over the wire; JOIN needs local rows"
                )))
            }
        };
        Ok(query.execute_with(&joined, &self.exec)?)
    }

    /// Confidence intervals for the query's `AVG` aggregates. Cube queries
    /// and non-stratified samples are skipped (the stratified domain
    /// estimator of [`crate::confidence`] does not cover them); a failure
    /// on an eligible aggregate propagates rather than silently dropping
    /// the intervals.
    fn confidence_for(
        &self,
        handle: &SampleHandle,
        query: &GroupByQuery,
    ) -> Result<Vec<AggConfidence>> {
        if query.cube || !handle.sample().is_stratified() {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for (agg_index, agg) in query.aggregates.iter().enumerate() {
            if agg.kind != AggKind::Avg {
                continue;
            }
            let Some(input) = &agg.input else { continue };
            let estimates = estimate_avg_with_error(
                handle.sample(),
                &query.group_by,
                input,
                query.predicate.as_ref(),
            )?;
            out.push(AggConfidence { agg_index, estimates });
        }
        Ok(out)
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::budget_for_rate;
    use cvopt_table::{DataType, KeyAtom, TableBuilder, Value};

    fn table(rows: usize) -> Table {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("h", DataType::Str),
            ("x", DataType::Float64),
        ]);
        for i in 0..rows {
            let g = match i % 20 {
                0 => "rare",
                1..=5 => "mid",
                _ => "common",
            };
            let h = if i % 3 == 0 { "p" } else { "q" };
            let x = 10.0 + (i % 13) as f64 * if g == "rare" { 10.0 } else { 1.0 };
            b.push_row(&[Value::str(g), Value::str(h), Value::Float64(x)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn catalog_register_resolve_drop() {
        let mut e = Engine::new();
        e.register("Events", table(100));
        assert!(e.table("events").is_some());
        assert!(e.table("EVENTS").is_some());
        assert_eq!(e.table_names(), vec!["Events"]);
        assert!(e.drop_table("events"));
        assert!(!e.drop_table("events"));
        assert!(e.table("events").is_none());
    }

    #[test]
    fn unknown_table_is_informative() {
        let mut e = Engine::new();
        e.register("bikes", table(50));
        let err = e.query("SELECT g, AVG(x) FROM nope GROUP BY g", QueryMode::Exact).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope") && msg.contains("bikes"), "{msg}");
    }

    #[test]
    fn exact_matches_direct_execution() {
        let mut e = Engine::new();
        let t = table(2000);
        e.register("t", t.clone());
        let sql_text = "SELECT g, AVG(x), COUNT(*) FROM t GROUP BY g";
        let ans = e.query(sql_text, QueryMode::Exact).unwrap();
        let direct = sql::run(&t, sql_text).unwrap();
        assert_eq!(ans.results[0].keys, direct[0].keys);
        assert_eq!(ans.results[0].values, direct[0].values);
        assert_eq!(ans.report.mode, QueryMode::Exact);
        assert_eq!(ans.report.cache_hit, None);
        assert_eq!(e.stats_passes(), 0);
    }

    #[test]
    fn explain_statement_plans_without_executing() {
        let mut e = Engine::new();
        e.register("t", table(2000));
        let ans = e.query("EXPLAIN SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Exact).unwrap();
        assert!(ans.results.is_empty());
        assert!(ans.confidence.is_empty());
        assert_eq!(ans.report.table, "t");
        assert_eq!(ans.report.group_by_strategy, "hash");
        assert!(!ans.report.group_by_reason.is_empty());
        assert_eq!(e.stats_passes(), 0, "EXPLAIN must not sample");
        // explain_mode accepts both spellings and agrees with itself.
        let plain = e.explain_mode("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Exact).unwrap();
        let explained =
            e.explain_mode("EXPLAIN SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Exact).unwrap();
        assert_eq!(plain.group_by_strategy, explained.group_by_strategy);
        assert_eq!(plain.to_line(), explained.to_line());
        assert!(plain.to_line().contains("group-by hash"), "{}", plain.to_line());
    }

    #[test]
    fn join_matches_direct_hash_join() {
        let mut e = Engine::new();
        let t = table(2000);
        e.register("t", t.clone());
        let mut b = TableBuilder::new(&[("k", DataType::Str), ("tier", DataType::Str)]);
        for (k, tier) in [("rare", "low"), ("mid", "low"), ("common", "high")] {
            b.push_row(&[Value::str(k), Value::str(tier)]).unwrap();
        }
        let dim = b.finish();
        e.register("tiers", dim.clone());
        let ans = e
            .query(
                "SELECT tier, AVG(x), COUNT(*) FROM t JOIN tiers ON t.g = tiers.k GROUP BY tier",
                QueryMode::Exact,
            )
            .unwrap();
        let joined = hash_join(&t, &dim, "g", "k", &ExecOptions::sequential()).unwrap();
        let direct =
            sql::run(&joined, "SELECT tier, AVG(x), COUNT(*) FROM j GROUP BY tier").unwrap();
        assert_eq!(ans.results[0].keys, direct[0].keys);
        assert_eq!(ans.results[0].values, direct[0].values);
        assert_eq!(ans.report.join.as_deref(), Some("tiers ON t.g = tiers.k"));
        assert!(ans.report.to_line().contains("join tiers"), "{}", ans.report.to_line());
        assert_eq!(e.stats_passes(), 0, "exact joins never sample");
    }

    #[test]
    fn prepare_caches_by_fingerprint() {
        let mut e = Engine::new().with_seed(3);
        e.register("t", table(2000));
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 200);
        let first = e.prepare("t", problem.clone()).unwrap();
        assert!(!first.is_cache_hit());
        assert_eq!(e.stats_passes(), 1);
        let second = e.prepare("T", problem.clone()).unwrap();
        assert!(second.is_cache_hit());
        assert_eq!(e.stats_passes(), 1);
        assert_eq!(first.fingerprint(), second.fingerprint());
        assert_eq!(first.sample().origin, second.sample().origin);
        // A different problem is a different cache entry.
        let other = e
            .prepare("t", SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 300))
            .unwrap();
        assert!(!other.is_cache_hit());
        assert_eq!(e.cached_samples(), 2);
    }

    #[test]
    fn prepare_fails_fast_on_invalid_spec() {
        let mut e = Engine::new();
        e.register("t", table(100));
        let bad = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 50)
            .with_norm(crate::Norm::Lp(f64::NAN));
        assert!(e.prepare("t", bad).is_err());
        assert_eq!(e.stats_passes(), 0, "invalid specs must not scan");
    }

    #[test]
    fn approximate_is_bit_identical_to_fresh_sampler() {
        let seed = 42;
        let mut e = Engine::new().with_seed(seed);
        let t = table(5000);
        e.register("t", t.clone());
        let sql_text = "SELECT g, AVG(x), SUM(x) FROM t GROUP BY g";
        let ans = e.query(sql_text, QueryMode::Approximate).unwrap();

        let query = sql::compile(sql_text).unwrap();
        let budget = budget_for_rate(&t, 0.01).unwrap();
        let problem = problem_for_query(&query, budget).unwrap();
        let outcome = CvOptSampler::new(problem).with_seed(seed).sample(&t).unwrap();
        let fresh = estimate_with(&outcome.sample, &query, e.exec()).unwrap();
        assert_eq!(ans.results[0].keys, fresh[0].keys);
        for (a, b) in ans.results[0].values.iter().zip(&fresh[0].values) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "estimates must be bit-identical");
            }
        }
    }

    #[test]
    fn second_query_hits_cache_and_new_predicate_reuses_sample() {
        let mut e = Engine::new().with_seed(1);
        e.register("t", table(5000));
        let a = e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        assert_eq!(a.report.cache_hit, Some(false));
        assert_eq!(e.stats_passes(), 1);
        // Same derived problem, new predicate: the grouping and value
        // columns are unchanged, so the fingerprint matches and the cached
        // sample answers it without a second statistics pass.
        let b = e
            .query("SELECT g, AVG(x) FROM t WHERE h = 'p' GROUP BY g", QueryMode::Approximate)
            .unwrap();
        assert_eq!(b.report.cache_hit, Some(true));
        assert_eq!(e.stats_passes(), 1);
        assert!(b.results[0].num_groups() > 0);
    }

    #[test]
    fn auto_mode_routes_by_size_and_shape() {
        let mut e = Engine::new().with_auto_threshold(1000);
        e.register("small", table(100));
        e.register("big", table(2000));
        let small = e.query("SELECT g, AVG(x) FROM small GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(small.report.mode, QueryMode::Exact);
        let big = e.query("SELECT g, AVG(x) FROM big GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(big.report.mode, QueryMode::Approximate);
        // COUNT(*)-only queries have nothing to optimize a sample for.
        let count_only =
            e.query("SELECT g, COUNT(*) FROM big GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(count_only.report.mode, QueryMode::Exact);
    }

    #[test]
    fn approximate_count_only_errors() {
        let mut e = Engine::new();
        e.register("t", table(500));
        let err =
            e.query("SELECT g, COUNT(*) FROM t GROUP BY g", QueryMode::Approximate).unwrap_err();
        assert!(err.to_string().contains("exact"), "{err}");
    }

    #[test]
    fn explain_reports_without_mutating() {
        let mut e = Engine::new().with_seed(2).with_auto_threshold(1000);
        e.register("t", table(3000));
        let sql_text = "SELECT g, AVG(x) FROM t GROUP BY g";
        let before = e.explain(sql_text).unwrap();
        assert_eq!(before.mode, QueryMode::Approximate);
        assert_eq!(before.cache_hit, Some(false));
        assert!(before.strata.is_none(), "no plan exists yet");
        assert_eq!(before.partitions, 1);
        assert_eq!(e.stats_passes(), 0, "explain must not sample");

        let _ = e.query(sql_text, QueryMode::Approximate).unwrap();
        let after = e.explain(sql_text).unwrap();
        assert_eq!(after.cache_hit, Some(true));
        assert_eq!(after.strata, Some(3));
        assert_eq!(after.budget, Some(30));
        assert!(after.to_line().contains("cache HIT"), "{}", after.to_line());

        let exact = e.explain_mode(sql_text, QueryMode::Exact).unwrap();
        assert_eq!(exact.mode, QueryMode::Exact);
        assert_eq!(exact.cache_hit, None);
    }

    #[test]
    fn confidence_attached_for_avg() {
        let mut e = Engine::new().with_seed(4).with_default_rate(0.1);
        e.register("t", table(5000));
        let ans =
            e.query("SELECT g, AVG(x), SUM(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        assert_eq!(ans.confidence.len(), 1);
        let conf = &ans.confidence[0];
        assert_eq!(conf.agg_index, 0);
        assert_eq!(conf.estimates.len(), ans.results[0].num_groups());
        for est in &conf.estimates {
            let point = ans.results[0].value(&est.key, 0).unwrap();
            assert!((est.estimate - point).abs() < 1e-9);
            let (lo, hi) = est.ci95();
            assert!(lo <= est.estimate && est.estimate <= hi);
        }
    }

    #[test]
    fn register_table_invalidates_stale_samples() {
        let mut e = Engine::new();
        e.register("t", table(2000));
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 100);
        let _ = e.prepare("t", problem.clone()).unwrap();
        assert_eq!(e.cached_samples(), 1);
        e.register("t", table(3000));
        assert_eq!(e.cached_samples(), 0, "replacing a table must drop its samples");
        let handle = e.prepare("t", problem).unwrap();
        assert!(!handle.is_cache_hit());
    }

    #[test]
    fn sharded_registration_answers_bit_identically() {
        let t = table(5000);
        let mut single = Engine::new().with_seed(11);
        single.register("t", t.clone());
        let mut sharded = Engine::new().with_seed(11);
        sharded.register("t", ShardedTable::split(&t, 3).unwrap());
        let sql_text = "SELECT g, AVG(x), SUM(x) FROM t WHERE h = 'p' GROUP BY g";
        for mode in [QueryMode::Exact, QueryMode::Approximate] {
            let a = single.query(sql_text, mode).unwrap();
            let b = sharded.query(sql_text, mode).unwrap();
            assert_eq!(a.results[0].keys, b.results[0].keys, "{mode:?}");
            for (x, y) in a.results[0].values.iter().zip(&b.results[0].values) {
                for (u, v) in x.iter().zip(y) {
                    assert_eq!(u.to_bits(), v.to_bits(), "{mode:?}: values must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn sharded_explain_reports_layout() {
        let mut e = Engine::new().with_auto_threshold(1000);
        let t = table(3000);
        e.register("t", ShardedTable::split(&t, 3).unwrap());
        let report = e.explain("SELECT g, AVG(x) FROM t GROUP BY g").unwrap();
        assert_eq!(report.shards, Some(3));
        assert_eq!(report.shard_partitions, Some(vec![1, 1, 1]));
        assert_eq!(report.table_rows, 3000);
        assert!(report.to_line().contains("3 shards"), "{}", report.to_line());
        // Single-table registrations report no shard layout.
        let mut plain = Engine::new();
        plain.register("t", t);
        let report = plain.explain_mode("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Exact);
        let report = report.unwrap();
        assert_eq!(report.shards, None);
        assert_eq!(report.shard_partitions, None);
    }

    #[test]
    fn cache_fingerprint_folds_shard_layout() {
        let t = table(4000);
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 200);
        let mut two = Engine::new().with_seed(1);
        two.register("t", ShardedTable::split(&t, 2).unwrap());
        let mut three = Engine::new().with_seed(1);
        three.register("t", ShardedTable::split(&t, 3).unwrap());
        let mut plain = Engine::new().with_seed(1);
        plain.register("t", t);
        let fp_two = two.prepare("t", problem.clone()).unwrap().fingerprint();
        let fp_three = three.prepare("t", problem.clone()).unwrap().fingerprint();
        let fp_plain = plain.prepare("t", problem.clone()).unwrap().fingerprint();
        assert_ne!(fp_two, fp_three, "layouts must key the cache differently");
        assert_ne!(fp_two, fp_plain);
        // Within one engine, the layout-folded key still hits the cache.
        let again = two.prepare("t", problem).unwrap();
        assert!(again.is_cache_hit());
        assert_eq!(again.fingerprint(), fp_two);
        // ... and the samples themselves are bit-identical across layouts.
        assert_eq!(two.stats_passes(), 1);
    }

    #[test]
    fn re_registering_sharded_table_drops_samples() {
        let t = table(2000);
        let mut e = Engine::new();
        e.register("t", ShardedTable::split(&t, 2).unwrap());
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 100);
        let _ = e.prepare("t", problem.clone()).unwrap();
        assert_eq!(e.cached_samples(), 1);
        e.register("t", ShardedTable::split(&t, 4).unwrap());
        assert_eq!(e.cached_samples(), 0, "re-sharding must drop stale samples");
        assert!(!e.prepare("t", problem).unwrap().is_cache_hit());
    }

    #[test]
    fn catalog_accessors_distinguish_kinds() {
        let t = table(100);
        let mut e = Engine::new();
        e.register("plain", t.clone());
        e.register("shard", ShardedTable::split(&t, 2).unwrap());
        assert!(e.table("plain").is_some());
        assert!(e.table("shard").is_none(), "sharded entries are not single tables");
        assert!(e.sharded_table("shard").is_some());
        assert!(e.sharded_table("plain").is_none());
        assert!(matches!(e.catalog_table("shard"), Some(CatalogTable::Sharded(_))));
        assert_eq!(e.catalog_table("shard").unwrap().num_shards(), Some(2));
        assert_eq!(e.table_names(), vec!["plain", "shard"]);
    }

    #[test]
    fn concurrent_identical_prepares_coalesce_into_one_pass() {
        let mut e = Engine::new().with_seed(8);
        e.register("t", table(6000));
        let e = std::sync::Arc::new(e);
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 300);
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(8));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let e = std::sync::Arc::clone(&e);
                let problem = problem.clone();
                let barrier = std::sync::Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    e.prepare("t", problem).unwrap()
                })
            })
            .collect();
        let results: Vec<SampleHandle> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(e.stats_passes(), 1, "concurrent misses must coalesce into one pass");
        assert_eq!(e.cache_misses(), 1);
        assert_eq!(e.cache_hits(), 7);
        assert_eq!(results.iter().filter(|h| !h.is_cache_hit()).count(), 1);
        let origin = &results[0].sample().origin;
        for h in &results {
            assert_eq!(&h.sample().origin, origin, "all callers share one outcome");
        }
        // The coalesced outcome is the cached outcome.
        let again = e.prepare("t", problem.clone()).unwrap();
        assert!(again.is_cache_hit());
        assert_eq!(&again.sample().origin, origin);
    }

    #[test]
    fn concurrent_distinct_queries_share_the_engine() {
        let mut e = Engine::new().with_seed(5);
        e.register("t", table(6000));
        let e = std::sync::Arc::new(e);
        let statements = [
            "SELECT g, AVG(x) FROM t GROUP BY g",
            "SELECT h, AVG(x) FROM t GROUP BY h",
            "SELECT g, h, SUM(x) FROM t GROUP BY g, h",
            "SELECT g, AVG(x) FROM t WHERE h = 'p' GROUP BY g",
        ];
        let handles: Vec<_> = statements
            .iter()
            .map(|&sql| {
                let e = std::sync::Arc::clone(&e);
                std::thread::spawn(move || e.query(sql, QueryMode::Approximate).unwrap())
            })
            .collect();
        let concurrent: Vec<QueryAnswer> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Each answer is bit-identical to a sequential engine's answer —
        // preparation order cannot matter because samples are pure
        // functions of (table, problem, seed).
        let mut seq = Engine::new().with_seed(5);
        seq.register("t", table(6000));
        for (sql, got) in statements.iter().zip(&concurrent) {
            let want = seq.query(sql, QueryMode::Approximate).unwrap();
            assert_eq!(got.results[0].keys, want.results[0].keys, "{sql}");
            for (a, b) in got.results[0].values.iter().zip(&want.results[0].values) {
                for (x, y) in a.iter().zip(b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{sql}");
                }
            }
        }
        // Statements 1 and 4 share a derived problem (same grouping and
        // value column), so the engine ran 3 passes, not 4.
        assert_eq!(e.stats_passes(), 3);
    }

    #[test]
    fn failed_preparation_retries_and_counts_as_miss() {
        let mut e = Engine::new();
        e.register("t", table(500));
        // A problem over a column that does not exist fails during the
        // scan, not validation — the pending slot must be retired so a
        // later prepare retries instead of reusing a poisoned run.
        let bad = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("nope"), 50);
        assert!(e.prepare("t", bad.clone()).is_err());
        assert!(e.prepare("t", bad).is_err());
        assert_eq!(e.cache_misses(), 2);
        assert_eq!(e.cache_hits(), 0);
        let good = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 50);
        assert!(e.prepare("t", good).is_ok());
    }

    #[test]
    fn handle_estimates_new_grouping() {
        let mut e = Engine::new().with_seed(5);
        e.register("t", table(4000));
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g", "h"]).aggregate("x"), 400);
        let handle = e.prepare("t", problem).unwrap();
        // Coarser grouping than the sample was planned for.
        let query = sql::compile("SELECT h, AVG(x) FROM t GROUP BY h").unwrap();
        let est = handle.estimate(&query).unwrap();
        assert_eq!(est[0].num_groups(), 2);
        assert!(est[0].value(&[KeyAtom::from("p")], 0).is_some());
    }

    // ---- cache economy ----------------------------------------------------

    /// A hand-built cache entry for driving `enforce_budget_locked`
    /// directly (the outcome payload is irrelevant to eviction — only the
    /// accounted `bytes` matter).
    fn economy_entry(
        outcome: &Arc<CvOptOutcome>,
        budget: usize,
        bytes: u64,
        passes: u64,
        used: u64,
    ) -> CachedSample {
        CachedSample {
            problem: SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), budget),
            outcome: Arc::clone(outcome),
            bytes,
            passes_saved: AtomicU64::new(passes),
            last_used: AtomicU64::new(used),
            reusable: AtomicBool::new(false),
        }
    }

    fn small_outcome() -> Arc<CvOptOutcome> {
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 50);
        Arc::new(CvOptSampler::new(problem).with_seed(1).sample(&table(500)).unwrap())
    }

    #[test]
    fn unbounded_cache_never_evicts_and_accounts_bytes() {
        let mut e = Engine::new().with_seed(2);
        e.register("t", table(3000));
        assert_eq!(e.cache_bytes_held(), 0);
        e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        let after_one = e.cache_bytes_held();
        assert!(after_one > 0);
        e.query("SELECT h, AVG(x) FROM t GROUP BY h", QueryMode::Approximate).unwrap();
        assert!(e.cache_bytes_held() > after_one);
        assert_eq!(e.cache_evictions(), 0);
        assert_eq!(e.cache_budget(), None);
    }

    #[test]
    fn zero_budget_evicts_every_entry_but_answers_identically() {
        let run = |budget: Option<u64>| {
            let mut e = Engine::new().with_seed(9).with_cache_bytes(budget);
            e.register("t", table(3000));
            let sql_text = "SELECT g, AVG(x) FROM t GROUP BY g";
            let a = e.query(sql_text, QueryMode::Approximate).unwrap();
            let b = e.query(sql_text, QueryMode::Approximate).unwrap();
            (a, b, e.stats_passes(), e.cache_evictions(), e.cache_bytes_held())
        };
        let (ua, ub, upasses, uevict, _) = run(None);
        let (za, zb, zpasses, zevict, zheld) = run(Some(0));
        // Budget 0: every published entry is immediately evicted, so the
        // repeat re-prepares; unbounded reuses the cached sample.
        assert_eq!((upasses, uevict), (1, 0));
        assert_eq!((zpasses, zevict), (2, 2));
        assert_eq!(zheld, 0);
        // Eviction moves work, never answers: results are bit-identical
        // across budgets (and the repeat matches the first run).
        for (x, y) in [(&ua, &za), (&ub, &zb), (&za, &zb)] {
            assert_eq!(x.results[0].keys, y.results[0].keys);
            for (vx, vy) in x.results[0].values.iter().zip(&y.results[0].values) {
                for (a, b) in vx.iter().zip(vy) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn tiny_budget_evicts_the_unearned_entry_first() {
        let mut e = Engine::new().with_seed(4);
        e.register("t", table(3000));
        let hot = "SELECT g, AVG(x) FROM t GROUP BY g";
        e.query(hot, QueryMode::Approximate).unwrap();
        let one_entry = e.cache_bytes_held();
        // Earn the entry some saved passes, then give the cache room for
        // exactly one entry and insert a second problem.
        e.query(hot, QueryMode::Approximate).unwrap();
        e.query(hot, QueryMode::Approximate).unwrap();
        let e = {
            // Rebuild with a budget (builder consumes self); replay.
            let mut e2 = Engine::new().with_seed(4).with_cache_bytes(Some(one_entry));
            e2.register("t", table(3000));
            e2.query(hot, QueryMode::Approximate).unwrap();
            e2.query(hot, QueryMode::Approximate).unwrap();
            e2.query(hot, QueryMode::Approximate).unwrap();
            e2
        };
        e.query("SELECT h, AVG(x) FROM t GROUP BY h", QueryMode::Approximate).unwrap();
        // The fresh entry (zero passes saved → rank 0) is the victim, not
        // the hot one it displaced past the budget.
        assert_eq!(e.cache_evictions(), 1);
        assert!(e.cache_bytes_held() <= one_entry);
        let again = e.query(hot, QueryMode::Approximate).unwrap();
        assert_eq!(again.report.cache_hit, Some(true), "hot entry must survive");
    }

    #[test]
    fn replacing_or_dropping_a_table_frees_its_bytes_without_evictions() {
        let mut e = Engine::new().with_seed(6);
        e.register("t", table(2000));
        e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        assert!(e.cache_bytes_held() > 0);
        e.register("t", table(2000));
        assert_eq!(e.cache_bytes_held(), 0, "replacement invalidates the samples");
        assert_eq!(e.cache_evictions(), 0, "invalidation is not eviction");
        e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        assert!(e.drop_table("t"));
        assert_eq!(e.cache_bytes_held(), 0);
    }

    #[test]
    fn eviction_order_is_rank_then_lru() {
        let outcome = small_outcome();
        let mut cache: HashMap<CacheKey, Vec<CachedSample>> = HashMap::new();
        // Ranks: a = 100×0 = 0, b = 100×1 = 100, c = 100×2 = 200; d ties
        // b's product with an older stamp.
        cache.insert(("t".into(), 1), vec![economy_entry(&outcome, 50, 100, 0, 4)]);
        cache.insert(("t".into(), 2), vec![economy_entry(&outcome, 51, 100, 1, 3)]);
        cache.insert(("t".into(), 3), vec![economy_entry(&outcome, 52, 100, 2, 2)]);
        cache.insert(("t".into(), 4), vec![economy_entry(&outcome, 53, 100, 1, 1)]);
        let bytes = AtomicU64::new(400);
        let evictions = AtomicU64::new(0);
        Engine::enforce_budget_locked(&mut cache, &HashSet::new(), 150, &bytes, &evictions);
        // 400 → evict rank-0 (key 1) → 300 → evict the LRU of the rank-100
        // tie (key 4, stamp 1) → 200 → evict the younger rank-100 (key 2)
        // → 100 ≤ 150, stop. The rank-200 entry survives.
        assert_eq!(evictions.load(Ordering::Relaxed), 3);
        assert_eq!(bytes.load(Ordering::Relaxed), 100);
        assert_eq!(cache.keys().collect::<Vec<_>>(), vec![&("t".to_string(), 3)]);
    }

    #[test]
    fn in_flight_keys_are_never_evicted() {
        let outcome = small_outcome();
        let mut cache: HashMap<CacheKey, Vec<CachedSample>> = HashMap::new();
        // The protected entry has the *lowest* rank — the one eviction
        // would otherwise take first.
        cache.insert(("t".into(), 1), vec![economy_entry(&outcome, 50, 100, 0, 1)]);
        cache.insert(("t".into(), 2), vec![economy_entry(&outcome, 51, 100, 5, 2)]);
        let protected: HashSet<CacheKey> = [("t".to_string(), 1)].into();
        let bytes = AtomicU64::new(200);
        let evictions = AtomicU64::new(0);
        Engine::enforce_budget_locked(&mut cache, &protected, 0, &bytes, &evictions);
        // Only the unprotected entry goes; the loop then stops even though
        // the protected entry still exceeds the budget.
        assert_eq!(evictions.load(Ordering::Relaxed), 1);
        assert_eq!(bytes.load(Ordering::Relaxed), 100);
        assert!(cache.contains_key(&("t".to_string(), 1)));
        assert!(!cache.contains_key(&("t".to_string(), 2)));
    }

    proptest::proptest! {
        /// The eviction rank is a pure function of (bytes, passes-saved,
        /// last-used): recomputing never disagrees, ordering is exactly
        /// "product first, stamp second", and the product never saturates
        /// or wraps (u128 holds any u64×u64).
        #[test]
        fn eviction_rank_is_pure_and_orders_by_product_then_lru(
            bytes_a in 0u64..=u64::MAX, passes_a in 0u64..=u64::MAX, used_a in 0u64..=u64::MAX,
            bytes_b in 0u64..=u64::MAX, passes_b in 0u64..=u64::MAX, used_b in 0u64..=u64::MAX,
        ) {
            let a = eviction_rank(bytes_a, passes_a, used_a);
            let b = eviction_rank(bytes_b, passes_b, used_b);
            proptest::prop_assert_eq!(a, eviction_rank(bytes_a, passes_a, used_a));
            proptest::prop_assert_eq!(a.0, (bytes_a as u128) * (passes_a as u128));
            let by_product = (bytes_a as u128 * passes_a as u128)
                .cmp(&(bytes_b as u128 * passes_b as u128));
            let expected = by_product.then(used_a.cmp(&used_b));
            proptest::prop_assert_eq!(a.cmp(&b), expected);
        }
    }

    // ---- sample reuse ------------------------------------------------------

    /// Bit-compare two result sets (keys and every f64 payload).
    fn assert_same_bits(a: &[QueryResult], b: &[QueryResult]) {
        assert_eq!(a.len(), b.len());
        for (ra, rb) in a.iter().zip(b) {
            assert_eq!(ra.keys, rb.keys);
            for (va, vb) in ra.values.iter().zip(&rb.values) {
                for (x, y) in va.iter().zip(vb) {
                    assert_eq!(x.to_bits(), y.to_bits(), "reused answer must be bit-identical");
                }
            }
        }
    }

    #[test]
    fn derived_reuse_is_bit_identical_to_direct_reaggregation() {
        let mut e = Engine::new().with_seed(9);
        e.register("t", table(4000));
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g", "h"]).aggregate("x"), 400);
        let handle = e.prepare("t", problem).unwrap();
        assert_eq!(e.stats_passes(), 1);

        // Coarser grouping + a predicate the sample was never planned for:
        // the reuse planner answers from the prepared sample, drawing
        // nothing.
        let sql_text = "SELECT g, AVG(x), SUM(x) FROM t WHERE h = 'p' GROUP BY g";
        let ans = e.query(sql_text, QueryMode::Approximate).unwrap();
        assert_eq!(e.stats_passes(), 1, "no new draw");
        assert_eq!(e.reuse_hits(), 1);
        assert_eq!(e.draws_avoided(), 1);
        assert_eq!(ans.report.cache_hit, Some(false));
        match &ans.report.reuse {
            ReuseInfo::Derived { source_fingerprint, coarsened_groups, dropped_predicates } => {
                assert_eq!(*source_fingerprint, handle.fingerprint());
                assert_eq!(coarsened_groups, &["h".to_string()]);
                assert_eq!(dropped_predicates, &["h = 'p'".to_string()]);
            }
            other => panic!("expected a derived answer, got {other:?}"),
        }
        assert!(ans.report.to_line().contains("reused"), "{}", ans.report.to_line());

        // The contract: byte-identical to calling `estimate` on the same
        // cached sample directly.
        let query = sql::compile(sql_text).unwrap();
        let direct = handle.estimate(&query).unwrap();
        assert_same_bits(&ans.results, &direct);

        // Confidence intervals ride along, computed over the source sample.
        assert_eq!(ans.confidence.len(), 1);
    }

    #[test]
    fn query_drawn_samples_are_not_reuse_candidates() {
        let mut e = Engine::new().with_seed(3);
        e.register("t", table(4000));
        // The fine sample exists in the cache, but only because a query
        // drew it — the reuse planner must not see it.
        let fine =
            e.query("SELECT g, h, AVG(x) FROM t GROUP BY g, h", QueryMode::Approximate).unwrap();
        assert_eq!(fine.report.cache_hit, Some(false));
        let coarse = e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        assert_eq!(coarse.report.reuse, ReuseInfo::None);
        assert_eq!(e.stats_passes(), 2, "coarse query draws its own sample");
        assert_eq!(e.reuse_hits(), 0);
    }

    #[test]
    fn exact_cache_hit_reports_exact_reuse() {
        let mut e = Engine::new().with_seed(3);
        e.register("t", table(4000));
        let sql_text = "SELECT g, AVG(x) FROM t GROUP BY g";
        let first = e.query(sql_text, QueryMode::Approximate).unwrap();
        assert_eq!(first.report.reuse, ReuseInfo::None);
        let second = e.query(sql_text, QueryMode::Approximate).unwrap();
        let fingerprint = second.report.fingerprint.unwrap();
        assert_eq!(second.report.reuse, ReuseInfo::Exact { fingerprint });
        assert_eq!(e.reuse_hits(), 0, "exact hits are cache hits, not algebra reuse");
    }

    #[test]
    fn auto_flips_to_approximate_for_prepared_samples() {
        // 4000 rows is far below the threshold, so Auto would go exact on
        // an empty engine.
        let mut e = Engine::new().with_seed(11).with_auto_threshold(1_000_000);
        e.register("t", table(4000));
        let cold = e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(cold.report.mode, QueryMode::Exact);
        assert_eq!(cold.report.reason, "table below the auto threshold");

        let problem = SamplingProblem::single(QuerySpec::group_by(&["g", "h"]).aggregate("x"), 400);
        e.prepare("t", problem).unwrap();

        // Subsumed problem: the durable sample flips Auto to approximate.
        let warm = e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(warm.report.mode, QueryMode::Approximate);
        assert_eq!(warm.report.reason, "prepared sample subsumes the problem");
        assert!(matches!(warm.report.reuse, ReuseInfo::Derived { .. }));
        assert_eq!(e.stats_passes(), 1, "the flip costs no draw");

        // A statement with nothing to estimate stays exact regardless.
        let count_only = e.query("SELECT g, COUNT(*) FROM t GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(count_only.report.mode, QueryMode::Exact);
        assert_eq!(count_only.report.reason, "no value aggregate to estimate");
    }

    #[test]
    fn auto_flips_on_exact_durable_hit_with_reason() {
        let mut e = Engine::new().with_seed(11).with_auto_threshold(1_000_000);
        let t = table(4000);
        e.register("t", t.clone());
        // Prepare exactly the problem the statement derives.
        let query = sql::compile("SELECT g, AVG(x) FROM t GROUP BY g").unwrap();
        let budget = budget_for_rate(&t, 0.01).unwrap();
        let problem = problem_for_query(&query, budget).unwrap();
        e.prepare("t", problem).unwrap();

        let warm = e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(warm.report.mode, QueryMode::Approximate);
        assert_eq!(warm.report.reason, "prepared sample matches exactly");
        assert_eq!(warm.report.cache_hit, Some(true));
        let fingerprint = warm.report.fingerprint.unwrap();
        assert_eq!(warm.report.reuse, ReuseInfo::Exact { fingerprint });
        assert_eq!(e.stats_passes(), 1);
    }

    #[test]
    fn query_log_is_bounded_and_records_shapes() {
        let mut e = Engine::new().with_seed(2);
        e.register("t", table(3000));
        for _ in 0..(QUERY_LOG_CAP + 10) {
            e.query("SELECT g, AVG(x) FROM t WHERE h = 'p' GROUP BY g", QueryMode::Approximate)
                .unwrap();
        }
        let log = e.query_log("t");
        assert_eq!(log.len(), QUERY_LOG_CAP);
        assert_eq!(e.stats_passes(), 1, "one draw, the rest cache hits");
        let entry = &log[0];
        assert_eq!(entry.group_by, vec!["g".to_string()]);
        assert_eq!(entry.aggregates, vec!["x".to_string()]);
        assert_eq!(entry.predicate.as_deref(), Some("h = 'p'"));
        assert!(!entry.reused);
        // Exact queries and other tables never log here.
        e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Exact).unwrap();
        assert_eq!(e.query_log("t").len(), QUERY_LOG_CAP);
        assert!(e.query_log("missing").is_empty());
    }

    #[test]
    fn reoptimize_consolidates_the_log_and_serves_future_shapes() {
        let mut e = Engine::new().with_seed(21);
        e.register("t", table(4000));
        assert!(e.reoptimize("t").unwrap().is_none(), "empty log consolidates nothing");

        // Observed workload: two shapes, one hot.
        e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        e.query("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Approximate).unwrap();
        e.query("SELECT h, AVG(x) FROM t GROUP BY h", QueryMode::Approximate).unwrap();
        assert_eq!(e.stats_passes(), 2);

        let report = e.reoptimize("t").unwrap().expect("log is non-empty");
        assert_eq!(report.logged, 3);
        assert_eq!(report.distinct_shapes, 2);
        assert!(!report.cache_hit, "the consolidated sample is new");
        assert_eq!(e.stats_passes(), 3);

        // Idempotent: an unchanged workload re-optimizes to a cache hit.
        let again = e.reoptimize("t").unwrap().unwrap();
        assert_eq!(again.fingerprint, report.fingerprint);
        assert!(again.cache_hit);
        assert_eq!(e.stats_passes(), 3);

        // A shape covered by the union — never queried before — derives
        // (and is itself logged, so the workload has now changed).
        let both =
            e.query("SELECT g, h, AVG(x) FROM t GROUP BY g, h", QueryMode::Approximate).unwrap();
        assert!(matches!(both.report.reuse, ReuseInfo::Derived { .. }), "{:?}", both.report.reuse);
        assert_eq!(e.stats_passes(), 3, "no draw for the derived answer");
        assert_eq!(e.reuse_hits(), 1);
        assert!(e.query_log("t").last().unwrap().reused);

        // Re-registering the table clears the log with the samples.
        e.register("t", table(4000));
        assert!(e.query_log("t").is_empty());
        assert!(e.reoptimize("t").unwrap().is_none());
    }

    /// `(g, x, ts)` rows with `ts = offset + row`, for windowed tables.
    fn ts_table(offset: usize, rows: usize) -> Table {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("x", DataType::Float64),
            ("ts", DataType::Int64),
        ]);
        for i in offset..offset + rows {
            let g = ["a", "b", "c", "d"][i % 4];
            let x = ((i as f64) * 0.37).sin() * 40.0 + (i % 11) as f64;
            b.push_row(&[Value::str(g), Value::Float64(x), Value::Int64(i as i64)]).unwrap();
        }
        b.finish()
    }

    /// Regression (stale-cache rule): a query's cached sample must never
    /// survive an append unrefreshed — the second answer reflects the new
    /// rows.
    #[test]
    fn ingest_invalidates_stale_query_cache() {
        let sql_text = "SELECT g, SUM(x), COUNT(*) FROM t GROUP BY g";
        let mut e = Engine::new().with_seed(9).with_auto_threshold(1);
        e.register("t", ts_table(0, 3000));
        let before = e.query(sql_text, QueryMode::Approximate).unwrap();
        assert!(e.cached_samples() > 0);

        let report = e.ingest("t", &ts_table(3000, 2000)).unwrap();
        assert_eq!((report.rows, report.total_rows), (2000, 5000));
        assert_eq!(e.ingested_rows(), 2000);
        assert_eq!(e.ingest_batches(), 1);

        let after = e.query(sql_text, QueryMode::Approximate).unwrap();
        assert_ne!(before.results[0].values, after.results[0].values, "answer must move");
        // The post-ingest answer is exactly what a fresh engine over the
        // extended table produces — not merely non-stale, but canonical.
        let mut fresh = Engine::new().with_seed(9).with_auto_threshold(1);
        fresh.register("t", ts_table(0, 5000));
        let canonical = fresh.query(sql_text, QueryMode::Approximate).unwrap();
        assert_eq!(after.results[0].keys, canonical.results[0].keys);
        assert_eq!(after.results[0].values, canonical.results[0].values);
    }

    /// Durable samples on a windowed table are maintained through ingest:
    /// the refreshed cache entry is byte-identical to a fresh preparation
    /// over the extended table, served without a new statistics pass.
    #[test]
    fn windowed_ingest_maintains_durable_samples() {
        let mut e = Engine::new().with_seed(5);
        e.register_windowed("t", ts_table(0, 2000), "ts").unwrap();
        assert_eq!(e.window_column("T"), Some("ts"));
        let spec = QuerySpec::group_by(&["g"]).aggregate("x");
        e.prepare("t", SamplingProblem::single(spec.clone(), 20)).unwrap();
        assert_eq!((e.maintained_samples(), e.stats_passes()), (1, 1));

        let report = e.ingest("t", &ts_table(2000, 1000)).unwrap();
        assert_eq!(report.maintained, 1);
        // The maintained sample rescaled its budget with the table (1% of
        // 3000 rows) and republished; serving it is a cache hit.
        let handle = e.prepare("t", SamplingProblem::single(spec.clone(), 30)).unwrap();
        assert!(handle.is_cache_hit());
        assert_eq!(e.stats_passes(), 1, "maintenance rescans only the tail, not a full pass");

        let mut fresh = Engine::new().with_seed(5);
        fresh.register("t", ts_table(0, 3000));
        let canonical = fresh.prepare("t", SamplingProblem::single(spec, 30)).unwrap();
        assert_eq!(handle.sample().origin, canonical.sample().origin);
        assert_eq!(handle.sample().weights, canonical.sample().weights);
    }

    /// Rotation drops rows below the cutoff, rebuilds maintained samples
    /// over the survivors, and keeps sharded layouts compacting shard by
    /// shard.
    #[test]
    fn rotate_retires_rows_below_cutoff() {
        let mut e = Engine::new().with_seed(2);
        let sharded = ShardedTable::split(&ts_table(0, 3000), 3).unwrap();
        e.register_windowed("t", sharded, "ts").unwrap();
        e.prepare("t", SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 30))
            .unwrap();

        let report = e.rotate("t", 1000).unwrap();
        assert_eq!((report.retired, report.remaining), (1000, 2000));
        assert_eq!((e.rotations(), e.rows_retired()), (1, 1000));
        assert_eq!(report.maintained, 1, "maintained sample rebuilt over survivors");
        // The oldest shard aged out entirely: 3000/3 = 1000 rows per shard.
        assert_eq!(e.sharded_table("t").unwrap().num_shards(), 2);

        let ans = e.query("SELECT COUNT(*) AS n FROM t", QueryMode::Exact).unwrap();
        assert_eq!(format!("{:?}", ans.results[0].values[0][0]), format!("{:?}", 2000.0_f64));

        // Rotating a table with no declared window is an error.
        let mut plain = Engine::new();
        plain.register("p", ts_table(0, 100));
        assert!(plain.rotate("p", 10).is_err());
        assert!(plain.ingest("missing", &ts_table(0, 1)).is_err());
    }

    /// A window column must exist and be integer-ordered.
    #[test]
    fn register_windowed_validates_column() {
        let mut e = Engine::new();
        assert!(e.register_windowed("t", ts_table(0, 10), "nope").is_err());
        assert!(e.register_windowed("t", ts_table(0, 10), "x").is_err(), "FLOAT64 rejected");
        assert!(e.register_windowed("t", ts_table(0, 10), "ts").is_ok());
        // Re-registering without a window clears the declaration.
        e.register("t", ts_table(0, 10));
        assert_eq!(e.window_column("t"), None);
    }

    #[test]
    fn deprecated_registration_shims_still_work() {
        #![allow(deprecated)]
        let t = table(500);
        let mut e = Engine::new();
        e.register_table("a", t.clone());
        e.register_sharded_table("b", ShardedTable::split(&t, 2).unwrap());
        assert_eq!(e.table_names(), vec!["a", "b"]);
        assert!(e.table("a").is_some());
        assert!(e.sharded_table("b").is_some());
    }
}

//! Per-group error estimates for stratified samples.
//!
//! The paper's whole optimization is about the *coefficient of variation* of
//! per-group estimates; this module closes the loop by estimating that CV
//! from the drawn sample itself, so a user can attach standard errors and
//! normal-approximation confidence intervals to every approximate answer.
//!
//! The math is classical stratified *domain estimation* (Cochran §5A): for
//! a group (domain) `d`, the AVG estimator is the ratio
//! `ŷ_d = Σ w_i y_i 1_d / Σ w_i 1_d`, and its linearized variance estimate
//! is
//!
//! ```text
//! V̂(ŷ_d) = (1/N̂_d²) · Σ_c  n_c (n_c − s_c) / s_c · S²_{z,c}
//! z_i = 1_d(i) · (y_i − ŷ_d)
//! ```
//!
//! where `S²_{z,c}` is the sample variance of `z` over *all* `s_c` sampled
//! rows of stratum `c` (zeros for out-of-domain rows). When the query's
//! grouping equals the stratification and there is no predicate, this
//! reduces to the paper's `CV[y_i] = (σ_i/μ_i)·√((n_i−s_i)/(n_i s_i))` with
//! plug-in sample moments.

use cvopt_table::fxhash::FxHashMap;
use cvopt_table::{GroupIndex, KeyAtom, Predicate, ScalarExpr};

use crate::error::CvError;
use crate::sample::MaterializedSample;
use crate::Result;

/// An AVG estimate with estimated uncertainty.
#[derive(Debug, Clone)]
pub struct AvgEstimate {
    /// Group key.
    pub key: Vec<KeyAtom>,
    /// The weighted ratio estimate of the group mean.
    pub estimate: f64,
    /// Estimated standard error of `estimate`.
    pub std_error: f64,
    /// Estimated coefficient of variation (`std_error / |estimate|`).
    pub cv: f64,
    /// Sampled rows contributing to the group (post-predicate).
    pub sampled_rows: u64,
}

impl AvgEstimate {
    /// Normal-approximation confidence interval at the given z-score
    /// (1.96 for 95%, 1.645 for 90%).
    pub fn interval(&self, z: f64) -> (f64, f64) {
        (self.estimate - z * self.std_error, self.estimate + z * self.std_error)
    }

    /// The 95% interval.
    pub fn ci95(&self) -> (f64, f64) {
        self.interval(1.96)
    }
}

/// Estimate `AVG(value)` per group of `group_by` from a *stratified* sample,
/// with standard errors. An optional predicate is applied at query time.
///
/// Errors if the sample carries no stratum structure (uniform or
/// measure-biased samples have no per-stratum variance decomposition).
pub fn estimate_avg_with_error(
    sample: &MaterializedSample,
    group_by: &[ScalarExpr],
    value: &ScalarExpr,
    predicate: Option<&Predicate>,
) -> Result<Vec<AvgEstimate>> {
    if !sample.is_stratified() {
        return Err(CvError::invalid(
            "error estimation requires a stratified sample (per-stratum n and s)",
        ));
    }
    let table = &sample.table;
    let index = GroupIndex::build(table, group_by)?;
    let value_expr = value.bind(table)?;
    let bound_pred = predicate.map(|p| p.bind(table)).transpose()?;

    // Accumulate per (stratum, group): matching count, Σy, Σy².
    #[derive(Default, Clone, Copy)]
    struct CellAcc {
        m: u64,
        sum: f64,
        sum2: f64,
    }
    let mut cells: FxHashMap<(u32, u32), CellAcc> = FxHashMap::default();
    // Per-group totals for the point estimate.
    let num_groups = index.num_groups();
    let mut wsum = vec![0.0f64; num_groups];
    let mut wysum = vec![0.0f64; num_groups];
    let mut rows = vec![0u64; num_groups];

    for row in 0..table.num_rows() {
        if let Some(p) = &bound_pred {
            if !p.matches(row) {
                continue;
            }
        }
        let Some(y) = value_expr.f64_at(row) else { continue };
        let g = index.group_of(row);
        let c = sample.row_stratum[row];
        let w = sample.weights[row];
        wsum[g as usize] += w;
        wysum[g as usize] += w * y;
        rows[g as usize] += 1;
        let acc = cells.entry((c, g)).or_default();
        acc.m += 1;
        acc.sum += y;
        acc.sum2 += y * y;
    }

    // Point estimates.
    let estimates: Vec<f64> =
        wysum.iter().zip(&wsum).map(|(&wy, &w)| if w > 0.0 { wy / w } else { f64::NAN }).collect();

    // Variance: Σ_c n_c(n_c−s_c)/s_c · S²_{z,c} / N̂_d².
    let mut variance = vec![0.0f64; num_groups];
    for (&(c, g), acc) in &cells {
        let stratum = &sample.strata[c as usize];
        let n_c = stratum.population as f64;
        let s_c = stratum.sampled as f64;
        if s_c < 2.0 || s_c >= n_c {
            continue; // fully sampled strata contribute no sampling error
        }
        let y_d = estimates[g as usize];
        // Σz and Σz² over all s_c rows (zeros outside the domain).
        let zsum = acc.sum - acc.m as f64 * y_d;
        let z2sum = acc.sum2 - 2.0 * y_d * acc.sum + acc.m as f64 * y_d * y_d;
        let mean_z = zsum / s_c;
        let s2_z = (z2sum - s_c * mean_z * mean_z).max(0.0) / (s_c - 1.0);
        variance[g as usize] += n_c * (n_c - s_c) / s_c * s2_z;
    }

    let mut out = Vec::with_capacity(num_groups);
    for g in 0..num_groups {
        if rows[g] == 0 {
            continue;
        }
        let n_hat = wsum[g];
        let std_error = if n_hat > 0.0 { (variance[g] / (n_hat * n_hat)).sqrt() } else { 0.0 };
        let estimate = estimates[g];
        out.push(AvgEstimate {
            key: index.key(g as u32).to_vec(),
            estimate,
            std_error,
            cv: if estimate != 0.0 { std_error / estimate.abs() } else { f64::INFINITY },
            sampled_rows: rows[g],
        });
    }
    out.sort_by(|a, b| a.key.cmp(&b.key));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::CvOptSampler;
    use crate::spec::{QuerySpec, SamplingProblem};
    use cvopt_table::{CmpOp, DataType, Table, TableBuilder, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        // Deterministic pseudo-noise values per group.
        let mut k = 1u64;
        for (name, count, mean, spread) in
            [("a", 4000usize, 50.0, 20.0), ("b", 800, 200.0, 5.0), ("c", 60, 10.0, 3.0)]
        {
            for _ in 0..count {
                k = k.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = ((k >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
                b.push_row(&[Value::str(name), Value::Float64(mean + u * 2.0 * spread)]).unwrap();
            }
        }
        b.finish()
    }

    fn sample(t: &Table, budget: usize, seed: u64) -> MaterializedSample {
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), budget);
        CvOptSampler::new(problem).with_seed(seed).sample(t).unwrap().sample
    }

    #[test]
    fn estimates_match_plain_estimator() {
        let t = table();
        let s = sample(&t, 400, 1);
        let with_err =
            estimate_avg_with_error(&s, &[ScalarExpr::col("g")], &ScalarExpr::col("x"), None)
                .unwrap();
        let query = cvopt_table::GroupByQuery::new(
            vec![ScalarExpr::col("g")],
            vec![cvopt_table::AggExpr::avg("x")],
        );
        let plain = crate::estimate::estimate_single(&s, &query).unwrap();
        assert_eq!(with_err.len(), plain.num_groups());
        for e in &with_err {
            let p = plain.value(&e.key, 0).unwrap();
            assert!((e.estimate - p).abs() < 1e-9, "{:?}: {} vs {}", e.key, e.estimate, p);
            assert!(e.std_error >= 0.0);
        }
    }

    #[test]
    fn fully_sampled_stratum_has_zero_error() {
        let t = table();
        // Budget large enough that group c (60 rows) is fully sampled.
        let s = sample(&t, 2000, 2);
        let ests =
            estimate_avg_with_error(&s, &[ScalarExpr::col("g")], &ScalarExpr::col("x"), None)
                .unwrap();
        let c = ests.iter().find(|e| e.key[0].to_string() == "c").unwrap();
        if c.sampled_rows == 60 {
            assert_eq!(c.std_error, 0.0, "exhaustive stratum must have zero variance");
        }
    }

    #[test]
    fn ci_covers_truth_most_of_the_time() {
        let t = table();
        let truth_query = cvopt_table::GroupByQuery::new(
            vec![ScalarExpr::col("g")],
            vec![cvopt_table::AggExpr::avg("x")],
        );
        let truth = &truth_query.execute(&t).unwrap()[0];
        let runs = 40;
        let mut covered = 0u32;
        let mut total = 0u32;
        for seed in 0..runs {
            let s = sample(&t, 300, seed);
            let ests =
                estimate_avg_with_error(&s, &[ScalarExpr::col("g")], &ScalarExpr::col("x"), None)
                    .unwrap();
            for e in &ests {
                if e.std_error == 0.0 {
                    continue;
                }
                let (lo, hi) = e.ci95();
                let tv = truth.value(&e.key, 0).unwrap();
                total += 1;
                if tv >= lo && tv <= hi {
                    covered += 1;
                }
            }
        }
        let coverage = covered as f64 / total as f64;
        // Nominal 95%; allow slack for the normal approximation at small s.
        assert!(coverage > 0.8, "coverage {coverage} over {total} intervals");
    }

    #[test]
    fn predicate_at_estimation_time() {
        let t = table();
        let s = sample(&t, 800, 3);
        let pred = Predicate::cmp("x", CmpOp::Gt, 0.0);
        let ests = estimate_avg_with_error(
            &s,
            &[ScalarExpr::col("g")],
            &ScalarExpr::col("x"),
            Some(&pred),
        )
        .unwrap();
        assert!(!ests.is_empty());
        for e in &ests {
            assert!(e.estimate.is_finite());
            assert!(e.cv.is_finite());
        }
    }

    #[test]
    fn rejects_unstratified_samples() {
        let t = table();
        let rows: Vec<u32> = (0..100).collect();
        let weights = vec![(t.num_rows() as f64) / 100.0; 100];
        let uniform = MaterializedSample::from_rows(&t, rows, weights);
        let err =
            estimate_avg_with_error(&uniform, &[ScalarExpr::col("g")], &ScalarExpr::col("x"), None)
                .unwrap_err();
        assert!(err.to_string().contains("stratified"));
    }

    #[test]
    fn interval_helpers() {
        let e = AvgEstimate {
            key: vec![KeyAtom::from("a")],
            estimate: 10.0,
            std_error: 1.0,
            cv: 0.1,
            sampled_rows: 5,
        };
        let (lo, hi) = e.ci95();
        assert!((lo - 8.04).abs() < 1e-9);
        assert!((hi - 11.96).abs() < 1e-9);
        let (lo90, hi90) = e.interval(1.645);
        assert!(lo90 > lo && hi90 < hi);
    }
}

//! The high-level CVOPT API: plan + draw in two passes.
//!
//! ```
//! use cvopt_core::{CvOptSampler, QuerySpec, SamplingProblem};
//! use cvopt_table::{DataType, TableBuilder, Value};
//!
//! let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
//! for i in 0..1000 {
//!     let g = if i % 10 == 0 { "rare" } else { "common" };
//!     b.push_row(&[Value::str(g), Value::Float64((i % 97) as f64 + 1.0)]).unwrap();
//! }
//! let table = b.finish();
//!
//! let problem = SamplingProblem::single(
//!     QuerySpec::group_by(&["g"]).aggregate("x"),
//!     100,
//! );
//! let outcome = CvOptSampler::new(problem).with_seed(7).sample(&table).unwrap();
//! assert_eq!(outcome.sample.len(), 100);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use cvopt_table::exec::ExecOptions;
use cvopt_table::{GroupIndex, KeyAtom, ScalarExpr, ShardSet, ShardedTable, Table};

use crate::alloc::{compute_betas, linf_allocation, lp_allocation, sqrt_allocation, Allocation};
use crate::error::CvError;
use crate::sample::{MaterializedSample, StratifiedSample};
use crate::spec::{Norm, SamplingProblem};
use crate::stats::StratumStatistics;
use crate::Result;

/// Process-wide count of stratified draws (pass 2 of every `sample*`
/// call). Atomic so a serving layer's `/stats` endpoint can read it live.
static TOTAL_DRAWS: AtomicU64 = AtomicU64::new(0);

/// Stratified draws run by this process so far (all engines, all
/// samplers). Monotonic; never reset.
pub fn total_draws() -> u64 {
    TOTAL_DRAWS.load(Ordering::Relaxed)
}

/// Process-wide count of draws the sampling algebra made unnecessary: each
/// time an engine answers a query by re-aggregating a cached sample whose
/// problem *subsumes* the requested one, the statistics pass + draw that
/// would have run is counted here instead of in [`total_draws`].
static DRAWS_AVOIDED: AtomicU64 = AtomicU64::new(0);

/// Draws avoided by sample reuse in this process so far (all engines).
/// Monotonic; never reset. `total_draws() + total_draws_avoided()` is the
/// work a reuse-blind engine would have done.
pub fn total_draws_avoided() -> u64 {
    DRAWS_AVOIDED.load(Ordering::Relaxed)
}

/// Credit one avoided preparation (called by the engine's reuse planner).
pub(crate) fn note_draw_avoided() {
    DRAWS_AVOIDED.fetch_add(1, Ordering::Relaxed);
}

/// Record one stratified draw (called by the incremental-maintenance path,
/// whose draws run outside [`CvOptSampler::sample`]).
pub(crate) fn note_draw() {
    TOTAL_DRAWS.fetch_add(1, Ordering::Relaxed);
}

/// The planning artifacts of a CVOPT run (paper's "first pass" output).
#[derive(Debug, Clone)]
pub struct CvOptPlan {
    /// Finest-stratification expressions.
    pub strata_exprs: Vec<ScalarExpr>,
    /// Stratum keys, by stratum id.
    pub strata_keys: Vec<Vec<KeyAtom>>,
    /// Per-stratum statistics.
    pub stats: StratumStatistics,
    /// The β (or α) coefficients driving the allocation (empty for ℓ∞).
    pub betas: Vec<f64>,
    /// The solved allocation.
    pub allocation: Allocation,
}

impl CvOptPlan {
    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.strata_keys.len()
    }

    /// Allocated sample size of the stratum with key `key`.
    pub fn allocation_for(&self, key: &[KeyAtom]) -> Option<u64> {
        self.strata_keys.iter().position(|k| k == key).map(|i| self.allocation.sizes[i])
    }
}

/// A drawn CVOPT sample plus its plan.
#[derive(Debug, Clone)]
pub struct CvOptOutcome {
    /// The weighted sample, ready for [`crate::estimate::estimate`].
    pub sample: MaterializedSample,
    /// The plan that produced it.
    pub plan: CvOptPlan,
}

/// Two-pass CVOPT sampler: statistics + allocation, then reservoir draw.
///
/// Every per-row pass (group-index build, statistics, the stratified draw)
/// runs on the shared chunk-parallel execution layer. By default the
/// sampler uses one worker per available core; because the execution layer
/// is deterministic, the plan and the drawn sample are identical for any
/// thread count.
#[derive(Debug, Clone)]
pub struct CvOptSampler {
    problem: SamplingProblem,
    seed: u64,
    exec: ExecOptions,
}

impl CvOptSampler {
    /// Sampler for `problem`, parallel over all available cores.
    pub fn new(problem: SamplingProblem) -> Self {
        CvOptSampler { problem, seed: 0, exec: ExecOptions::default() }
    }

    /// Set the RNG seed (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the worker-thread count for every pass. `with_threads(1)` is the
    /// explicit sequential escape hatch; the default is one worker per
    /// available core. The output never depends on this setting.
    pub fn with_threads(self, threads: usize) -> Self {
        self.with_exec(ExecOptions::new(threads))
    }

    /// Set the full execution options.
    pub fn with_exec(mut self, exec: ExecOptions) -> Self {
        self.exec = exec;
        self
    }

    /// The execution options in effect.
    pub fn exec(&self) -> &ExecOptions {
        &self.exec
    }

    /// The problem this sampler solves.
    pub fn problem(&self) -> &SamplingProblem {
        &self.problem
    }

    /// Pass 1 only: statistics and allocation.
    pub fn plan(&self, table: &Table) -> Result<CvOptPlan> {
        let (_, plan) = self.plan_with_index(table)?;
        Ok(plan)
    }

    /// Passes 1 and 2: plan, then draw and materialize the sample.
    pub fn sample(&self, table: &Table) -> Result<CvOptOutcome> {
        let (index, plan) = self.plan_with_index(table)?;
        TOTAL_DRAWS.fetch_add(1, Ordering::Relaxed);
        let drawn = StratifiedSample::draw(&index, &plan.allocation.sizes, self.seed, &self.exec);
        let sample = drawn.materialize(table);
        Ok(CvOptOutcome { sample, plan })
    }

    /// [`CvOptSampler::plan`] over a [`ShardedTable`]: the group index and
    /// the statistics pass run shard-parallel; the plan is bit-identical to
    /// planning over the concatenated table.
    pub fn plan_sharded(&self, table: &ShardedTable) -> Result<CvOptPlan> {
        let (_, plan) = self.plan_with_index_sharded(table)?;
        Ok(plan)
    }

    /// [`CvOptSampler::sample`] over a [`ShardedTable`]: every pass —
    /// index build, statistics, the stratified draw, materialization — is
    /// scatter-gather across the shards, and the outcome (plan, sampled
    /// rows, weights) is **byte-identical to sampling the concatenated
    /// table with the same seed**, for any shard layout and thread count.
    pub fn sample_sharded(&self, table: &ShardedTable) -> Result<CvOptOutcome> {
        let (index, plan) = self.plan_with_index_sharded(table)?;
        TOTAL_DRAWS.fetch_add(1, Ordering::Relaxed);
        let drawn = StratifiedSample::draw_sharded(
            &index,
            table,
            &plan.allocation.sizes,
            self.seed,
            &self.exec,
        );
        let sample = drawn.materialize_sharded(table);
        Ok(CvOptOutcome { sample, plan })
    }

    /// [`CvOptSampler::plan_sharded`] over a [`ShardSet`] (shards local or
    /// remote): the plan is bit-identical to planning over a local sharded
    /// table with the same layout.
    pub fn plan_set(&self, set: &ShardSet) -> Result<CvOptPlan> {
        let (_, plan) = self.plan_with_index_set(set)?;
        Ok(plan)
    }

    /// [`CvOptSampler::sample_sharded`] over a [`ShardSet`]: the scatter
    /// passes go through the shard-pass surface ([`cvopt_table::reader`]),
    /// so shards may answer from another process over the wire — and the
    /// outcome (plan, sampled rows, weights) stays **byte-identical to
    /// sampling the concatenated table with the same seed**, for any shard
    /// layout and thread count.
    pub fn sample_set(&self, set: &ShardSet) -> Result<CvOptOutcome> {
        let (index, plan) = self.plan_with_index_set(set)?;
        TOTAL_DRAWS.fetch_add(1, Ordering::Relaxed);
        let drawn =
            StratifiedSample::draw_set(&index, set, &plan.allocation.sizes, self.seed, &self.exec);
        let sample = drawn.materialize_set(set)?;
        Ok(CvOptOutcome { sample, plan })
    }

    fn plan_with_index(&self, table: &Table) -> Result<(GroupIndex, CvOptPlan)> {
        self.problem.validate()?;
        let strata_exprs = self.problem.finest_stratification();
        let index = GroupIndex::build_with(table, &strata_exprs, &self.exec)?;
        let columns = self.problem.aggregate_columns();
        let stats = StratumStatistics::collect_with(table, &index, &columns, &self.exec)?;
        let plan = self.allocate(strata_exprs, &index, stats)?;
        Ok((index, plan))
    }

    fn plan_with_index_sharded(&self, table: &ShardedTable) -> Result<(GroupIndex, CvOptPlan)> {
        self.problem.validate()?;
        let strata_exprs = self.problem.finest_stratification();
        let index = GroupIndex::build_sharded(table, &strata_exprs, &self.exec)?;
        let columns = self.problem.aggregate_columns();
        let stats = StratumStatistics::collect_sharded(table, &index, &columns, &self.exec)?;
        let plan = self.allocate(strata_exprs, &index, stats)?;
        Ok((index, plan))
    }

    fn plan_with_index_set(&self, set: &ShardSet) -> Result<(GroupIndex, CvOptPlan)> {
        self.problem.validate()?;
        let strata_exprs = self.problem.finest_stratification();
        let index = set.build_group_index(&strata_exprs, &self.exec)?;
        let columns = self.problem.aggregate_columns();
        let stats = StratumStatistics::collect_set(set, &index, &columns, &self.exec)?;
        let plan = self.allocate(strata_exprs, &index, stats)?;
        Ok((index, plan))
    }

    /// The shared allocation back half of both planning paths: solve the
    /// problem's norm for the collected statistics. Crate-visible so the
    /// incremental-maintenance path can re-run the identical allocation
    /// over incrementally merged statistics.
    pub(crate) fn allocate(
        &self,
        strata_exprs: Vec<ScalarExpr>,
        index: &GroupIndex,
        stats: StratumStatistics,
    ) -> Result<CvOptPlan> {
        let (betas, allocation) = match self.problem.norm {
            Norm::L2 => {
                let betas = compute_betas(&self.problem, index, &stats)?;
                let allocation = sqrt_allocation(
                    &betas,
                    &stats.populations,
                    self.problem.budget as u64,
                    self.problem.min_per_stratum,
                );
                (betas, allocation)
            }
            Norm::Lp(p) => {
                // Rejected by `SamplingProblem::validate()` above; keep a
                // debug check so internal callers bypassing validation fail
                // loudly in test builds.
                debug_assert!(p > 0.0 && p.is_finite(), "Lp norm requires finite p > 0, got {p}");
                let betas = compute_betas(&self.problem, index, &stats)?;
                let allocation = lp_allocation(
                    &betas,
                    &stats.populations,
                    self.problem.budget as u64,
                    self.problem.min_per_stratum,
                    p,
                );
                (betas, allocation)
            }
            Norm::LInf => {
                if !self.problem.is_sasg() {
                    return Err(CvError::LInfUnsupported {
                        reason: format!(
                            "{} queries with {} aggregates; the l-infinity analysis \
                             (paper section 5) covers one query with one aggregate",
                            self.problem.queries.len(),
                            self.problem.queries.iter().map(|q| q.aggregates.len()).sum::<usize>()
                        ),
                    });
                }
                let allocation = linf_allocation(
                    &stats,
                    0,
                    self.problem.budget as u64,
                    self.problem.min_per_stratum,
                    self.problem.variance,
                )?;
                (Vec::new(), allocation)
            }
        };

        let strata_keys = (0..index.num_groups() as u32).map(|g| index.key(g).to_vec()).collect();
        Ok(CvOptPlan { strata_exprs, strata_keys, stats, betas, allocation })
    }
}

/// Budget (in rows) corresponding to a sampling rate of `rate` on `table`
/// (e.g. `0.01` for the paper's 1% samples). Rounds to nearest, min 1.
///
/// Errors with [`CvError::Invalid`] when `rate` is outside `(0, 1]` (every
/// neighboring spec-construction API reports bad input as a `Result` rather
/// than panicking).
pub fn budget_for_rate(table: &Table, rate: f64) -> Result<usize> {
    budget_for_rows(table.num_rows(), rate)
}

/// [`budget_for_rate`] from a raw row count (used by the engine, whose
/// catalog tables may be sharded).
pub fn budget_for_rows(num_rows: usize, rate: f64) -> Result<usize> {
    if !(rate > 0.0 && rate <= 1.0) {
        return Err(CvError::invalid(format!("sampling rate must be in (0, 1], got {rate}")));
    }
    Ok(((num_rows as f64 * rate).round() as usize).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QuerySpec;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("h", DataType::Str),
            ("x", DataType::Float64),
            ("y", DataType::Float64),
        ]);
        for i in 0..2000i64 {
            let g = match i % 20 {
                0 => "rare",
                1..=5 => "mid",
                _ => "common",
            };
            let h = if i % 3 == 0 { "p" } else { "q" };
            let x = 10.0 + (i % 13) as f64 * if g == "rare" { 10.0 } else { 1.0 };
            let y = 100.0 + (i % 7) as f64;
            b.push_row(&[Value::str(g), Value::str(h), Value::Float64(x), Value::Float64(y)])
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn sasg_end_to_end() {
        let t = table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 200);
        let outcome = CvOptSampler::new(problem).with_seed(1).sample(&t).unwrap();
        assert_eq!(outcome.sample.len(), 200);
        assert_eq!(outcome.plan.num_strata(), 3);
        assert_eq!(outcome.plan.allocation.total(), 200);
        // "rare" has the largest per-value spread relative to its mean; with
        // the n-capping it should still be sampled heavily relative to size.
        let rare = outcome.plan.allocation_for(&[KeyAtom::from("rare")]).unwrap();
        assert!(rare >= 10, "rare stratum got {rare}");
    }

    #[test]
    fn mamg_end_to_end() {
        let t = table();
        let q1 = QuerySpec::group_by(&["g"]).aggregate("x");
        let q2 = QuerySpec::group_by(&["h"]).aggregate("y");
        let problem = SamplingProblem::multi(vec![q1, q2], 300);
        let outcome = CvOptSampler::new(problem).with_seed(2).sample(&t).unwrap();
        // Finest stratification is (g, h): 6 strata.
        assert_eq!(outcome.plan.num_strata(), 6);
        assert_eq!(outcome.sample.len(), 300);
        assert!(outcome.sample.is_stratified());
    }

    #[test]
    fn linf_end_to_end() {
        let t = table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 200)
            .with_norm(Norm::LInf);
        let outcome = CvOptSampler::new(problem).with_seed(3).sample(&t).unwrap();
        assert!(outcome.sample.len() <= 200);
        assert!(outcome.plan.betas.is_empty());
    }

    #[test]
    fn linf_rejects_multi() {
        let t = table();
        let q1 = QuerySpec::group_by(&["g"]).aggregate("x").aggregate("y");
        let problem = SamplingProblem::single(q1, 100).with_norm(Norm::LInf);
        let err = CvOptSampler::new(problem).sample(&t).unwrap_err();
        assert!(matches!(err, CvError::LInfUnsupported { .. }));
    }

    #[test]
    fn deterministic_with_seed() {
        let t = table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 100);
        let a = CvOptSampler::new(problem.clone()).with_seed(9).sample(&t).unwrap();
        let b = CvOptSampler::new(problem).with_seed(9).sample(&t).unwrap();
        assert_eq!(a.sample.origin, b.sample.origin);
    }

    #[test]
    fn plan_only_matches_sample_plan() {
        let t = table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 150);
        let sampler = CvOptSampler::new(problem);
        let plan = sampler.plan(&t).unwrap();
        let outcome = sampler.sample(&t).unwrap();
        assert_eq!(plan.allocation.sizes, outcome.plan.allocation.sizes);
    }

    #[test]
    fn lp_norm_end_to_end() {
        let t = table();
        let spec = QuerySpec::group_by(&["g"]).aggregate("x");
        let p2 =
            CvOptSampler::new(SamplingProblem::single(spec.clone(), 200).with_norm(Norm::Lp(2.0)))
                .plan(&t)
                .unwrap();
        let l2 = CvOptSampler::new(SamplingProblem::single(spec.clone(), 200)).plan(&t).unwrap();
        assert_eq!(p2.allocation.sizes, l2.allocation.sizes, "Lp(2) must equal L2");
        // With a budget small enough that no population cap binds, a large p
        // must shift allocation toward the high-β stratum relative to l2.
        let small_l2 =
            CvOptSampler::new(SamplingProblem::single(spec.clone(), 60)).plan(&t).unwrap();
        let small_p8 =
            CvOptSampler::new(SamplingProblem::single(spec.clone(), 60).with_norm(Norm::Lp(8.0)))
                .plan(&t)
                .unwrap();
        assert_ne!(small_p8.allocation.sizes, small_l2.allocation.sizes, "Lp(8) should differ");
        let hi = small_l2
            .betas
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        assert!(small_p8.allocation.sizes[hi] > small_l2.allocation.sizes[hi]);
        let bad =
            CvOptSampler::new(SamplingProblem::single(spec, 200).with_norm(Norm::Lp(f64::NAN)))
                .plan(&t);
        assert!(bad.is_err());
    }

    #[test]
    fn budget_for_rate_rounds() {
        let t = table();
        assert_eq!(budget_for_rate(&t, 0.01).unwrap(), 20);
        assert_eq!(budget_for_rate(&t, 1.0).unwrap(), 2000);
        assert_eq!(budget_for_rate(&t, 0.0001).unwrap(), 1);
    }

    #[test]
    fn budget_for_rate_rejects_bad_rate() {
        let t = table();
        for rate in [1.5, 0.0, -0.2, f64::NAN] {
            let err = budget_for_rate(&t, rate).unwrap_err();
            assert!(matches!(err, CvError::Invalid(_)), "rate {rate}: {err}");
        }
    }

    #[test]
    fn default_exec_is_auto_parallel() {
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 50);
        let sampler = CvOptSampler::new(problem);
        let auto = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert_eq!(sampler.exec().threads(), auto, "new() must default to all cores");
        assert_eq!(sampler.clone().with_threads(1).exec().threads(), 1);
        assert_eq!(sampler.with_threads(0).exec().threads(), 1, "0 clamps to sequential");
    }

    #[test]
    fn parallel_stats_equivalent_plan() {
        let t = table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 150);
        let p1 = CvOptSampler::new(problem.clone()).with_threads(1).plan(&t).unwrap();
        let p4 = CvOptSampler::new(problem).with_threads(4).plan(&t).unwrap();
        assert_eq!(p1.allocation.sizes, p4.allocation.sizes);
    }
}

//! Sampling-problem specification: which queries the sample must serve.
//!
//! A [`SamplingProblem`] is the input to CVOPT's allocator: a set of
//! group-by queries (each possibly aggregating several columns), a memory
//! budget, and per-result weights. The paper's four regimes fall out of the
//! shape of the spec:
//!
//! * **SASG** — one query, one aggregate column;
//! * **MASG** — one query, several aggregate columns;
//! * **SAMG** — several queries sharing one aggregate column;
//! * **MAMG** — the general case.

use std::collections::{HashMap, HashSet};

use cvopt_table::{KeyAtom, Predicate, ScalarExpr};

use crate::error::CvError;
use crate::Result;

/// Canonical 64-bit fingerprinting for sampling specs (FNV-1a with field
/// tags and length prefixes), so structurally equal problems hash equal and
/// the engine's prepared-sample cache can key on `(table, problem)`.
///
/// The encoding is explicitly canonical: map-valued fields are serialized
/// in sorted order and every variable-length field is length-prefixed, so
/// the fingerprint does not depend on insertion order or on accidental
/// concatenation collisions.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u64,
}

impl Fingerprinter {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher.
    pub fn new() -> Self {
        Fingerprinter { state: Self::OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorb a field tag (disambiguates adjacent fields and enum variants).
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// Absorb a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Absorb a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

/// How the CVs of the per-group estimates are combined into a single error
/// metric (paper §2 and §5; `Lp` implements the §8 future-work extension).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Norm {
    /// Minimize `sqrt(Σ w_i CV_i²)` — the paper's CVOPT.
    #[default]
    L2,
    /// Minimize `max_i CV_i` — the paper's CVOPT-INF.
    LInf,
    /// Minimize `(Σ CV_i^p)^(1/p)` for an arbitrary `p > 0` under the
    /// large-population approximation (`s_i ∝ β_i^{p/(p+2)}`);
    /// `Lp(2.0)` coincides with [`Norm::L2`].
    Lp(f64),
}

/// Which variance estimate feeds the allocator (ablation knob; the paper
/// uses Cochran's sample variance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VarianceKind {
    /// `m2 / (n − 1)` — default.
    #[default]
    Sample,
    /// `m2 / n`.
    Population,
}

/// One aggregated column within a query, with its weights.
#[derive(Debug, Clone, PartialEq)]
pub struct AggColumn {
    /// The aggregated expression (a column, possibly a calendar function).
    pub column: ScalarExpr,
    /// Base weight applied to every group of the owning query
    /// (the paper's `w_{i,j}`; default 1).
    pub weight: f64,
    /// Per-group weight overrides keyed by the owning query's group key.
    /// Missing groups fall back to `weight`.
    pub group_weights: HashMap<Vec<KeyAtom>, f64>,
}

impl AggColumn {
    /// Aggregate `column` with weight 1.
    pub fn new(column: impl Into<String>) -> Self {
        AggColumn { column: ScalarExpr::col(column), weight: 1.0, group_weights: HashMap::new() }
    }

    /// Aggregate an arbitrary expression with weight 1.
    pub fn from_expr(column: ScalarExpr) -> Self {
        AggColumn { column, weight: 1.0, group_weights: HashMap::new() }
    }

    /// Set the base weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Set a per-group weight override.
    pub fn with_group_weight(mut self, group: Vec<KeyAtom>, weight: f64) -> Self {
        self.group_weights.insert(group, weight);
        self
    }

    /// Effective weight for `group`.
    pub fn weight_for(&self, group: &[KeyAtom]) -> f64 {
        self.group_weights.get(group).copied().unwrap_or(self.weight)
    }

    /// Absorb this aggregate's canonical form into `fp`. Group-weight
    /// overrides are serialized in sorted key order so two maps with equal
    /// contents fingerprint identically.
    pub fn write_fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(0xA1);
        fp.write_str(&self.column.display_name());
        fp.write_f64(self.weight);
        let mut overrides: Vec<(&Vec<KeyAtom>, f64)> =
            self.group_weights.iter().map(|(k, &w)| (k, w)).collect();
        overrides.sort_by(|a, b| a.0.cmp(b.0));
        fp.write_u64(overrides.len() as u64);
        for (group, w) in overrides {
            fp.write_u64(group.len() as u64);
            for atom in group {
                // Variant-tagged so Int(1) and Str("1") stay distinct.
                match atom {
                    KeyAtom::Int(v) => {
                        fp.write_tag(0x01);
                        fp.write_u64(*v as u64);
                    }
                    KeyAtom::Str(s) => {
                        fp.write_tag(0x02);
                        fp.write_str(s);
                    }
                }
            }
            fp.write_f64(w);
        }
    }

    fn validate(&self) -> Result<()> {
        let check = |w: f64, ctx: &str| {
            if !w.is_finite() || w < 0.0 {
                Err(CvError::InvalidWeight { weight: w, context: ctx.to_string() })
            } else {
                Ok(())
            }
        };
        check(self.weight, &self.column.display_name())?;
        for (group, &w) in &self.group_weights {
            check(w, &format!("{} group {group:?}", self.column.display_name()))?;
        }
        Ok(())
    }
}

/// One group-by query the sample must answer well.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Group-by expressions (the paper's attribute set `A_i`).
    pub group_by: Vec<ScalarExpr>,
    /// Aggregated columns (the paper's `L_i`), with weights.
    pub aggregates: Vec<AggColumn>,
}

impl QuerySpec {
    /// Query grouping by the named columns.
    pub fn group_by(columns: &[&str]) -> Self {
        QuerySpec {
            group_by: columns.iter().map(|c| ScalarExpr::col(*c)).collect(),
            aggregates: Vec::new(),
        }
    }

    /// Query grouping by arbitrary expressions.
    pub fn group_by_exprs(exprs: Vec<ScalarExpr>) -> Self {
        QuerySpec { group_by: exprs, aggregates: Vec::new() }
    }

    /// Add an aggregate column with weight 1.
    pub fn aggregate(mut self, column: impl Into<String>) -> Self {
        self.aggregates.push(AggColumn::new(column));
        self
    }

    /// Add a configured aggregate column.
    pub fn aggregate_column(mut self, agg: AggColumn) -> Self {
        self.aggregates.push(agg);
        self
    }

    /// Absorb this query's canonical form into `fp`.
    pub fn write_fingerprint(&self, fp: &mut Fingerprinter) {
        fp.write_tag(0xB2);
        fp.write_u64(self.group_by.len() as u64);
        for expr in &self.group_by {
            fp.write_str(&expr.display_name());
        }
        fp.write_u64(self.aggregates.len() as u64);
        for agg in &self.aggregates {
            agg.write_fingerprint(fp);
        }
    }

    /// Canonical fingerprint of this query alone.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        self.write_fingerprint(&mut fp);
        fp.finish()
    }

    /// Expand into the per-subset queries of `GROUP BY ... WITH CUBE`
    /// (paper §4.1, "Cube-By Queries"): one [`QuerySpec`] per subset of the
    /// grouping attributes, each carrying the same aggregates.
    pub fn cube(&self) -> Vec<QuerySpec> {
        cvopt_table::grouping_sets(self.group_by.len())
            .into_iter()
            .map(|dims| QuerySpec {
                group_by: dims.iter().map(|&d| self.group_by[d].clone()).collect(),
                aggregates: self.aggregates.clone(),
            })
            .collect()
    }
}

/// The full input to the allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplingProblem {
    /// Queries the sample must serve.
    pub queries: Vec<QuerySpec>,
    /// Total sample budget in rows (the paper's `M`).
    pub budget: usize,
    /// Norm to optimize.
    pub norm: Norm,
    /// Variance estimate used in the statistics.
    pub variance: VarianceKind,
    /// Minimum rows per stratum (best effort; ensures every group is
    /// represented even when its β is 0). Default 1.
    pub min_per_stratum: u64,
}

impl SamplingProblem {
    /// Problem with a single query.
    pub fn single(query: QuerySpec, budget: usize) -> Self {
        SamplingProblem {
            queries: vec![query],
            budget,
            norm: Norm::L2,
            variance: VarianceKind::Sample,
            min_per_stratum: 1,
        }
    }

    /// Problem over several queries.
    pub fn multi(queries: Vec<QuerySpec>, budget: usize) -> Self {
        SamplingProblem {
            queries,
            budget,
            norm: Norm::L2,
            variance: VarianceKind::Sample,
            min_per_stratum: 1,
        }
    }

    /// Set the norm.
    pub fn with_norm(mut self, norm: Norm) -> Self {
        self.norm = norm;
        self
    }

    /// Set the variance kind.
    pub fn with_variance(mut self, variance: VarianceKind) -> Self {
        self.variance = variance;
        self
    }

    /// Set the per-stratum minimum.
    pub fn with_min_per_stratum(mut self, min: u64) -> Self {
        self.min_per_stratum = min;
        self
    }

    /// The *finest stratification* attribute list: the union of all queries'
    /// group-by expressions, deduplicated by display name, in first-seen
    /// order (paper §4: `C = ∪ A_i`).
    pub fn finest_stratification(&self) -> Vec<ScalarExpr> {
        let mut seen: Vec<String> = Vec::new();
        let mut exprs = Vec::new();
        for q in &self.queries {
            for e in &q.group_by {
                let name = e.display_name();
                if !seen.contains(&name) {
                    seen.push(name);
                    exprs.push(e.clone());
                }
            }
        }
        exprs
    }

    /// All distinct aggregation columns across queries, by display name.
    pub fn aggregate_columns(&self) -> Vec<ScalarExpr> {
        let mut seen: Vec<String> = Vec::new();
        let mut exprs = Vec::new();
        for q in &self.queries {
            for a in &q.aggregates {
                let name = a.column.display_name();
                if !seen.contains(&name) {
                    seen.push(name);
                    exprs.push(a.column.clone());
                }
            }
        }
        exprs
    }

    /// Canonical fingerprint of the whole problem: every field that affects
    /// planning or the drawn sample is absorbed (queries, budget, norm,
    /// variance kind, per-stratum minimum). Structurally equal problems get
    /// equal fingerprints regardless of map insertion order; this is the
    /// cache key of the engine's prepared-sample cache.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_tag(0xC3); // spec-format version tag
        fp.write_u64(self.queries.len() as u64);
        for q in &self.queries {
            q.write_fingerprint(&mut fp);
        }
        fp.write_u64(self.budget as u64);
        match self.norm {
            Norm::L2 => fp.write_tag(0x01),
            Norm::LInf => fp.write_tag(0x02),
            Norm::Lp(p) => {
                fp.write_tag(0x03);
                fp.write_f64(p);
            }
        }
        match self.variance {
            VarianceKind::Sample => fp.write_tag(0x01),
            VarianceKind::Population => fp.write_tag(0x02),
        }
        fp.write_u64(self.min_per_stratum);
        fp.finish()
    }

    /// Validate shape and weights.
    pub fn validate(&self) -> Result<()> {
        if self.queries.is_empty() {
            return Err(CvError::NoQueries);
        }
        if self.budget == 0 {
            return Err(CvError::ZeroBudget);
        }
        if let Norm::Lp(p) = self.norm {
            if !(p > 0.0 && p.is_finite()) {
                return Err(CvError::invalid(format!("Lp norm requires finite p > 0, got {p}")));
            }
        }
        for q in &self.queries {
            if q.aggregates.is_empty() {
                return Err(CvError::invalid("every query spec needs at least one aggregate"));
            }
            for a in &q.aggregates {
                a.validate()?;
            }
        }
        Ok(())
    }

    /// Whether this is the single-aggregate single-group-by case.
    pub fn is_sasg(&self) -> bool {
        self.queries.len() == 1 && self.queries[0].aggregates.len() == 1
    }

    /// Whether a sample prepared for `self` can answer `other` with known
    /// variance — the sampling-algebra subsumption test (arXiv 1307.0193):
    /// a sample stratified at the *finest* grouping of `self` answers any
    /// problem whose group-by attributes are a subset and whose aggregate
    /// columns were all materialized, because coarser groups merge whole
    /// strata and Horvitz–Thompson weights compose across the merge.
    ///
    /// The check requires:
    ///
    /// * `other`'s finest-stratification attributes ⊆ `self`'s (by display
    ///   name, so `hour(t)` and `t` stay distinct);
    /// * `other`'s aggregate columns ⊆ `self`'s;
    /// * `self.budget >= other.budget` and
    ///   `self.min_per_stratum >= other.min_per_stratum` (the reused sample
    ///   is at least as well-provisioned as the one it replaces);
    /// * identical norm and variance kind (different allocation objectives
    ///   are different promises about per-group error).
    ///
    /// Subsumption is reflexive and antisymmetric up to canonical form
    /// (mutual subsumption forces equal budgets, knobs, and attribute
    /// *sets*, though query lists may still be ordered differently) —
    /// pinned by a property test in `tests/sample_reuse.rs`. Predicates are
    /// not part of a [`SamplingProblem`]; see [`predicate_subsumes`] for
    /// the predicate half of the reuse rule.
    pub fn subsumes(&self, other: &SamplingProblem) -> bool {
        if self.norm != other.norm || self.variance != other.variance {
            return false;
        }
        if self.budget < other.budget || self.min_per_stratum < other.min_per_stratum {
            return false;
        }
        let strata: HashSet<String> =
            self.finest_stratification().iter().map(|e| e.display_name()).collect();
        if !other.finest_stratification().iter().all(|e| strata.contains(&e.display_name())) {
            return false;
        }
        let aggs: HashSet<String> =
            self.aggregate_columns().iter().map(|e| e.display_name()).collect();
        other.aggregate_columns().iter().all(|e| aggs.contains(&e.display_name()))
    }
}

/// Flatten a predicate into its top-level conjunction atoms: `a AND b AND c`
/// yields `[a, b, c]`, `True` yields `[]`. Returns `None` when the predicate
/// is not a pure conjunction (an `OR` or `NOT` anywhere above the atoms) —
/// such shapes have no conjunction-subset reading.
pub fn conjunction_atoms(pred: &Predicate) -> Option<Vec<&Predicate>> {
    fn walk<'p>(p: &'p Predicate, out: &mut Vec<&'p Predicate>) -> bool {
        match p {
            Predicate::True => true,
            Predicate::And(a, b) => walk(a, out) && walk(b, out),
            Predicate::Or(..) | Predicate::Not(..) => false,
            atom => {
                out.push(atom);
                true
            }
        }
    }
    let mut atoms = Vec::new();
    walk(pred, &mut atoms).then_some(atoms)
}

/// The predicate half of the sample-reuse rule: a sample drawn under
/// `cached` can answer a query filtered by `requested` when every filter the
/// sample was *narrowed by* is repeated by the request — i.e. `cached`'s
/// conjunction atoms are a subset of `requested`'s. Rows the cached sample
/// dropped can then never be rows the request needs; the remaining
/// (non-cached) atoms are applied at estimation time over the sample.
///
/// `None` / [`Predicate::True`] on the cached side means the sample was
/// drawn unfiltered and answers any request (the engine's prepared samples
/// are always of this shape — predicates are estimate-time only). A
/// non-conjunctive predicate on either side defeats the subset reading and
/// the function returns `false` (unless the cached side is unfiltered).
pub fn predicate_subsumes(cached: Option<&Predicate>, requested: Option<&Predicate>) -> bool {
    let cached_atoms = match cached {
        None => Vec::new(),
        Some(p) => match conjunction_atoms(p) {
            Some(atoms) => atoms,
            None => return false,
        },
    };
    if cached_atoms.is_empty() {
        return true;
    }
    let requested_atoms = match requested.and_then(conjunction_atoms) {
        Some(atoms) => atoms,
        None => return false,
    };
    cached_atoms.iter().all(|a| requested_atoms.contains(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finest_stratification_unions_attrs() {
        let q1 = QuerySpec::group_by(&["major", "year"]).aggregate("gpa");
        let q2 = QuerySpec::group_by(&["major", "zipcode"]).aggregate("gpa");
        let p = SamplingProblem::multi(vec![q1, q2], 100);
        let names: Vec<String> =
            p.finest_stratification().iter().map(|e| e.display_name()).collect();
        assert_eq!(names, vec!["major", "year", "zipcode"]);
    }

    #[test]
    fn aggregate_columns_dedup() {
        let q1 = QuerySpec::group_by(&["a"]).aggregate("x").aggregate("y");
        let q2 = QuerySpec::group_by(&["b"]).aggregate("x");
        let p = SamplingProblem::multi(vec![q1, q2], 100);
        let names: Vec<String> = p.aggregate_columns().iter().map(|e| e.display_name()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn validation_catches_errors() {
        assert!(matches!(SamplingProblem::multi(vec![], 10).validate(), Err(CvError::NoQueries)));
        let q = QuerySpec::group_by(&["a"]).aggregate("x");
        assert!(matches!(
            SamplingProblem::single(q.clone(), 0).validate(),
            Err(CvError::ZeroBudget)
        ));
        let bad =
            QuerySpec::group_by(&["a"]).aggregate_column(AggColumn::new("x").with_weight(-2.0));
        assert!(matches!(
            SamplingProblem::single(bad, 10).validate(),
            Err(CvError::InvalidWeight { .. })
        ));
        let empty_aggs = QuerySpec::group_by(&["a"]);
        assert!(SamplingProblem::single(empty_aggs, 10).validate().is_err());
        assert!(SamplingProblem::single(q, 10).validate().is_ok());
    }

    #[test]
    fn weight_for_falls_back() {
        let agg =
            AggColumn::new("x").with_weight(2.0).with_group_weight(vec![KeyAtom::from("CS")], 5.0);
        assert_eq!(agg.weight_for(&[KeyAtom::from("CS")]), 5.0);
        assert_eq!(agg.weight_for(&[KeyAtom::from("EE")]), 2.0);
    }

    #[test]
    fn sasg_detection() {
        let q = QuerySpec::group_by(&["a"]).aggregate("x");
        assert!(SamplingProblem::single(q, 10).is_sasg());
        let q2 = QuerySpec::group_by(&["a"]).aggregate("x").aggregate("y");
        assert!(!SamplingProblem::single(q2, 10).is_sasg());
    }

    #[test]
    fn validate_rejects_bad_lp() {
        let q = QuerySpec::group_by(&["a"]).aggregate("x");
        for p in [f64::NAN, 0.0, -1.0, f64::INFINITY] {
            let bad = SamplingProblem::single(q.clone(), 10).with_norm(Norm::Lp(p));
            assert!(bad.validate().is_err(), "Lp({p}) must fail validation");
        }
        let ok = SamplingProblem::single(q, 10).with_norm(Norm::Lp(3.0));
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn fingerprint_is_stable_under_clone() {
        let q = QuerySpec::group_by(&["major", "year"]).aggregate("gpa").aggregate("sat");
        let p = SamplingProblem::single(q, 500).with_min_per_stratum(2);
        assert_eq!(p.fingerprint(), p.clone().fingerprint());
    }

    #[test]
    fn fingerprint_ignores_group_weight_insertion_order() {
        let build = |order: &[(&str, f64)]| {
            let mut agg = AggColumn::new("x");
            for (k, w) in order {
                agg = agg.with_group_weight(vec![KeyAtom::from(*k)], *w);
            }
            SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate_column(agg), 100)
                .fingerprint()
        };
        let a = build(&[("CS", 2.0), ("EE", 3.0), ("ME", 4.0)]);
        let b = build(&[("ME", 4.0), ("CS", 2.0), ("EE", 3.0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn fingerprint_distinguishes_atom_types() {
        let with_key = |atom: KeyAtom| {
            SamplingProblem::single(
                QuerySpec::group_by(&["g"])
                    .aggregate_column(AggColumn::new("x").with_group_weight(vec![atom], 5.0)),
                100,
            )
            .fingerprint()
        };
        assert_ne!(with_key(KeyAtom::from(1i64)), with_key(KeyAtom::from("1")));
    }

    #[test]
    fn fingerprint_distinguishes_fields() {
        let q = QuerySpec::group_by(&["g"]).aggregate("x");
        let base = SamplingProblem::single(q.clone(), 100);
        let variants = [
            SamplingProblem::single(q.clone(), 101),
            SamplingProblem::single(q.clone(), 100).with_norm(Norm::LInf),
            SamplingProblem::single(q.clone(), 100).with_norm(Norm::Lp(3.0)),
            SamplingProblem::single(q.clone(), 100).with_variance(VarianceKind::Population),
            SamplingProblem::single(q.clone(), 100).with_min_per_stratum(2),
            SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("y"), 100),
            SamplingProblem::single(QuerySpec::group_by(&["h"]).aggregate("x"), 100),
            SamplingProblem::single(
                QuerySpec::group_by(&["g"]).aggregate_column(AggColumn::new("x").with_weight(2.0)),
                100,
            ),
        ];
        for (i, v) in variants.iter().enumerate() {
            assert_ne!(base.fingerprint(), v.fingerprint(), "variant {i} collided");
        }
        // Lp(2) and L2 allocate identically but are distinct specs.
        assert_ne!(
            base.fingerprint(),
            SamplingProblem::single(q, 100).with_norm(Norm::Lp(2.0)).fingerprint()
        );
    }

    #[test]
    fn subsumes_coarser_groupings_and_fewer_aggregates() {
        let fine = SamplingProblem::single(
            QuerySpec::group_by(&["g", "h"]).aggregate("x").aggregate("y"),
            200,
        );
        let coarse = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 200);
        assert!(fine.subsumes(&coarse));
        assert!(!coarse.subsumes(&fine), "coarser groups cannot answer finer ones");
        assert!(fine.subsumes(&fine), "subsumption is reflexive");
        // A smaller budget on the requested side is fine; a larger one is not.
        let cheap = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 100);
        let rich = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 400);
        assert!(fine.subsumes(&cheap));
        assert!(!fine.subsumes(&rich));
    }

    #[test]
    fn subsumes_respects_knobs_and_columns() {
        let base = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 100);
        // Different allocation objectives are different error promises.
        assert!(!base.subsumes(&base.clone().with_norm(Norm::LInf)));
        assert!(!base.subsumes(&base.clone().with_variance(VarianceKind::Population)));
        // A higher per-stratum minimum on the requested side is not met.
        assert!(!base.subsumes(&base.clone().with_min_per_stratum(3)));
        assert!(base.clone().with_min_per_stratum(3).subsumes(&base));
        // An aggregate column the sample never materialized.
        let other_agg = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("y"), 100);
        assert!(!base.subsumes(&other_agg));
        // Multi-query problems subsume through their union attributes.
        let multi = SamplingProblem::multi(
            vec![
                QuerySpec::group_by(&["g"]).aggregate("x"),
                QuerySpec::group_by(&["h"]).aggregate("x"),
            ],
            100,
        );
        assert!(multi.subsumes(&base));
        let gh = SamplingProblem::single(QuerySpec::group_by(&["g", "h"]).aggregate("x"), 100);
        assert!(multi.subsumes(&gh), "union stratification covers the cross grouping");
    }

    #[test]
    fn conjunction_atoms_flatten_and_reject_disjunction() {
        use cvopt_table::CmpOp;
        let a = Predicate::cmp("g", CmpOp::Eq, "rare");
        let b = Predicate::cmp("x", CmpOp::Gt, 5.0);
        let c = Predicate::cmp("h", CmpOp::Ne, "p");
        let chain = a.clone().and(b.clone()).and(c.clone());
        let atoms = conjunction_atoms(&chain).unwrap();
        assert_eq!(atoms, vec![&a, &b, &c]);
        assert_eq!(conjunction_atoms(&Predicate::True).unwrap().len(), 0);
        assert!(conjunction_atoms(&a.clone().or(b.clone())).is_none());
        assert!(conjunction_atoms(&a.clone().and(b.clone().or(c.clone()))).is_none());
        assert!(conjunction_atoms(&a.clone().not()).is_none());
    }

    #[test]
    fn predicate_subsumption_is_conjunction_subset() {
        use cvopt_table::CmpOp;
        let a = Predicate::cmp("g", CmpOp::Eq, "rare");
        let b = Predicate::cmp("x", CmpOp::Gt, 5.0);
        // Unfiltered samples answer anything.
        assert!(predicate_subsumes(None, None));
        assert!(predicate_subsumes(None, Some(&a)));
        assert!(predicate_subsumes(Some(&Predicate::True), Some(&a.clone().or(b.clone()))));
        // A narrowed sample answers only requests repeating its filters.
        assert!(predicate_subsumes(Some(&a), Some(&a.clone().and(b.clone()))));
        assert!(predicate_subsumes(Some(&a), Some(&b.clone().and(a.clone()))), "order-free");
        assert!(!predicate_subsumes(Some(&a), Some(&b)));
        assert!(!predicate_subsumes(Some(&a), None));
        // Disjunctions defeat the subset reading on either side.
        assert!(!predicate_subsumes(Some(&a.clone().or(b.clone())), Some(&a)));
        assert!(!predicate_subsumes(Some(&a), Some(&a.clone().or(b.clone()))));
    }

    #[test]
    fn cube_expansion() {
        let q = QuerySpec::group_by(&["a", "b"]).aggregate("x");
        let subs = q.cube();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].group_by.len(), 2);
        assert_eq!(subs[3].group_by.len(), 0);
        assert!(subs.iter().all(|s| s.aggregates.len() == 1));
    }
}

//! The constrained allocation solver.
//!
//! The paper's Lemma 1 gives the unconstrained optimum of
//! `min Σ α_i/s_i  s.t.  Σ s_i ≤ M` as `s_i = M·√α_i / Σ√α_j`.
//! Real data adds box constraints the closed form ignores: a stratum cannot
//! receive more rows than it has (`s_i ≤ n_i` — the RL flaw discussed in
//! paper §6.1), and we typically want at least one row per stratum so every
//! group is representable.
//!
//! For the box-constrained program the KKT conditions give
//! `s_i(t) = clamp(t·√α_i, lo_i, hi_i)` for a scale `t > 0`, and
//! `Σ s_i(t)` is non-decreasing in `t`, so we find `t` by bisection and then
//! round to integers with a largest-remainder scheme that respects the
//! boxes. When no box binds this reduces exactly to Lemma 1.

/// Result of an allocation: integer sizes plus the continuous relaxation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Integer per-stratum sample sizes.
    pub sizes: Vec<u64>,
    /// The continuous optimum before rounding.
    pub continuous: Vec<f64>,
}

impl Allocation {
    /// Total allocated rows.
    pub fn total(&self) -> u64 {
        self.sizes.iter().sum()
    }
}

/// The closed-form Lemma 1 solution, ignoring all box constraints:
/// `s_i = M·√α_i / Σ√α_j`.
pub fn lemma1_closed_form(alphas: &[f64], budget: u64) -> Vec<f64> {
    let roots: Vec<f64> = alphas.iter().map(|&a| a.max(0.0).sqrt()).collect();
    let denom: f64 = roots.iter().sum();
    if denom == 0.0 {
        return vec![0.0; alphas.len()];
    }
    roots.iter().map(|r| budget as f64 * r / denom).collect()
}

/// Box-constrained sqrt-proportional allocation.
///
/// * `alphas` — the per-stratum cost coefficients (`α_i ≥ 0`).
/// * `caps` — stratum populations (`s_i ≤ n_i`).
/// * `budget` — total rows `M`.
/// * `min_per_stratum` — best-effort lower bound per stratum (clamped to the
///   stratum population). If the budget cannot cover all minimums, strata are
///   served in decreasing `α` order (ties: larger population first).
pub fn sqrt_allocation(
    alphas: &[f64],
    caps: &[u64],
    budget: u64,
    min_per_stratum: u64,
) -> Allocation {
    assert_eq!(alphas.len(), caps.len(), "alphas and caps must align");
    let r = alphas.len();
    if r == 0 {
        return Allocation { sizes: Vec::new(), continuous: Vec::new() };
    }
    let total_pop: u64 = caps.iter().sum();
    if budget >= total_pop {
        // Budget covers the entire population: take everything.
        return Allocation {
            sizes: caps.to_vec(),
            continuous: caps.iter().map(|&c| c as f64).collect(),
        };
    }

    let lows: Vec<u64> = caps.iter().map(|&c| min_per_stratum.min(c)).collect();
    let min_total: u64 = lows.iter().sum();
    if min_total > budget {
        // Cannot even give everyone the minimum: greedy by decreasing α.
        let mut order: Vec<usize> = (0..r).collect();
        order.sort_by(|&a, &b| {
            alphas[b]
                .total_cmp(&alphas[a])
                .then_with(|| caps[b].cmp(&caps[a]))
                .then_with(|| a.cmp(&b))
        });
        let mut sizes = vec![0u64; r];
        let mut left = budget;
        for &i in &order {
            let take = lows[i].min(left);
            sizes[i] = take;
            left -= take;
            if left == 0 {
                break;
            }
        }
        let continuous = sizes.iter().map(|&s| s as f64).collect();
        return Allocation { sizes, continuous };
    }

    // Bisection on the scale t: s_i(t) = clamp(t·√α_i, lo_i, cap_i).
    let roots: Vec<f64> = alphas.iter().map(|&a| a.max(0.0).sqrt()).collect();
    let continuous = bisect_scale(&roots, &lows, caps, budget);
    let sizes = round_with_bounds(&continuous, &lows, caps, budget);
    Allocation { sizes, continuous }
}

/// Find `t` such that `Σ clamp(t·root_i, lo_i, cap_i) = budget`, then return
/// the clamped values. If even `t → ∞` cannot reach the budget (all strata
/// capped or zero-α), the leftover is spread proportionally to remaining
/// capacity so the budget is used in full.
fn bisect_scale(roots: &[f64], lows: &[u64], caps: &[u64], budget: u64) -> Vec<f64> {
    let target = budget as f64;
    let sum_at = |t: f64| -> f64 {
        roots
            .iter()
            .zip(lows.iter().zip(caps))
            .map(|(&r, (&lo, &hi))| (t * r).clamp(lo as f64, hi as f64))
            .sum()
    };

    // Upper bound for t: enough to push every positive-α stratum to its cap.
    let mut t_hi = 1.0f64;
    for (&r, &hi) in roots.iter().zip(caps) {
        if r > 0.0 {
            t_hi = t_hi.max(hi as f64 / r * 2.0);
        }
    }
    let reachable = sum_at(t_hi);
    if reachable < target {
        // Zero-α strata prevent reaching the budget through t alone; start
        // from the saturated solution and spread the remainder by capacity.
        let mut xs: Vec<f64> = roots
            .iter()
            .zip(lows.iter().zip(caps))
            .map(|(&r, (&lo, &hi))| (t_hi * r).clamp(lo as f64, hi as f64))
            .collect();
        let mut leftover = target - xs.iter().sum::<f64>();
        let headroom: f64 = xs.iter().zip(caps).map(|(&x, &c)| c as f64 - x).sum();
        if headroom > 0.0 {
            for (x, &c) in xs.iter_mut().zip(caps) {
                let add = leftover * (c as f64 - *x) / headroom;
                *x += add;
            }
            leftover = 0.0;
        }
        let _ = leftover;
        return xs;
    }

    let mut lo_t = 0.0f64;
    let mut hi_t = t_hi;
    for _ in 0..80 {
        let mid = 0.5 * (lo_t + hi_t);
        if sum_at(mid) < target {
            lo_t = mid;
        } else {
            hi_t = mid;
        }
    }
    let t = 0.5 * (lo_t + hi_t);
    roots
        .iter()
        .zip(lows.iter().zip(caps))
        .map(|(&r, (&lo, &hi))| (t * r).clamp(lo as f64, hi as f64))
        .collect()
}

/// Largest-remainder rounding of `xs` to integers summing to `budget`,
/// respecting `lo_i ≤ s_i ≤ hi_i`.
fn round_with_bounds(xs: &[f64], lows: &[u64], caps: &[u64], budget: u64) -> Vec<u64> {
    let r = xs.len();
    let mut sizes: Vec<u64> = xs
        .iter()
        .zip(lows.iter().zip(caps))
        .map(|(&x, (&lo, &hi))| (x.floor() as u64).clamp(lo, hi))
        .collect();
    let mut total: u64 = sizes.iter().sum();

    if total < budget {
        // Hand out the remaining rows by largest fractional part first.
        let mut order: Vec<usize> = (0..r).collect();
        order.sort_by(|&a, &b| {
            let fa = xs[a] - xs[a].floor();
            let fb = xs[b] - xs[b].floor();
            fb.total_cmp(&fa).then_with(|| a.cmp(&b))
        });
        // Possibly several rounds if fractional parts alone don't cover it.
        while total < budget {
            let mut progressed = false;
            for &i in &order {
                if total == budget {
                    break;
                }
                if sizes[i] < caps[i] {
                    sizes[i] += 1;
                    total += 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // every stratum at cap
            }
        }
    } else if total > budget {
        // Take back rows from the smallest fractional parts first.
        let mut order: Vec<usize> = (0..r).collect();
        order.sort_by(|&a, &b| {
            let fa = xs[a] - xs[a].floor();
            let fb = xs[b] - xs[b].floor();
            fa.total_cmp(&fb).then_with(|| a.cmp(&b))
        });
        while total > budget {
            let mut progressed = false;
            for &i in &order {
                if total == budget {
                    break;
                }
                if sizes[i] > lows[i] {
                    sizes[i] -= 1;
                    total -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // every stratum at its minimum
            }
        }
    }
    sizes
}

/// Box-constrained allocation *proportional to* `prefs` (not their square
/// roots): `s_i = clamp(t·pref_i, lo_i, cap_i)` with `Σ s_i = budget`.
///
/// This is the water-filling primitive the baselines need: equal allocation
/// (senate) is `prefs = 1`, frequency-proportional (house) is
/// `prefs = n_i`, and congressional allocation scales its max-of-shares
/// vector with it.
pub fn proportional_allocation(
    prefs: &[f64],
    caps: &[u64],
    budget: u64,
    min_per_stratum: u64,
) -> Allocation {
    let squared: Vec<f64> = prefs.iter().map(|&p| p.max(0.0) * p.max(0.0)).collect();
    // sqrt_allocation takes sqrt of its inputs, so pre-squaring yields an
    // allocation proportional to `prefs` with identical box handling.
    sqrt_allocation(&squared, caps, budget, min_per_stratum)
}

/// The objective the allocator minimizes for a given allocation — useful for
/// tests and ablations: `Σ α_i (n_i − s_i) / (n_i s_i)` (strata with
/// `s_i = 0` contribute infinity unless `α_i = 0`).
pub fn objective(alphas: &[f64], caps: &[u64], sizes: &[u64]) -> f64 {
    alphas
        .iter()
        .zip(caps.iter().zip(sizes))
        .map(|(&a, (&n, &s))| {
            if a == 0.0 {
                0.0
            } else if s == 0 {
                f64::INFINITY
            } else {
                a * (n as f64 - s as f64) / (n as f64 * s as f64)
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn lemma1_matches_paper_formula() {
        let alphas = [4.0, 1.0, 9.0];
        let xs = lemma1_closed_form(&alphas, 60);
        // roots 2,1,3 → 60 * [2/6, 1/6, 3/6] = [20, 10, 30]
        assert!((xs[0] - 20.0).abs() < 1e-9);
        assert!((xs[1] - 10.0).abs() < 1e-9);
        assert!((xs[2] - 30.0).abs() < 1e-9);
    }

    #[test]
    fn lemma1_all_zero() {
        assert_eq!(lemma1_closed_form(&[0.0, 0.0], 10), vec![0.0, 0.0]);
    }

    #[test]
    fn unconstrained_matches_lemma1() {
        let alphas = [4.0, 1.0, 9.0];
        let caps = [1_000_000, 1_000_000, 1_000_000];
        let alloc = sqrt_allocation(&alphas, &caps, 60, 0);
        assert_eq!(alloc.sizes, vec![20, 10, 30]);
        assert_eq!(alloc.total(), 60);
    }

    #[test]
    fn caps_bind_and_redistribute() {
        // Stratum 0 wants 20 but only has 5 rows; the excess must flow to the
        // others in sqrt-α proportion.
        let alphas = [4.0, 1.0, 9.0];
        let caps = [5, 1_000_000, 1_000_000];
        let alloc = sqrt_allocation(&alphas, &caps, 60, 0);
        assert_eq!(alloc.sizes[0], 5);
        assert_eq!(alloc.total(), 60);
        // remaining 55 split 1:3 → 13.75, 41.25
        assert!(alloc.sizes[1] == 14 || alloc.sizes[1] == 13);
        assert!(alloc.sizes[2] == 41 || alloc.sizes[2] == 42);
    }

    #[test]
    fn budget_covers_population() {
        let alloc = sqrt_allocation(&[1.0, 2.0], &[10, 20], 100, 1);
        assert_eq!(alloc.sizes, vec![10, 20]);
    }

    #[test]
    fn minimum_per_stratum_enforced() {
        // Tiny α still gets its minimum.
        let alphas = [1e-9, 100.0, 100.0];
        let caps = [50, 1000, 1000];
        let alloc = sqrt_allocation(&alphas, &caps, 100, 2);
        assert!(alloc.sizes[0] >= 2);
        assert_eq!(alloc.total(), 100);
    }

    #[test]
    fn zero_alpha_gets_minimum_and_budget_still_used() {
        let alphas = [0.0, 1.0];
        let caps = [100, 100];
        let alloc = sqrt_allocation(&alphas, &caps, 150, 1);
        // Stratum 1 saturates at 100; the remaining 50 spill into stratum 0.
        assert_eq!(alloc.total(), 150);
        assert_eq!(alloc.sizes[1], 100);
        assert_eq!(alloc.sizes[0], 50);
    }

    #[test]
    fn budget_below_minimums_greedy_by_alpha() {
        let alphas = [1.0, 5.0, 3.0];
        let caps = [10, 10, 10];
        let alloc = sqrt_allocation(&alphas, &caps, 2, 1);
        // Only two minimums can be served: the two largest α.
        assert_eq!(alloc.sizes, vec![0, 1, 1]);
    }

    #[test]
    fn empty_input() {
        let alloc = sqrt_allocation(&[], &[], 10, 1);
        assert!(alloc.sizes.is_empty());
    }

    #[test]
    fn single_stratum() {
        let alloc = sqrt_allocation(&[3.0], &[1000], 10, 1);
        assert_eq!(alloc.sizes, vec![10]);
    }

    #[test]
    fn objective_computation() {
        let obj = objective(&[1.0], &[100], &[10]);
        assert!((obj - 90.0 / 1000.0).abs() < 1e-12);
        assert_eq!(objective(&[1.0], &[100], &[0]), f64::INFINITY);
        assert_eq!(objective(&[0.0], &[100], &[0]), 0.0);
    }

    #[test]
    fn near_optimal_vs_brute_force() {
        // Exhaustive search over integer allocations for a small instance.
        let alphas = [3.0, 1.0, 0.5];
        let caps = [6u64, 10, 10];
        let budget = 12u64;
        let mut best = f64::INFINITY;
        for s0 in 1..=caps[0] {
            for s1 in 1..=caps[1] {
                if s0 + s1 >= budget {
                    continue;
                }
                let s2 = budget - s0 - s1;
                if s2 < 1 || s2 > caps[2] {
                    continue;
                }
                best = best.min(objective(&alphas, &caps, &[s0, s1, s2]));
            }
        }
        let alloc = sqrt_allocation(&alphas, &caps, budget, 1);
        let got = objective(&alphas, &caps, &alloc.sizes);
        // Integer rounding can cost a little; stay within 5% of optimum.
        assert!(got <= best * 1.05, "got {got}, brute-force best {best}");
    }

    #[test]
    fn proportional_equal_prefs_is_equal_split() {
        let alloc = proportional_allocation(&[1.0, 1.0, 1.0, 1.0], &[100; 4], 40, 0);
        assert_eq!(alloc.sizes, vec![10, 10, 10, 10]);
    }

    #[test]
    fn proportional_respects_caps_with_redistribution() {
        let alloc = proportional_allocation(&[1.0, 1.0, 1.0], &[4, 100, 100], 34, 0);
        assert_eq!(alloc.sizes[0], 4);
        assert_eq!(alloc.total(), 34);
        assert_eq!(alloc.sizes[1], 15);
        assert_eq!(alloc.sizes[2], 15);
    }

    #[test]
    fn proportional_tracks_prefs() {
        let alloc = proportional_allocation(&[1.0, 3.0], &[1000, 1000], 40, 0);
        assert_eq!(alloc.sizes, vec![10, 30]);
    }

    proptest! {
        #[test]
        fn invariants(
            alphas in proptest::collection::vec(0.0f64..100.0, 1..40),
            caps_seed in proptest::collection::vec(1u64..500, 1..40),
            budget in 1u64..2000,
            min_per in 0u64..3,
        ) {
            let r = alphas.len().min(caps_seed.len());
            let alphas = &alphas[..r];
            let caps = &caps_seed[..r];
            let alloc = sqrt_allocation(alphas, caps, budget, min_per);
            let total_pop: u64 = caps.iter().sum();

            // Never exceed caps.
            for (s, &c) in alloc.sizes.iter().zip(caps) {
                prop_assert!(*s <= c);
            }
            // Total equals min(budget, population) whenever minimums fit.
            let min_total: u64 = caps.iter().map(|&c| min_per.min(c)).sum();
            if min_total <= budget {
                prop_assert_eq!(alloc.total(), budget.min(total_pop));
                // Minimums respected.
                for (s, &c) in alloc.sizes.iter().zip(caps) {
                    prop_assert!(*s >= min_per.min(c));
                }
            } else {
                prop_assert!(alloc.total() <= budget);
            }
        }

        #[test]
        fn matches_closed_form_when_loose(
            alphas in proptest::collection::vec(0.1f64..100.0, 2..20),
        ) {
            // Huge caps, no minimum: must agree with Lemma 1 within rounding.
            let caps: Vec<u64> = vec![u64::MAX / 1024; alphas.len()];
            let budget = 100_000u64;
            let alloc = sqrt_allocation(&alphas, &caps, budget, 0);
            let closed = lemma1_closed_form(&alphas, budget);
            for (s, x) in alloc.sizes.iter().zip(closed) {
                prop_assert!((*s as f64 - x).abs() <= 1.0 + 1e-6 * x);
            }
        }
    }
}

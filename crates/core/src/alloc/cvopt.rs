//! CVOPT's ℓ2-optimal allocation: the β coefficients of Theorems 1–2 and
//! Lemmas 2–3 (and their k-query, multi-column generalization from §4.2).
//!
//! For the finest stratification `C = ∪ A_i`, stratum `c` receives a sample
//! size proportional to `√β_c` where
//!
//! ```text
//! β_c = n_c² · Σ_i  (1 / n²_{Π(c,A_i)}) · Σ_{ℓ∈L_i}  w_{Π(c,A_i),ℓ} · σ²_{c,ℓ} / μ²_{Π(c,A_i),ℓ}
//! ```
//!
//! with `n_c, σ²_{c,ℓ}` per-stratum statistics and `n_a, μ_{a,ℓ}` statistics
//! of the *query group* `a = Π(c, A_i)` containing the stratum. The SASG and
//! MASG formulas are exactly this expression when every query groups by all
//! of `C` (so `Π` is the identity and the `n` factors cancel).

use cvopt_table::GroupIndex;

use crate::error::CvError;
use crate::spec::{SamplingProblem, VarianceKind};
use crate::stats::StratumStatistics;
use crate::Result;

/// Compute the per-stratum β coefficients for `problem`.
///
/// `index` must be the finest-stratification group index (built over
/// [`SamplingProblem::finest_stratification`]) and `stats` the statistics
/// over [`SamplingProblem::aggregate_columns`].
pub fn compute_betas(
    problem: &SamplingProblem,
    index: &GroupIndex,
    stats: &StratumStatistics,
) -> Result<Vec<f64>> {
    problem.validate()?;
    let strata_names: Vec<String> = index.dim_names().to_vec();
    let num_strata = index.num_groups();
    let mut betas = vec![0.0f64; num_strata];

    for query in &problem.queries {
        // Positions of this query's group-by dims within the stratification.
        let dims: Vec<usize> = query
            .group_by
            .iter()
            .map(|e| {
                let name = e.display_name();
                strata_names.iter().position(|s| *s == name).ok_or_else(|| {
                    CvError::invalid(format!(
                        "query group-by {name} missing from stratification {strata_names:?}"
                    ))
                })
            })
            .collect::<Result<_>>()?;
        let proj = index.project(&dims);
        let coarse = stats.coarsen(&proj);
        let coarse_pops = stats.coarsen_populations(&proj);

        for agg in &query.aggregates {
            let col_name = agg.column.display_name();
            let col = stats.column_names.iter().position(|c| *c == col_name).ok_or_else(|| {
                CvError::invalid(format!("column {col_name} missing from statistics"))
            })?;

            // Per coarse group: w / (n_a² μ_a²), with zero-mean detection.
            let mut group_factor = vec![0.0f64; proj.num_groups()];
            for (a, factor) in group_factor.iter_mut().enumerate() {
                let mu = coarse[a][col].mean;
                let n_a = coarse_pops[a] as f64;
                let w = agg.weight_for(proj.key(a as u32));
                if mu == 0.0 {
                    // Legal only if every stratum of this group is constant
                    // (σ² = 0); flagged below when a non-zero σ hits it.
                    *factor = f64::NAN;
                } else {
                    *factor = w / (n_a * n_a * mu * mu);
                }
            }

            for (c, beta) in betas.iter_mut().enumerate() {
                let sigma2 = stats.variance(c, col, problem.variance);
                if sigma2 == 0.0 {
                    continue;
                }
                let a = proj.coarse_of(c as u32) as usize;
                let factor = group_factor[a];
                if factor.is_nan() {
                    return Err(CvError::ZeroMeanGroup {
                        group: cvopt_table::groupby::key_display(proj.key(a as u32)),
                        column: col_name.clone(),
                    });
                }
                let n_c = stats.population(c) as f64;
                *beta += n_c * n_c * factor * sigma2;
            }
        }
    }
    Ok(betas)
}

/// Theorem 1 (SASG): `α_i = w_i σ_i² / μ_i²` per group, computed directly.
///
/// Exposed for documentation parity with the paper; the general
/// [`compute_betas`] reduces to this when the problem is SASG (tested).
pub fn sasg_alphas(
    stats: &StratumStatistics,
    column: usize,
    weights: &[f64],
    variance: VarianceKind,
) -> Result<Vec<f64>> {
    let r = stats.num_strata();
    assert_eq!(weights.len(), r, "one weight per group");
    let mut alphas = Vec::with_capacity(r);
    for (i, &w) in weights.iter().enumerate() {
        let mu = stats.mean(i, column);
        let sigma2 = stats.variance(i, column, variance);
        if sigma2 == 0.0 {
            alphas.push(0.0);
            continue;
        }
        if mu == 0.0 {
            return Err(CvError::ZeroMeanGroup {
                group: format!("stratum {i}"),
                column: stats.column_names[column].clone(),
            });
        }
        alphas.push(w * sigma2 / (mu * mu));
    }
    Ok(alphas)
}

/// Theorem 2 (MASG): `α_i = Σ_j w_{i,j} σ_{i,j}² / μ_{i,j}²` per group.
pub fn masg_alphas(
    stats: &StratumStatistics,
    columns: &[usize],
    weights: &[Vec<f64>],
    variance: VarianceKind,
) -> Result<Vec<f64>> {
    let r = stats.num_strata();
    let mut alphas = vec![0.0f64; r];
    for (&col, w) in columns.iter().zip(weights) {
        let partial = sasg_alphas(stats, col, w, variance)?;
        for (a, p) in alphas.iter_mut().zip(partial) {
            *a += p;
        }
    }
    Ok(alphas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::QuerySpec;
    use cvopt_table::{DataType, ScalarExpr, Table, TableBuilder, Value};

    /// Two groups with equal means but very different spreads: the paper's
    /// motivating example — group 1 must receive more samples.
    fn two_group_table() -> Table {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        // Group "hi": mean 10, large spread. Group "lo": mean 10, tiny spread.
        let hi = [2.0, 18.0, 4.0, 16.0, 6.0, 14.0, 8.0, 12.0];
        let lo = [9.9, 10.1, 9.95, 10.05, 10.0, 10.0, 9.9, 10.1];
        for v in hi {
            b.push_row(&[Value::str("hi"), Value::Float64(v)]).unwrap();
        }
        for v in lo {
            b.push_row(&[Value::str("lo"), Value::Float64(v)]).unwrap();
        }
        b.finish()
    }

    fn setup(t: &Table, problem: &SamplingProblem) -> (GroupIndex, StratumStatistics) {
        let exprs = problem.finest_stratification();
        let index = GroupIndex::build(t, &exprs).unwrap();
        let stats = StratumStatistics::collect(t, &index, &problem.aggregate_columns()).unwrap();
        (index, stats)
    }

    #[test]
    fn sasg_favors_high_variance_group() {
        let t = two_group_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 8);
        let (index, stats) = setup(&t, &problem);
        let betas = compute_betas(&problem, &index, &stats).unwrap();
        assert_eq!(betas.len(), 2);
        // "hi" has much larger σ/μ.
        assert!(betas[0] > 100.0 * betas[1], "betas {betas:?}");
    }

    #[test]
    fn general_reduces_to_sasg_formula() {
        let t = two_group_table();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 8);
        let (index, stats) = setup(&t, &problem);
        let general = compute_betas(&problem, &index, &stats).unwrap();
        let direct = sasg_alphas(&stats, 0, &[1.0, 1.0], VarianceKind::Sample).unwrap();
        for (g, d) in general.iter().zip(&direct) {
            assert!((g - d).abs() < 1e-12 * (1.0 + d.abs()), "general {g} direct {d}");
        }
        let _ = index;
    }

    #[test]
    fn general_reduces_to_masg_formula() {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("x", DataType::Float64),
            ("y", DataType::Float64),
        ]);
        for i in 0..40 {
            let g = if i % 2 == 0 { "a" } else { "b" };
            b.push_row(&[
                Value::str(g),
                Value::Float64(10.0 + (i as f64) * 0.5),
                Value::Float64(100.0 + ((i * 7) % 13) as f64),
            ])
            .unwrap();
        }
        let t = b.finish();
        let problem =
            SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x").aggregate("y"), 10);
        let (index, stats) = setup(&t, &problem);
        let general = compute_betas(&problem, &index, &stats).unwrap();
        let direct =
            masg_alphas(&stats, &[0, 1], &[vec![1.0; 2], vec![1.0; 2]], VarianceKind::Sample)
                .unwrap();
        for (g, d) in general.iter().zip(&direct) {
            assert!((g - d).abs() < 1e-10 * (1.0 + d.abs()));
        }
        let _ = index;
    }

    /// Lemma 2's worked example from the paper: β_{m,y} =
    /// n²_{m,y} σ²_{m,y} [1/(n²_{m,*} μ²_{m,*}) + 1/(n²_{*,y} μ²_{*,y})].
    #[test]
    fn samg_matches_lemma2_example() {
        let mut b = TableBuilder::new(&[
            ("major", DataType::Str),
            ("year", DataType::Int64),
            ("gpa", DataType::Float64),
        ]);
        let rows = [
            ("CS", 1, 3.0),
            ("CS", 1, 3.6),
            ("CS", 2, 2.8),
            ("EE", 1, 3.9),
            ("EE", 2, 3.1),
            ("EE", 2, 3.3),
            ("EE", 2, 2.5),
        ];
        for (m, y, g) in rows {
            b.push_row(&[Value::str(m), Value::Int64(y), Value::Float64(g)]).unwrap();
        }
        let t = b.finish();
        let q1 = QuerySpec::group_by(&["major"]).aggregate("gpa");
        let q2 = QuerySpec::group_by(&["year"]).aggregate("gpa");
        let problem = SamplingProblem::multi(vec![q1, q2], 5);
        let (index, stats) = setup(&t, &problem);
        let betas = compute_betas(&problem, &index, &stats).unwrap();

        // Hand-compute for each (major, year) stratum.
        let major_idx = GroupIndex::build(&t, &[ScalarExpr::col("major")]).unwrap();
        let major_stats =
            StratumStatistics::collect(&t, &major_idx, &[ScalarExpr::col("gpa")]).unwrap();
        let year_idx = GroupIndex::build(&t, &[ScalarExpr::col("year")]).unwrap();
        let year_stats =
            StratumStatistics::collect(&t, &year_idx, &[ScalarExpr::col("gpa")]).unwrap();

        for (c, beta) in betas.iter().enumerate() {
            let key = index.key(c as u32);
            let m_gid = (0..major_idx.num_groups() as u32)
                .find(|&g| major_idx.key(g)[0] == key[0])
                .unwrap() as usize;
            let y_gid = (0..year_idx.num_groups() as u32)
                .find(|&g| year_idx.key(g)[0] == key[1])
                .unwrap() as usize;
            let n_c = stats.population(c) as f64;
            let sigma2 = stats.variance(c, 0, VarianceKind::Sample);
            let term_m = 1.0
                / ((major_stats.population(m_gid) as f64).powi(2)
                    * major_stats.mean(m_gid, 0).powi(2));
            let term_y = 1.0
                / ((year_stats.population(y_gid) as f64).powi(2)
                    * year_stats.mean(y_gid, 0).powi(2));
            let expected = n_c * n_c * sigma2 * (term_m + term_y);
            assert!(
                (beta - expected).abs() < 1e-10 * (1.0 + expected.abs()),
                "stratum {c}: got {} want {expected}",
                beta
            );
        }
    }

    #[test]
    fn weights_scale_betas() {
        let t = two_group_table();
        let base = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 8);
        let (index, stats) = setup(&t, &base);
        let b1 = compute_betas(&base, &index, &stats).unwrap();

        let weighted = SamplingProblem::single(
            QuerySpec::group_by(&["g"])
                .aggregate_column(crate::spec::AggColumn::new("x").with_weight(4.0)),
            8,
        );
        let b4 = compute_betas(&weighted, &index, &stats).unwrap();
        for (a, b) in b1.iter().zip(&b4) {
            assert!((b - 4.0 * a).abs() < 1e-10 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn per_group_weight_override() {
        let t = two_group_table();
        let spec = QuerySpec::group_by(&["g"]).aggregate_column(
            crate::spec::AggColumn::new("x").with_group_weight(vec!["hi".into()], 9.0),
        );
        let problem = SamplingProblem::single(spec, 8);
        let (index, stats) = setup(&t, &problem);
        let betas = compute_betas(&problem, &index, &stats).unwrap();
        let plain = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 8);
        let base = compute_betas(&plain, &index, &stats).unwrap();
        assert!((betas[0] - 9.0 * base[0]).abs() < 1e-10 * (1.0 + base[0].abs()));
        assert!((betas[1] - base[1]).abs() < 1e-12 * (1.0 + base[1].abs()));
    }

    #[test]
    fn zero_mean_group_rejected() {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        b.push_row(&[Value::str("z"), Value::Float64(-1.0)]).unwrap();
        b.push_row(&[Value::str("z"), Value::Float64(1.0)]).unwrap();
        let t = b.finish();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 2);
        let (index, stats) = setup(&t, &problem);
        let err = compute_betas(&problem, &index, &stats).unwrap_err();
        assert!(matches!(err, CvError::ZeroMeanGroup { .. }));
    }

    #[test]
    fn constant_zero_group_allowed() {
        // A group whose values are all exactly zero has σ=0 and contributes
        // nothing — no error even though its mean is zero.
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        b.push_row(&[Value::str("z"), Value::Float64(0.0)]).unwrap();
        b.push_row(&[Value::str("z"), Value::Float64(0.0)]).unwrap();
        b.push_row(&[Value::str("p"), Value::Float64(1.0)]).unwrap();
        b.push_row(&[Value::str("p"), Value::Float64(3.0)]).unwrap();
        let t = b.finish();
        let problem = SamplingProblem::single(QuerySpec::group_by(&["g"]).aggregate("x"), 2);
        let (index, stats) = setup(&t, &problem);
        let betas = compute_betas(&problem, &index, &stats).unwrap();
        // "z" stratum is index 0 (first seen).
        assert_eq!(betas[0], 0.0);
        assert!(betas[1] > 0.0);
    }
}

//! Sample-size allocation: the optimization core of CVOPT.
//!
//! * [`solver`] — the Lemma-1 `√α`-proportional solver with box constraints
//!   and integer rounding.
//! * [`cvopt`] — the β coefficients of Theorems 1–2 / Lemmas 2–3 (ℓ2 norm).
//! * [`linf`] — the CVOPT-INF minimax allocation (ℓ∞ norm, paper §5).
//! * [`lp`] — generalized ℓp allocation (the paper's §8 future-work item).

pub mod cvopt;
pub mod linf;
pub mod lp;
pub mod solver;

pub use cvopt::{compute_betas, masg_alphas, sasg_alphas};
pub use linf::{achieved_cvs, linf_allocation};
pub use lp::lp_allocation;
pub use solver::{
    lemma1_closed_form, objective, proportional_allocation, sqrt_allocation, Allocation,
};

//! CVOPT-INF: the ℓ∞ (minimax) allocation of paper §5.
//!
//! Minimizes `max_i CV[y_i]` for a single aggregate / single group-by.
//! Lemma 4 shows the optimum equalizes all CVs; substituting the stratified
//! CV expression gives `x_i/(n_i − x_i) ∝ d_i` with `d_i = (σ_i/μ_i)²/n_i`,
//! i.e. `x_i = n_i·(q·d_i/D)/(1 + q·d_i/D)` for a scalar `q`. The paper
//! binary-searches the largest integer `q ∈ [0, n]` keeping `Σ x_i ≤ M`.

use crate::alloc::solver::Allocation;
use crate::error::CvError;
use crate::spec::VarianceKind;
use crate::stats::StratumStatistics;
use crate::Result;

/// Compute the CVOPT-INF allocation for a single aggregation column.
///
/// * `stats` — per-group statistics where strata coincide with groups.
/// * `column` — index of the aggregation column within `stats`.
/// * `budget` — total sample rows `M`.
/// * `min_per_stratum` — best-effort floor, applied after the ℓ∞ solve.
pub fn linf_allocation(
    stats: &StratumStatistics,
    column: usize,
    budget: u64,
    min_per_stratum: u64,
    variance: VarianceKind,
) -> Result<Allocation> {
    let r = stats.num_strata();
    if r == 0 {
        return Ok(Allocation { sizes: Vec::new(), continuous: Vec::new() });
    }
    let total_pop: u64 = stats.populations.iter().sum();
    if budget >= total_pop {
        let sizes = stats.populations.clone();
        let continuous = sizes.iter().map(|&s| s as f64).collect();
        return Ok(Allocation { sizes, continuous });
    }

    // d_i = (σ_i/μ_i)² / n_i  (paper Eq. 2). Groups with σ = 0 need no
    // samples for the minimax objective; they are handled by the floor.
    let mut d = Vec::with_capacity(r);
    for i in 0..r {
        let sigma2 = stats.variance(i, column, variance);
        let mu = stats.mean(i, column);
        let n_i = stats.population(i) as f64;
        if sigma2 == 0.0 {
            d.push(0.0);
        } else if mu == 0.0 {
            return Err(CvError::ZeroMeanGroup {
                group: format!("stratum {i}"),
                column: stats.column_names[column].clone(),
            });
        } else {
            d.push(sigma2 / (mu * mu) / n_i);
        }
    }
    let dsum: f64 = d.iter().sum();
    if dsum == 0.0 {
        // All groups constant: any allocation is CV-optimal; spread the
        // budget proportional to population (and let the floor do its work).
        let mut xs: Vec<f64> = stats
            .populations
            .iter()
            .map(|&n| budget as f64 * n as f64 / total_pop as f64)
            .collect();
        let sizes = finalize(&mut xs, stats, budget, min_per_stratum);
        return Ok(Allocation { sizes, continuous: xs });
    }

    let total_x = |q: f64| -> f64 {
        d.iter()
            .zip(&stats.populations)
            .map(|(&di, &ni)| {
                let ratio = q * di / dsum;
                ni as f64 * ratio / (1.0 + ratio)
            })
            .sum()
    };

    // Binary search the largest integer q in [0, total_pop] with Σx ≤ M.
    let (mut lo, mut hi) = (0u64, total_pop);
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if total_x(mid as f64) <= budget as f64 {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let q = lo.max(1);

    let mut xs: Vec<f64> = d
        .iter()
        .zip(&stats.populations)
        .map(|(&di, &ni)| {
            let ratio = q as f64 * di / dsum;
            ni as f64 * ratio / (1.0 + ratio)
        })
        .collect();
    let sizes = finalize(&mut xs, stats, budget, min_per_stratum);
    Ok(Allocation { sizes, continuous: xs })
}

/// Scale `xs` to the budget, round up (the paper uses `ceil`), then apply
/// population caps and the per-stratum floor.
fn finalize(
    xs: &mut [f64],
    stats: &StratumStatistics,
    budget: u64,
    min_per_stratum: u64,
) -> Vec<u64> {
    let xsum: f64 = xs.iter().sum();
    let mut sizes: Vec<u64> = if xsum <= 0.0 {
        vec![0; xs.len()]
    } else {
        xs.iter()
            .zip(&stats.populations)
            .map(|(&x, &n)| {
                let s = (x / xsum * budget as f64).ceil() as u64;
                s.min(n)
            })
            .collect()
    };
    for (s, &n) in sizes.iter_mut().zip(&stats.populations) {
        *s = (*s).max(min_per_stratum.min(n));
    }
    // ceil + floors can overshoot M slightly; trim from the largest strata,
    // never below their floor.
    let mut total: u64 = sizes.iter().sum();
    while total > budget {
        let mut order: Vec<usize> = (0..sizes.len()).collect();
        order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]).then_with(|| a.cmp(&b)));
        let mut progressed = false;
        for &i in &order {
            if total == budget {
                break;
            }
            let floor = min_per_stratum.min(stats.populations[i]);
            if sizes[i] > floor {
                sizes[i] -= 1;
                total -= 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    sizes
}

/// The achieved per-group CV for an allocation:
/// `CV_i = (σ_i/μ_i)·sqrt((n_i − s_i)/(n_i·s_i))` — used by tests and the
/// ℓ2-vs-ℓ∞ experiments (paper Fig. 6).
pub fn achieved_cvs(
    stats: &StratumStatistics,
    column: usize,
    sizes: &[u64],
    variance: VarianceKind,
) -> Vec<f64> {
    (0..stats.num_strata())
        .map(|i| {
            let n = stats.population(i) as f64;
            let s = sizes[i] as f64;
            let mu = stats.mean(i, column);
            let sigma2 = stats.variance(i, column, variance);
            if sigma2 == 0.0 {
                0.0
            } else if s == 0.0 {
                f64::INFINITY
            } else {
                (sigma2 / (mu * mu) * (n - s) / (n * s)).sqrt()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::cvopt::sasg_alphas;
    use crate::alloc::solver::sqrt_allocation;
    use cvopt_table::{DataType, GroupIndex, ScalarExpr, Table, TableBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn skewed_table() -> Table {
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        // Groups with very different sizes, means, and spreads.
        let specs: [(&str, usize, f64, f64); 4] = [
            ("tiny", 12, 50.0, 40.0),
            ("small", 150, 10.0, 1.0),
            ("mid", 2_000, 100.0, 60.0),
            ("big", 10_000, 5.0, 0.5),
        ];
        for (name, count, mean, spread) in specs {
            for _ in 0..count {
                let v: f64 = mean + (rng.random::<f64>() - 0.5) * 2.0 * spread;
                b.push_row(&[Value::str(name), Value::Float64(v.max(0.01))]).unwrap();
            }
        }
        b.finish()
    }

    fn stats(t: &Table) -> StratumStatistics {
        let idx = GroupIndex::build(t, &[ScalarExpr::col("g")]).unwrap();
        StratumStatistics::collect(t, &idx, &[ScalarExpr::col("x")]).unwrap()
    }

    #[test]
    fn respects_budget_and_caps() {
        let t = skewed_table();
        let s = stats(&t);
        let alloc = linf_allocation(&s, 0, 600, 1, VarianceKind::Sample).unwrap();
        assert!(alloc.total() <= 600);
        for (sz, &n) in alloc.sizes.iter().zip(&s.populations) {
            assert!(*sz <= n);
            assert!(*sz >= 1);
        }
    }

    #[test]
    fn equalizes_cvs_better_than_l2() {
        let t = skewed_table();
        let s = stats(&t);
        let budget = 600;
        let linf = linf_allocation(&s, 0, budget, 1, VarianceKind::Sample).unwrap();
        let alphas = sasg_alphas(&s, 0, &[1.0; 4], VarianceKind::Sample).unwrap();
        let l2 = sqrt_allocation(&alphas, &s.populations, budget, 1);

        let cvs_inf = achieved_cvs(&s, 0, &linf.sizes, VarianceKind::Sample);
        let cvs_l2 = achieved_cvs(&s, 0, &l2.sizes, VarianceKind::Sample);
        let max_inf = cvs_inf.iter().cloned().fold(0.0f64, f64::max);
        let max_l2 = cvs_l2.iter().cloned().fold(0.0f64, f64::max);
        // The paper's Fig. 6: l∞ has a lower (or equal) max CV.
        assert!(max_inf <= max_l2 * 1.02, "linf max {max_inf} should not exceed l2 max {max_l2}");
        // And the non-zero CVs should be near-equal for l∞.
        let nonzero: Vec<f64> = cvs_inf.iter().copied().filter(|&c| c > 0.0).collect();
        let lo = nonzero.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = nonzero.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo < 1.6, "l-inf CVs spread too wide: {cvs_inf:?}");
    }

    #[test]
    fn l2_beats_linf_on_l2_objective() {
        let t = skewed_table();
        let s = stats(&t);
        let budget = 600;
        let linf = linf_allocation(&s, 0, budget, 1, VarianceKind::Sample).unwrap();
        let alphas = sasg_alphas(&s, 0, &[1.0; 4], VarianceKind::Sample).unwrap();
        let l2 = sqrt_allocation(&alphas, &s.populations, budget, 1);
        let sum_sq = |cvs: &[f64]| cvs.iter().map(|c| c * c).sum::<f64>();
        let obj_l2 = sum_sq(&achieved_cvs(&s, 0, &l2.sizes, VarianceKind::Sample));
        let obj_inf = sum_sq(&achieved_cvs(&s, 0, &linf.sizes, VarianceKind::Sample));
        assert!(obj_l2 <= obj_inf * 1.02, "l2 {obj_l2} vs linf {obj_inf}");
    }

    #[test]
    fn budget_covers_population() {
        let t = skewed_table();
        let s = stats(&t);
        let alloc = linf_allocation(&s, 0, 1_000_000, 1, VarianceKind::Sample).unwrap();
        assert_eq!(alloc.sizes, s.populations);
    }

    #[test]
    fn all_constant_groups_fall_back() {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for _ in 0..10 {
            b.push_row(&[Value::str("a"), Value::Float64(5.0)]).unwrap();
            b.push_row(&[Value::str("b"), Value::Float64(7.0)]).unwrap();
        }
        let t = b.finish();
        let s = stats(&t);
        let alloc = linf_allocation(&s, 0, 6, 1, VarianceKind::Sample).unwrap();
        assert!(alloc.total() <= 6);
        assert!(alloc.sizes.iter().all(|&x| x >= 1));
    }

    #[test]
    fn empty_stats() {
        let s = StratumStatistics {
            column_names: vec!["x".into()],
            states: vec![],
            populations: vec![],
        };
        let alloc = linf_allocation(&s, 0, 10, 1, VarianceKind::Sample).unwrap();
        assert!(alloc.sizes.is_empty());
    }
}

//! Generalized ℓp allocation — the paper's future-work item (2) in §8:
//! "exploring ℓp norms for values of p other than 2, ∞".
//!
//! Minimizing `Σ CV_i^p` with `CV_i² = α_i (n_i − s_i)/(n_i s_i)` and the
//! large-population approximation `CV_i² ≈ α_i/s_i` gives, by the same
//! Lagrange argument as Lemma 1,
//!
//! ```text
//! d/ds_i Σ (α_j/s_j)^{p/2} = −(p/2)·α_i^{p/2}·s_i^{−(p/2+1)} = −λ
//!   ⇒  s_i ∝ α_i^{p/(p+2)}
//! ```
//!
//! * `p = 2` recovers the paper's `s ∝ √α` exactly;
//! * `p → ∞` approaches `s ∝ α`, which equalizes the `α_i/s_i` ratios —
//!   the continuous ℓ∞ behaviour (all CVs equal);
//! * `p < 2` shades allocation toward a "fair average" that tolerates a
//!   larger worst group.
//!
//! Box constraints and rounding are delegated to the same water-filling
//! machinery as the ℓ2 solver, so `s_i ≤ n_i` capping and per-stratum
//! minimums behave identically across norms.

use crate::alloc::solver::{proportional_allocation, Allocation};

/// Box-constrained ℓp allocation: `s_i ∝ α_i^{p/(p+2)}` within
/// `[min_per_stratum, n_i]`, summing to `budget`.
///
/// Panics if `p` is not strictly positive and finite (use
/// [`crate::alloc::linf_allocation`] for the exact ℓ∞ solution).
pub fn lp_allocation(
    alphas: &[f64],
    caps: &[u64],
    budget: u64,
    min_per_stratum: u64,
    p: f64,
) -> Allocation {
    assert!(p > 0.0 && p.is_finite(), "p must be positive and finite, got {p}");
    let exponent = p / (p + 2.0);
    let prefs: Vec<f64> = alphas.iter().map(|&a| a.max(0.0).powf(exponent)).collect();
    proportional_allocation(&prefs, caps, budget, min_per_stratum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::solver::sqrt_allocation;

    const ALPHAS: [f64; 4] = [16.0, 4.0, 1.0, 0.25];
    const CAPS: [u64; 4] = [100_000, 100_000, 100_000, 100_000];

    #[test]
    fn p2_matches_sqrt_allocation() {
        let lp = lp_allocation(&ALPHAS, &CAPS, 1_000, 0, 2.0);
        let l2 = sqrt_allocation(&ALPHAS, &CAPS, 1_000, 0);
        assert_eq!(lp.sizes, l2.sizes);
    }

    #[test]
    fn larger_p_concentrates_on_high_alpha() {
        // The share of the highest-α stratum grows with p.
        let mut last_share = 0.0;
        for p in [0.5, 1.0, 2.0, 4.0, 16.0] {
            let alloc = lp_allocation(&ALPHAS, &CAPS, 10_000, 0, p);
            let share = alloc.sizes[0] as f64 / alloc.total() as f64;
            assert!(share >= last_share, "share at p={p} is {share}, below previous {last_share}");
            last_share = share;
        }
    }

    #[test]
    fn large_p_approaches_proportional_to_alpha() {
        let alloc = lp_allocation(&ALPHAS, &CAPS, 8_500, 0, 1e6);
        // α ratios are 64:16:4:1 → sizes should approach those proportions.
        let s = &alloc.sizes;
        let ratio = s[0] as f64 / s[3].max(1) as f64;
        assert!((ratio - 64.0).abs() < 5.0, "ratio {ratio}, expected ≈64");
    }

    #[test]
    fn respects_caps_and_budget() {
        let caps = [5u64, 100, 100, 100];
        let alloc = lp_allocation(&ALPHAS, &caps, 150, 1, 3.0);
        assert_eq!(alloc.total(), 150);
        for (s, &c) in alloc.sizes.iter().zip(&caps) {
            assert!(*s <= c);
            assert!(*s >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "p must be positive")]
    fn rejects_non_positive_p() {
        let _ = lp_allocation(&ALPHAS, &CAPS, 100, 0, 0.0);
    }

    #[test]
    fn continuous_objective_improves_at_matching_p() {
        // The allocation tuned for p should score at least as well on the
        // Σ(α/s)^{p/2} objective as the ones tuned for other p.
        let objective = |sizes: &[u64], p: f64| -> f64 {
            sizes.iter().zip(&ALPHAS).map(|(&s, &a)| (a / s.max(1) as f64).powf(p / 2.0)).sum()
        };
        for p in [1.0, 2.0, 6.0] {
            let tuned = lp_allocation(&ALPHAS, &CAPS, 2_000, 0, p);
            for other_p in [1.0, 2.0, 6.0] {
                let other = lp_allocation(&ALPHAS, &CAPS, 2_000, 0, other_p);
                let tuned_score = objective(&tuned.sizes, p);
                let other_score = objective(&other.sizes, p);
                assert!(
                    tuned_score <= other_score * 1.001,
                    "p={p}: tuned {tuned_score} vs p={other_p}-allocation {other_score}"
                );
            }
        }
    }
}

//! Answering group-by queries from a weighted sample.
//!
//! The estimator mirrors the exact executor in `cvopt-table` but aggregates
//! with Horvitz–Thompson weights:
//!
//! * `COUNT`    → `Σ w`
//! * `SUM`      → `Σ w·v`
//! * `COUNT_IF` → `Σ w·1[cond]`
//! * `AVG`      → `Σ w·v / Σ w` (weighted ratio estimator; equals the
//!   paper's `y_a = Σ_c n_c·y_c / Σ_c n_c` when the sample is stratified
//!   and no predicate is applied)
//! * `VAR`/`STD` → weighted population variance
//! * `MIN`/`MAX` → sample min/max (not unbiased; documented)
//!
//! Because sampled rows carry *all* attributes, the same sample answers
//! queries with new predicates or new groupings supplied at query time
//! (paper §6.3), including `WITH CUBE`.

use cvopt_table::agg::AggKind;
use cvopt_table::exec::{self, ExecOptions, RowRange};
use cvopt_table::groupby::KeyAtom;
use cvopt_table::{GroupByQuery, GroupIndex, QueryResult};

use crate::sample::MaterializedSample;
use crate::Result;

/// Weighted streaming accumulator (West's incremental algorithm for the
/// weighted mean/variance so merges stay exact).
#[derive(Debug, Clone, Copy)]
pub struct WeightedAggState {
    /// Σ w.
    pub wsum: f64,
    /// Weighted mean of values.
    pub mean: f64,
    /// Weighted sum of squared deviations.
    pub m2: f64,
    /// Raw (unweighted) number of contributing sample rows.
    pub rows: u64,
    /// Minimum raw value.
    pub min: f64,
    /// Maximum raw value.
    pub max: f64,
}

impl Default for WeightedAggState {
    fn default() -> Self {
        WeightedAggState {
            wsum: 0.0,
            mean: 0.0,
            m2: 0.0,
            rows: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl WeightedAggState {
    /// Accumulate a value with weight `w`.
    #[inline]
    pub fn update(&mut self, v: f64, w: f64) {
        if w <= 0.0 {
            return;
        }
        self.rows += 1;
        self.wsum += w;
        let delta = v - self.mean;
        self.mean += delta * w / self.wsum;
        self.m2 += w * delta * (v - self.mean);
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Merge another accumulator.
    pub fn merge(&mut self, other: &WeightedAggState) {
        if other.rows == 0 {
            return;
        }
        if self.rows == 0 {
            *self = *other;
            return;
        }
        let w1 = self.wsum;
        let w2 = other.wsum;
        let total = w1 + w2;
        let delta = other.mean - self.mean;
        self.mean += delta * w2 / total;
        self.m2 += other.m2 + delta * delta * w1 * w2 / total;
        self.wsum = total;
        self.rows += other.rows;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Weighted sum `Σ w·v`.
    pub fn weighted_sum(&self) -> f64 {
        self.mean * self.wsum
    }

    /// Finalize for an aggregate kind.
    pub fn finalize(&self, kind: AggKind) -> f64 {
        match kind {
            AggKind::Count => self.wsum,
            // CountIf inputs are 0/1 indicators, so the weighted sum is the
            // estimated matching count.
            AggKind::Sum | AggKind::CountIf => self.weighted_sum(),
            AggKind::Avg => {
                if self.wsum == 0.0 {
                    f64::NAN
                } else {
                    self.mean
                }
            }
            AggKind::Min => self.min,
            AggKind::Max => self.max,
            AggKind::Var => self.variance(),
            AggKind::Std => self.variance().sqrt(),
        }
    }

    /// Weighted (population-style) variance.
    pub fn variance(&self) -> f64 {
        if self.wsum == 0.0 {
            0.0
        } else {
            self.m2 / self.wsum
        }
    }
}

/// Estimate `query` from `sample`, one worker per available core (see
/// [`estimate_with`]).
///
/// Returns one [`QueryResult`] per grouping set (mirroring
/// [`GroupByQuery::execute`]); groups with no sampled row are absent — the
/// evaluation layer scores them as 100% relative error, like the paper.
pub fn estimate(sample: &MaterializedSample, query: &GroupByQuery) -> Result<Vec<QueryResult>> {
    estimate_with(sample, query, &ExecOptions::default())
}

/// Estimate `query` from `sample` with explicit execution options. The
/// index build, the predicate scan, and the weighted accumulation all run
/// chunk-parallel; partials merge in partition order, so the estimate is
/// identical for any thread count.
pub fn estimate_with(
    sample: &MaterializedSample,
    query: &GroupByQuery,
    options: &ExecOptions,
) -> Result<Vec<QueryResult>> {
    let table = &sample.table;
    let index = GroupIndex::build_with(table, &query.group_by, options)?;
    let filter = match &query.predicate {
        Some(p) => Some(p.bind(table)?.eval_bitmap_with(table.num_rows(), options)),
        None => None,
    };

    // Accumulate per finest group, one partial table per partition.
    let bound: Vec<_> = query
        .aggregates
        .iter()
        .map(|a| a.input.as_ref().map(|e| e.bind(table)).transpose())
        .collect::<std::result::Result<_, _>>()?;
    let accumulate_range = |range: RowRange| {
        let mut fine =
            vec![vec![WeightedAggState::default(); query.aggregates.len()]; index.num_groups()];
        let mut update_row = |row: usize| {
            let w = sample.weights[row];
            let states = &mut fine[index.group_of(row) as usize];
            for (slot, (agg, expr)) in states.iter_mut().zip(query.aggregates.iter().zip(&bound)) {
                let value = match (agg.kind, expr) {
                    (AggKind::Count, _) => 1.0,
                    (AggKind::CountIf, Some(e)) => {
                        let (op, threshold) = agg.condition.expect("COUNT_IF has a condition");
                        let v = e.f64_at(row).unwrap_or(f64::NAN);
                        if op.evaluate_f64(v, threshold) {
                            1.0
                        } else {
                            0.0
                        }
                    }
                    (_, Some(e)) => match e.f64_at(row) {
                        Some(v) => v,
                        None => continue,
                    },
                    (_, None) => continue,
                };
                slot.update(value, w);
            }
        };
        match &filter {
            Some(bm) => {
                for row in bm.iter_ones_in(range.start, range.end) {
                    update_row(row);
                }
            }
            None => {
                for row in range.rows() {
                    update_row(row);
                }
            }
        }
        fine
    };
    let fine = exec::fold_partitioned(
        table.num_rows(),
        options,
        |_, range| accumulate_range(range),
        |acc, partial| exec::merge_state_tables(acc, partial, |a, b| a.merge(b)),
    );

    let sets: Vec<Vec<usize>> = if query.cube {
        cvopt_table::grouping_sets(query.group_by.len())
    } else {
        vec![(0..query.group_by.len()).collect()]
    };
    let agg_names: Vec<String> = query.aggregates.iter().map(|a| a.alias.clone()).collect();

    let mut results = Vec::with_capacity(sets.len());
    for dims in &sets {
        let proj = index.project(dims);
        let mut merged =
            vec![vec![WeightedAggState::default(); query.aggregates.len()]; proj.num_groups()];
        for (fine_gid, states) in fine.iter().enumerate() {
            let cid = proj.coarse_of(fine_gid as u32) as usize;
            for (slot, s) in merged[cid].iter_mut().zip(states) {
                slot.merge(s);
            }
        }
        let mut rows: Vec<(Vec<KeyAtom>, Vec<f64>, u64)> = Vec::new();
        for (cid, states) in merged.iter().enumerate() {
            let contributing = states.iter().map(|s| s.rows).max().unwrap_or(0);
            if contributing == 0 {
                continue;
            }
            let values: Vec<f64> =
                states.iter().zip(&query.aggregates).map(|(s, a)| s.finalize(a.kind)).collect();
            rows.push((proj.key(cid as u32).to_vec(), values, contributing));
        }
        results.push(QueryResult::from_parts(proj.dim_names().to_vec(), agg_names.clone(), rows));
    }
    Ok(results)
}

/// Convenience: estimate one aggregate of a single-grouping-set query.
pub fn estimate_single(sample: &MaterializedSample, query: &GroupByQuery) -> Result<QueryResult> {
    let mut results = estimate(sample, query)?;
    Ok(results.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::stratified::StratifiedSample;
    use cvopt_table::{
        AggExpr as TAggExpr, CmpOp, DataType, Predicate, ScalarExpr, Table, TableBuilder, Value,
    };

    fn base_table() -> Table {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        // Group a: 0..100 (mean 49.5); group b: 1000..1010 (mean 1004.5).
        for i in 0..100 {
            b.push_row(&[Value::str("a"), Value::Float64(i as f64)]).unwrap();
        }
        for i in 0..10 {
            b.push_row(&[Value::str("b"), Value::Float64(1000.0 + i as f64)]).unwrap();
        }
        b.finish()
    }

    fn full_sample(t: &Table) -> MaterializedSample {
        // A "sample" of everything with weight 1: estimates must be exact.
        let rows: Vec<u32> = (0..t.num_rows() as u32).collect();
        let weights = vec![1.0; t.num_rows()];
        MaterializedSample::from_rows(t, rows, weights)
    }

    #[test]
    fn full_sample_is_exact() {
        let t = base_table();
        let s = full_sample(&t);
        let q = GroupByQuery::new(
            vec![ScalarExpr::col("g")],
            vec![TAggExpr::avg("x"), TAggExpr::count(), TAggExpr::sum("x")],
        );
        let est = estimate_single(&s, &q).unwrap();
        let exact = &q.execute(&t).unwrap()[0];
        for (key, values) in exact.iter() {
            for (j, v) in values.iter().enumerate() {
                let e = est.value(key, j).unwrap();
                assert!((e - v).abs() < 1e-9, "agg {j} key {key:?}: {e} vs {v}");
            }
        }
    }

    #[test]
    fn stratified_sample_count_sum_unbiased_shape() {
        let t = base_table();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        let s = StratifiedSample::draw(&idx, &[20, 5], 11, &ExecOptions::default()).materialize(&t);
        let q = GroupByQuery::new(vec![ScalarExpr::col("g")], vec![TAggExpr::count()]);
        let est = estimate_single(&s, &q).unwrap();
        // COUNT estimates are exactly n_c for full strata (HT with n/s).
        assert!((est.value(&[KeyAtom::from("a")], 0).unwrap() - 100.0).abs() < 1e-9);
        assert!((est.value(&[KeyAtom::from("b")], 0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn avg_within_reason() {
        let t = base_table();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        let s = StratifiedSample::draw(&idx, &[50, 5], 13, &ExecOptions::default()).materialize(&t);
        let q = GroupByQuery::new(vec![ScalarExpr::col("g")], vec![TAggExpr::avg("x")]);
        let est = estimate_single(&s, &q).unwrap();
        let a = est.value(&[KeyAtom::from("a")], 0).unwrap();
        let b = est.value(&[KeyAtom::from("b")], 0).unwrap();
        assert!((a - 49.5).abs() < 15.0, "a estimate {a}");
        assert!((b - 1004.5).abs() < 5.0, "b estimate {b}");
    }

    #[test]
    fn predicate_applied_at_query_time() {
        let t = base_table();
        let s = full_sample(&t);
        let q = GroupByQuery::new(vec![ScalarExpr::col("g")], vec![TAggExpr::count()])
            .with_predicate(Predicate::cmp("x", CmpOp::Lt, 50.0));
        let est = estimate_single(&s, &q).unwrap();
        assert_eq!(est.value(&[KeyAtom::from("a")], 0), Some(50.0));
        assert!(est.value(&[KeyAtom::from("b")], 0).is_none());
    }

    #[test]
    fn missing_group_absent() {
        let t = base_table();
        // Sample only group-a rows.
        let rows: Vec<u32> = (0..20).collect();
        let weights = vec![5.0; 20];
        let s = MaterializedSample::from_rows(&t, rows, weights);
        let q = GroupByQuery::new(vec![ScalarExpr::col("g")], vec![TAggExpr::avg("x")]);
        let est = estimate_single(&s, &q).unwrap();
        assert!(est.value(&[KeyAtom::from("b")], 0).is_none());
        assert_eq!(est.num_groups(), 1);
    }

    #[test]
    fn cube_estimation() {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("h", DataType::Str),
            ("x", DataType::Float64),
        ]);
        for i in 0..60 {
            let g = if i % 2 == 0 { "a" } else { "b" };
            let h = if i % 3 == 0 { "p" } else { "q" };
            b.push_row(&[Value::str(g), Value::str(h), Value::Float64(i as f64)]).unwrap();
        }
        let t = b.finish();
        let s = full_sample(&t);
        let q = GroupByQuery::new(
            vec![ScalarExpr::col("g"), ScalarExpr::col("h")],
            vec![TAggExpr::sum("x")],
        )
        .with_cube();
        let est = estimate(&s, &q).unwrap();
        let exact = q.execute(&t).unwrap();
        assert_eq!(est.len(), 4);
        for (e_set, x_set) in est.iter().zip(&exact) {
            assert_eq!(e_set.num_groups(), x_set.num_groups());
            for (key, values) in x_set.iter() {
                let got = e_set.value(key, 0).unwrap();
                assert!((got - values[0]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn count_if_weighted() {
        let t = base_table();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        // Full stratum samples → exact.
        let s =
            StratifiedSample::draw(&idx, &[100, 10], 17, &ExecOptions::default()).materialize(&t);
        let q = GroupByQuery::new(
            vec![ScalarExpr::col("g")],
            vec![TAggExpr::count_if("x", CmpOp::Ge, 50.0)],
        );
        let est = estimate_single(&s, &q).unwrap();
        assert!((est.value(&[KeyAtom::from("a")], 0).unwrap() - 50.0).abs() < 1e-9);
        assert!((est.value(&[KeyAtom::from("b")], 0).unwrap() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn weighted_state_merge_matches_sequential() {
        let values = [(1.0, 2.0), (3.0, 1.0), (5.0, 4.0), (2.0, 0.5), (8.0, 1.5)];
        let mut whole = WeightedAggState::default();
        for &(v, w) in &values {
            whole.update(v, w);
        }
        let mut left = WeightedAggState::default();
        let mut right = WeightedAggState::default();
        for &(v, w) in &values[..2] {
            left.update(v, w);
        }
        for &(v, w) in &values[2..] {
            right.update(v, w);
        }
        left.merge(&right);
        assert!((left.wsum - whole.wsum).abs() < 1e-12);
        assert!((left.mean - whole.mean).abs() < 1e-12);
        assert!((left.m2 - whole.m2).abs() < 1e-9);
        assert_eq!(left.rows, whole.rows);
    }

    #[test]
    fn zero_weight_rows_ignored() {
        let mut s = WeightedAggState::default();
        s.update(5.0, 0.0);
        assert_eq!(s.rows, 0);
        s.update(5.0, -1.0);
        assert_eq!(s.rows, 0);
    }
}

//! Error types for the CVOPT framework.

use std::fmt;

use cvopt_table::TableError;

/// Errors produced while planning or drawing a CVOPT sample.
#[derive(Debug, Clone, PartialEq)]
pub enum CvError {
    /// Underlying table-engine error.
    Table(TableError),
    /// The sampling problem has no queries.
    NoQueries,
    /// The memory budget is zero.
    ZeroBudget,
    /// A group has (near-)zero mean on an aggregation column, so its
    /// coefficient of variation is undefined (paper §1 assumes non-zero
    /// means).
    ZeroMeanGroup {
        /// Display form of the group key.
        group: String,
        /// Aggregation column name.
        column: String,
    },
    /// A weight was negative or non-finite.
    InvalidWeight {
        /// The offending weight.
        weight: f64,
        /// Where it was specified.
        context: String,
    },
    /// The ℓ∞ optimizer only supports a single aggregate with a single
    /// group-by (the case analysed in paper §5).
    LInfUnsupported {
        /// Why this spec is out of scope.
        reason: String,
    },
    /// Any other invariant violation.
    Invalid(String),
}

impl CvError {
    /// Convenience constructor.
    pub fn invalid(msg: impl Into<String>) -> Self {
        CvError::Invalid(msg.into())
    }
}

impl fmt::Display for CvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CvError::Table(e) => write!(f, "table error: {e}"),
            CvError::NoQueries => f.write_str("sampling problem has no queries"),
            CvError::ZeroBudget => f.write_str("sampling budget is zero"),
            CvError::ZeroMeanGroup { group, column } => write!(
                f,
                "group [{group}] has zero mean on column {column}; \
                 its coefficient of variation is undefined"
            ),
            CvError::InvalidWeight { weight, context } => {
                write!(f, "invalid weight {weight} for {context}")
            }
            CvError::LInfUnsupported { reason } => {
                write!(f, "CVOPT-INF (l-infinity) does not support this problem: {reason}")
            }
            CvError::Invalid(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CvError::Table(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TableError> for CvError {
    fn from(e: TableError) -> Self {
        CvError::Table(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CvError::NoQueries.to_string().contains("no queries"));
        assert!(CvError::ZeroBudget.to_string().contains("zero"));
        let e = CvError::ZeroMeanGroup { group: "VN|bc".into(), column: "value".into() };
        assert!(e.to_string().contains("VN|bc"));
        let e = CvError::InvalidWeight { weight: -1.0, context: "agg1".into() };
        assert!(e.to_string().contains("-1"));
    }

    #[test]
    fn from_table_error_preserves_source() {
        let e: CvError = TableError::ColumnNotFound("x".into()).into();
        assert!(std::error::Error::source(&e).is_some());
    }
}

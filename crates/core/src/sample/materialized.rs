//! A self-contained, weighted sample: the artifact every sampling method
//! (CVOPT and all baselines) produces, and the input to [`crate::estimate`].

use cvopt_table::Table;

use crate::sample::stratified::StratumInfo;

/// Sampled rows copied out of the base table, each carrying a
/// Horvitz–Thompson expansion weight.
///
/// * Stratified methods set `weights[i] = n_c/s_c` for the row's stratum.
/// * Uniform sampling sets `weights[i] = N/M`.
/// * Measure-biased sampling (Sample+Seek) sets `weights[i] ∝ 1/v_i`.
///
/// Any estimator of the form `Σ_g f(value) → Σ_{sampled} w·f(value)` is then
/// unbiased for extensive aggregates (COUNT/SUM) and consistent for ratios
/// (AVG).
#[derive(Debug, Clone)]
pub struct MaterializedSample {
    /// The sampled rows as a standalone table (same schema as the base).
    pub table: Table,
    /// Per-row expansion weight.
    pub weights: Vec<f64>,
    /// Original row ids in the base table.
    pub origin: Vec<u32>,
    /// Stratum metadata when the sample is stratified (else empty).
    pub strata: Vec<StratumInfo>,
    /// Stratum id per sampled row when stratified (else empty).
    pub row_stratum: Vec<u32>,
}

impl MaterializedSample {
    /// Build a non-stratified weighted sample from explicit rows + weights.
    pub fn from_rows(base: &Table, rows: Vec<u32>, weights: Vec<f64>) -> Self {
        assert_eq!(rows.len(), weights.len(), "one weight per row");
        let rows_usize: Vec<usize> = rows.iter().map(|&r| r as usize).collect();
        MaterializedSample {
            table: base.take(&rows_usize),
            weights,
            origin: rows,
            strata: Vec::new(),
            row_stratum: Vec::new(),
        }
    }

    /// Build a uniform sample (every row weight `N/M`).
    pub fn uniform(base: &Table, rows: Vec<u32>) -> Self {
        let n = base.num_rows() as f64;
        let m = rows.len() as f64;
        let w = if m == 0.0 { 0.0 } else { n / m };
        let weights = vec![w; rows.len()];
        Self::from_rows(base, rows, weights)
    }

    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.table.num_rows()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of weights (estimates the base-table row count).
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Whether this sample carries stratum structure.
    pub fn is_stratified(&self) -> bool {
        !self.strata.is_empty()
    }

    /// Approximate in-memory footprint in rows relative to the base table.
    pub fn sampling_fraction(&self, base_rows: usize) -> f64 {
        if base_rows == 0 {
            0.0
        } else {
            self.len() as f64 / base_rows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn base() -> Table {
        let mut b = TableBuilder::new(&[("x", DataType::Float64)]);
        for i in 0..50 {
            b.push_row(&[Value::Float64(i as f64)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn uniform_weights() {
        let t = base();
        let s = MaterializedSample::uniform(&t, vec![0, 10, 20, 30, 40]);
        assert_eq!(s.len(), 5);
        assert!(s.weights.iter().all(|&w| (w - 10.0).abs() < 1e-12));
        assert!((s.total_weight() - 50.0).abs() < 1e-9);
        assert!(!s.is_stratified());
        assert!((s.sampling_fraction(50) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn empty_uniform() {
        let t = base();
        let s = MaterializedSample::uniform(&t, vec![]);
        assert!(s.is_empty());
        assert_eq!(s.total_weight(), 0.0);
    }

    #[test]
    fn from_rows_copies_values() {
        let t = base();
        let s = MaterializedSample::from_rows(&t, vec![7, 3], vec![2.0, 5.0]);
        assert_eq!(s.table.column(0).f64_at(0), Some(7.0));
        assert_eq!(s.table.column(0).f64_at(1), Some(3.0));
        assert_eq!(s.origin, vec![7, 3]);
    }

    #[test]
    #[should_panic(expected = "one weight per row")]
    fn mismatched_weights_panic() {
        let t = base();
        let _ = MaterializedSample::from_rows(&t, vec![1, 2], vec![1.0]);
    }
}

//! Sample drawing: reservoirs, weighted reservoirs, stratified samples and
//! the materialized weighted-sample artifact.

pub mod materialized;
pub mod reservoir;
pub mod stratified;
pub mod weighted;

pub use materialized::MaterializedSample;
pub use reservoir::{sample_distinct, Reservoir};
pub use stratified::{StratifiedSample, StratumInfo};
pub use weighted::WeightedReservoir;

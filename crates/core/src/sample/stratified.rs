//! Drawing a stratified sample for a computed allocation.

use cvopt_table::{GroupIndex, KeyAtom, Table};
use rand::Rng;

use crate::sample::materialized::MaterializedSample;
use crate::sample::reservoir::Reservoir;

/// Metadata for one stratum of a drawn sample.
#[derive(Debug, Clone)]
pub struct StratumInfo {
    /// Group key of the stratum in the finest stratification.
    pub key: Vec<KeyAtom>,
    /// Rows in the stratum (`n_c`).
    pub population: u64,
    /// Rows sampled from the stratum (`s_c`).
    pub sampled: u64,
}

impl StratumInfo {
    /// Horvitz–Thompson expansion weight `n_c / s_c` for rows of this
    /// stratum (infinite if nothing was sampled — such strata contribute no
    /// rows, so the weight is never applied).
    pub fn weight(&self) -> f64 {
        if self.sampled == 0 {
            f64::INFINITY
        } else {
            self.population as f64 / self.sampled as f64
        }
    }
}

/// A stratified row sample: per-stratum row ids plus metadata.
#[derive(Debug, Clone)]
pub struct StratifiedSample {
    /// Per-stratum metadata, indexed by stratum id of the drawing index.
    pub strata: Vec<StratumInfo>,
    /// Sampled row ids per stratum.
    pub rows_per_stratum: Vec<Vec<u32>>,
}

impl StratifiedSample {
    /// Draw `allocation[c]` rows uniformly without replacement from each
    /// stratum `c` of `index`, in one pass over the table (the paper's
    /// second pass). Allocations above the stratum population are clamped.
    pub fn draw(index: &GroupIndex, allocation: &[u64], rng: &mut impl Rng) -> StratifiedSample {
        assert_eq!(
            allocation.len(),
            index.num_groups(),
            "allocation must cover every stratum"
        );
        let mut reservoirs: Vec<Reservoir> = allocation
            .iter()
            .zip(index.sizes())
            .map(|(&s, &n)| Reservoir::new(s.min(n) as usize))
            .collect();
        for row in 0..index.num_rows() {
            let c = index.group_of(row) as usize;
            reservoirs[c].offer(row as u32, rng);
        }
        let mut strata = Vec::with_capacity(index.num_groups());
        let mut rows_per_stratum = Vec::with_capacity(index.num_groups());
        for (c, reservoir) in reservoirs.into_iter().enumerate() {
            let mut rows = reservoir.into_items();
            rows.sort_unstable();
            strata.push(StratumInfo {
                key: index.key(c as u32).to_vec(),
                population: index.size(c as u32),
                sampled: rows.len() as u64,
            });
            rows_per_stratum.push(rows);
        }
        StratifiedSample { strata, rows_per_stratum }
    }

    /// Total sampled rows.
    pub fn total_sampled(&self) -> u64 {
        self.strata.iter().map(|s| s.sampled).sum()
    }

    /// Copy the sampled rows out of `table` into a self-contained
    /// [`MaterializedSample`] with per-row expansion weights.
    pub fn materialize(&self, table: &Table) -> MaterializedSample {
        let total = self.total_sampled() as usize;
        let mut origin = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        let mut row_stratum = Vec::with_capacity(total);
        for (c, rows) in self.rows_per_stratum.iter().enumerate() {
            let w = self.strata[c].weight();
            for &r in rows {
                origin.push(r);
                weights.push(w);
                row_stratum.push(c as u32);
            }
        }
        let rows_usize: Vec<usize> = origin.iter().map(|&r| r as usize).collect();
        let sample_table = table.take(&rows_usize);
        MaterializedSample {
            table: sample_table,
            weights,
            origin,
            strata: self.strata.clone(),
            row_stratum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{DataType, ScalarExpr, TableBuilder, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table_and_index() -> (Table, GroupIndex) {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..100 {
            b.push_row(&[Value::str("a"), Value::Float64(i as f64)]).unwrap();
        }
        for i in 0..10 {
            b.push_row(&[Value::str("b"), Value::Float64(1000.0 + i as f64)]).unwrap();
        }
        let t = b.finish();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        (t, idx)
    }

    #[test]
    fn draw_respects_allocation() {
        let (_t, idx) = table_and_index();
        let mut rng = StdRng::seed_from_u64(1);
        let s = StratifiedSample::draw(&idx, &[20, 5], &mut rng);
        assert_eq!(s.strata[0].sampled, 20);
        assert_eq!(s.strata[1].sampled, 5);
        assert_eq!(s.total_sampled(), 25);
        // Sampled rows belong to the right stratum.
        assert!(s.rows_per_stratum[0].iter().all(|&r| r < 100));
        assert!(s.rows_per_stratum[1].iter().all(|&r| (100..110).contains(&r)));
    }

    #[test]
    fn allocation_clamped_to_population() {
        let (_t, idx) = table_and_index();
        let mut rng = StdRng::seed_from_u64(2);
        let s = StratifiedSample::draw(&idx, &[20, 500], &mut rng);
        assert_eq!(s.strata[1].sampled, 10);
        assert_eq!(s.strata[1].weight(), 1.0);
    }

    #[test]
    fn weights_are_expansion_factors() {
        let (_t, idx) = table_and_index();
        let mut rng = StdRng::seed_from_u64(3);
        let s = StratifiedSample::draw(&idx, &[25, 5], &mut rng);
        assert_eq!(s.strata[0].weight(), 4.0);
        assert_eq!(s.strata[1].weight(), 2.0);
    }

    #[test]
    fn zero_allocation_stratum() {
        let (_t, idx) = table_and_index();
        let mut rng = StdRng::seed_from_u64(4);
        let s = StratifiedSample::draw(&idx, &[10, 0], &mut rng);
        assert_eq!(s.strata[1].sampled, 0);
        assert!(s.rows_per_stratum[1].is_empty());
        assert_eq!(s.strata[1].weight(), f64::INFINITY);
    }

    #[test]
    fn materialize_builds_weighted_table() {
        let (t, idx) = table_and_index();
        let mut rng = StdRng::seed_from_u64(5);
        let s = StratifiedSample::draw(&idx, &[50, 10], &mut rng);
        let m = s.materialize(&t);
        assert_eq!(m.table.num_rows(), 60);
        assert_eq!(m.weights.len(), 60);
        assert_eq!(m.row_stratum.len(), 60);
        // Total weight reconstructs the population size.
        let total: f64 = m.weights.iter().sum();
        assert!((total - 110.0).abs() < 1e-9);
        // Weighted sum of an indicator for stratum b ≈ population of b.
        let b_weight: f64 = (0..60)
            .filter(|&i| m.table.column(0).value(i) == Value::str("b"))
            .map(|i| m.weights[i])
            .sum();
        assert!((b_weight - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sample_rows_are_distinct() {
        let (_t, idx) = table_and_index();
        let mut rng = StdRng::seed_from_u64(6);
        let s = StratifiedSample::draw(&idx, &[60, 10], &mut rng);
        let mut all: Vec<u32> = s.rows_per_stratum.concat();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(all.len(), before);
    }
}

//! Drawing a stratified sample for a computed allocation.
//!
//! The draw is parallel in **both** of its passes. Rows are bucketed by
//! stratum with the execution layer's two-phase scatter
//! ([`cvopt_table::exec::bucket_rows`]: per-partition histograms, an
//! exclusive prefix over (bucket, partition), then a parallel scatter into
//! disjoint windows) whose output is byte-identical to a sequential stable
//! counting sort — each bucket lists its rows in row order, the same order
//! a sequential scan would offer them. Then every stratum runs its
//! reservoir with its own RNG substream derived from the caller's seed and
//! the stratum id. A stratum's sample therefore depends only on
//! `(seed, stratum)`, making the drawn sample byte-identical for any
//! thread count.

use cvopt_table::exec::{self, BucketedRows, ExecOptions};
use cvopt_table::{GroupIndex, KeyAtom, ShardSet, ShardedTable, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sample::materialized::MaterializedSample;
use crate::sample::reservoir::Reservoir;

/// Derive the RNG seed of one stratum's substream: the caller's seed XORed
/// with a SplitMix64-mixed stratum id, so neighbouring strata get
/// decorrelated streams.
fn substream_seed(seed: u64, stratum: u64) -> u64 {
    let mut state = stratum.wrapping_add(0x9E37_79B9_7F4A_7C15);
    seed ^ rand::split_mix_64(&mut state)
}

/// Metadata for one stratum of a drawn sample.
#[derive(Debug, Clone)]
pub struct StratumInfo {
    /// Group key of the stratum in the finest stratification.
    pub key: Vec<KeyAtom>,
    /// Rows in the stratum (`n_c`).
    pub population: u64,
    /// Rows sampled from the stratum (`s_c`).
    pub sampled: u64,
}

impl StratumInfo {
    /// Horvitz–Thompson expansion weight `n_c / s_c` for rows of this
    /// stratum (infinite if nothing was sampled — such strata contribute no
    /// rows, so the weight is never applied).
    pub fn weight(&self) -> f64 {
        if self.sampled == 0 {
            f64::INFINITY
        } else {
            self.population as f64 / self.sampled as f64
        }
    }
}

/// A stratified row sample: per-stratum row ids plus metadata.
#[derive(Debug, Clone)]
pub struct StratifiedSample {
    /// Per-stratum metadata, indexed by stratum id of the drawing index.
    pub strata: Vec<StratumInfo>,
    /// Sampled row ids per stratum.
    pub rows_per_stratum: Vec<Vec<u32>>,
}

impl StratifiedSample {
    /// Draw `allocation[c]` rows uniformly without replacement from each
    /// stratum `c` of `index` (the paper's second pass). Allocations above
    /// the stratum population are clamped.
    ///
    /// Strata are drawn in parallel per `options`, each from its own
    /// `seed`-derived RNG substream; the result depends only on
    /// `(index, allocation, seed)`, never on the thread count.
    pub fn draw(
        index: &GroupIndex,
        allocation: &[u64],
        seed: u64,
        options: &ExecOptions,
    ) -> StratifiedSample {
        // Bucket row ids by stratum with the two-phase parallel scatter
        // (per-partition histograms → exclusive prefix → scatter); the
        // output is byte-identical to a sequential stable counting sort,
        // so each bucket holds its rows in ascending row order.
        let bucketed = exec::bucket_rows(index.row_groups(), index.num_groups(), options);
        Self::draw_bucketed(index, &bucketed, allocation, seed, options)
    }

    /// [`StratifiedSample::draw`] over a [`ShardedTable`]'s group index
    /// (built with [`GroupIndex::build_sharded`]): rows are bucketed by the
    /// sharded two-phase scatter ([`cvopt_table::exec::bucket_rows_sharded`]
    /// — a per-shard histogram level above the per-partition one), which is
    /// byte-identical to bucketing the concatenated ids. The reservoirs
    /// then depend only on `(seed, stratum)`, so the drawn sample is
    /// **byte-identical to the unsharded draw** for any shard layout and
    /// thread count.
    pub fn draw_sharded(
        index: &GroupIndex,
        table: &ShardedTable,
        allocation: &[u64],
        seed: u64,
        options: &ExecOptions,
    ) -> StratifiedSample {
        assert_eq!(index.num_rows(), table.num_rows(), "index must cover the sharded rows");
        let gids = index.row_groups();
        let offsets = table.offsets();
        let shard_slices: Vec<&[u32]> =
            (0..table.num_shards()).map(|s| &gids[offsets[s]..offsets[s + 1]]).collect();
        let bucketed = exec::bucket_rows_sharded(&shard_slices, index.num_groups(), options);
        Self::draw_bucketed(index, &bucketed, allocation, seed, options)
    }

    /// [`StratifiedSample::draw_sharded`] over a [`ShardSet`] (shards local
    /// or remote): identical slicing of the group ids by the set's offsets,
    /// identical sharded two-phase scatter, identical substream reservoirs
    /// — so the drawn sample is **byte-identical to the unsharded draw**
    /// for any shard layout and thread count.
    pub fn draw_set(
        index: &GroupIndex,
        set: &ShardSet,
        allocation: &[u64],
        seed: u64,
        options: &ExecOptions,
    ) -> StratifiedSample {
        assert_eq!(index.num_rows(), set.num_rows(), "index must cover the shard set's rows");
        let gids = index.row_groups();
        let offsets = set.offsets();
        let shard_slices: Vec<&[u32]> =
            (0..set.num_shards()).map(|s| &gids[offsets[s]..offsets[s + 1]]).collect();
        let bucketed = exec::bucket_rows_sharded(&shard_slices, index.num_groups(), options);
        Self::draw_bucketed(index, &bucketed, allocation, seed, options)
    }

    /// The shared reservoir pass behind [`StratifiedSample::draw`] and
    /// [`StratifiedSample::draw_sharded`]: one reservoir per stratum over
    /// its (row-ascending) bucket, each on its own seed-derived substream.
    fn draw_bucketed(
        index: &GroupIndex,
        bucketed: &BucketedRows,
        allocation: &[u64],
        seed: u64,
        options: &ExecOptions,
    ) -> StratifiedSample {
        assert_eq!(allocation.len(), index.num_groups(), "allocation must cover every stratum");
        let num_groups = index.num_groups();
        let rows_per_stratum = exec::run_indexed(num_groups, options, |c| {
            let rows = bucketed.bucket(c);
            let capacity = allocation[c].min(index.size(c as u32)) as usize;
            let mut rng = StdRng::seed_from_u64(substream_seed(seed, c as u64));
            let mut reservoir = Reservoir::new(capacity);
            for &row in rows {
                reservoir.offer(row, &mut rng);
            }
            let mut sampled = reservoir.into_items();
            sampled.sort_unstable();
            sampled
        });

        let strata = rows_per_stratum
            .iter()
            .enumerate()
            .map(|(c, rows)| StratumInfo {
                key: index.key(c as u32).to_vec(),
                population: index.size(c as u32),
                sampled: rows.len() as u64,
            })
            .collect();
        StratifiedSample { strata, rows_per_stratum }
    }

    /// Total sampled rows.
    pub fn total_sampled(&self) -> u64 {
        self.strata.iter().map(|s| s.sampled).sum()
    }

    /// Copy the sampled rows out of `table` into a self-contained
    /// [`MaterializedSample`] with per-row expansion weights.
    pub fn materialize(&self, table: &Table) -> MaterializedSample {
        self.materialize_rows(|rows| table.take(rows))
    }

    /// [`StratifiedSample::materialize`] against a [`ShardedTable`]: each
    /// sampled (global) row is copied out of the shard that owns it. The
    /// resulting sample is a standalone single [`Table`], identical to
    /// materializing from the concatenated table, so every estimator
    /// downstream is oblivious to the sharding.
    pub fn materialize_sharded(&self, table: &ShardedTable) -> MaterializedSample {
        self.materialize_rows(|rows| table.gather(rows))
    }

    /// [`StratifiedSample::materialize_sharded`] over a [`ShardSet`]:
    /// sampled rows are gathered from whichever shard owns them — one
    /// batched request per remote shard — and reassembled in the same
    /// stratum-major order, so the sample table is byte-identical to the
    /// local gather. Fallible because a remote gather can fail.
    pub fn materialize_set(&self, set: &ShardSet) -> crate::Result<MaterializedSample> {
        self.try_materialize_rows(|rows| set.gather(rows).map_err(crate::error::CvError::from))
    }

    fn materialize_rows(&self, take: impl FnOnce(&[usize]) -> Table) -> MaterializedSample {
        self.try_materialize_rows(|rows| Ok::<Table, crate::error::CvError>(take(rows)))
            .expect("infallible take")
    }

    fn try_materialize_rows<E>(
        &self,
        take: impl FnOnce(&[usize]) -> std::result::Result<Table, E>,
    ) -> std::result::Result<MaterializedSample, E> {
        let total = self.total_sampled() as usize;
        let mut origin = Vec::with_capacity(total);
        let mut weights = Vec::with_capacity(total);
        let mut row_stratum = Vec::with_capacity(total);
        for (c, rows) in self.rows_per_stratum.iter().enumerate() {
            let w = self.strata[c].weight();
            for &r in rows {
                origin.push(r);
                weights.push(w);
                row_stratum.push(c as u32);
            }
        }
        let rows_usize: Vec<usize> = origin.iter().map(|&r| r as usize).collect();
        let sample_table = take(&rows_usize)?;
        Ok(MaterializedSample {
            table: sample_table,
            weights,
            origin,
            strata: self.strata.clone(),
            row_stratum,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{DataType, ScalarExpr, TableBuilder, Value};

    fn table_and_index() -> (Table, GroupIndex) {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..100 {
            b.push_row(&[Value::str("a"), Value::Float64(i as f64)]).unwrap();
        }
        for i in 0..10 {
            b.push_row(&[Value::str("b"), Value::Float64(1000.0 + i as f64)]).unwrap();
        }
        let t = b.finish();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        (t, idx)
    }

    #[test]
    fn draw_respects_allocation() {
        let (_t, idx) = table_and_index();
        let s = StratifiedSample::draw(&idx, &[20, 5], 1, &ExecOptions::default());
        assert_eq!(s.strata[0].sampled, 20);
        assert_eq!(s.strata[1].sampled, 5);
        assert_eq!(s.total_sampled(), 25);
        // Sampled rows belong to the right stratum.
        assert!(s.rows_per_stratum[0].iter().all(|&r| r < 100));
        assert!(s.rows_per_stratum[1].iter().all(|&r| (100..110).contains(&r)));
    }

    #[test]
    fn allocation_clamped_to_population() {
        let (_t, idx) = table_and_index();
        let s = StratifiedSample::draw(&idx, &[20, 500], 2, &ExecOptions::default());
        assert_eq!(s.strata[1].sampled, 10);
        assert_eq!(s.strata[1].weight(), 1.0);
    }

    #[test]
    fn weights_are_expansion_factors() {
        let (_t, idx) = table_and_index();
        let s = StratifiedSample::draw(&idx, &[25, 5], 3, &ExecOptions::default());
        assert_eq!(s.strata[0].weight(), 4.0);
        assert_eq!(s.strata[1].weight(), 2.0);
    }

    #[test]
    fn zero_allocation_stratum() {
        let (_t, idx) = table_and_index();
        let s = StratifiedSample::draw(&idx, &[10, 0], 4, &ExecOptions::default());
        assert_eq!(s.strata[1].sampled, 0);
        assert!(s.rows_per_stratum[1].is_empty());
        assert_eq!(s.strata[1].weight(), f64::INFINITY);
    }

    #[test]
    fn materialize_builds_weighted_table() {
        let (t, idx) = table_and_index();
        let s = StratifiedSample::draw(&idx, &[50, 10], 5, &ExecOptions::default());
        let m = s.materialize(&t);
        assert_eq!(m.table.num_rows(), 60);
        assert_eq!(m.weights.len(), 60);
        assert_eq!(m.row_stratum.len(), 60);
        // Total weight reconstructs the population size.
        let total: f64 = m.weights.iter().sum();
        assert!((total - 110.0).abs() < 1e-9);
        // Weighted sum of an indicator for stratum b ≈ population of b.
        let b_weight: f64 = (0..60)
            .filter(|&i| m.table.column(0).value(i) == Value::str("b"))
            .map(|i| m.weights[i])
            .sum();
        assert!((b_weight - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sample_rows_are_distinct() {
        let (_t, idx) = table_and_index();
        let s = StratifiedSample::draw(&idx, &[60, 10], 6, &ExecOptions::default());
        let mut all: Vec<u32> = s.rows_per_stratum.concat();
        all.sort_unstable();
        let before = all.len();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    fn sharded_draw_is_byte_identical_to_unsharded() {
        let (t, idx) = table_and_index();
        let reference = StratifiedSample::draw(&idx, &[25, 5], 9, &ExecOptions::sequential());
        for num_shards in [1usize, 2, 4] {
            let st = ShardedTable::split(&t, num_shards).unwrap();
            let sidx =
                GroupIndex::build_sharded(&st, &[ScalarExpr::col("g")], &ExecOptions::sequential())
                    .unwrap();
            for threads in [1usize, 4] {
                let got = StratifiedSample::draw_sharded(
                    &sidx,
                    &st,
                    &[25, 5],
                    9,
                    &ExecOptions::new(threads),
                );
                assert_eq!(
                    got.rows_per_stratum, reference.rows_per_stratum,
                    "shards {num_shards}, threads {threads}"
                );
                // Materializing from the shards reproduces the same rows.
                let m = got.materialize_sharded(&st);
                let m_ref = reference.materialize(&t);
                assert_eq!(m.origin, m_ref.origin);
                for row in 0..m.table.num_rows() {
                    assert_eq!(m.table.row(row), m_ref.table.row(row));
                }
            }
        }
    }

    #[test]
    fn byte_identical_across_thread_counts() {
        // Many strata with skewed sizes: dynamic scheduling will interleave
        // them differently per run, but substream RNGs must make the output
        // independent of all that.
        let mut b = TableBuilder::new(&[("g", DataType::Int64)]);
        for i in 0..40_000i64 {
            b.push_row(&[Value::Int64(i % ((i % 37) + 1))]).unwrap();
        }
        let t = b.finish();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        let allocation: Vec<u64> = idx.sizes().iter().map(|&n| (n / 10).max(1)).collect();
        let reference = StratifiedSample::draw(&idx, &allocation, 42, &ExecOptions::sequential());
        for threads in [2usize, 8] {
            let par = StratifiedSample::draw(&idx, &allocation, 42, &ExecOptions::new(threads));
            assert_eq!(par.rows_per_stratum, reference.rows_per_stratum);
        }
        // And a different seed draws a different sample.
        let other = StratifiedSample::draw(&idx, &allocation, 43, &ExecOptions::sequential());
        assert_ne!(other.rows_per_stratum, reference.rows_per_stratum);
    }
}

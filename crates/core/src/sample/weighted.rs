//! Weighted reservoir sampling (Efraimidis–Spirakis A-Res).
//!
//! Used by the Sample+Seek baseline, whose *measure-biased* sampling draws
//! rows with probability proportional to the aggregated value. A-Res keeps
//! the `k` items with the largest keys `u_i^(1/w_i)`; we work with the
//! equivalent log-keys `ln(u_i)/w_i` to avoid underflow.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::{Rng, RngExt};

/// f64 wrapper with total ordering, for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct F64Ord(f64);

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Weighted without-replacement reservoir of fixed capacity.
#[derive(Debug, Clone)]
pub struct WeightedReservoir {
    capacity: usize,
    // Min-heap on key: the root is the weakest member, evicted first.
    heap: BinaryHeap<Reverse<(F64Ord, u32)>>,
}

impl WeightedReservoir {
    /// Reservoir holding up to `capacity` items.
    pub fn new(capacity: usize) -> Self {
        WeightedReservoir { capacity, heap: BinaryHeap::with_capacity(capacity + 1) }
    }

    /// Offer an item with weight `w`. Items with `w <= 0` are never sampled.
    #[inline]
    pub fn offer(&mut self, item: u32, w: f64, rng: &mut impl Rng) {
        if self.capacity == 0 || w <= 0.0 || !w.is_finite() {
            return;
        }
        let u: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
        let key = u.ln() / w;
        if self.heap.len() < self.capacity {
            self.heap.push(Reverse((F64Ord(key), item)));
        } else if let Some(&Reverse((F64Ord(min_key), _))) = self.heap.peek() {
            if key > min_key {
                self.heap.pop();
                self.heap.push(Reverse((F64Ord(key), item)));
            }
        }
    }

    /// Number of held items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the reservoir holds no items.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The sampled items (order unspecified).
    pub fn into_items(self) -> Vec<u32> {
        self.heap.into_iter().map(|Reverse((_, item))| item).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn holds_all_when_stream_small() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut r = WeightedReservoir::new(10);
        for i in 0..5u32 {
            r.offer(i, 1.0, &mut rng);
        }
        let mut items = r.into_items();
        items.sort_unstable();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn respects_capacity_and_distinct() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut r = WeightedReservoir::new(50);
        for i in 0..5000u32 {
            r.offer(i, 1.0 + (i % 10) as f64, &mut rng);
        }
        let items = r.into_items();
        assert_eq!(items.len(), 50);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
    }

    #[test]
    fn zero_and_negative_weights_never_sampled() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut r = WeightedReservoir::new(10);
        for i in 0..100u32 {
            let w = if i < 50 { 0.0 } else { 1.0 };
            r.offer(i, w, &mut rng);
        }
        let items = r.into_items();
        assert!(items.iter().all(|&i| i >= 50));
        r = WeightedReservoir::new(4);
        r.offer(1, -5.0, &mut rng);
        r.offer(2, f64::NAN, &mut rng);
        assert!(r.is_empty());
    }

    /// With weights 9:1, the heavy item should appear ~9x as often when
    /// sampling 1 of 2.
    #[test]
    fn inclusion_proportional_to_weight() {
        let trials = 20_000;
        let mut heavy = 0u64;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..trials {
            let mut r = WeightedReservoir::new(1);
            r.offer(0, 9.0, &mut rng);
            r.offer(1, 1.0, &mut rng);
            if r.into_items()[0] == 0 {
                heavy += 1;
            }
        }
        let frac = heavy as f64 / trials as f64;
        assert!((frac - 0.9).abs() < 0.02, "heavy fraction {frac}, expected ~0.9");
    }

    #[test]
    fn zero_capacity() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut r = WeightedReservoir::new(0);
        r.offer(1, 1.0, &mut rng);
        assert!(r.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut r = WeightedReservoir::new(20);
            for i in 0..1000u32 {
                r.offer(i, (i % 7 + 1) as f64, &mut rng);
            }
            let mut items = r.into_items();
            items.sort_unstable();
            items
        };
        assert_eq!(run(), run());
    }
}

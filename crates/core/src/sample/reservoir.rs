//! Reservoir sampling (Vitter's Algorithm R and Li's Algorithm L).
//!
//! The stratified pass keeps one [`Reservoir`] per stratum and offers each
//! row to its stratum's reservoir — a single scan regardless of the number
//! of strata (the paper's "second pass"). Algorithm L makes the per-item
//! cost O(1) amortized with only O(k·(1 + log(n/k))) random numbers.

use rand::{Rng, RngExt};

/// Uniform without-replacement reservoir of fixed capacity.
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    items: Vec<u32>,
    seen: u64,
    /// Algorithm L state: current `W`.
    w: f64,
    /// Items left to skip before the next replacement.
    skip: u64,
    algo_l: bool,
}

impl Reservoir {
    /// Reservoir holding up to `capacity` items, using Algorithm L.
    pub fn new(capacity: usize) -> Self {
        Reservoir {
            capacity,
            items: Vec::with_capacity(capacity.min(1 << 20)),
            seen: 0,
            w: 1.0,
            skip: 0,
            algo_l: true,
        }
    }

    /// Same, but using the simpler Algorithm R (one random number per item).
    /// Exposed for tests and benchmarks comparing the two.
    pub fn new_algorithm_r(capacity: usize) -> Self {
        let mut r = Self::new(capacity);
        r.algo_l = false;
        r
    }

    /// Number of items offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Current number of held items (= min(capacity, seen)).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the reservoir holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Offer the next stream item.
    #[inline]
    pub fn offer(&mut self, item: u32, rng: &mut impl Rng) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
            if self.algo_l && self.items.len() == self.capacity {
                self.advance_w(rng);
                self.compute_skip(rng);
            }
            return;
        }
        if self.capacity == 0 {
            return;
        }
        if self.algo_l {
            if self.skip > 0 {
                self.skip -= 1;
            } else {
                let slot = rng.random_range(0..self.capacity);
                self.items[slot] = item;
                self.advance_w(rng);
                self.compute_skip(rng);
            }
        } else {
            // Algorithm R: replace with probability capacity/seen.
            let j = rng.random_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// The sampled items (order unspecified).
    pub fn into_items(self) -> Vec<u32> {
        self.items
    }

    /// Borrow the sampled items.
    pub fn items(&self) -> &[u32] {
        &self.items
    }

    #[inline]
    fn advance_w(&mut self, rng: &mut impl Rng) {
        // u ∈ (0, 1] so ln(u) is finite.
        let u: f64 = 1.0 - rng.random::<f64>();
        self.w *= (u.ln() / self.capacity as f64).exp();
    }

    #[inline]
    fn compute_skip(&mut self, rng: &mut impl Rng) {
        let u: f64 = 1.0 - rng.random::<f64>();
        self.skip = (u.ln() / (1.0 - self.w).ln()).floor() as u64;
    }
}

/// Sample `k` distinct values from `0..n` (Floyd's algorithm, O(k) expected).
pub fn sample_distinct(rng: &mut impl Rng, n: u64, k: usize) -> Vec<u64> {
    use std::collections::HashSet;
    let k = k.min(n as usize);
    if k == 0 {
        return Vec::new();
    }
    if (k as u64) == n {
        return (0..n).collect();
    }
    let mut chosen: HashSet<u64> = HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k as u64)..n {
        let t = rng.random_range(0..=j);
        if chosen.insert(t) {
            out.push(t);
        } else {
            chosen.insert(j);
            out.push(j);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_reservoir(algo_l: bool, n: u32, k: usize, seed: u64) -> Vec<u32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut r = if algo_l { Reservoir::new(k) } else { Reservoir::new_algorithm_r(k) };
        for i in 0..n {
            r.offer(i, &mut rng);
        }
        r.into_items()
    }

    #[test]
    fn holds_all_when_stream_small() {
        for algo_l in [true, false] {
            let items = run_reservoir(algo_l, 5, 10, 1);
            assert_eq!(items.len(), 5);
            let mut sorted = items.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn exact_capacity() {
        for algo_l in [true, false] {
            let items = run_reservoir(algo_l, 1000, 100, 2);
            assert_eq!(items.len(), 100);
            let mut sorted = items.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 100, "items must be distinct");
            assert!(sorted.iter().all(|&x| x < 1000));
        }
    }

    #[test]
    fn zero_capacity() {
        for algo_l in [true, false] {
            let items = run_reservoir(algo_l, 100, 0, 3);
            assert!(items.is_empty());
        }
    }

    /// Each item should appear with probability ≈ k/n. With n=200, k=20 and
    /// 5000 trials the expected inclusion count is 500 with σ ≈ 21; the
    /// ±27% band is ≈ 6.4σ per item, comfortably safe across 400 checks.
    #[test]
    fn approximately_uniform() {
        for algo_l in [true, false] {
            let n = 200u32;
            let k = 20usize;
            let trials = 5000u64;
            let mut counts = vec![0u64; n as usize];
            let mut rng = StdRng::seed_from_u64(42);
            for _ in 0..trials {
                let mut r = if algo_l { Reservoir::new(k) } else { Reservoir::new_algorithm_r(k) };
                for i in 0..n {
                    r.offer(i, &mut rng);
                }
                for item in r.into_items() {
                    counts[item as usize] += 1;
                }
            }
            let expected = trials as f64 * k as f64 / n as f64;
            for (i, &c) in counts.iter().enumerate() {
                assert!(
                    (c as f64) > expected * 0.73 && (c as f64) < expected * 1.27,
                    "algo_l={algo_l}: item {i} sampled {c} times, expected ~{expected}"
                );
            }
            // Aggregate check: total inclusions are exactly trials × k.
            let total: u64 = counts.iter().sum();
            assert_eq!(total, trials * k as u64);
        }
    }

    #[test]
    fn algorithms_agree_on_marginals() {
        // Both algorithms should produce the same inclusion probability;
        // compare their aggregate inclusion counts for the first half of the
        // stream (sanity check against index bias).
        let n = 100u32;
        let k = 10usize;
        let trials = 2000;
        let mut first_half = [0u64; 2];
        for (ai, algo_l) in [true, false].iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..trials {
                let mut r = if *algo_l { Reservoir::new(k) } else { Reservoir::new_algorithm_r(k) };
                for i in 0..n {
                    r.offer(i, &mut rng);
                }
                first_half[ai] += r.items().iter().filter(|&&x| x < n / 2).count() as u64;
            }
        }
        let a = first_half[0] as f64;
        let b = first_half[1] as f64;
        assert!((a - b).abs() / a < 0.1, "algorithms diverge: {a} vs {b}");
    }

    #[test]
    fn sample_distinct_properties() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = sample_distinct(&mut rng, 1000, 50);
        assert_eq!(s.len(), 50);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 50);
        assert!(sorted.iter().all(|&x| x < 1000));

        assert_eq!(sample_distinct(&mut rng, 10, 10), (0..10).collect::<Vec<_>>());
        assert_eq!(sample_distinct(&mut rng, 10, 20).len(), 10);
        assert!(sample_distinct(&mut rng, 10, 0).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_reservoir(true, 500, 25, 99);
        let b = run_reservoir(true, 500, 25, 99);
        assert_eq!(a, b);
    }
}

//! One-pass per-stratum statistics (the paper's "first pass").
//!
//! For each stratum of the finest stratification and each aggregation
//! column, we accumulate count/mean/M2 with Welford's algorithm. Because the
//! accumulators merge exactly, the statistics of any *coarser* group
//! `a = ∪ {c ∈ C(a)}` (the paper's `Π`-projections) are derived by merging —
//! no second scan.
//!
//! The pass runs on the shared chunk-parallel driver
//! ([`cvopt_table::exec::run_partitioned`]): per-partition accumulators are
//! merged in partition order, so the collected statistics are bit-identical
//! for any thread count.

use std::sync::atomic::{AtomicU64, Ordering};

use cvopt_table::agg::AggState;
use cvopt_table::exec::{self, ExecOptions};
use cvopt_table::groupby::GroupProjection;
use cvopt_table::{ColumnValues, GroupIndex, ScalarExpr, ShardSet, ShardedTable, Table};

use crate::spec::VarianceKind;
use crate::Result;

/// Process-wide count of statistics passes (every `collect*` entry point,
/// whatever engine or sampler triggered it). The counter is atomic so a
/// serving layer's `/stats` endpoint can read it live, while passes run on
/// other threads.
static TOTAL_PASSES: AtomicU64 = AtomicU64::new(0);

/// Statistics passes run by this process so far (all engines, all
/// samplers). Monotonic; never reset.
pub fn total_stats_passes() -> u64 {
    TOTAL_PASSES.load(Ordering::Relaxed)
}

/// Record one statistics pass. Called by every collector after its
/// column binding succeeds (failed preparations never scanned anything)
/// and before the scan itself, so a pass in flight is already visible to
/// live readers. Also called by the incremental-maintenance build, whose
/// initial partial computation is a full scan; maintenance *updates* scan
/// only appended rows and are deliberately not counted as passes.
pub(crate) fn record_pass() {
    TOTAL_PASSES.fetch_add(1, Ordering::Relaxed);
}

/// The single-table per-partition statistics kernel shared by
/// [`StratumStatistics::collect_with`] and the incremental-maintenance
/// partial computation: counting-sort the partition's rows by stratum,
/// gather each stratum's value run densely, and push it through the
/// lane-merge slice kernel. A pure function of (bound columns, group ids,
/// range) — which is what lets maintenance cache a partition's result and
/// replay it bit-identically instead of rescanning.
fn partition_states(
    bound: &[cvopt_table::expr::BoundExpr<'_>],
    gids: &[u32],
    num_groups: usize,
    ncols: usize,
    range: exec::RowRange,
) -> Vec<Vec<AggState>> {
    let mut states = vec![vec![AggState::default(); ncols]; num_groups];
    if range.is_empty() {
        return states;
    }
    // Partition-local stable counting sort (row ids relative to the
    // partition): stratum runs come out in ascending row order, the order
    // the scalar pass would feed each stratum's accumulator.
    let local = exec::bucket_rows_sequential(&gids[range.start..range.end], num_groups);

    // Gather each run's values densely and push them through the lane
    // kernel; `Float64` identity columns gather straight from the column
    // slice.
    let dense: Vec<Option<&[f64]>> = bound.iter().map(|e| e.f64_slice()).collect();
    let mut buf: Vec<f64> = Vec::new();
    for g in 0..num_groups {
        let run = local.bucket(g);
        if run.is_empty() {
            continue;
        }
        for ((slot, expr), values) in states[g].iter_mut().zip(bound).zip(&dense) {
            buf.clear();
            match values {
                Some(values) => {
                    buf.extend(run.iter().map(|&r| values[range.start + r as usize]));
                }
                None => {
                    buf.extend(run.iter().filter_map(|&r| expr.f64_at(range.start + r as usize)));
                }
            }
            slot.update_slice(&buf);
        }
    }
    states
}

/// One column's partition values in global row order: a plain `f64` buffer
/// when every shard backs the column densely, `Option` per row otherwise.
enum Gathered {
    Dense(Vec<f64>),
    Sparse(Vec<Option<f64>>),
}

/// The sharded per-partition kernel shared by
/// [`StratumStatistics::collect_sharded`] and the incremental-maintenance
/// partial computation: identical to [`partition_states`] except values
/// gather through the shard segments covering the (global) partition.
fn partition_states_sharded(
    table: &ShardedTable,
    bound: &[Vec<cvopt_table::expr::BoundExpr<'_>>],
    dense_col: &[bool],
    gids: &[u32],
    num_groups: usize,
    ncols: usize,
    range: exec::RowRange,
) -> Vec<Vec<AggState>> {
    let mut states = vec![vec![AggState::default(); ncols]; num_groups];
    if range.is_empty() {
        return states;
    }
    let segments = table.segments(range);
    // Gather each column's values for the whole partition, one contiguous
    // copy per shard segment.
    let gathered: Vec<Gathered> = (0..ncols)
        .map(|c| {
            if dense_col[c] {
                let mut col: Vec<f64> = Vec::with_capacity(range.len());
                for seg in &segments {
                    let values = bound[seg.shard][c].f64_slice().expect("dense column");
                    col.extend_from_slice(&values[seg.local.start..seg.local.end]);
                }
                Gathered::Dense(col)
            } else {
                let mut col: Vec<Option<f64>> = Vec::with_capacity(range.len());
                for seg in &segments {
                    let expr = &bound[seg.shard][c];
                    col.extend(seg.local.rows().map(|r| expr.f64_at(r)));
                }
                Gathered::Sparse(col)
            }
        })
        .collect();

    let local = exec::bucket_rows_sequential(&gids[range.start..range.end], num_groups);
    let mut buf: Vec<f64> = Vec::new();
    for g in 0..num_groups {
        let run = local.bucket(g);
        if run.is_empty() {
            continue;
        }
        for (slot, col) in states[g].iter_mut().zip(&gathered) {
            buf.clear();
            match col {
                Gathered::Dense(values) => {
                    buf.extend(run.iter().map(|&r| values[r as usize]));
                }
                Gathered::Sparse(values) => {
                    buf.extend(run.iter().filter_map(|&r| values[r as usize]));
                }
            }
            slot.update_slice(&buf);
        }
    }
    states
}

/// Per-partition state tables (`partials[partition][group][column]`) for
/// the global partitions `from_partition..` of `table`, computed with the
/// exact [`collect_with`](StratumStatistics::collect_with) kernel. The
/// incremental-maintenance path calls this with `from_partition = 0` at
/// build time (one full scan) and with the first *dirty* partition on
/// append (only the tail containing new rows is rescanned); either way a
/// returned partial is bit-identical to the one a fresh full collect would
/// compute for that partition. Does not count a statistics pass.
pub(crate) fn tail_partials(
    table: &Table,
    index: &GroupIndex,
    columns: &[ScalarExpr],
    options: &ExecOptions,
    from_partition: usize,
) -> Result<Vec<Vec<Vec<AggState>>>> {
    let bound: Vec<_> =
        columns.iter().map(|c| c.bind(table)).collect::<std::result::Result<_, _>>()?;
    let ncols = columns.len();
    let num_groups = index.num_groups();
    let gids = index.row_groups();
    let partitions = exec::partition_rows(table.num_rows());
    let tail: Vec<exec::RowRange> = partitions.into_iter().skip(from_partition).collect();
    Ok(exec::run_indexed(tail.len(), options, |i| {
        partition_states(&bound, gids, num_groups, ncols, tail[i])
    }))
}

/// [`tail_partials`] over a [`ShardedTable`] — the same global-partition
/// kernel as [`collect_sharded`](StratumStatistics::collect_sharded), so a
/// partial never depends on where shard boundaries fall.
pub(crate) fn tail_partials_sharded(
    table: &ShardedTable,
    index: &GroupIndex,
    columns: &[ScalarExpr],
    options: &ExecOptions,
    from_partition: usize,
) -> Result<Vec<Vec<Vec<AggState>>>> {
    let bound: Vec<Vec<_>> = table
        .shards()
        .iter()
        .map(|shard| columns.iter().map(|c| c.bind(shard)).collect::<std::result::Result<_, _>>())
        .collect::<std::result::Result<_, _>>()?;
    let ncols = columns.len();
    let num_groups = index.num_groups();
    let gids = index.row_groups();
    let dense_col: Vec<bool> = (0..ncols)
        .map(|c| bound.iter().all(|shard_bound: &Vec<_>| shard_bound[c].f64_slice().is_some()))
        .collect();
    let partitions = exec::partition_rows(table.num_rows());
    let tail: Vec<exec::RowRange> = partitions.into_iter().skip(from_partition).collect();
    Ok(exec::run_indexed(tail.len(), options, |i| {
        partition_states_sharded(table, &bound, &dense_col, gids, num_groups, ncols, tail[i])
    }))
}

/// Per-stratum, per-column statistics over a table.
#[derive(Debug, Clone)]
pub struct StratumStatistics {
    /// Names of the tracked aggregation columns, in order.
    pub column_names: Vec<String>,
    /// `states[stratum][column]`.
    pub states: Vec<Vec<AggState>>,
    /// Stratum populations (`n_c`), from the group index.
    pub populations: Vec<u64>,
}

impl StratumStatistics {
    /// Collect statistics in a single sequential pass (the reference
    /// implementation: one accumulator stream, no partition merges).
    pub fn collect(table: &Table, index: &GroupIndex, columns: &[ScalarExpr]) -> Result<Self> {
        let bound: Vec<_> =
            columns.iter().map(|c| c.bind(table)).collect::<std::result::Result<_, _>>()?;
        record_pass();
        let mut states = vec![vec![AggState::default(); columns.len()]; index.num_groups()];
        for row in 0..table.num_rows() {
            let gid = index.group_of(row) as usize;
            for (slot, expr) in states[gid].iter_mut().zip(&bound) {
                if let Some(v) = expr.f64_at(row) {
                    slot.update(v);
                }
            }
        }
        Ok(Self::from_states(index, columns, states))
    }

    /// Collect statistics with `threads` worker threads (convenience
    /// wrapper over [`StratumStatistics::collect_with`]).
    pub fn collect_parallel(
        table: &Table,
        index: &GroupIndex,
        columns: &[ScalarExpr],
        threads: usize,
    ) -> Result<Self> {
        Self::collect_with(table, index, columns, &ExecOptions::new(threads))
    }

    /// Collect statistics on the shared chunk-parallel driver with the
    /// vectorized per-partition kernel: each partition counting-sorts its
    /// rows by stratum (partition-local histogram + stable scatter), then
    /// feeds every stratum's contiguous value run to the lane-merge slice
    /// kernel ([`AggState::update_slice`]). Partition boundaries are fixed
    /// by the row count, the lane schedule is fixed by the run contents,
    /// and partial accumulators merge in partition order, so the result is
    /// **bit-identical for any thread count**. It may differ from the
    /// purely scalar [`StratumStatistics::collect`] in the last ulps of
    /// mean/M2 (lane-merged vs. single-chain Welford rounding); both are
    /// deterministic.
    pub fn collect_with(
        table: &Table,
        index: &GroupIndex,
        columns: &[ScalarExpr],
        options: &ExecOptions,
    ) -> Result<Self> {
        let bound: Vec<_> =
            columns.iter().map(|c| c.bind(table)).collect::<std::result::Result<_, _>>()?;
        record_pass();
        let ncols = columns.len();
        let num_groups = index.num_groups();
        let gids = index.row_groups();

        let states = exec::fold_partitioned(
            table.num_rows(),
            options,
            |_, range| partition_states(&bound, gids, num_groups, ncols, range),
            |acc, partial| exec::merge_state_tables(acc, partial, |a, b| a.merge(b)),
        );
        Ok(Self::from_states(index, columns, states))
    }

    /// Collect statistics over a [`ShardedTable`], given the sharded group
    /// index ([`GroupIndex::build_sharded`]) over the same logical rows.
    ///
    /// Partials are whole **global** partitions, exactly as in
    /// [`StratumStatistics::collect_with`]: each partition gathers its
    /// values from the shard segments that cover it (dense segment copies
    /// when every shard exposes a `f64` slice for the column, per-row
    /// evaluation otherwise), counting-sorts its rows by stratum, and feeds
    /// each run to the lane kernel. Because the per-partition inputs and
    /// the partition-order fold are identical to the single-table pass, the
    /// result is **bit-identical to `collect_with` on the concatenated
    /// table** — for any shard layout (shard boundaries never move
    /// partition boundaries) and any thread count.
    pub fn collect_sharded(
        table: &ShardedTable,
        index: &GroupIndex,
        columns: &[ScalarExpr],
        options: &ExecOptions,
    ) -> Result<Self> {
        let bound: Vec<Vec<_>> = table
            .shards()
            .iter()
            .map(|shard| {
                columns.iter().map(|c| c.bind(shard)).collect::<std::result::Result<_, _>>()
            })
            .collect::<std::result::Result<_, _>>()?;
        record_pass();
        let ncols = columns.len();
        let num_groups = index.num_groups();
        let gids = index.row_groups();
        // A column gathers densely only when *every* shard backs it with a
        // dense slice; the choice depends on the schema alone, so it is the
        // same choice the single-table pass makes.
        let dense_col: Vec<bool> = (0..ncols)
            .map(|c| bound.iter().all(|shard_bound: &Vec<_>| shard_bound[c].f64_slice().is_some()))
            .collect();

        let states = exec::fold_partitioned(
            table.num_rows(),
            options,
            |_, range| {
                partition_states_sharded(table, &bound, &dense_col, gids, num_groups, ncols, range)
            },
            |acc, partial| exec::merge_state_tables(acc, partial, |a, b| a.merge(b)),
        );
        Ok(Self::from_states(index, columns, states))
    }

    /// Collect statistics over a [`ShardSet`] — [`collect_sharded`] over
    /// the shard-pass surface, so shards may be local or remote.
    ///
    /// One `expr_values` request per shard fetches every column's per-row
    /// values (dense `f64` buffers exactly when the shard-side expression
    /// exposes a slice — a schema-only property, so every shard agrees with
    /// the single-table pass); the partition kernel then gathers from the
    /// fetched buffers instead of bound expressions, with the identical
    /// segment walk, counting sort, lane kernel, and partition-order fold.
    /// The result is **bit-identical to `collect_sharded` on a local table
    /// with the same layout**, for any thread count.
    ///
    /// [`collect_sharded`]: StratumStatistics::collect_sharded
    pub fn collect_set(
        set: &ShardSet,
        index: &GroupIndex,
        columns: &[ScalarExpr],
        options: &ExecOptions,
    ) -> Result<Self> {
        let exprs: Vec<Option<ScalarExpr>> = columns.iter().map(|c| Some(c.clone())).collect();
        let fetched = set.fetch_values(&exprs, options)?;
        let values: Vec<Vec<ColumnValues>> = fetched
            .into_iter()
            .map(|cols| cols.into_iter().map(|c| c.expect("Some expression")).collect())
            .collect();
        record_pass();
        let ncols = columns.len();
        let num_groups = index.num_groups();
        let gids = index.row_groups();
        let dense_col: Vec<bool> = (0..ncols)
            .map(|c| values.iter().all(|shard_values| shard_values[c].is_dense()))
            .collect();

        let states = exec::fold_partitioned(
            set.num_rows(),
            options,
            |_, range| {
                let mut states = vec![vec![AggState::default(); ncols]; num_groups];
                if range.is_empty() {
                    return states;
                }
                enum Gathered {
                    Dense(Vec<f64>),
                    Sparse(Vec<Option<f64>>),
                }

                let segments = set.segments(range);
                let gathered: Vec<Gathered> = (0..ncols)
                    .map(|c| {
                        if dense_col[c] {
                            let mut col: Vec<f64> = Vec::with_capacity(range.len());
                            for seg in &segments {
                                let shard_values =
                                    values[seg.shard][c].dense().expect("dense column");
                                col.extend_from_slice(
                                    &shard_values[seg.local.start..seg.local.end],
                                );
                            }
                            Gathered::Dense(col)
                        } else {
                            let mut col: Vec<Option<f64>> = Vec::with_capacity(range.len());
                            for seg in &segments {
                                let shard_values = &values[seg.shard][c];
                                col.extend(seg.local.rows().map(|r| shard_values.get(r)));
                            }
                            Gathered::Sparse(col)
                        }
                    })
                    .collect();

                let local = exec::bucket_rows_sequential(&gids[range.start..range.end], num_groups);
                let mut buf: Vec<f64> = Vec::new();
                for g in 0..num_groups {
                    let run = local.bucket(g);
                    if run.is_empty() {
                        continue;
                    }
                    for (slot, col) in states[g].iter_mut().zip(&gathered) {
                        buf.clear();
                        match col {
                            Gathered::Dense(values) => {
                                buf.extend(run.iter().map(|&r| values[r as usize]));
                            }
                            Gathered::Sparse(values) => {
                                buf.extend(run.iter().filter_map(|&r| values[r as usize]));
                            }
                        }
                        slot.update_slice(&buf);
                    }
                }
                states
            },
            |acc, partial| exec::merge_state_tables(acc, partial, |a, b| a.merge(b)),
        );
        Ok(Self::from_states(index, columns, states))
    }

    pub(crate) fn from_states(
        index: &GroupIndex,
        columns: &[ScalarExpr],
        states: Vec<Vec<AggState>>,
    ) -> Self {
        StratumStatistics {
            column_names: columns.iter().map(|c| c.display_name()).collect(),
            states,
            populations: index.sizes().to_vec(),
        }
    }

    /// Fold cached per-partition partials (see [`tail_partials`]) into the
    /// statistics a fresh [`collect_with`](StratumStatistics::collect_with)
    /// over the same rows would produce. The fold is the same strict
    /// ascending-partition left fold `fold_partitioned` runs, over
    /// bit-identical partials, so the result is **bit-identical to a full
    /// re-collect** — without touching a single row. Partials must all be
    /// padded to `index.num_groups()` groups (a partition that predates a
    /// stratum holds default accumulators for it, exactly what a fresh
    /// kernel computes for a stratum with no rows in the partition).
    pub(crate) fn from_partials(
        index: &GroupIndex,
        columns: &[ScalarExpr],
        partials: &[Vec<Vec<AggState>>],
    ) -> Self {
        let mut iter = partials.iter();
        let mut acc = iter.next().cloned().unwrap_or_default();
        for partial in iter {
            exec::merge_state_tables(&mut acc, partial.clone(), |a, b| a.merge(b));
        }
        Self::from_states(index, columns, acc)
    }

    /// Number of strata.
    pub fn num_strata(&self) -> usize {
        self.states.len()
    }

    /// Number of tracked columns.
    pub fn num_columns(&self) -> usize {
        self.column_names.len()
    }

    /// Population `n_c` of stratum `c`.
    pub fn population(&self, stratum: usize) -> u64 {
        self.populations[stratum]
    }

    /// Mean `μ_{c,ℓ}`.
    pub fn mean(&self, stratum: usize, column: usize) -> f64 {
        self.states[stratum][column].mean
    }

    /// Variance `σ²_{c,ℓ}` under the chosen estimator.
    pub fn variance(&self, stratum: usize, column: usize, kind: VarianceKind) -> f64 {
        match kind {
            VarianceKind::Sample => self.states[stratum][column].sample_variance(),
            VarianceKind::Population => self.states[stratum][column].population_variance(),
        }
    }

    /// Coefficient of variation `σ/μ` (infinite if the mean is zero but the
    /// variance is not; zero for constant-zero groups).
    pub fn cv(&self, stratum: usize, column: usize, kind: VarianceKind) -> f64 {
        let mean = self.mean(stratum, column);
        let sd = self.variance(stratum, column, kind).sqrt();
        if sd == 0.0 {
            0.0
        } else if mean == 0.0 {
            f64::INFINITY
        } else {
            sd / mean.abs()
        }
    }

    /// Merge stratum statistics onto a coarser grouping: returns
    /// `[coarse group][column]` accumulators (the statistics of the paper's
    /// groups `a ∈ A_i` derived from the finest strata).
    pub fn coarsen(&self, projection: &GroupProjection) -> Vec<Vec<AggState>> {
        let mut coarse =
            vec![vec![AggState::default(); self.num_columns()]; projection.num_groups()];
        for (fine_gid, states) in self.states.iter().enumerate() {
            let cid = projection.coarse_of(fine_gid as u32) as usize;
            for (slot, s) in coarse[cid].iter_mut().zip(states) {
                slot.merge(s);
            }
        }
        coarse
    }

    /// Coarse populations under a projection.
    pub fn coarsen_populations(&self, projection: &GroupProjection) -> Vec<u64> {
        let mut pops = vec![0u64; projection.num_groups()];
        for (fine_gid, &n) in self.populations.iter().enumerate() {
            pops[projection.coarse_of(fine_gid as u32) as usize] += n;
        }
        pops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn table() -> Table {
        let mut b = TableBuilder::new(&[
            ("g", DataType::Str),
            ("h", DataType::Str),
            ("x", DataType::Float64),
            ("y", DataType::Float64),
        ]);
        let rows = [
            ("a", "p", 1.0, 10.0),
            ("a", "p", 3.0, 10.0),
            ("a", "q", 5.0, 20.0),
            ("b", "p", 100.0, 0.5),
            ("b", "q", 200.0, 1.5),
            ("b", "q", 300.0, 2.5),
        ];
        for (g, h, x, y) in rows {
            b.push_row(&[Value::str(g), Value::str(h), Value::Float64(x), Value::Float64(y)])
                .unwrap();
        }
        b.finish()
    }

    fn index(t: &Table) -> GroupIndex {
        GroupIndex::build(t, &[ScalarExpr::col("g"), ScalarExpr::col("h")]).unwrap()
    }

    #[test]
    fn collect_per_stratum() {
        let t = table();
        let idx = index(&t);
        let stats =
            StratumStatistics::collect(&t, &idx, &[ScalarExpr::col("x"), ScalarExpr::col("y")])
                .unwrap();
        assert_eq!(stats.num_strata(), 4);
        assert_eq!(stats.num_columns(), 2);
        // Stratum (a,p): x values 1,3.
        let ap = (0..4)
            .find(|&g| {
                idx.key(g as u32)[0].to_string() == "a" && idx.key(g as u32)[1].to_string() == "p"
            })
            .unwrap();
        assert_eq!(stats.population(ap), 2);
        assert!((stats.mean(ap, 0) - 2.0).abs() < 1e-12);
        assert!((stats.variance(ap, 0, VarianceKind::Sample) - 2.0).abs() < 1e-12);
        assert!((stats.variance(ap, 0, VarianceKind::Population) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cv_edge_cases() {
        let t = table();
        let idx = index(&t);
        let stats = StratumStatistics::collect(&t, &idx, &[ScalarExpr::col("y")]).unwrap();
        // Stratum (a,p) has constant y=10 → cv 0.
        let ap = (0..4)
            .find(|&g| {
                idx.key(g as u32)[0].to_string() == "a" && idx.key(g as u32)[1].to_string() == "p"
            })
            .unwrap();
        assert_eq!(stats.cv(ap, 0, VarianceKind::Sample), 0.0);
    }

    #[test]
    fn coarsen_matches_direct() {
        let t = table();
        let idx = index(&t);
        let stats = StratumStatistics::collect(&t, &idx, &[ScalarExpr::col("x")]).unwrap();
        let proj = idx.project(&[0]);
        let coarse = stats.coarsen(&proj);
        let pops = stats.coarsen_populations(&proj);

        // Compare against a direct single-level index.
        let direct_idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        let direct = StratumStatistics::collect(&t, &direct_idx, &[ScalarExpr::col("x")]).unwrap();
        for cid in 0..proj.num_groups() {
            let key = proj.key(cid as u32);
            let dg = (0..direct_idx.num_groups() as u32)
                .find(|&g| direct_idx.key(g) == key)
                .unwrap() as usize;
            assert_eq!(pops[cid], direct.population(dg));
            assert!((coarse[cid][0].mean - direct.mean(dg, 0)).abs() < 1e-12);
            assert!(
                (coarse[cid][0].sample_variance() - direct.variance(dg, 0, VarianceKind::Sample))
                    .abs()
                    < 1e-9
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        // Build a bigger table so the parallel path actually splits.
        let mut b = TableBuilder::new(&[("g", DataType::Int64), ("x", DataType::Float64)]);
        for i in 0..20_000i64 {
            b.push_row(&[Value::Int64(i % 7), Value::Float64((i as f64).sin() * 100.0)]).unwrap();
        }
        let t = b.finish();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        let cols = [ScalarExpr::col("x")];
        let seq = StratumStatistics::collect(&t, &idx, &cols).unwrap();
        let par = StratumStatistics::collect_parallel(&t, &idx, &cols, 4).unwrap();
        for g in 0..idx.num_groups() {
            assert_eq!(seq.population(g), par.population(g));
            assert!((seq.mean(g, 0) - par.mean(g, 0)).abs() < 1e-9);
            assert!(
                (seq.variance(g, 0, VarianceKind::Sample)
                    - par.variance(g, 0, VarianceKind::Sample))
                .abs()
                    < 1e-6
            );
        }
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // Spans multiple partitions, so partial merges actually happen; the
        // fixed partitioning must make rounding identical for any thread
        // count.
        let n = 2 * cvopt_table::exec::CHUNK_ROWS + 7777;
        let mut b = TableBuilder::new(&[("g", DataType::Int64), ("x", DataType::Float64)]);
        for i in 0..n as i64 {
            b.push_row(&[Value::Int64(i % 23), Value::Float64((i as f64 * 0.7).sin() * 1e3)])
                .unwrap();
        }
        let t = b.finish();
        let idx = GroupIndex::build(&t, &[ScalarExpr::col("g")]).unwrap();
        let cols = [ScalarExpr::col("x")];
        let reference =
            StratumStatistics::collect_with(&t, &idx, &cols, &ExecOptions::sequential()).unwrap();
        for threads in [2usize, 3, 8] {
            let par = StratumStatistics::collect_with(&t, &idx, &cols, &ExecOptions::new(threads))
                .unwrap();
            for g in 0..idx.num_groups() {
                assert_eq!(
                    par.mean(g, 0).to_bits(),
                    reference.mean(g, 0).to_bits(),
                    "mean differs at threads={threads}"
                );
                assert_eq!(
                    par.states[g][0].m2.to_bits(),
                    reference.states[g][0].m2.to_bits(),
                    "m2 differs at threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_collect_is_bit_identical_for_any_layout() {
        // Float64 (dense gather) and Int64 (per-row evaluation) columns;
        // shard boundaries both inside and across partition boundaries,
        // plus an empty shard.
        let n = cvopt_table::exec::CHUNK_ROWS + 2345;
        let mut b = TableBuilder::new(&[
            ("g", DataType::Int64),
            ("x", DataType::Float64),
            ("i", DataType::Int64),
        ]);
        for i in 0..n as i64 {
            b.push_row(&[
                Value::Int64(i % 19),
                Value::Float64((i as f64 * 0.37).sin() * 1e3),
                Value::Int64(i % 101),
            ])
            .unwrap();
        }
        let t = b.finish();
        let cols = [ScalarExpr::col("x"), ScalarExpr::col("i")];
        let idx = GroupIndex::build_with(&t, &[ScalarExpr::col("g")], &ExecOptions::sequential())
            .unwrap();
        let reference =
            StratumStatistics::collect_with(&t, &idx, &cols, &ExecOptions::sequential()).unwrap();

        let empty = TableBuilder::from_schema(t.schema().clone()).finish();
        let layouts: Vec<ShardedTable> = vec![
            ShardedTable::split(&t, 1).unwrap(),
            ShardedTable::split(&t, 3).unwrap(),
            ShardedTable::from_tables(vec![
                t.take(&(0..777).collect::<Vec<_>>()),
                empty,
                t.take(&(777..n).collect::<Vec<_>>()),
            ])
            .unwrap(),
        ];
        for (layout, sharded) in layouts.iter().enumerate() {
            let sidx =
                GroupIndex::build_sharded(sharded, &[ScalarExpr::col("g")], &ExecOptions::new(2))
                    .unwrap();
            assert_eq!(sidx.row_groups(), idx.row_groups(), "layout {layout}");
            for threads in [1usize, 4] {
                let got = StratumStatistics::collect_sharded(
                    sharded,
                    &sidx,
                    &cols,
                    &ExecOptions::new(threads),
                )
                .unwrap();
                assert_eq!(got.populations, reference.populations);
                for g in 0..idx.num_groups() {
                    for c in 0..cols.len() {
                        assert_eq!(
                            got.mean(g, c).to_bits(),
                            reference.mean(g, c).to_bits(),
                            "layout {layout}, threads {threads}, g {g}, c {c}: mean"
                        );
                        assert_eq!(
                            got.states[g][c].m2.to_bits(),
                            reference.states[g][c].m2.to_bits(),
                            "layout {layout}, threads {threads}, g {g}, c {c}: m2"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_small_table_falls_back() {
        let t = table();
        let idx = index(&t);
        let stats =
            StratumStatistics::collect_parallel(&t, &idx, &[ScalarExpr::col("x")], 8).unwrap();
        assert_eq!(stats.num_strata(), 4);
    }
}

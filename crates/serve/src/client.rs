//! A minimal blocking HTTP client, just big enough to drive the server
//! from tests, examples, and smoke scripts without external tooling.
//!
//! One request per connection, mirroring the server's `Connection: close`
//! model. [`request_raw`] returns the exact response bytes — what the
//! byte-identical determinism tests compare.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side I/O timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Send one request and return the raw response bytes (status line,
/// headers, body — exactly as they came off the wire).
pub fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response_raw(&stream)
}

/// Read a whole `Connection: close` response off `stream`.
pub fn read_response_raw(mut stream: &TcpStream) -> io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

/// Send one request and split the response into `(status, body)`.
pub fn request_parsed(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let raw = request_raw(addr, method, path, body)?;
    parse_response(&raw)
}

/// `GET path` → `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request_parsed(addr, "GET", path, None)
}

/// `POST path` with a JSON body → `(status, body)`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    request_parsed(addr, "POST", path, Some(body))
}

/// Split raw response bytes into `(status, body)`.
pub fn parse_response(raw: &[u8]) -> io::Result<(u16, String)> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response has no header end"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert!(parse_response(b"no header end").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}

//! A minimal blocking HTTP client, just big enough to drive the server
//! from tests, examples, benchmarks, and smoke scripts without external
//! tooling.
//!
//! [`Client`] holds one persistent keep-alive connection and reuses it
//! across requests, reconnecting transparently when the server closes it
//! (idle timeout, per-connection request cap); `with_keep_alive(false)`
//! is the escape hatch back to one-connection-per-request. The free
//! functions ([`request_raw`], [`get`], [`post`]) stay one-shot: they
//! send `Connection: close` and read to EOF — exactly the bytes the
//! byte-identical determinism tests compare.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Client-side I/O timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// A persistent-connection HTTP client.
///
/// Requests reuse one TCP connection until the server closes it; a stale
/// connection (closed between requests) is detected on the next request
/// and replaced with a fresh one, retrying that request once. The
/// [`Client::connects`] counter says how many TCP connects were made —
/// the keep-alive tests pin it to 1 for N requests.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    keep_alive: bool,
    conn: Option<BufReader<TcpStream>>,
    connects: u64,
}

impl Client {
    /// A keep-alive client for `addr`. No connection is opened until the
    /// first request.
    pub fn new(addr: SocketAddr) -> Client {
        Client { addr, keep_alive: true, conn: None, connects: 0 }
    }

    /// Toggle connection reuse. With `false` every request opens (and
    /// closes) its own connection, like the free functions.
    pub fn with_keep_alive(mut self, keep_alive: bool) -> Client {
        self.keep_alive = keep_alive;
        if !keep_alive {
            self.conn = None;
        }
        self
    }

    /// How many TCP connections this client has opened so far.
    pub fn connects(&self) -> u64 {
        self.connects
    }

    /// Send one request and return the raw response bytes (status line,
    /// headers, body — exactly as they came off the wire).
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Vec<u8>> {
        if !self.keep_alive {
            self.connects += 1;
            return request_raw(self.addr, method, path, body);
        }
        let reused = self.conn.is_some();
        match self.send_on_connection(method, path, body) {
            Ok(raw) => Ok(raw),
            // A reused connection may have been closed by the server
            // (idle timeout, request cap) after our last response: the
            // failure is detected here, on the next use. Reconnect and
            // retry once; a failure on a fresh connection is real.
            Err(_) if reused => self.send_on_connection(method, path, body),
            Err(e) => Err(e),
        }
    }

    /// Send one request and split the response into `(status, body)`.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let raw = self.request_raw(method, path, body)?;
        parse_response(&raw)
    }

    /// `GET path` → `(status, body)`.
    pub fn get(&mut self, path: &str) -> io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    /// `POST path` with a JSON body → `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> io::Result<(u16, String)> {
        self.request("POST", path, Some(body))
    }

    /// One write + one framed read on the current connection (opening it
    /// if needed). Any failure drops the connection so the next attempt
    /// starts fresh.
    fn send_on_connection(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<Vec<u8>> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            stream.set_read_timeout(Some(IO_TIMEOUT))?;
            stream.set_write_timeout(Some(IO_TIMEOUT))?;
            self.connects += 1;
            self.conn = Some(BufReader::new(stream));
        }
        let result = (|| {
            let reader = self.conn.as_mut().expect("connection just ensured");
            let body = body.unwrap_or("");
            let mut stream = reader.get_ref();
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nContent-Length: {}\r\n\r\n{body}",
                self.addr,
                body.len()
            )?;
            stream.flush()?;
            read_one_response(reader)
        })();
        if result.is_err() {
            self.conn = None;
        }
        result
    }
}

/// Read exactly one `Content-Length`-framed response off a persistent
/// connection, returning its raw bytes (head + body).
fn read_one_response(reader: &mut BufReader<TcpStream>) -> io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    let mut content_length: usize = 0;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before a response",
            ));
        }
        raw.extend_from_slice(line.as_bytes());
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "invalid Content-Length")
                })?;
            }
        }
    }
    let head_len = raw.len();
    raw.resize(head_len + content_length, 0);
    reader.read_exact(&mut raw[head_len..])?;
    Ok(raw)
}

/// Send one request on its own connection and return the raw response
/// bytes (status line, headers, body — exactly as they came off the
/// wire). Sends `Connection: close` and reads to EOF.
pub fn request_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    read_response_raw(&stream)
}

/// Read a whole to-EOF response off `stream` (the server closes
/// `Connection: close` requests after answering).
pub fn read_response_raw(mut stream: &TcpStream) -> io::Result<Vec<u8>> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    Ok(raw)
}

/// Send one request and split the response into `(status, body)`.
pub fn request_parsed(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    let raw = request_raw(addr, method, path, body)?;
    parse_response(&raw)
}

/// `GET path` → `(status, body)`.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    request_parsed(addr, "GET", path, None)
}

/// `POST path` with a JSON body → `(status, body)`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<(u16, String)> {
    request_parsed(addr, "POST", path, Some(body))
}

/// Split raw response bytes into `(status, body)`.
pub fn parse_response(raw: &[u8]) -> io::Result<(u16, String)> {
    let text = std::str::from_utf8(raw)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response is not UTF-8"))?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "response has no header end"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        let (status, body) = parse_response(raw).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{}");
        assert!(parse_response(b"no header end").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }
}

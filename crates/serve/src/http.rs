//! Minimal HTTP/1.1 plumbing: request parsing and response writing.
//!
//! Deliberately small: `Content-Length` bodies only (no chunked
//! encoding), bounded header and body sizes. Connections are persistent
//! by default (HTTP/1.1 keep-alive): [`read_request`] reads from a
//! caller-owned [`BufRead`] so pipelined bytes survive between requests,
//! reports `Connection: close` on the parsed [`Request`], and
//! distinguishes a clean close between requests ([`ReadOutcome::Closed`])
//! from a truncated one. Responses carry **no** clock-dependent headers
//! (no `Date`) and no `Connection` header — close is enacted at the
//! socket, never in the bytes — so a response is a pure function of the
//! request and the engine state, byte-identical whether the connection is
//! reused or not. That is the property that lets tests byte-compare
//! responses across servers, worker counts, and cache budgets.

use std::io::{self, BufRead, Read, Write};

/// Upper bound on the request line + headers, in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/query`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked to close the connection after this
    /// request (`Connection: close`, or HTTP/1.0 without
    /// `Connection: keep-alive`).
    pub close: bool,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an error message suitable for a 400.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".to_string())
    }
}

/// Why a request could not be parsed; maps onto a 4xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// HTTP status to answer with (400 or 413).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl BadRequest {
    fn new(status: u16, message: impl Into<String>) -> Self {
        BadRequest { status, message: message.into() }
    }
}

/// What [`read_request`] found on the connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// A malformed request; answer it and close the connection (the
    /// framing can no longer be trusted).
    Bad(BadRequest),
    /// Clean EOF before any request byte — the client finished with the
    /// connection. Not an error; nothing to answer.
    Closed,
}

/// Read and parse one request from `reader`. Bodies above `max_body`
/// bytes are rejected with a 413-shaped [`BadRequest`] without reading
/// them.
///
/// The reader is caller-owned so it can persist across requests on a
/// keep-alive connection: a pipelined second request sits in the
/// reader's buffer, and the next call picks it up without touching the
/// socket. EOF *before* the first request byte is a clean
/// [`ReadOutcome::Closed`]; EOF anywhere later is a 400-shaped
/// [`ReadOutcome::Bad`].
///
/// `interim` receives the `100 Continue` interim response when the
/// client sent `Expect: 100-continue` and the body is acceptable (curl
/// does this for bodies over ~1 KiB and otherwise stalls a second
/// before uploading). Pass the write half of the same connection; tests
/// pass a `Vec<u8>`.
pub fn read_request(
    reader: &mut impl BufRead,
    mut interim: impl Write,
    max_body: usize,
) -> io::Result<ReadOutcome> {
    let request_line = match read_head_line(reader)? {
        HeadLine::Line(line) => line,
        HeadLine::TooLarge => return Ok(ReadOutcome::Bad(too_large_line())),
        HeadLine::Eof => return Ok(ReadOutcome::Closed),
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Bad(BadRequest::new(400, "malformed request line")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ReadOutcome::Bad(BadRequest::new(
            400,
            format!("unsupported protocol {version}"),
        )));
    }
    let method = method.to_ascii_uppercase();
    // HTTP/1.0 defaults to close, 1.1 to keep-alive; a Connection header
    // overrides either way.
    let mut close = version.eq_ignore_ascii_case("HTTP/1.0");

    // Headers: we only need Content-Length, Expect, and Connection.
    let mut content_length: usize = 0;
    let mut expect_continue = false;
    let mut head_bytes = request_line.len();
    loop {
        let line = match read_head_line(reader)? {
            HeadLine::Line(line) => line,
            HeadLine::TooLarge => return Ok(ReadOutcome::Bad(too_large_line())),
            HeadLine::Eof => {
                return Ok(ReadOutcome::Bad(BadRequest::new(400, "connection closed mid-request")))
            }
        };
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::Bad(BadRequest::new(413, "request headers too large")));
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Ok(ReadOutcome::Bad(BadRequest::new(400, "invalid Content-Length")))
                    }
                };
            } else if name.eq_ignore_ascii_case("expect")
                && value.trim().eq_ignore_ascii_case("100-continue")
            {
                expect_continue = true;
            } else if name.eq_ignore_ascii_case("connection") {
                // The value is a comma-separated token list.
                for token in value.split(',') {
                    let token = token.trim();
                    if token.eq_ignore_ascii_case("close") {
                        close = true;
                    } else if token.eq_ignore_ascii_case("keep-alive") {
                        close = false;
                    }
                }
            }
        }
    }
    if content_length > max_body {
        // No interim response: the caller's 413 is the final answer, and
        // the client knows not to send the body.
        return Ok(ReadOutcome::Bad(BadRequest::new(
            413,
            format!("request body of {content_length} bytes exceeds the {max_body}-byte limit"),
        )));
    }
    if expect_continue && content_length > 0 {
        interim.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        interim.flush()?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = match percent_decode(raw_path) {
        Ok(p) => p,
        Err(e) => return Ok(ReadOutcome::Bad(BadRequest::new(400, e))),
    };
    let query = match raw_query.map(parse_query).transpose() {
        Ok(q) => q.unwrap_or_default(),
        Err(e) => return Ok(ReadOutcome::Bad(BadRequest::new(400, e))),
    };
    Ok(ReadOutcome::Request(Request { method, path, query, body, close }))
}

fn too_large_line() -> BadRequest {
    BadRequest::new(413, "request head line too large")
}

/// One CRLF-terminated head line (request line or header), or why not.
enum HeadLine {
    Line(String),
    TooLarge,
    Eof,
}

fn read_head_line(reader: &mut impl BufRead) -> io::Result<HeadLine> {
    let mut line = String::new();
    let mut taken = reader.take(MAX_HEAD_BYTES as u64 + 1);
    let n = taken.read_line(&mut line)?;
    if n == 0 {
        return Ok(HeadLine::Eof);
    }
    if line.len() > MAX_HEAD_BYTES {
        return Ok(HeadLine::TooLarge);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(HeadLine::Line(line))
}

/// Decode `%XX` escapes and `+`-for-space in a URL component.
pub fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => return Err(format!("invalid percent escape in '{s}'")),
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("percent-decoded '{s}' is not valid UTF-8"))
}

/// Split a query string into decoded `(name, value)` pairs.
pub fn parse_query(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(out)
}

/// An HTTP response ready to write. Always `Content-Type:
/// application/json` with an explicit `Content-Length`, and never a
/// `Connection` header — whether the server closes afterwards is decided
/// at the socket, so response bytes are identical on persistent and
/// one-shot connections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, 404, 413, 503, …).
    pub status: u16,
    /// Seconds for a `Retry-After` header (backpressure responses only).
    pub retry_after: Option<u64>,
    /// The JSON body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given JSON body.
    pub fn ok(body: String) -> Response {
        Response { status: 200, retry_after: None, body }
    }

    /// An error response: `{"error": message}` with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        let body = crate::json::Json::object(vec![("error", crate::json::Json::string(message))]);
        Response { status, retry_after: None, body: body.to_string() }
    }

    /// The backpressure response: 503 with `Retry-After`.
    pub fn overloaded(retry_after_seconds: u64) -> Response {
        let mut r = Response::error(503, "server overloaded: request queue is full");
        r.retry_after = Some(retry_after_seconds);
        r
    }

    /// Write the response. Header order is fixed, and no clock-dependent
    /// header is emitted, so equal responses are equal byte streams.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        )?;
        if let Some(seconds) = self.retry_after {
            write!(w, "Retry-After: {seconds}\r\n")?;
        }
        write!(w, "\r\n{}", self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, BadRequest> {
        match read_request(&mut Cursor::new(raw.as_bytes().to_vec()), Vec::new(), 1024).unwrap() {
            ReadOutcome::Request(req) => Ok(req),
            ReadOutcome::Bad(bad) => Err(bad),
            ReadOutcome::Closed => panic!("unexpected clean close for {raw:?}"),
        }
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /explain?sql=SELECT%201&mode=auto HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/explain");
        assert_eq!(req.query_param("sql"), Some("SELECT 1"));
        assert_eq!(req.query_param("mode"), Some("auto"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /query HTTP/1.1\r\nContent-Length: 11\r\nContent-Type: application/json\r\n\r\n{\"sql\":\"x\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_utf8().unwrap(), "{\"sql\":\"x\"}");
    }

    #[test]
    fn rejects_oversized_body_and_bad_requests() {
        let bad = parse("POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 413);
        let bad = parse("POST /query HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        let bad = parse("garbage\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        let bad = parse("GET / SPDY/3\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        // Truncation mid-request is a 400; EOF *between* requests is a
        // clean close, not an error.
        let bad = parse("GET / HTTP/1.1\r\nHost: x").unwrap_err();
        assert_eq!(bad.status, 400);
        let outcome = read_request(&mut Cursor::new(Vec::new()), Vec::new(), 1024).unwrap();
        assert!(matches!(outcome, ReadOutcome::Closed));
    }

    #[test]
    fn connection_header_and_version_decide_close() {
        assert!(!parse("GET / HTTP/1.1\r\n\r\n").unwrap().close, "1.1 defaults to keep-alive");
        assert!(parse("GET / HTTP/1.0\r\n\r\n").unwrap().close, "1.0 defaults to close");
        assert!(parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap().close);
        assert!(parse("GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").unwrap().close);
        assert!(!parse("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap().close);
        assert!(parse("GET / HTTP/1.1\r\nConnection: Upgrade, close\r\n\r\n").unwrap().close);
    }

    #[test]
    fn pipelined_requests_read_back_to_back_from_one_reader() {
        let raw = "POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}\
                   GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = Cursor::new(raw.as_bytes().to_vec());
        let ReadOutcome::Request(first) = read_request(&mut reader, Vec::new(), 1024).unwrap()
        else {
            panic!("first request must parse");
        };
        assert_eq!((first.method.as_str(), first.path.as_str()), ("POST", "/query"));
        assert_eq!(first.body, b"{}");
        assert!(!first.close);
        let ReadOutcome::Request(second) = read_request(&mut reader, Vec::new(), 1024).unwrap()
        else {
            panic!("second request must parse");
        };
        assert_eq!((second.method.as_str(), second.path.as_str()), ("GET", "/stats"));
        assert!(second.close);
        let done = read_request(&mut reader, Vec::new(), 1024).unwrap();
        assert!(matches!(done, ReadOutcome::Closed));
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        let raw = "POST /tables HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n{}";
        let mut interim = Vec::new();
        let outcome =
            read_request(&mut Cursor::new(raw.as_bytes().to_vec()), &mut interim, 1024).unwrap();
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        let ReadOutcome::Request(req) = outcome else { panic!("must parse") };
        assert_eq!(req.body, b"{}");

        // No Expect header, or an over-limit body: no interim response.
        let raw = "POST /t HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let mut interim = Vec::new();
        let outcome =
            read_request(&mut Cursor::new(raw.as_bytes().to_vec()), &mut interim, 1024).unwrap();
        assert!(matches!(outcome, ReadOutcome::Request(_)));
        assert!(interim.is_empty());
        let raw = "POST /t HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 9999\r\n\r\n";
        let mut interim = Vec::new();
        let outcome =
            read_request(&mut Cursor::new(raw.as_bytes().to_vec()), &mut interim, 1024).unwrap();
        let ReadOutcome::Bad(bad) = outcome else { panic!("must reject") };
        assert_eq!(bad.status, 413);
        assert!(interim.is_empty(), "rejected bodies must not be invited");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c%2Fd").unwrap(), "a b c/d");
        assert_eq!(percent_decode("caf%C3%A9").unwrap(), "café");
        assert!(percent_decode("bad%zz").is_err());
        assert!(percent_decode("trunc%2").is_err());
        assert_eq!(
            parse_query("a=1&b=x%20y&flag&=v").unwrap(),
            vec![
                ("a".into(), "1".into()),
                ("b".into(), "x y".into()),
                ("flag".into(), "".into()),
                ("".into(), "v".into()),
            ]
        );
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let mut a = Vec::new();
        Response::ok("{\"x\":1}".into()).write_to(&mut a).unwrap();
        let text = String::from_utf8(a).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"x\":1}"
        );
        assert!(!text.contains("Date:"), "no clock-dependent headers");
        assert!(!text.contains("Connection:"), "close is a socket action, not bytes");

        let mut b = Vec::new();
        Response::overloaded(1).write_to(&mut b).unwrap();
        let text = String::from_utf8(b).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("\"error\""));
    }
}

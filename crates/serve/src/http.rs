//! Minimal HTTP/1.1 plumbing: request parsing and response writing.
//!
//! Deliberately small: one request per connection (`Connection: close`),
//! `Content-Length` bodies only (no chunked encoding), bounded header and
//! body sizes. Responses carry **no** clock-dependent headers (no `Date`),
//! so a response is a pure function of the request and the engine state —
//! the property that lets tests byte-compare responses across servers.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on the request line + headers, in bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (e.g. `/query`).
    pub path: String,
    /// Decoded query parameters, in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of query parameter `name`, if present.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, or an error message suitable for a 400.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|_| "request body is not valid UTF-8".to_string())
    }
}

/// Why a request could not be parsed; maps onto a 4xx response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadRequest {
    /// HTTP status to answer with (400 or 413).
    pub status: u16,
    /// Human-readable reason.
    pub message: String,
}

impl BadRequest {
    fn new(status: u16, message: impl Into<String>) -> Self {
        BadRequest { status, message: message.into() }
    }
}

/// Read and parse one request from `stream`. Bodies above `max_body`
/// bytes are rejected with a 413-shaped [`BadRequest`] without reading
/// them.
///
/// `interim` receives the `100 Continue` interim response when the
/// client sent `Expect: 100-continue` and the body is acceptable (curl
/// does this for bodies over ~1 KiB and otherwise stalls a second
/// before uploading). Pass the write half of the same connection; tests
/// pass a `Vec<u8>`.
pub fn read_request(
    stream: impl Read,
    mut interim: impl Write,
    max_body: usize,
) -> io::Result<Result<Request, BadRequest>> {
    let mut reader = BufReader::new(stream);
    let request_line = match read_head_line(&mut reader)? {
        Ok(line) => line,
        Err(bad) => return Ok(Err(bad)),
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Ok(Err(BadRequest::new(400, "malformed request line")));
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(Err(BadRequest::new(400, format!("unsupported protocol {version}"))));
    }
    let method = method.to_ascii_uppercase();

    // Headers: we only need Content-Length and Expect.
    let mut content_length: usize = 0;
    let mut expect_continue = false;
    let mut head_bytes = request_line.len();
    loop {
        let line = match read_head_line(&mut reader)? {
            Ok(line) => line,
            Err(bad) => return Ok(Err(bad)),
        };
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Ok(Err(BadRequest::new(413, "request headers too large")));
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => return Ok(Err(BadRequest::new(400, "invalid Content-Length"))),
                };
            } else if name.eq_ignore_ascii_case("expect")
                && value.trim().eq_ignore_ascii_case("100-continue")
            {
                expect_continue = true;
            }
        }
    }
    if content_length > max_body {
        // No interim response: the caller's 413 is the final answer, and
        // the client knows not to send the body.
        return Ok(Err(BadRequest::new(
            413,
            format!("request body of {content_length} bytes exceeds the {max_body}-byte limit"),
        )));
    }
    if expect_continue && content_length > 0 {
        interim.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        interim.flush()?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = match percent_decode(raw_path) {
        Ok(p) => p,
        Err(e) => return Ok(Err(BadRequest::new(400, e))),
    };
    let query = match raw_query.map(parse_query).transpose() {
        Ok(q) => q.unwrap_or_default(),
        Err(e) => return Ok(Err(BadRequest::new(400, e))),
    };
    Ok(Ok(Request { method, path, query, body }))
}

/// Read one CRLF-terminated head line (request line or header).
fn read_head_line(reader: &mut impl BufRead) -> io::Result<Result<String, BadRequest>> {
    let mut line = String::new();
    let mut taken = reader.take(MAX_HEAD_BYTES as u64 + 1);
    let n = taken.read_line(&mut line)?;
    if n == 0 {
        return Ok(Err(BadRequest::new(400, "connection closed mid-request")));
    }
    if line.len() > MAX_HEAD_BYTES {
        return Ok(Err(BadRequest::new(413, "request head line too large")));
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Ok(line))
}

/// Decode `%XX` escapes and `+`-for-space in a URL component.
pub fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok());
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => return Err(format!("invalid percent escape in '{s}'")),
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("percent-decoded '{s}' is not valid UTF-8"))
}

/// Split a query string into decoded `(name, value)` pairs.
pub fn parse_query(raw: &str) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    for pair in raw.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        out.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok(out)
}

/// An HTTP response ready to write. Always `Connection: close` and
/// `Content-Type: application/json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 400, 404, 413, 503, …).
    pub status: u16,
    /// Seconds for a `Retry-After` header (backpressure responses only).
    pub retry_after: Option<u64>,
    /// The JSON body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given JSON body.
    pub fn ok(body: String) -> Response {
        Response { status: 200, retry_after: None, body }
    }

    /// An error response: `{"error": message}` with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        let body = crate::json::Json::object(vec![("error", crate::json::Json::string(message))]);
        Response { status, retry_after: None, body: body.to_string() }
    }

    /// The backpressure response: 503 with `Retry-After`.
    pub fn overloaded(retry_after_seconds: u64) -> Response {
        let mut r = Response::error(503, "server overloaded: request queue is full");
        r.retry_after = Some(retry_after_seconds);
        r
    }

    /// Write the response. Header order is fixed, and no clock-dependent
    /// header is emitted, so equal responses are equal byte streams.
    pub fn write_to(&self, mut w: impl Write) -> io::Result<()> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        )?;
        if let Some(seconds) = self.retry_after {
            write!(w, "Retry-After: {seconds}\r\n")?;
        }
        write!(w, "Connection: close\r\n\r\n{}", self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, BadRequest> {
        read_request(Cursor::new(raw.as_bytes().to_vec()), Vec::new(), 1024).unwrap()
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /explain?sql=SELECT%201&mode=auto HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/explain");
        assert_eq!(req.query_param("sql"), Some("SELECT 1"));
        assert_eq!(req.query_param("mode"), Some("auto"));
        assert_eq!(req.query_param("missing"), None);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /query HTTP/1.1\r\nContent-Length: 11\r\nContent-Type: application/json\r\n\r\n{\"sql\":\"x\"}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body_utf8().unwrap(), "{\"sql\":\"x\"}");
    }

    #[test]
    fn rejects_oversized_body_and_bad_requests() {
        let bad = parse("POST /query HTTP/1.1\r\nContent-Length: 999999\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 413);
        let bad = parse("POST /query HTTP/1.1\r\nContent-Length: nope\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        let bad = parse("garbage\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        let bad = parse("GET / SPDY/3\r\n\r\n").unwrap_err();
        assert_eq!(bad.status, 400);
        let bad = parse("").unwrap_err();
        assert_eq!(bad.status, 400);
    }

    #[test]
    fn expect_100_continue_gets_an_interim_response() {
        let raw = "POST /tables HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\n{}";
        let mut interim = Vec::new();
        let req = read_request(Cursor::new(raw.as_bytes().to_vec()), &mut interim, 1024)
            .unwrap()
            .unwrap();
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        assert_eq!(req.body, b"{}");

        // No Expect header, or an over-limit body: no interim response.
        let raw = "POST /t HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}";
        let mut interim = Vec::new();
        read_request(Cursor::new(raw.as_bytes().to_vec()), &mut interim, 1024).unwrap().unwrap();
        assert!(interim.is_empty());
        let raw = "POST /t HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 9999\r\n\r\n";
        let mut interim = Vec::new();
        let bad = read_request(Cursor::new(raw.as_bytes().to_vec()), &mut interim, 1024)
            .unwrap()
            .unwrap_err();
        assert_eq!(bad.status, 413);
        assert!(interim.is_empty(), "rejected bodies must not be invited");
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c%2Fd").unwrap(), "a b c/d");
        assert_eq!(percent_decode("caf%C3%A9").unwrap(), "café");
        assert!(percent_decode("bad%zz").is_err());
        assert!(percent_decode("trunc%2").is_err());
        assert_eq!(
            parse_query("a=1&b=x%20y&flag&=v").unwrap(),
            vec![
                ("a".into(), "1".into()),
                ("b".into(), "x y".into()),
                ("flag".into(), "".into()),
                ("".into(), "v".into()),
            ]
        );
    }

    #[test]
    fn response_bytes_are_deterministic() {
        let mut a = Vec::new();
        Response::ok("{\"x\":1}".into()).write_to(&mut a).unwrap();
        let text = String::from_utf8(a).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 7\r\nConnection: close\r\n\r\n{\"x\":1}"
        );
        assert!(!text.contains("Date:"), "no clock-dependent headers");

        let mut b = Vec::new();
        Response::overloaded(1).write_to(&mut b).unwrap();
        let text = String::from_utf8(b).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("\"error\""));
    }
}

//! A minimal, dependency-free JSON value: writer and reader.
//!
//! The serving layer speaks JSON over the wire without pulling serde into
//! the vendor tree, so this module hand-rolls the little that is needed —
//! with one property the server's determinism contract depends on: **the
//! writer is a pure function of the value**. Object members render in
//! insertion order (values store them as a `Vec`, never a hash map),
//! numbers render through Rust's shortest-round-trip `f64` formatting, and
//! non-finite numbers (which JSON cannot represent) render as `null`. Two
//! equal values therefore always serialize to the same bytes, which is
//! what lets integration tests byte-compare responses across servers.

use std::fmt;

/// A JSON document: the usual six shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite numbers serialize to).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number. NaN and ±∞ are representable in memory but render as
    /// `null` — tests pin this, since aggregate values can be NaN/Inf.
    Number(f64),
    /// An integer, rendered exactly. JSON numbers are arbitrary
    /// precision, so `i64` group keys above 2^53 must go over the wire
    /// through this variant, never rounded through `f64`.
    Int(i64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; members keep insertion order so rendering is
    /// deterministic.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn string(s: impl Into<String>) -> Json {
        Json::String(s.into())
    }

    /// A number from an unsigned counter. Counters in this workspace stay
    /// far below 2^53, so the `f64` carries them exactly.
    pub fn count(n: u64) -> Json {
        Json::Number(n as f64)
    }

    /// An object from `(name, value)` pairs, preserving order.
    pub fn object(members: Vec<(&str, Json)>) -> Json {
        Json::Object(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// `Some(v)` → encoded value, `None` → `null`.
    pub fn opt<T>(value: Option<T>, encode: impl FnOnce(T) -> Json) -> Json {
        value.map_or(Json::Null, encode)
    }

    /// Member of an object by name (first match), if this is an object.
    pub fn get(&self, name: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number (`Int` loses precision
    /// above 2^53, like any JSON reader that goes through `f64`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => Some(*n),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The integer payload, exact, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            Json::Number(n) => (n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64)
                .then_some(*n as i64),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => (*v >= 0).then_some(*v as u64),
            Json::Number(n) => {
                (*n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64).then_some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Render into `out`. Compact form: no whitespace.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(n) => {
                if n.is_finite() {
                    // Rust's shortest-round-trip formatting: deterministic,
                    // and `1.0` renders as `1`.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => out.push_str(&format!("{v}")),
            Json::String(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Exactly one value, with only whitespace
    /// around it; errors carry the byte offset they were detected at.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        // Plain integer literals parse exactly (so i64 keys round-trip
        // above 2^53); "-0" stays a float to preserve IEEE -0.0.
        if !text.contains(['.', 'e', 'E']) && text != "-0" {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| JsonError { offset: start, message: format!("invalid number '{text}'") })
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 advanced past the digits; compensate for
                            // the `pos += 1` below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through unchanged.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let value = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_renders_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Number(1.0).to_string(), "1");
        assert_eq!(Json::Number(1.5).to_string(), "1.5");
        assert_eq!(Json::Number(-0.25).to_string(), "-0.25");
        assert_eq!(Json::string("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn writer_renders_empty_aggregates() {
        // Empty result sets must render as empty containers, not fail.
        assert_eq!(Json::Array(vec![]).to_string(), "[]");
        assert_eq!(Json::Object(vec![]).to_string(), "{}");
        let empty_groups = Json::object(vec![("groups", Json::Array(vec![]))]);
        assert_eq!(empty_groups.to_string(), "{\"groups\":[]}");
    }

    #[test]
    fn writer_maps_non_finite_aggregate_values_to_null() {
        // Aggregates can legitimately produce NaN (0/0 ratio estimates) or
        // ±∞; JSON has no spelling for them, so they render as null.
        let values = Json::Array(vec![
            Json::Number(f64::NAN),
            Json::Number(f64::INFINITY),
            Json::Number(f64::NEG_INFINITY),
            Json::Number(2.0),
        ]);
        assert_eq!(values.to_string(), "[null,null,null,2]");
    }

    #[test]
    fn writer_escapes_strings() {
        assert_eq!(Json::string("a\"b\\c\nd").to_string(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(Json::string("\u{1}").to_string(), "\"\\u0001\"");
        // Non-ASCII passes through as UTF-8.
        assert_eq!(Json::string("café").to_string(), "\"café\"");
    }

    #[test]
    fn writer_preserves_member_order() {
        let obj =
            Json::object(vec![("z", Json::count(1)), ("a", Json::count(2)), ("m", Json::count(3))]);
        assert_eq!(obj.to_string(), "{\"z\":1,\"a\":2,\"m\":3}");
    }

    #[test]
    fn parser_round_trips() {
        let text = r#"{"sql":"SELECT 1","n":[1,2.5,-3e2,null,true,false],"nested":{"k":"v"}}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(value.get("sql").unwrap().as_str(), Some("SELECT 1"));
        assert_eq!(value.get("n").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(
            value.to_string(),
            r#"{"sql":"SELECT 1","n":[1,2.5,-300,null,true,false],"nested":{"k":"v"}}"#
        );
    }

    #[test]
    fn parser_handles_escapes_and_unicode() {
        let value = Json::parse(r#""a\"\\\n\t\u0041\u00e9""#).unwrap();
        assert_eq!(value.as_str(), Some("a\"\\\n\tAé"));
        // Surrogate pair → one astral-plane character.
        let value = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(value.as_str(), Some("😀"));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn parser_rejects_garbage_with_offsets() {
        for (text, offset) in [("", 0), ("{", 1), ("[1,]", 3), ("{\"a\" 1}", 5), ("1 2", 2)] {
            let err = Json::parse(text).unwrap_err();
            assert_eq!(err.offset, offset, "{text:?}: {err}");
        }
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let value = Json::parse(r#"{"n":3,"b":true,"s":"x","neg":-1,"frac":1.5}"#).unwrap();
        assert_eq!(value.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(value.get("neg").unwrap().as_u64(), None);
        assert_eq!(value.get("frac").unwrap().as_u64(), None);
        assert_eq!(value.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(value.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(value.get("missing"), None);
        assert_eq!(Json::Null.get("k"), None);
    }

    #[test]
    fn opt_encodes_none_as_null() {
        assert_eq!(Json::opt(Some(3u64), Json::count).to_string(), "3");
        assert_eq!(Json::opt(None::<u64>, Json::count).to_string(), "null");
    }
}

//! The endpoint handlers: one pure-ish function from a parsed
//! [`Request`] to a [`Response`].
//!
//! | Endpoint | Method | Purpose |
//! |---|---|---|
//! | `/query` | POST | Answer SQL exactly or approximately; rows, CIs, and the plan report inline |
//! | `/explain` | GET | The plan report alone, without executing |
//! | `/tables` | POST | Register a CSV or generated table, plain or sharded, optionally windowed |
//! | `/ingest` | POST | Append a row batch to a registered table, maintaining its durable samples |
//! | `/rotate` | POST | Drop rows below a window-column cutoff (retention) |
//! | `/reoptimize` | POST | Consolidate a table's query log into one workload-tuned reusable sample |
//! | `/healthz` | GET | Liveness |
//! | `/stats` | GET | Cache hit/miss/reuse counters, pass counts, queue depth |
//!
//! Handlers never touch the network: the server hands them parsed
//! requests and writes their responses, and tests call them directly.

use std::io::Cursor;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cvopt_core::{
    total_draws, total_draws_avoided, total_stats_passes, AggConfidence, ExplainReport,
    QueryAnswer, QueryMode, ReuseInfo,
};
use cvopt_table::{
    csv, DataType, KeyAtom, QueryResult, Schema, ShardReader, ShardSet, ShardedTable,
};

use crate::http::{Request, Response};
use crate::json::Json;
use crate::shared::SharedEngine;

/// Largest `rows` accepted for a generated table (~10M rows ≈ a few
/// hundred MB materialized — generous, but bounded, mirroring the body
///-size bound on CSV uploads).
const MAX_GENERATED_ROWS: u64 = 10_000_000;

/// Largest `shards` accepted when registering a table — one shard per
/// node is the deployment story, so thousands is already generous, and
/// `ShardedTable::split` allocates per shard (same OOM concern as
/// `MAX_GENERATED_ROWS`).
const MAX_SHARDS: u64 = 4096;

/// Everything a worker needs to answer requests: the shared engine plus
/// the server-level gauges surfaced by `/stats`.
#[derive(Debug)]
pub struct ApiState {
    /// The engine every request runs against.
    pub engine: SharedEngine,
    /// Requests accepted but not yet picked up by a worker.
    pub queue_depth: Arc<AtomicUsize>,
    /// Capacity of the bounded work queue.
    pub queue_capacity: usize,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Worker threads each request's passes run with (the per-request
    /// slice of the server-wide thread budget).
    pub request_threads: usize,
    /// Requests answered by a worker so far (including the one being
    /// answered).
    pub requests_served: AtomicU64,
    /// Requests refused with 503 because the queue was full.
    pub requests_rejected: Arc<AtomicU64>,
    /// Requests served on an already-used keep-alive connection (total
    /// requests minus first-requests-per-connection).
    pub keepalive_reuses: AtomicU64,
    /// Requests refused with 503 by per-peer admission control (shared
    /// with the server's [`crate::admission::AdmissionControl`]).
    pub admission_rejections: Arc<AtomicU64>,
}

/// Dispatch one request.
pub fn handle(state: &ApiState, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/stats") => stats(state),
        ("POST", "/query") => query(state, req),
        ("GET", "/explain") => explain(state, req),
        ("POST", "/tables") => tables(state, req),
        ("POST", "/ingest") => ingest(state, req),
        ("POST", "/rotate") => rotate(state, req),
        ("POST", "/reoptimize") => reoptimize(state, req),
        (_, "/healthz" | "/stats" | "/explain") => Response::error(405, "use GET"),
        (_, "/query" | "/tables" | "/ingest" | "/rotate" | "/reoptimize") => {
            Response::error(405, "use POST")
        }
        _ => Response::error(404, &format!("no such endpoint: {}", req.path)),
    }
}

fn healthz(_state: &ApiState) -> Response {
    // Deliberately lock-free: liveness must not stall behind a pending
    // registration (a writer waiting on the engine lock blocks new
    // readers). Table counts live in /stats.
    Response::ok(Json::object(vec![("status", Json::string("ok"))]).to_string())
}

fn stats(state: &ApiState) -> Response {
    let engine = state.engine.counters();
    let body = Json::object(vec![
        ("cache_hits", Json::count(engine.cache_hits)),
        ("cache_misses", Json::count(engine.cache_misses)),
        ("reuse_hits", Json::count(engine.reuse_hits)),
        ("draws_avoided", Json::count(engine.draws_avoided)),
        ("stats_passes", Json::count(engine.stats_passes)),
        ("cached_samples", Json::count(engine.cached_samples)),
        ("cache_evictions", Json::count(engine.cache_evictions)),
        ("cache_bytes_held", Json::count(engine.cache_bytes_held)),
        ("tables", Json::count(engine.tables)),
        ("process_stats_passes", Json::count(total_stats_passes())),
        ("process_draws", Json::count(total_draws())),
        ("process_draws_avoided", Json::count(total_draws_avoided())),
        ("queue_depth", Json::count(state.queue_depth.load(Ordering::Relaxed) as u64)),
        ("queue_capacity", Json::count(state.queue_capacity as u64)),
        ("workers", Json::count(state.workers as u64)),
        ("request_threads", Json::count(state.request_threads as u64)),
        ("requests_served", Json::count(state.requests_served.load(Ordering::Relaxed))),
        ("requests_rejected", Json::count(state.requests_rejected.load(Ordering::Relaxed))),
        ("keepalive_reuses", Json::count(state.keepalive_reuses.load(Ordering::Relaxed))),
        ("admission_rejections", Json::count(state.admission_rejections.load(Ordering::Relaxed))),
        ("net_requests", Json::count(cvopt_net::net_requests())),
        ("net_retries", Json::count(cvopt_net::net_retries())),
        ("net_circuit_opens", Json::count(cvopt_net::net_circuit_opens())),
        ("net_bytes_sent", Json::count(cvopt_net::net_bytes_sent())),
        ("net_bytes_received", Json::count(cvopt_net::net_bytes_received())),
        ("ingested_rows", Json::count(engine.ingested_rows)),
        ("ingest_batches", Json::count(engine.ingest_batches)),
        ("maintained_samples", Json::count(engine.maintained_samples)),
        ("rotations", Json::count(engine.rotations)),
        ("rows_retired", Json::count(engine.rows_retired)),
    ]);
    Response::ok(body.to_string())
}

fn query(state: &ApiState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(sql) = body.get("sql").and_then(Json::as_str) else {
        return Response::error(400, "body must carry a string field 'sql'");
    };
    let mode = match body.get("mode").map(parse_mode).transpose() {
        Ok(m) => m.unwrap_or(QueryMode::Auto),
        Err(r) => return r,
    };
    match state.engine.query(sql, mode) {
        Ok(answer) => Response::ok(answer_json(&answer).to_string()),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

fn explain(state: &ApiState, req: &Request) -> Response {
    let Some(sql) = req.query_param("sql") else {
        return Response::error(400, "pass the statement as ?sql=...");
    };
    let mode = match req.query_param("mode").map(parse_mode_str).transpose() {
        Ok(m) => m.unwrap_or(QueryMode::Auto),
        Err(r) => return r,
    };
    match state.engine.explain(sql, mode) {
        Ok(report) => Response::ok(report_json(&report).to_string()),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

fn tables(state: &ApiState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(name) = body.get("name").and_then(Json::as_str) else {
        return Response::error(400, "body must carry a string field 'name'");
    };
    let table = match (body.get("csv"), body.get("generated")) {
        (Some(csv_text), None) => {
            let Some(text) = csv_text.as_str() else {
                return Response::error(400, "'csv' must be a string of CSV text");
            };
            let schema = match parse_columns(&body) {
                Ok(s) => s,
                Err(r) => return r,
            };
            match csv::read_table(Cursor::new(text.as_bytes()), schema) {
                Ok(t) => t,
                Err(e) => return Response::error(400, &e.to_string()),
            }
        }
        (None, Some(generated)) => {
            let Some(kind) = generated.as_str() else {
                return Response::error(400, "'generated' must be \"openaq\" or \"bikes\"");
            };
            let Some(rows) = body.get("rows").and_then(Json::as_u64) else {
                return Response::error(400, "generated tables need an integer 'rows'");
            };
            // The CSV path is bounded by max_body_bytes; bound this one
            // too, or a single small request could OOM the process.
            if rows > MAX_GENERATED_ROWS {
                return Response::error(
                    400,
                    &format!(
                        "'rows' exceeds the {MAX_GENERATED_ROWS}-row limit for generated tables"
                    ),
                );
            }
            match kind {
                "openaq" => cvopt_datagen::generate_openaq(
                    &cvopt_datagen::OpenAqConfig::with_rows(rows as usize),
                ),
                "bikes" => cvopt_datagen::generate_bikes(&cvopt_datagen::BikesConfig::with_rows(
                    rows as usize,
                )),
                other => {
                    return Response::error(
                        400,
                        &format!("unknown generator '{other}' (expected openaq or bikes)"),
                    )
                }
            }
        }
        _ => return Response::error(400, "body must carry exactly one of 'csv' or 'generated'"),
    };
    let rows = table.num_rows();
    let shards = match body.get("shards") {
        // An explicit null means the same as an absent field — it is what
        // this endpoint's own response emits for unsharded tables.
        None | Some(Json::Null) => None,
        Some(s) => match s.as_u64() {
            None | Some(0) => return Response::error(400, "'shards' must be a positive integer"),
            Some(n) if n > MAX_SHARDS => {
                return Response::error(
                    400,
                    &format!("'shards' exceeds the {MAX_SHARDS}-shard limit"),
                )
            }
            Some(n) => Some(n as usize),
        },
    };
    let remote = match body.get("remote") {
        None | Some(Json::Null) => None,
        Some(r) => {
            let addrs: Option<Vec<&str>> =
                r.as_array().map(|a| a.iter().filter_map(Json::as_str).collect());
            match addrs {
                Some(addrs)
                    if !addrs.is_empty()
                        && addrs.len() == r.as_array().map(|a| a.len()).unwrap_or(0) =>
                {
                    Some(addrs)
                }
                _ => {
                    return Response::error(
                        400,
                        "'remote' must be a non-empty array of shard-server addresses",
                    )
                }
            }
        }
    };
    let window = match body.get("window") {
        None | Some(Json::Null) => None,
        Some(w) => match w.as_str() {
            Some(col) => Some(col.to_string()),
            None => return Response::error(400, "'window' must be a column name string"),
        },
    };
    match remote {
        Some(addrs) => {
            if window.is_some() {
                return Response::error(
                    400,
                    "remote tables cannot declare 'window'; retention runs at the shard servers",
                );
            }
            // Shard the table across the listed shard servers, round-robin.
            // `shards` defaults to one shard per server.
            let n = shards.unwrap_or(addrs.len());
            let sharded = match ShardedTable::split(&table, n) {
                Ok(sharded) => sharded,
                Err(e) => return Response::error(400, &e.to_string()),
            };
            match register_remote(state, name, &sharded, &addrs) {
                Ok(()) => {}
                Err(e) => return Response::error(502, &e),
            }
            let body = Json::object(vec![
                ("table", Json::string(name)),
                ("rows", Json::count(rows as u64)),
                ("shards", Json::count(n as u64)),
                ("window", Json::Null),
            ]);
            return Response::ok(body.to_string());
        }
        None => {
            let source = match shards {
                Some(n) => match ShardedTable::split(&table, n) {
                    Ok(sharded) => cvopt_core::TableSource::Sharded(sharded),
                    Err(e) => return Response::error(400, &e.to_string()),
                },
                None => cvopt_core::TableSource::Local(table),
            };
            match &window {
                Some(col) => {
                    if let Err(e) = state.engine.register_windowed(name, source, col) {
                        return Response::error(400, &e.to_string());
                    }
                }
                None => state.engine.register(name, source),
            }
        }
    }
    let body = Json::object(vec![
        ("table", Json::string(name)),
        ("rows", Json::count(rows as u64)),
        ("shards", Json::opt(shards, |n| Json::count(n as u64))),
        ("window", Json::opt(window, Json::string)),
    ]);
    Response::ok(body.to_string())
}

/// Append a JSON row batch to a registered table (see
/// [`cvopt_core::Engine::ingest`]). Body: `{"table": "...", "rows":
/// [[...], ...]}`, each row an array of values in schema order. The
/// engine keeps every cached sample of the table fresh — maintained
/// samples fold the batch in, everything else is invalidated.
fn ingest(state: &ApiState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(name) = body.get("table").and_then(Json::as_str) else {
        return Response::error(400, "body must carry a string field 'table'");
    };
    let Some(rows) = body.get("rows").and_then(Json::as_array) else {
        return Response::error(400, "'rows' must be an array of row arrays");
    };
    let Some(schema) = state.engine.with_engine(|e| {
        e.catalog_table(name).map(|t| match t {
            cvopt_core::CatalogTable::Single(t) => t.schema().clone(),
            cvopt_core::CatalogTable::Sharded(t) => t.schema().clone(),
            cvopt_core::CatalogTable::Remote(s) => s.schema().clone(),
        })
    }) else {
        return Response::error(400, &format!("table '{name}' is not registered"));
    };
    let batch = match build_batch(&schema, rows) {
        Ok(b) => b,
        Err(r) => return r,
    };
    match state.engine.ingest(name, &batch) {
        Ok(report) => Response::ok(
            Json::object(vec![
                ("table", Json::string(&report.table)),
                ("rows", Json::count(report.rows as u64)),
                ("total_rows", Json::count(report.total_rows as u64)),
                ("maintained", Json::count(report.maintained as u64)),
            ])
            .to_string(),
        ),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// Retention rotation: drop rows whose window-column value is below
/// `cutoff` (see [`cvopt_core::Engine::rotate`]). Body: `{"table": "...",
/// "cutoff": <integer>}`.
fn rotate(state: &ApiState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(name) = body.get("table").and_then(Json::as_str) else {
        return Response::error(400, "body must carry a string field 'table'");
    };
    let Some(cutoff) = body.get("cutoff").and_then(Json::as_i64) else {
        return Response::error(400, "'cutoff' must be an integer");
    };
    match state.engine.rotate(name, cutoff) {
        Ok(report) => Response::ok(
            Json::object(vec![
                ("table", Json::string(&report.table)),
                ("retired", Json::count(report.retired as u64)),
                ("remaining", Json::count(report.remaining as u64)),
                ("maintained", Json::count(report.maintained as u64)),
            ])
            .to_string(),
        ),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// Build an ingest batch from JSON rows, typed by the target table's
/// schema (one array per row, values in schema order).
fn build_batch(schema: &Schema, rows: &[Json]) -> Result<cvopt_table::Table, Response> {
    let mut b = cvopt_table::TableBuilder::from_schema(schema.clone());
    b.reserve(rows.len());
    let mut values = Vec::with_capacity(schema.len());
    for (r, row) in rows.iter().enumerate() {
        let Some(cells) = row.as_array() else {
            return Err(Response::error(400, &format!("row {r} is not an array")));
        };
        if cells.len() != schema.len() {
            return Err(Response::error(
                400,
                &format!("row {r} has {} values, schema has {} columns", cells.len(), schema.len()),
            ));
        }
        values.clear();
        for (cell, field) in cells.iter().zip(schema.fields()) {
            let value = match field.dtype {
                DataType::Int64 => cell.as_i64().map(cvopt_table::Value::Int64),
                DataType::Float64 => cell.as_f64().map(cvopt_table::Value::Float64),
                DataType::Str => cell.as_str().map(cvopt_table::Value::str),
                DataType::Bool => cell.as_bool().map(cvopt_table::Value::Bool),
                DataType::Timestamp => cell.as_i64().map(cvopt_table::Value::Timestamp),
            };
            let Some(value) = value else {
                return Err(Response::error(
                    400,
                    &format!(
                        "row {r}: column '{}' expects {:?}, got {cell:?}",
                        field.name, field.dtype
                    ),
                ));
            };
            values.push(value);
        }
        if let Err(e) = b.push_row(&values) {
            return Err(Response::error(400, &format!("row {r}: {e}")));
        }
    }
    Ok(b.finish())
}

/// Consolidate one table's query log into a durable reuse-candidate
/// sample (see [`cvopt_core::Engine::reoptimize`]). Meant for a
/// maintenance loop or an operator; answers `{"reoptimized": false}` when
/// the table has no logged queries yet.
fn reoptimize(state: &ApiState, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(b) => b,
        Err(r) => return r,
    };
    let Some(table) = body.get("table").and_then(Json::as_str) else {
        return Response::error(400, "body must carry a string field 'table'");
    };
    match state.engine.reoptimize(table) {
        Ok(Some(report)) => Response::ok(
            Json::object(vec![
                ("reoptimized", Json::Bool(true)),
                ("table", Json::string(&report.table)),
                ("logged", Json::count(report.logged as u64)),
                ("distinct_shapes", Json::count(report.distinct_shapes as u64)),
                ("budget", Json::count(report.budget as u64)),
                ("fingerprint", Json::string(format!("{:#018x}", report.fingerprint))),
                ("cache_hit", Json::Bool(report.cache_hit)),
                ("strata", Json::count(report.strata as u64)),
                ("sample_rows", Json::count(report.sample_rows as u64)),
            ])
            .to_string(),
        ),
        Ok(None) => Response::ok(
            Json::object(vec![
                ("reoptimized", Json::Bool(false)),
                ("table", Json::string(table)),
                ("logged", Json::count(0)),
            ])
            .to_string(),
        ),
        Err(e) => Response::error(400, &e.to_string()),
    }
}

/// Ship each shard of `sharded` to a shard server (round-robin over
/// `addrs`) and register the resulting [`ShardSet`] under `name`. One
/// [`cvopt_net::Peer`] is opened per distinct address and shared by every
/// shard living there.
fn register_remote(
    state: &ApiState,
    name: &str,
    sharded: &ShardedTable,
    addrs: &[&str],
) -> Result<(), String> {
    let mut peers: Vec<Arc<cvopt_net::Peer>> = Vec::with_capacity(addrs.len());
    for addr in addrs {
        let peer =
            cvopt_net::Peer::connect(*addr).map_err(|e| format!("shard server {addr}: {e}"))?;
        peers.push(Arc::new(peer));
    }
    let mut readers: Vec<Arc<dyn ShardReader>> = Vec::with_capacity(sharded.num_shards());
    for (s, shard) in sharded.shards().iter().enumerate() {
        let peer = Arc::clone(&peers[s % peers.len()]);
        let remote = cvopt_net::RemoteShard::register(peer, format!("{name}/{s}"), shard)
            .map_err(|e| e.to_string())?;
        readers.push(Arc::new(remote));
    }
    let set = ShardSet::new(readers).map_err(|e| e.to_string())?;
    state.engine.register(name, set);
    Ok(())
}

/// Parse a request body as a JSON object.
fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = req.body_utf8().map_err(|e| Response::error(400, &e))?;
    let value = Json::parse(text).map_err(|e| Response::error(400, &e.to_string()))?;
    match value {
        Json::Object(_) => Ok(value),
        _ => Err(Response::error(400, "request body must be a JSON object")),
    }
}

fn parse_mode(value: &Json) -> Result<QueryMode, Response> {
    match value.as_str() {
        Some(s) => parse_mode_str(s),
        None => Err(Response::error(400, "'mode' must be a string")),
    }
}

fn parse_mode_str(s: &str) -> Result<QueryMode, Response> {
    match s.to_ascii_lowercase().as_str() {
        "exact" => Ok(QueryMode::Exact),
        "approximate" | "approx" => Ok(QueryMode::Approximate),
        "auto" => Ok(QueryMode::Auto),
        other => Err(Response::error(
            400,
            &format!("unknown mode '{other}' (expected exact, approximate, or auto)"),
        )),
    }
}

/// Parse the `columns` field: an array of `[name, type]` pairs.
fn parse_columns(body: &Json) -> Result<Schema, Response> {
    let bad = || Response::error(400, "'columns' must be an array of [name, type] pairs");
    let Some(columns) = body.get("columns").and_then(Json::as_array) else {
        return Err(bad());
    };
    let mut fields: Vec<(String, DataType)> = Vec::with_capacity(columns.len());
    for col in columns {
        let Some([name, dtype]) = col.as_array().and_then(|a| <&[Json; 2]>::try_from(a).ok())
        else {
            return Err(bad());
        };
        let (Some(name), Some(dtype)) = (name.as_str(), dtype.as_str()) else {
            return Err(bad());
        };
        let dtype = match dtype.to_ascii_lowercase().as_str() {
            "int64" | "int" | "i64" => DataType::Int64,
            "float64" | "float" | "f64" => DataType::Float64,
            "str" | "string" => DataType::Str,
            "bool" => DataType::Bool,
            "timestamp" => DataType::Timestamp,
            other => return Err(Response::error(400, &format!("unknown column type '{other}'"))),
        };
        fields.push((name.to_string(), dtype));
    }
    let borrowed: Vec<(&str, DataType)> = fields.iter().map(|(n, d)| (n.as_str(), *d)).collect();
    Ok(Schema::new(&borrowed))
}

/// Encode a [`QueryAnswer`]: plan report, one result per grouping set,
/// and confidence intervals for approximate `AVG` aggregates.
pub fn answer_json(answer: &QueryAnswer) -> Json {
    Json::object(vec![
        ("report", report_json(&answer.report)),
        ("results", Json::Array(answer.results.iter().map(result_json).collect())),
        ("confidence", Json::Array(answer.confidence.iter().map(confidence_json).collect())),
    ])
}

/// Encode an [`ExplainReport`] — including the partition/shard layout the
/// execution layer will use, so `/explain` doubles as the SQL front-end's
/// EXPLAIN.
pub fn report_json(report: &ExplainReport) -> Json {
    Json::object(vec![
        ("table", Json::string(&report.table)),
        ("table_rows", Json::count(report.table_rows as u64)),
        ("mode", Json::string(mode_name(report.mode))),
        ("reason", Json::string(report.reason)),
        ("join", Json::opt(report.join.clone(), Json::string)),
        ("group_by_strategy", Json::string(report.group_by_strategy)),
        ("group_by_reason", Json::string(&report.group_by_reason)),
        ("cache_hit", Json::opt(report.cache_hit, Json::Bool)),
        ("reuse", reuse_json(&report.reuse)),
        // u64 fingerprints overflow JSON's f64 numbers; hex keeps them exact.
        ("fingerprint", Json::opt(report.fingerprint, |f| Json::string(format!("{f:#018x}")))),
        ("budget", Json::opt(report.budget, |b| Json::count(b as u64))),
        ("strata", Json::opt(report.strata, |s| Json::count(s as u64))),
        ("sample_rows", Json::opt(report.sample_rows, |r| Json::count(r as u64))),
        ("partitions", Json::count(report.partitions as u64)),
        ("threads", Json::count(report.threads as u64)),
        ("shards", Json::opt(report.shards, |s| Json::count(s as u64))),
        (
            "shard_partitions",
            Json::opt(report.shard_partitions.clone(), |ps| {
                Json::Array(ps.into_iter().map(|p| Json::count(p as u64)).collect())
            }),
        ),
        ("remote_shards", Json::opt(report.remote_shards, |s| Json::count(s as u64))),
    ])
}

/// Encode a [`ReuseInfo`]: `null` when no cached sample was involved, a
/// tagged object otherwise (fingerprints in hex, like the report's own).
fn reuse_json(reuse: &ReuseInfo) -> Json {
    match reuse {
        ReuseInfo::None => Json::Null,
        ReuseInfo::Exact { fingerprint } => Json::object(vec![
            ("kind", Json::string("exact")),
            ("fingerprint", Json::string(format!("{fingerprint:#018x}"))),
        ]),
        ReuseInfo::Derived { source_fingerprint, coarsened_groups, dropped_predicates } => {
            Json::object(vec![
                ("kind", Json::string("derived")),
                ("source_fingerprint", Json::string(format!("{source_fingerprint:#018x}"))),
                (
                    "coarsened_groups",
                    Json::Array(coarsened_groups.iter().map(Json::string).collect()),
                ),
                (
                    "dropped_predicates",
                    Json::Array(dropped_predicates.iter().map(Json::string).collect()),
                ),
            ])
        }
    }
}

fn mode_name(mode: QueryMode) -> &'static str {
    match mode {
        QueryMode::Exact => "exact",
        QueryMode::Approximate => "approximate",
        QueryMode::Auto => "auto",
    }
}

fn result_json(result: &QueryResult) -> Json {
    let groups = result
        .iter()
        .zip(&result.group_rows)
        .map(|((key, values), &rows)| {
            Json::object(vec![
                ("key", key_json(key)),
                ("values", Json::Array(values.iter().map(|&v| Json::Number(v)).collect())),
                ("rows", Json::count(rows)),
            ])
        })
        .collect();
    Json::object(vec![
        (
            "grouping",
            Json::Array(result.grouping.iter().map(|g| Json::string(g.as_str())).collect()),
        ),
        (
            "aggregates",
            Json::Array(result.agg_names.iter().map(|a| Json::string(a.as_str())).collect()),
        ),
        ("groups", Json::Array(groups)),
    ])
}

fn confidence_json(conf: &AggConfidence) -> Json {
    let groups = conf
        .estimates
        .iter()
        .map(|est| {
            let (lo, hi) = est.ci95();
            Json::object(vec![
                ("key", key_json(&est.key)),
                ("estimate", Json::Number(est.estimate)),
                ("std_error", Json::Number(est.std_error)),
                ("cv", Json::Number(est.cv)),
                ("ci95", Json::Array(vec![Json::Number(lo), Json::Number(hi)])),
                ("sampled_rows", Json::count(est.sampled_rows)),
            ])
        })
        .collect();
    Json::object(vec![
        ("aggregate", Json::count(conf.agg_index as u64)),
        ("groups", Json::Array(groups)),
    ])
}

fn key_json(key: &[KeyAtom]) -> Json {
    Json::Array(
        key.iter()
            .map(|atom| match atom {
                KeyAtom::Int(v) => Json::Int(*v),
                KeyAtom::Str(s) => Json::string(s.as_ref()),
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_core::Engine;
    use cvopt_table::{TableBuilder, Value};

    fn state() -> ApiState {
        let mut engine = Engine::new().with_seed(2).with_auto_threshold(1000);
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..3000usize {
            b.push_row(&[Value::str(["a", "b"][i % 2]), Value::Float64((i % 11) as f64)]).unwrap();
        }
        engine.register("t", b.finish());
        ApiState {
            engine: SharedEngine::new(engine),
            queue_depth: Arc::new(AtomicUsize::new(0)),
            queue_capacity: 8,
            workers: 2,
            request_threads: 1,
            requests_served: AtomicU64::new(0),
            requests_rejected: Arc::new(AtomicU64::new(0)),
            keepalive_reuses: AtomicU64::new(0),
            admission_rejections: Arc::new(AtomicU64::new(0)),
        }
    }

    fn parse_request(raw: String) -> Request {
        match crate::http::read_request(&mut Cursor::new(raw.into_bytes()), Vec::new(), 1 << 20)
            .unwrap()
        {
            crate::http::ReadOutcome::Request(req) => req,
            other => panic!("test request must parse, got {other:?}"),
        }
    }

    fn get(path: &str) -> Request {
        parse_request(format!("GET {path} HTTP/1.1\r\n\r\n"))
    }

    fn post(path: &str, body: &str) -> Request {
        parse_request(format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ))
    }

    #[test]
    fn query_answers_and_reports() {
        let state = state();
        let req =
            post("/query", r#"{"sql":"SELECT g, AVG(x) FROM t GROUP BY g","mode":"approximate"}"#);
        let resp = handle(&state, &req);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        let report = body.get("report").unwrap();
        assert_eq!(report.get("mode").unwrap().as_str(), Some("approximate"));
        assert_eq!(report.get("cache_hit").unwrap().as_bool(), Some(false));
        assert!(report.get("fingerprint").unwrap().as_str().unwrap().starts_with("0x"));
        let results = body.get("results").unwrap().as_array().unwrap();
        let groups = results[0].get("groups").unwrap().as_array().unwrap();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].get("key").unwrap().as_array().unwrap()[0].as_str(), Some("a"));
        let confidence = body.get("confidence").unwrap().as_array().unwrap();
        assert_eq!(confidence.len(), 1);
        // Second call: cache hit over the wire.
        let resp = handle(&state, &req);
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("report").unwrap().get("cache_hit").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn explain_reports_partitions_without_executing() {
        let state = state();
        let req = get("/explain?sql=SELECT%20g,%20AVG(x)%20FROM%20t%20GROUP%20BY%20g&mode=auto");
        let resp = handle(&state, &req);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("mode").unwrap().as_str(), Some("approximate"));
        assert_eq!(body.get("partitions").unwrap().as_u64(), Some(1));
        assert_eq!(body.get("shards").unwrap(), &Json::Null);
        assert_eq!(state.engine.counters().stats_passes, 0, "explain must not sample");
    }

    /// Tests that read or write `CVOPT_GROUP_STRATEGY` must not interleave:
    /// the variable is process-global and the planner reads it per query.
    fn strategy_env_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn explain_select_statement_reports_without_executing() {
        let _guard = strategy_env_lock();
        let state = state();
        let req = post(
            "/query",
            r#"{"sql":"EXPLAIN SELECT g, AVG(x) FROM t GROUP BY g","mode":"exact"}"#,
        );
        let resp = handle(&state, &req);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("results").unwrap().as_array().unwrap().len(), 0, "{}", resp.body);
        let report = body.get("report").unwrap();
        assert_eq!(report.get("group_by_strategy").unwrap().as_str(), Some("hash"));
        assert!(
            report.get("group_by_reason").unwrap().as_str().unwrap().contains("hash"),
            "{}",
            resp.body
        );
        assert_eq!(report.get("join").unwrap(), &Json::Null);
        assert_eq!(state.engine.counters().stats_passes, 0, "EXPLAIN must not sample");
    }

    #[test]
    fn join_queries_answer_over_the_wire() {
        let state = state();
        let body =
            r#"{"name":"dim","csv":"g,w\na,10\nb,20\n","columns":[["g","str"],["w","float64"]]}"#;
        let resp = handle(&state, &post("/tables", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let req = post(
            "/query",
            r#"{"sql":"SELECT g, SUM(w) FROM t JOIN dim ON t.g = dim.g GROUP BY g","mode":"exact"}"#,
        );
        let resp = handle(&state, &req);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        let report = parsed.get("report").unwrap();
        assert_eq!(report.get("join").unwrap().as_str(), Some("dim ON t.g = dim.g"));
        assert_eq!(report.get("mode").unwrap().as_str(), Some("exact"));
        let groups = parsed.get("results").unwrap().as_array().unwrap()[0]
            .get("groups")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(groups.len(), 2);
        // t alternates a/b over 3000 rows: 1500 of each side.
        assert_eq!(groups[0].get("key").unwrap().as_array().unwrap()[0].as_str(), Some("a"));
        assert_eq!(
            groups[0].get("values").unwrap().as_array().unwrap()[0].as_f64(),
            Some(15_000.0)
        );
        assert_eq!(
            groups[1].get("values").unwrap().as_array().unwrap()[0].as_f64(),
            Some(30_000.0)
        );
    }

    #[test]
    fn group_strategy_override_changes_plan_but_not_answers() {
        let _guard = strategy_env_lock();
        let state = state();
        let req =
            || post("/query", r#"{"sql":"SELECT g, SUM(x) FROM t GROUP BY g","mode":"exact"}"#);
        let baseline = handle(&state, &req());
        assert_eq!(baseline.status, 200, "{}", baseline.body);
        std::env::set_var("CVOPT_GROUP_STRATEGY", "sort");
        let forced = handle(&state, &req());
        std::env::remove_var("CVOPT_GROUP_STRATEGY");
        assert_eq!(forced.status, 200, "{}", forced.body);
        let base = Json::parse(&baseline.body).unwrap();
        let sorted = Json::parse(&forced.body).unwrap();
        assert_eq!(
            base.get("results").unwrap(),
            sorted.get("results").unwrap(),
            "the group-by strategy must never change answer bytes"
        );
        let report = sorted.get("report").unwrap();
        assert_eq!(report.get("group_by_strategy").unwrap().as_str(), Some("sort"));
        assert!(
            report.get("group_by_reason").unwrap().as_str().unwrap().contains("forced"),
            "{}",
            forced.body
        );
    }

    #[test]
    fn parse_errors_point_at_the_offending_sql() {
        let state = state();
        let resp = handle(
            &state,
            &post("/query", r#"{"sql":"SELECT AVG(x) FROM t WHERRE v > 1","mode":"exact"}"#),
        );
        assert_eq!(resp.status, 400, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        let err = parsed.get("error").unwrap().as_str().unwrap();
        assert!(err.contains("near \"WHERRE v > 1\""), "error must carry a snippet: {err}");
        // Truncated statements point at the end instead.
        let resp =
            handle(&state, &post("/query", r#"{"sql":"SELECT AVG(x) FROM","mode":"exact"}"#));
        assert_eq!(resp.status, 400, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        let err = parsed.get("error").unwrap().as_str().unwrap();
        assert!(err.contains("at end of statement"), "{err}");
    }

    #[test]
    fn tables_registers_csv_plain_and_sharded() {
        let state = state();
        let body = r#"{"name":"mini","csv":"g,x\na,1.5\nb,2.5\na,3.5\n","columns":[["g","str"],["x","float64"]],"shards":2}"#;
        let resp = handle(&state, &post("/tables", body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("rows").unwrap().as_u64(), Some(3));
        assert_eq!(parsed.get("shards").unwrap().as_u64(), Some(2));
        let resp = handle(
            &state,
            &post("/query", r#"{"sql":"SELECT g, SUM(x) FROM mini GROUP BY g","mode":"exact"}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        let report = body.get("report").unwrap();
        assert_eq!(report.get("shards").unwrap().as_u64(), Some(2));
        let groups = body.get("results").unwrap().as_array().unwrap()[0]
            .get("groups")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(groups[0].get("values").unwrap().as_array().unwrap()[0].as_f64(), Some(5.0));
    }

    #[test]
    fn tables_registers_remote_shards() {
        let state = state();
        let shardd = cvopt_net::Shardd::bind("127.0.0.1:0", 2).unwrap();
        let addr = shardd.addr();
        let body = format!(
            r#"{{"name":"mini","csv":"g,x\na,1.5\nb,2.5\na,3.5\nb,4.5\n","columns":[["g","str"],["x","float64"]],"shards":2,"remote":["{addr}"]}}"#
        );
        let resp = handle(&state, &post("/tables", &body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("rows").unwrap().as_u64(), Some(4));
        assert_eq!(parsed.get("shards").unwrap().as_u64(), Some(2));

        let resp = handle(
            &state,
            &post("/query", r#"{"sql":"SELECT g, SUM(x) FROM mini GROUP BY g","mode":"exact"}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        let report = parsed.get("report").unwrap();
        assert_eq!(report.get("shards").unwrap().as_u64(), Some(2));
        assert_eq!(report.get("remote_shards").unwrap().as_u64(), Some(2));
        let groups = parsed.get("results").unwrap().as_array().unwrap()[0]
            .get("groups")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(groups[0].get("values").unwrap().as_array().unwrap()[0].as_f64(), Some(5.0));
        assert_eq!(groups[1].get("values").unwrap().as_array().unwrap()[0].as_f64(), Some(7.0));
        drop(shardd);
    }

    #[test]
    fn tables_remote_registration_failures_are_502() {
        let state = state();
        // A closed port: connection refused at registration time.
        let body =
            r#"{"name":"x","csv":"g\na\n","columns":[["g","str"]],"remote":["127.0.0.1:1"]}"#;
        let resp = handle(&state, &post("/tables", body));
        assert_eq!(resp.status, 502, "{}", resp.body);
        // And a malformed remote list is the caller's error.
        let body = r#"{"name":"x","csv":"g\na\n","columns":[["g","str"]],"remote":[]}"#;
        let resp = handle(&state, &post("/tables", body));
        assert_eq!(resp.status, 400, "{}", resp.body);
    }

    #[test]
    fn tables_registers_generated() {
        let state = state();
        let resp = handle(
            &state,
            &post("/tables", r#"{"name":"openaq","generated":"openaq","rows":5000}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(state.engine.counters().tables, 2);
    }

    #[test]
    fn tables_bounds_hostile_sizes_and_accepts_null_shards() {
        let state = state();
        // One small request must not be able to allocate unbounded memory.
        let resp = handle(
            &state,
            &post("/tables", r#"{"name":"x","generated":"openaq","rows":999999999999}"#),
        );
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("limit"), "{}", resp.body);
        let resp = handle(
            &state,
            &post(
                "/tables",
                r#"{"name":"x","csv":"g\na\n","columns":[["g","str"]],"shards":99999999}"#,
            ),
        );
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("shard"), "{}", resp.body);
        // An explicit null round-trips from this endpoint's own response
        // shape and means "unsharded".
        let resp = handle(
            &state,
            &post(
                "/tables",
                r#"{"name":"x","csv":"g\na\n","columns":[["g","str"]],"shards":null}"#,
            ),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert_eq!(Json::parse(&resp.body).unwrap().get("shards").unwrap(), &Json::Null);
    }

    #[test]
    fn int64_keys_survive_the_wire_above_2_pow_53() {
        // 2^53 + 1 is not representable as f64; the key must still
        // round-trip exactly.
        let big = (1i64 << 53) + 1;
        let state = state();
        let csv = format!("id,x\n{big},1.5\n{big},2.5\n{},4.0\n", big + 1);
        let body = format!(
            r#"{{"name":"ids","csv":"{}","columns":[["id","int64"],["x","float64"]]}}"#,
            csv.replace('\n', "\\n")
        );
        let resp = handle(&state, &post("/tables", &body));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let resp = handle(
            &state,
            &post("/query", r#"{"sql":"SELECT id, SUM(x) FROM ids GROUP BY id","mode":"exact"}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        assert!(resp.body.contains(&format!("[{big}]")), "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        let groups = parsed.get("results").unwrap().as_array().unwrap()[0].get("groups").unwrap();
        let keys: Vec<i64> = groups
            .as_array()
            .unwrap()
            .iter()
            .map(|g| g.get("key").unwrap().as_array().unwrap()[0].as_i64().unwrap())
            .collect();
        assert_eq!(keys, vec![big, big + 1], "distinct keys must stay distinct");
    }

    #[test]
    fn errors_are_4xx_json() {
        let state = state();
        for (req, want) in [
            (post("/query", "not json"), 400),
            (post("/query", r#"{"mode":"exact"}"#), 400),
            (post("/query", r#"{"sql":"SELECT g FROM t GROUP BY g","mode":"warp"}"#), 400),
            (post("/query", r#"{"sql":"SELECT g, AVG(x) FROM nope GROUP BY g"}"#), 400),
            (post("/tables", r#"{"name":"x"}"#), 400),
            (post("/tables", r#"{"name":"x","generated":"nope","rows":10}"#), 400),
            (post("/tables", r#"{"name":"x","csv":"g\na\n","columns":[["g","vec"]]}"#), 400),
            (get("/explain"), 400),
            (get("/nope"), 404),
            (get("/query"), 405),
            (post("/healthz", "{}"), 405),
        ] {
            let resp = handle(&state, &req);
            assert_eq!(resp.status, want, "{} {} → {}", req.method, req.path, resp.body);
            assert!(Json::parse(&resp.body).unwrap().get("error").is_some());
        }
    }

    #[test]
    fn reoptimize_consolidates_and_enables_derived_reuse() {
        let state = state();
        // Nothing logged yet: the endpoint answers, but consolidates
        // nothing.
        let resp = handle(&state, &post("/reoptimize", r#"{"table":"t"}"#));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("reoptimized").unwrap().as_bool(), Some(false));

        // Seed the log, consolidate, then answer a coarser query without a
        // draw.
        let seed =
            post("/query", r#"{"sql":"SELECT g, AVG(x) FROM t GROUP BY g","mode":"approximate"}"#);
        handle(&state, &seed);
        let resp = handle(&state, &post("/reoptimize", r#"{"table":"t"}"#));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("reoptimized").unwrap().as_bool(), Some(true));
        assert_eq!(parsed.get("logged").unwrap().as_u64(), Some(1));
        assert!(parsed.get("fingerprint").unwrap().as_str().unwrap().starts_with("0x"));

        let passes = state.engine.counters().stats_passes;
        let coarse = post(
            "/query",
            r#"{"sql":"SELECT g, AVG(x) FROM t WHERE g = 'a' GROUP BY g","mode":"approximate"}"#,
        );
        // The WHERE clause keeps the problem fingerprint (problems are
        // predicate-free) — this is an exact hit, not a derived answer.
        let resp = handle(&state, &coarse);
        assert_eq!(resp.status, 200, "{}", resp.body);
        let report = Json::parse(&resp.body).unwrap();
        let reuse = report.get("report").unwrap().get("reuse").unwrap();
        assert_eq!(reuse.get("kind").unwrap().as_str(), Some("exact"));
        assert_eq!(state.engine.counters().stats_passes, passes, "no new draw");

        // Unknown tables are the caller's error.
        let resp = handle(&state, &post("/reoptimize", r#"{"table":"nope"}"#));
        assert_eq!(resp.status, 400, "{}", resp.body);
        // And GET is the wrong method.
        let resp = handle(&state, &get("/reoptimize"));
        assert_eq!(resp.status, 405, "{}", resp.body);
    }

    #[test]
    fn derived_reuse_is_reported_over_the_wire() {
        let state = state();
        // One grouping drawn by a query, then consolidated into a durable
        // sample...
        handle(
            &state,
            &post("/query", r#"{"sql":"SELECT g, AVG(x) FROM t GROUP BY g","mode":"approximate"}"#),
        );
        handle(&state, &post("/reoptimize", r#"{"table":"t"}"#));
        let passes = state.engine.counters().stats_passes;
        // ...then a *grand-total* query (no GROUP BY: a coarser grouping
        // than the consolidated sample's) derives from it.
        let resp = handle(
            &state,
            &post("/query", r#"{"sql":"SELECT AVG(x) FROM t","mode":"approximate"}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        let report = parsed.get("report").unwrap();
        let reuse = report.get("reuse").unwrap();
        assert_eq!(reuse.get("kind").unwrap().as_str(), Some("derived"), "{}", resp.body);
        assert_eq!(
            reuse.get("coarsened_groups").unwrap().as_array().unwrap()[0].as_str(),
            Some("g")
        );
        assert_eq!(report.get("cache_hit").unwrap().as_bool(), Some(false));
        let counters = state.engine.counters();
        assert_eq!(counters.stats_passes, passes, "derived answers draw nothing");
        assert_eq!(counters.reuse_hits, 1);
        assert_eq!(counters.draws_avoided, 1);
    }

    #[test]
    fn stats_shape() {
        let state = state();
        let resp = handle(&state, &get("/stats"));
        let body = Json::parse(&resp.body).unwrap();
        for field in [
            "cache_hits",
            "cache_misses",
            "reuse_hits",
            "draws_avoided",
            "stats_passes",
            "cached_samples",
            "cache_evictions",
            "cache_bytes_held",
            "tables",
            "process_stats_passes",
            "process_draws",
            "process_draws_avoided",
            "queue_depth",
            "queue_capacity",
            "workers",
            "request_threads",
            "requests_served",
            "requests_rejected",
            "keepalive_reuses",
            "admission_rejections",
            "net_requests",
            "net_retries",
            "net_circuit_opens",
            "net_bytes_sent",
            "net_bytes_received",
            "ingested_rows",
            "ingest_batches",
            "maintained_samples",
            "rotations",
            "rows_retired",
        ] {
            assert!(body.get(field).is_some(), "missing {field}");
        }
        assert_eq!(body.get("queue_capacity").unwrap().as_u64(), Some(8));
        assert_eq!(body.get("workers").unwrap().as_u64(), Some(2));
    }

    /// Register a small windowed table: ts is the window column,
    /// 0..rows, group g alternates a/b.
    fn register_windowed(state: &ApiState, rows: usize) {
        let mut csv = String::from("g,x,ts\n");
        for i in 0..rows {
            csv.push_str(&format!("{},{}.5,{i}\n", ["a", "b"][i % 2], i % 7));
        }
        let body = Json::object(vec![
            ("name", Json::string("w")),
            ("csv", Json::string(&csv)),
            (
                "columns",
                Json::Array(vec![
                    Json::Array(vec![Json::string("g"), Json::string("str")]),
                    Json::Array(vec![Json::string("x"), Json::string("float64")]),
                    Json::Array(vec![Json::string("ts"), Json::string("int64")]),
                ]),
            ),
            ("window", Json::string("ts")),
        ]);
        let resp = handle(state, &post("/tables", &body.to_string()));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let parsed = Json::parse(&resp.body).unwrap();
        assert_eq!(parsed.get("window").unwrap().as_str(), Some("ts"));
    }

    #[test]
    fn ingest_appends_rows_and_queries_see_them() {
        let state = state();
        register_windowed(&state, 6);
        let resp = handle(
            &state,
            &post("/ingest", r#"{"table":"w","rows":[["a",1.0,6],["b",2.0,7],["a",3.0,8]]}"#),
        );
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("rows").unwrap().as_u64(), Some(3));
        assert_eq!(body.get("total_rows").unwrap().as_u64(), Some(9));

        let resp = handle(
            &state,
            &post("/query", r#"{"sql":"SELECT g, COUNT(*) FROM w GROUP BY g","mode":"exact"}"#),
        );
        let body = Json::parse(&resp.body).unwrap();
        let groups = body.get("results").unwrap().as_array().unwrap()[0]
            .get("groups")
            .unwrap()
            .as_array()
            .unwrap();
        assert_eq!(groups[0].get("values").unwrap().as_array().unwrap()[0].as_f64(), Some(5.0));

        let stats = Json::parse(&handle(&state, &get("/stats")).body).unwrap();
        assert_eq!(stats.get("ingested_rows").unwrap().as_u64(), Some(3));
        assert_eq!(stats.get("ingest_batches").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn ingest_rejects_bad_bodies() {
        let state = state();
        register_windowed(&state, 4);
        for (body, needle) in [
            (r#"{"rows":[["a",1.0,6]]}"#, "table"),
            (r#"{"table":"w"}"#, "rows"),
            (r#"{"table":"nope","rows":[]}"#, "not registered"),
            (r#"{"table":"w","rows":[["a",1.0]]}"#, "schema has 3"),
            (r#"{"table":"w","rows":[["a","x",6]]}"#, "expects Float64"),
            (r#"{"table":"w","rows":[17]}"#, "not an array"),
        ] {
            let resp = handle(&state, &post("/ingest", body));
            assert_eq!(resp.status, 400, "{body} -> {}", resp.body);
            assert!(resp.body.contains(needle), "{body} -> {}", resp.body);
        }
    }

    #[test]
    fn rotate_drops_rows_below_cutoff() {
        let state = state();
        register_windowed(&state, 10);
        let resp = handle(&state, &post("/rotate", r#"{"table":"w","cutoff":4}"#));
        assert_eq!(resp.status, 200, "{}", resp.body);
        let body = Json::parse(&resp.body).unwrap();
        assert_eq!(body.get("retired").unwrap().as_u64(), Some(4));
        assert_eq!(body.get("remaining").unwrap().as_u64(), Some(6));

        // A table with no window column can't rotate.
        let resp = handle(&state, &post("/rotate", r#"{"table":"t","cutoff":4}"#));
        assert_eq!(resp.status, 400, "{}", resp.body);
        let resp = handle(&state, &post("/rotate", r#"{"table":"w"}"#));
        assert_eq!(resp.status, 400, "{}", resp.body);

        let stats = Json::parse(&handle(&state, &get("/stats")).body).unwrap();
        assert_eq!(stats.get("rotations").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("rows_retired").unwrap().as_u64(), Some(4));
    }

    #[test]
    fn tables_rejects_window_on_remote_or_unknown_column() {
        let state = state();
        let body = r#"{"name":"w","csv":"g,x\na,1.5\n","columns":[["g","str"],["x","float64"]],"window":"nope"}"#;
        let resp = handle(&state, &post("/tables", body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        let body = r#"{"name":"w","csv":"g,x\na,1.5\n","columns":[["g","str"],["x","float64"]],"window":"x"}"#;
        let resp = handle(&state, &post("/tables", body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        let body = r#"{"name":"w","generated":"openaq","rows":100,"window":"ts","remote":["127.0.0.1:1"]}"#;
        let resp = handle(&state, &post("/tables", body));
        assert_eq!(resp.status, 400, "{}", resp.body);
        assert!(resp.body.contains("shard servers"), "{}", resp.body);
    }
}

//! `cvopt-served` — the CVOPT sampling service.
//!
//! ```text
//! cvopt-served [--addr 127.0.0.1] [--port 8080] [--workers N] [--queue N]
//!              [--threads N] [--seed N] [--rate R] [--auto-threshold N]
//!              [--retry-after S] [--keepalive-max N] [--idle-timeout MS]
//!              [--cache-bytes N] [--admission-rate R] [--admission-burst N]
//! ```
//!
//! Starts empty; register tables over HTTP (`POST /tables`) and query
//! them (`POST /query`). `--port 0` binds an ephemeral port; the bound
//! address is printed (and flushed) on startup so scripts can scrape it.

use std::io::Write;

use cvopt_core::Engine;
use cvopt_serve::{Server, ServerConfig};

fn main() {
    let mut addr = "127.0.0.1".to_string();
    let mut port: u16 = 8080;
    let mut config = ServerConfig::default();
    let mut seed: u64 = 0;
    let mut rate: f64 = 0.01;
    let mut auto_threshold: usize = 50_000;
    let mut cache_bytes: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--port" => port = parse(&value("--port"), "--port"),
            "--workers" => config.workers = parse(&value("--workers"), "--workers"),
            "--queue" => config.queue_capacity = parse(&value("--queue"), "--queue"),
            "--threads" => config.thread_budget = parse(&value("--threads"), "--threads"),
            "--seed" => seed = parse(&value("--seed"), "--seed"),
            "--rate" => rate = parse(&value("--rate"), "--rate"),
            "--auto-threshold" => {
                auto_threshold = parse(&value("--auto-threshold"), "--auto-threshold")
            }
            "--retry-after" => {
                config.retry_after_seconds = parse(&value("--retry-after"), "--retry-after")
            }
            "--keepalive-max" => {
                config.keepalive_max_requests = parse(&value("--keepalive-max"), "--keepalive-max")
            }
            "--idle-timeout" => {
                config.keepalive_idle = std::time::Duration::from_millis(parse(
                    &value("--idle-timeout"),
                    "--idle-timeout",
                ))
            }
            "--cache-bytes" => cache_bytes = Some(parse(&value("--cache-bytes"), "--cache-bytes")),
            "--admission-rate" => {
                config.admission_rate = parse(&value("--admission-rate"), "--admission-rate")
            }
            "--admission-burst" => {
                config.admission_burst = parse(&value("--admission-burst"), "--admission-burst")
            }
            "--help" | "-h" => {
                println!(
                    "cvopt-served: the CVOPT sampling service\n\n\
                     options:\n  \
                     --addr A            bind address (default 127.0.0.1)\n  \
                     --port P            bind port; 0 = ephemeral (default 8080)\n  \
                     --workers N         worker threads (default: up to 8, one per core)\n  \
                     --queue N           bounded queue capacity (default 64)\n  \
                     --threads N         server-wide engine-thread budget (default: cores)\n  \
                     --seed N            sampling seed (default 0)\n  \
                     --rate R            default sampling rate in (0,1] (default 0.01)\n  \
                     --auto-threshold N  rows at which Auto goes approximate (default 50000)\n  \
                     --retry-after S     Retry-After seconds on 503 backpressure (default 1)\n  \
                     --keepalive-max N   requests served per connection before closing (default 256)\n  \
                     --idle-timeout MS   idle keep-alive connection timeout, ms (default 10000)\n  \
                     --cache-bytes N     prepared-sample cache byte budget (default: unbounded)\n  \
                     --admission-rate R  per-peer admitted requests/second; 0 = off (default 0)\n  \
                     --admission-burst N per-peer burst before the rate applies (default 8)"
                );
                return;
            }
            other => fail(&format!("unknown argument '{other}' (try --help)")),
        }
    }
    if config.workers == 0 {
        fail("--workers must be at least 1");
    }
    config.addr = format!("{addr}:{port}");

    let engine = Engine::new()
        .with_seed(seed)
        .with_default_rate(rate)
        .with_auto_threshold(auto_threshold)
        .with_cache_bytes(cache_bytes);
    let server = match Server::start(engine, config.clone()) {
        Ok(server) => server,
        Err(e) => fail(&format!("cannot bind {}: {e}", config.addr)),
    };
    println!(
        "cvopt-served listening on http://{} ({} workers, queue {}, {} engine thread(s) per request, seed {seed})",
        server.addr(),
        config.workers,
        config.queue_capacity,
        config.request_threads(),
    );
    // Scripts scrape the line above from a redirected log; make sure it
    // is on disk before we block.
    std::io::stdout().flush().expect("flush stdout");

    // The pipeline threads own all the work from here on.
    loop {
        std::thread::park();
    }
}

fn parse<T: std::str::FromStr>(value: &str, name: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("invalid value '{value}' for {name}")))
}

fn fail(message: &str) -> ! {
    eprintln!("cvopt-served: {message}");
    std::process::exit(2);
}

//! Per-peer token-bucket admission control.
//!
//! Keyed by the client's IP address, not its connection: a client spreading
//! requests over many keep-alive connections drains the same bucket as one
//! hammering a single connection, so fairness holds across connection
//! strategies. Each bucket refills at `rate` tokens per second up to
//! `burst`; a request costs one token, and a dry bucket means 503 +
//! `Retry-After` — the same answer queue backpressure gives, so clients
//! need one retry policy, not two.
//!
//! A rate of zero (the default) disables admission control entirely: no
//! bucket is consulted and every request is admitted, which keeps the
//! serving goldens byte-stable unless an operator opts in.

use std::collections::HashMap;
use std::net::{IpAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One peer's bucket: fractional tokens plus the last refill time.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Token buckets for every peer that has talked to the server.
///
/// The rejection counter is shared (an `Arc`) so `/stats` can read it
/// without reaching into the bucket map.
#[derive(Debug)]
pub struct AdmissionControl {
    rate: f64,
    burst: f64,
    rejections: Arc<AtomicU64>,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl AdmissionControl {
    /// Buckets refilling at `rate` tokens/second, holding at most `burst`.
    /// `rate <= 0` disables admission control.
    pub fn new(rate: f64, burst: f64, rejections: Arc<AtomicU64>) -> Self {
        AdmissionControl {
            rate,
            burst: burst.max(1.0),
            rejections,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Whether a rate was configured at all.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Admit or reject one request from `peer` right now.
    pub fn admit(&self, peer: IpAddr) -> bool {
        self.admit_at(peer, Instant::now())
    }

    /// Admit or reject one request from the socket's peer. Sockets without
    /// a resolvable peer (already closed, say) are admitted — they will
    /// fail at the I/O layer anyway.
    pub fn admit_socket(&self, socket: &TcpStream) -> bool {
        if !self.enabled() {
            return true;
        }
        match socket.peer_addr() {
            Ok(addr) => self.admit(addr.ip()),
            Err(_) => true,
        }
    }

    /// Requests rejected so far.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// The clock-explicit core, so tests can drive time deterministically.
    fn admit_at(&self, peer: IpAddr, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        let bucket = buckets.entry(peer).or_insert(Bucket { tokens: self.burst, last: now });
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn disabled_admits_everything() {
        let ac = AdmissionControl::new(0.0, 5.0, Arc::new(AtomicU64::new(0)));
        let now = Instant::now();
        for _ in 0..1000 {
            assert!(ac.admit_at(ip(1), now));
        }
        assert_eq!(ac.rejections(), 0);
    }

    #[test]
    fn burst_then_reject_then_refill() {
        let ac = AdmissionControl::new(2.0, 3.0, Arc::new(AtomicU64::new(0)));
        let t0 = Instant::now();
        // The burst admits three back-to-back requests; the fourth is dry.
        assert!(ac.admit_at(ip(1), t0));
        assert!(ac.admit_at(ip(1), t0));
        assert!(ac.admit_at(ip(1), t0));
        assert!(!ac.admit_at(ip(1), t0));
        assert_eq!(ac.rejections(), 1);
        // Half a second at 2 tokens/s refills one token.
        let t1 = t0 + Duration::from_millis(500);
        assert!(ac.admit_at(ip(1), t1));
        assert!(!ac.admit_at(ip(1), t1));
        assert_eq!(ac.rejections(), 2);
    }

    #[test]
    fn peers_have_independent_buckets() {
        let ac = AdmissionControl::new(1.0, 1.0, Arc::new(AtomicU64::new(0)));
        let now = Instant::now();
        assert!(ac.admit_at(ip(1), now));
        assert!(!ac.admit_at(ip(1), now));
        // A different peer still has its full burst.
        assert!(ac.admit_at(ip(2), now));
    }

    #[test]
    fn refill_caps_at_burst() {
        let ac = AdmissionControl::new(100.0, 2.0, Arc::new(AtomicU64::new(0)));
        let t0 = Instant::now();
        assert!(ac.admit_at(ip(1), t0));
        // A long idle period must not bank more than `burst` tokens.
        let t1 = t0 + Duration::from_secs(3600);
        assert!(ac.admit_at(ip(1), t1));
        assert!(ac.admit_at(ip(1), t1));
        assert!(!ac.admit_at(ip(1), t1));
    }
}

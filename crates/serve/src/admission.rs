//! Per-peer token-bucket admission control.
//!
//! Keyed by the client's IP address, not its connection: a client spreading
//! requests over many keep-alive connections drains the same bucket as one
//! hammering a single connection, so fairness holds across connection
//! strategies. Each bucket refills at `rate` tokens per second up to
//! `burst`; a request costs one token, and a dry bucket means 503 +
//! `Retry-After` — the same answer queue backpressure gives, so clients
//! need one retry policy, not two.
//!
//! A rate of zero (the default) disables admission control entirely: no
//! bucket is consulted and every request is admitted, which keeps the
//! serving goldens byte-stable unless an operator opts in.

use std::collections::HashMap;
use std::net::{IpAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One peer's bucket: fractional tokens plus the last refill time.
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    last: Instant,
}

/// Once the map tracks at least this many peers, sweeps become eligible.
const SWEEP_MIN_PEERS: usize = 1024;

/// Minimum spacing between sweeps, so a large map of actively draining
/// peers costs one `retain` per interval, not per request.
const SWEEP_INTERVAL: Duration = Duration::from_secs(60);

/// The bucket map plus the last time it was swept for idle entries.
#[derive(Debug, Default)]
struct Buckets {
    map: HashMap<IpAddr, Bucket>,
    last_sweep: Option<Instant>,
}

/// Token buckets for every peer that has talked to the server.
///
/// A bucket that has idled back to full is dropped on a periodic sweep:
/// recreating it on the peer's next request starts it at `burst` again, so
/// eviction is invisible to admission decisions while keeping the map
/// bounded by the set of peers active in the last refill window.
///
/// The rejection counter is shared (an `Arc`) so `/stats` can read it
/// without reaching into the bucket map.
#[derive(Debug)]
pub struct AdmissionControl {
    rate: f64,
    burst: f64,
    rejections: Arc<AtomicU64>,
    buckets: Mutex<Buckets>,
}

impl AdmissionControl {
    /// Buckets refilling at `rate` tokens/second, holding at most `burst`.
    /// `rate <= 0` disables admission control.
    pub fn new(rate: f64, burst: f64, rejections: Arc<AtomicU64>) -> Self {
        AdmissionControl {
            rate,
            burst: burst.max(1.0),
            rejections,
            buckets: Mutex::new(Buckets::default()),
        }
    }

    /// Whether a rate was configured at all.
    pub fn enabled(&self) -> bool {
        self.rate > 0.0
    }

    /// Admit or reject one request from `peer` right now.
    pub fn admit(&self, peer: IpAddr) -> bool {
        self.admit_at(peer, Instant::now())
    }

    /// Admit or reject one request from the socket's peer. Sockets without
    /// a resolvable peer (already closed, say) are admitted — they will
    /// fail at the I/O layer anyway.
    pub fn admit_socket(&self, socket: &TcpStream) -> bool {
        if !self.enabled() {
            return true;
        }
        match socket.peer_addr() {
            Ok(addr) => self.admit(addr.ip()),
            Err(_) => true,
        }
    }

    /// Requests rejected so far.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Relaxed)
    }

    /// The clock-explicit core, so tests can drive time deterministically.
    fn admit_at(&self, peer: IpAddr, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut buckets = self.buckets.lock().unwrap_or_else(|e| e.into_inner());
        self.maybe_sweep(&mut buckets, now);
        let bucket = buckets.map.entry(peer).or_insert(Bucket { tokens: self.burst, last: now });
        let dt = now.saturating_duration_since(bucket.last).as_secs_f64();
        bucket.tokens = (bucket.tokens + dt * self.rate).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Drop buckets that have refilled all the way (an absent bucket and a
    /// full one admit identically), at most once per [`SWEEP_INTERVAL`] and
    /// only once the map is large enough to matter.
    fn maybe_sweep(&self, buckets: &mut Buckets, now: Instant) {
        if buckets.map.len() < SWEEP_MIN_PEERS {
            return;
        }
        if let Some(last) = buckets.last_sweep {
            if now.saturating_duration_since(last) < SWEEP_INTERVAL {
                return;
            }
        }
        let (rate, burst) = (self.rate, self.burst);
        buckets.map.retain(|_, b| {
            let dt = now.saturating_duration_since(b.last).as_secs_f64();
            b.tokens + dt * rate < burst
        });
        buckets.last_sweep = Some(now);
    }

    /// Peers currently tracked (test hook for the sweep).
    #[cfg(test)]
    fn tracked_peers(&self) -> usize {
        self.buckets.lock().unwrap_or_else(|e| e.into_inner()).map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn disabled_admits_everything() {
        let ac = AdmissionControl::new(0.0, 5.0, Arc::new(AtomicU64::new(0)));
        let now = Instant::now();
        for _ in 0..1000 {
            assert!(ac.admit_at(ip(1), now));
        }
        assert_eq!(ac.rejections(), 0);
    }

    #[test]
    fn burst_then_reject_then_refill() {
        let ac = AdmissionControl::new(2.0, 3.0, Arc::new(AtomicU64::new(0)));
        let t0 = Instant::now();
        // The burst admits three back-to-back requests; the fourth is dry.
        assert!(ac.admit_at(ip(1), t0));
        assert!(ac.admit_at(ip(1), t0));
        assert!(ac.admit_at(ip(1), t0));
        assert!(!ac.admit_at(ip(1), t0));
        assert_eq!(ac.rejections(), 1);
        // Half a second at 2 tokens/s refills one token.
        let t1 = t0 + Duration::from_millis(500);
        assert!(ac.admit_at(ip(1), t1));
        assert!(!ac.admit_at(ip(1), t1));
        assert_eq!(ac.rejections(), 2);
    }

    #[test]
    fn peers_have_independent_buckets() {
        let ac = AdmissionControl::new(1.0, 1.0, Arc::new(AtomicU64::new(0)));
        let now = Instant::now();
        assert!(ac.admit_at(ip(1), now));
        assert!(!ac.admit_at(ip(1), now));
        // A different peer still has its full burst.
        assert!(ac.admit_at(ip(2), now));
    }

    #[test]
    fn idle_peers_are_swept_once_the_map_is_large() {
        let ac = AdmissionControl::new(1.0, 4.0, Arc::new(AtomicU64::new(0)));
        let t0 = Instant::now();
        // 2000 distinct peers each spend one token at t0.
        for i in 0..2000u32 {
            let octets = i.to_be_bytes();
            assert!(ac.admit_at(IpAddr::from([10, octets[1], octets[2], octets[3]]), t0));
        }
        assert_eq!(ac.tracked_peers(), 2000);
        // An hour later every bucket has refilled to burst, so the next
        // admit sweeps them all; only the requesting peer stays tracked.
        let t1 = t0 + Duration::from_secs(3600);
        assert!(ac.admit_at(ip(1), t1));
        assert_eq!(ac.tracked_peers(), 1);
        // Eviction is invisible: a swept peer returns with exactly the full
        // burst it would have refilled to.
        for _ in 0..4 {
            assert!(ac.admit_at(ip(99), t1));
        }
        assert!(!ac.admit_at(ip(99), t1));
    }

    #[test]
    fn sweeps_are_rate_limited() {
        let ac = AdmissionControl::new(1.0, 2.0, Arc::new(AtomicU64::new(0)));
        let t0 = Instant::now();
        // Filling past SWEEP_MIN_PEERS runs one sweep mid-fill (which keeps
        // everything: nothing has refilled at t0) and stamps last_sweep.
        for i in 0..2000u32 {
            let octets = i.to_be_bytes();
            ac.admit_at(IpAddr::from([10, octets[1], octets[2], octets[3]]), t0);
        }
        assert_eq!(ac.tracked_peers(), 2000);
        // Ten seconds later every bucket is full and sweepable, but the
        // interval since the mid-fill sweep has not elapsed — no sweep.
        let t1 = t0 + Duration::from_secs(10);
        assert!(ac.admit_at(ip(1), t1));
        assert_eq!(ac.tracked_peers(), 2001);
        // Past the interval the sweep fires and drops every full bucket.
        let t2 = t0 + Duration::from_secs(90);
        assert!(ac.admit_at(ip(2), t2));
        assert_eq!(ac.tracked_peers(), 1);
    }

    #[test]
    fn refill_caps_at_burst() {
        let ac = AdmissionControl::new(100.0, 2.0, Arc::new(AtomicU64::new(0)));
        let t0 = Instant::now();
        assert!(ac.admit_at(ip(1), t0));
        // A long idle period must not bank more than `burst` tokens.
        let t1 = t0 + Duration::from_secs(3600);
        assert!(ac.admit_at(ip(1), t1));
        assert!(ac.admit_at(ip(1), t1));
        assert!(!ac.admit_at(ip(1), t1));
    }
}

//! The threaded server: a fixed accept-loop → bounded work-queue →
//! worker-pool pipeline, with persistent (keep-alive) connections.
//!
//! * The **accept loop** (one thread) takes connections off the listener
//!   and `try_send`s them into a bounded queue. When the queue is full it
//!   answers `503` with a `Retry-After` header right there — backpressure
//!   costs one write, never a worker.
//! * The **worker pool** (a fixed number of threads) drains the queue and
//!   answers requests through [`crate::api::handle`]. A connection stays
//!   open across requests (HTTP/1.1 keep-alive) until the client closes,
//!   sends `Connection: close`, exceeds
//!   [`ServerConfig::keepalive_max_requests`], or idles past
//!   [`ServerConfig::keepalive_idle`]. After answering, the worker waits
//!   only a few milliseconds for the next request; an idle connection is
//!   handed to the **idle watcher** instead of pinning the worker.
//! * The **idle watcher** (one thread) holds parked connections, polling
//!   them with non-blocking peeks: a readable connection re-enters the
//!   work queue (or is 503'd when the queue is full — the same
//!   backpressure answer the accept side gives), a closed or expired one
//!   is dropped.
//! * Each request runs its engine passes with
//!   [`ServerConfig::request_threads`] workers — the server-wide thread
//!   budget divided across the pool — so a saturated server never
//!   oversubscribes the machine.
//!
//! Because the engine's answers are deterministic and responses carry no
//! clock-dependent headers (and no `Connection` header — close is a
//! socket action), a response is a pure function of the request sequence:
//! the same bytes come back whether the connection is reused or fresh,
//! whatever the worker count. Keep-alive and the watcher move *where*
//! time is spent, never *what* is answered.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cvopt_core::{Engine, ExecOptions};

use crate::admission::AdmissionControl;
use crate::api::{self, ApiState};
use crate::http::{self, ReadOutcome, Response};
use crate::shared::SharedEngine;

/// How long a worker waits for a slow client before giving up on the
/// connection (mid-request reads and response writes).
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// How long a worker lingers on a just-answered connection waiting for
/// the next request before parking it with the idle watcher. Long enough
/// to catch a busy client's immediate follow-up, short enough that an
/// idle connection never pins a worker.
const KEEPALIVE_GRACE: Duration = Duration::from_millis(5);

/// How often the idle watcher sweeps its parked connections.
const WATCHER_SWEEP: Duration = Duration::from_millis(1);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it get 503.
    pub queue_capacity: usize,
    /// Server-wide engine-thread budget, divided across the workers: each
    /// request runs its passes with `thread_budget / workers` workers
    /// (at least 1).
    pub thread_budget: usize,
    /// Largest accepted request body, in bytes (CSV uploads).
    pub max_body_bytes: usize,
    /// Seconds suggested to backpressured clients via `Retry-After`.
    pub retry_after_seconds: u64,
    /// Requests served on one connection before the server closes it
    /// (bounds how long one client can monopolize the pipeline).
    pub keepalive_max_requests: usize,
    /// How long a parked connection may sit idle before the watcher
    /// drops it.
    pub keepalive_idle: Duration,
    /// Per-peer admission rate in requests/second; `0.0` (the default)
    /// disables admission control.
    pub admission_rate: f64,
    /// Per-peer admission burst: requests a quiet peer may issue
    /// back-to-back before the rate applies.
    pub admission_burst: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cores.clamp(1, 8),
            queue_capacity: 64,
            thread_budget: cores,
            max_body_bytes: 16 << 20,
            retry_after_seconds: 1,
            keepalive_max_requests: 256,
            keepalive_idle: Duration::from_secs(10),
            admission_rate: 0.0,
            admission_burst: 8.0,
        }
    }
}

impl ServerConfig {
    /// The per-request engine worker count carved from the budget.
    pub fn request_threads(&self) -> usize {
        (self.thread_budget / self.workers.max(1)).max(1)
    }
}

/// The per-connection knobs a worker needs, copied out of
/// [`ServerConfig`] once at startup.
#[derive(Debug, Clone, Copy)]
struct ConnLimits {
    max_body: usize,
    max_requests: usize,
    idle: Duration,
    retry_after: u64,
}

/// One live client connection as it moves between the accept loop, the
/// worker pool, and the idle watcher.
///
/// The buffered reader persists for the connection's whole life — a
/// pipelined next request sits in its buffer, so dropping the reader
/// between requests would lose bytes. The writer is a `try_clone` of the
/// same socket (interim `100 Continue` responses are written while the
/// reader holds a mutable borrow).
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Requests already answered on this connection.
    served: usize,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Conn> {
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(Conn { reader: BufReader::new(stream), writer, served: 0 })
    }

    fn socket(&self) -> &TcpStream {
        self.reader.get_ref()
    }
}

/// A connection parked with the idle watcher.
#[derive(Debug)]
struct Parked {
    conn: Conn,
    /// When the watcher gives up on the connection.
    deadline: Instant,
}

/// A running server: the listener thread, the worker pool, the idle
/// watcher, and the shared engine. Dropping it (or calling
/// [`Server::shutdown`]) stops the accept loop, drains queued
/// connections, drops parked ones, and joins every thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ApiState>,
    stop: Arc<AtomicBool>,
    sender: SyncSender<Option<Conn>>,
    accept_handle: Option<JoinHandle<()>>,
    watcher_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the pipeline, and start serving `engine`.
    ///
    /// The engine's execution options are replaced with the per-request
    /// slice of the server's thread budget
    /// ([`ServerConfig::request_threads`]); every other engine setting
    /// (seed, rate, auto threshold, cache budget, pre-registered tables)
    /// is preserved.
    pub fn start(engine: Engine, config: ServerConfig) -> io::Result<Server> {
        let engine = engine.with_exec(ExecOptions::new(config.request_threads()));
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let admission_rejections = Arc::new(AtomicU64::new(0));
        let admission = Arc::new(AdmissionControl::new(
            config.admission_rate,
            config.admission_burst,
            Arc::clone(&admission_rejections),
        ));
        let state = Arc::new(ApiState {
            engine: SharedEngine::new(engine),
            queue_depth: Arc::new(AtomicUsize::new(0)),
            queue_capacity: config.queue_capacity,
            workers: config.workers.max(1),
            request_threads: config.request_threads(),
            requests_served: AtomicU64::new(0),
            requests_rejected: Arc::new(AtomicU64::new(0)),
            keepalive_reuses: AtomicU64::new(0),
            admission_rejections,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let limits = ConnLimits {
            max_body: config.max_body_bytes,
            max_requests: config.keepalive_max_requests.max(1),
            idle: config.keepalive_idle,
            retry_after: config.retry_after_seconds,
        };

        // `None` is the shutdown sentinel: it stops exactly one worker.
        let (sender, receiver) = mpsc::sync_channel::<Option<Conn>>(config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let parked: Arc<Mutex<Vec<Parked>>> = Arc::new(Mutex::new(Vec::new()));
        let worker_handles: Vec<JoinHandle<()>> = (0..state.workers)
            .map(|_| {
                let state = Arc::clone(&state);
                let receiver = Arc::clone(&receiver);
                let parked = Arc::clone(&parked);
                let admission = Arc::clone(&admission);
                std::thread::spawn(move || {
                    worker_loop(&state, &receiver, &parked, &admission, limits)
                })
            })
            .collect();

        let watcher_handle = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let parked = Arc::clone(&parked);
            let sender = sender.clone();
            std::thread::spawn(move || watcher_loop(&state, &parked, &sender, &stop, limits))
        };

        let accept_handle = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let sender = sender.clone();
            std::thread::spawn(move || accept_loop(&listener, sender, &state, &stop, limits))
        };

        Ok(Server {
            addr,
            state,
            stop,
            sender,
            accept_handle: Some(accept_handle),
            watcher_handle: Some(watcher_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine, for in-process registration or inspection.
    pub fn engine(&self) -> &SharedEngine {
        &self.state.engine
    }

    /// The state `/stats` reads, for in-process assertions.
    pub fn state(&self) -> &ApiState {
        &self.state
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(accept_handle) = self.accept_handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // One sentinel per worker stops the pool after the queue drains;
        // workers never depend on the accept thread exiting.
        for _ in 0..self.worker_handles.len() {
            let _ = self.sender.send(None);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // The watcher notices the stop flag on its next sweep and drops
        // every parked connection.
        if let Some(watcher) = self.watcher_handle.take() {
            let _ = watcher.join();
        }
        // Unblock the accept loop with one throwaway connection. When
        // the bound address is not directly connectable (say 0.0.0.0),
        // fall back to loopback on the same port; if neither connects,
        // detach the accept thread instead of hanging the shutdown.
        let timeout = Duration::from_secs(1);
        let woke = TcpStream::connect_timeout(&self.addr, timeout).is_ok()
            || TcpStream::connect_timeout(
                &SocketAddr::from(([127, 0, 0, 1], self.addr.port())),
                timeout,
            )
            .is_ok();
        if woke {
            let _ = accept_handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    sender: SyncSender<Option<Conn>>,
    state: &ApiState,
    stop: &AtomicBool,
    limits: ConnLimits,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(conn) = Conn::new(stream) else { continue };
        enqueue_or_reject(&sender, conn, state, limits.retry_after);
    }
}

/// The backpressure decision: queue the connection, or — when the bounded
/// queue is full — answer 503 + `Retry-After` immediately, so overload
/// never costs a worker. Shared by the accept loop (fresh connections)
/// and the idle watcher (woken keep-alive connections): both sides of
/// the pipeline give the same answer under the same pressure.
fn enqueue_or_reject(
    sender: &SyncSender<Option<Conn>>,
    conn: Conn,
    state: &ApiState,
    retry_after: u64,
) {
    state.queue_depth.fetch_add(1, Ordering::Relaxed);
    match sender.try_send(Some(conn)) {
        Ok(()) => {}
        Err(TrySendError::Full(Some(mut conn))) => {
            state.queue_depth.fetch_sub(1, Ordering::Relaxed);
            state.requests_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = Response::overloaded(retry_after).write_to(&mut conn.writer);
        }
        Err(TrySendError::Full(None)) => unreachable!("only connections are queued"),
        Err(TrySendError::Disconnected(_)) => {
            state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(
    state: &ApiState,
    receiver: &Mutex<Receiver<Option<Conn>>>,
    parked: &Mutex<Vec<Parked>>,
    admission: &AdmissionControl,
    limits: ConnLimits,
) {
    loop {
        // Hold the lock only for the dequeue itself.
        let conn = match receiver.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(Some(conn)) => conn,
            // Sentinel or closed channel: server shutting down.
            Ok(None) | Err(_) => return,
        };
        state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        if let Some(conn) = drive_connection(state, conn, admission, limits) {
            park(parked, conn, limits.idle);
        }
    }
}

/// Serve requests on one connection until it closes, goes bad, hits the
/// per-connection cap — or goes idle, in which case the connection comes
/// back (`Some`) for the idle watcher and the worker returns to the
/// queue.
fn drive_connection(
    state: &ApiState,
    mut conn: Conn,
    admission: &AdmissionControl,
    limits: ConnLimits,
) -> Option<Conn> {
    loop {
        let (response, close) =
            match http::read_request(&mut conn.reader, &conn.writer, limits.max_body) {
                // The admission check charges the peer's token bucket per
                // *request*, not per connection — a client fanning out over
                // many keep-alive connections drains the same bucket. A
                // rejected request costs a 503 write but keeps the
                // connection usable (the client honors Retry-After and
                // tries again on the same socket).
                Ok(ReadOutcome::Request(request)) if !admission.admit_socket(conn.socket()) => {
                    (Response::overloaded(limits.retry_after), request.close)
                }
                Ok(ReadOutcome::Request(request)) => {
                    state.requests_served.fetch_add(1, Ordering::Relaxed);
                    if conn.served > 0 {
                        state.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
                    }
                    let close = request.close;
                    (api::handle(state, &request), close)
                }
                Ok(ReadOutcome::Bad(bad)) => {
                    // The framing can't be trusted past a malformed request:
                    // answer it and close.
                    state.requests_served.fetch_add(1, Ordering::Relaxed);
                    (Response::error(bad.status, &bad.message), true)
                }
                // Clean close, or the client went away mid-request.
                Ok(ReadOutcome::Closed) | Err(_) => return None,
            };
        if response.write_to(&mut conn.writer).is_err() {
            return None;
        }
        conn.served += 1;
        if close || conn.served >= limits.max_requests {
            return None;
        }
        // A pipelined next request is already buffered: serve it now.
        if !conn.reader.buffer().is_empty() {
            continue;
        }
        // Linger briefly for the next request; park the connection with
        // the watcher instead of pinning this worker on an idle client.
        match wait_for_data(conn.socket(), KEEPALIVE_GRACE) {
            Wait::Ready => continue,
            Wait::Closed => return None,
            Wait::Idle => return Some(conn),
        }
    }
}

/// What a bounded peek at the socket found.
enum Wait {
    /// Bytes are waiting to be read.
    Ready,
    /// The peer closed (or the socket errored).
    Closed,
    /// Nothing arrived within the bound.
    Idle,
}

/// Peek for readable data, blocking at most `grace`. Restores the
/// regular I/O timeout before returning.
fn wait_for_data(socket: &TcpStream, grace: Duration) -> Wait {
    let mut probe = [0u8; 1];
    let _ = socket.set_read_timeout(Some(grace));
    let result = socket.peek(&mut probe);
    let _ = socket.set_read_timeout(Some(IO_TIMEOUT));
    match result {
        Ok(0) => Wait::Closed,
        Ok(_) => Wait::Ready,
        Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut) => {
            Wait::Idle
        }
        Err(_) => Wait::Closed,
    }
}

/// Hand an idle connection to the watcher (non-blocking from here on, so
/// the watcher's sweep never stalls behind one socket).
fn park(parked: &Mutex<Vec<Parked>>, conn: Conn, idle: Duration) {
    if conn.socket().set_nonblocking(true).is_err() {
        return; // dying socket: drop it
    }
    let deadline = Instant::now() + idle;
    parked.lock().unwrap_or_else(|e| e.into_inner()).push(Parked { conn, deadline });
}

/// The idle watcher: sweep parked connections with non-blocking peeks.
/// Readable connections re-enter the work queue (503 under a full queue,
/// like any fresh arrival), closed and expired ones are dropped. On
/// shutdown every parked connection is dropped.
fn watcher_loop(
    state: &ApiState,
    parked: &Mutex<Vec<Parked>>,
    sender: &SyncSender<Option<Conn>>,
    stop: &AtomicBool,
    limits: ConnLimits,
) {
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(WATCHER_SWEEP);
        let mut list = parked.lock().unwrap_or_else(|e| e.into_inner());
        let now = Instant::now();
        let mut i = 0;
        while i < list.len() {
            let mut probe = [0u8; 1];
            enum Sweep {
                Keep,
                Drop,
                Wake,
            }
            let decision = match list[i].conn.socket().peek(&mut probe) {
                Ok(0) => Sweep::Drop,
                Ok(_) => Sweep::Wake,
                Err(e) if matches!(e.kind(), io::ErrorKind::WouldBlock) => {
                    if now >= list[i].deadline {
                        Sweep::Drop
                    } else {
                        Sweep::Keep
                    }
                }
                Err(_) => Sweep::Drop,
            };
            match decision {
                Sweep::Keep => i += 1,
                Sweep::Drop => {
                    list.swap_remove(i);
                }
                Sweep::Wake => {
                    let woken = list.swap_remove(i);
                    if woken.conn.socket().set_nonblocking(false).is_ok() {
                        enqueue_or_reject(sender, woken.conn, state, limits.retry_after);
                    }
                }
            }
        }
    }
    parked.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{self, Client};
    use crate::json::Json;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn engine_with_table(rows: usize) -> Engine {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..rows {
            b.push_row(&[Value::str(["a", "b", "c"][i % 3]), Value::Float64((i % 13) as f64)])
                .unwrap();
        }
        let mut engine = Engine::new().with_seed(1);
        engine.register("t", b.finish());
        engine
    }

    fn config(workers: usize) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: 16,
            thread_budget: workers,
            max_body_bytes: 1 << 20,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn serves_health_query_and_stats_end_to_end() {
        let server = Server::start(engine_with_table(4000), config(2)).unwrap();
        let addr = server.addr();

        let (status, body) = client::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(Json::parse(&body).unwrap().get("status").unwrap().as_str(), Some("ok"));

        let q = r#"{"sql":"SELECT g, AVG(x) FROM t GROUP BY g","mode":"approximate"}"#;
        let (status, body) = client::post(addr, "/query", q).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("report").unwrap().get("cache_hit").unwrap().as_bool(), Some(false));
        let (_, body) = client::post(addr, "/query", q).unwrap();
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("report").unwrap().get("cache_hit").unwrap().as_bool(), Some(true));

        let (status, body) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        let stats = Json::parse(&body).unwrap();
        assert_eq!(stats.get("stats_passes").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache_misses").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("requests_served").unwrap().as_u64(), Some(4));
        assert_eq!(stats.get("keepalive_reuses").unwrap().as_u64(), Some(0));
        server.shutdown();
    }

    #[test]
    fn keepalive_serves_many_requests_on_one_connection() {
        let server = Server::start(engine_with_table(4000), config(2)).unwrap();
        let mut client = Client::new(server.addr());
        let q = r#"{"sql":"SELECT g, AVG(x) FROM t GROUP BY g","mode":"approximate"}"#;
        for _ in 0..5 {
            let (status, _) = client.post("/query", q).unwrap();
            assert_eq!(status, 200);
        }
        assert_eq!(client.connects(), 1, "five requests, one TCP connect");
        assert_eq!(server.state().requests_served.load(Ordering::Relaxed), 5);
        assert_eq!(server.state().keepalive_reuses.load(Ordering::Relaxed), 4);
        server.shutdown();
    }

    #[test]
    fn keepalive_max_requests_caps_a_connection() {
        let mut cfg = config(1);
        cfg.keepalive_max_requests = 2;
        let server = Server::start(engine_with_table(100), cfg).unwrap();
        let mut client = Client::new(server.addr());
        for _ in 0..5 {
            let (status, _) = client.get("/healthz").unwrap();
            assert_eq!(status, 200);
        }
        // Two requests per connection: 5 requests need 3 connects.
        assert_eq!(client.connects(), 3);
        server.shutdown();
    }

    #[test]
    fn idle_connection_does_not_pin_the_only_worker() {
        let server = Server::start(engine_with_table(100), config(1)).unwrap();
        let mut idle = Client::new(server.addr());
        let (status, _) = idle.get("/healthz").unwrap();
        assert_eq!(status, 200);
        // Give the single worker time to park the idle connection.
        std::thread::sleep(Duration::from_millis(50));
        // A second client must get through even though the first
        // connection is still open.
        let (status, _) = client::get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        // And the parked connection still works when it wakes up.
        let (status, _) = idle.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(idle.connects(), 1);
        server.shutdown();
    }

    #[test]
    fn idle_timeout_closes_parked_connections() {
        let mut cfg = config(1);
        cfg.keepalive_idle = Duration::from_millis(50);
        let server = Server::start(engine_with_table(100), cfg).unwrap();
        let mut client = Client::new(server.addr());
        let (status, _) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        std::thread::sleep(Duration::from_millis(250));
        // The server dropped the idle connection; the client notices the
        // stale socket and reconnects transparently.
        let (status, _) = client.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(client.connects(), 2);
        server.shutdown();
    }

    #[test]
    fn backpressure_answers_503_with_retry_after() {
        // A full queue must be answered from the accept thread. Drive the
        // decision directly: a capacity-1 channel holding one idle
        // connection is exactly the saturated state.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let parked = TcpStream::connect(addr).unwrap();
        let (queued, _) = listener.accept().unwrap();
        let incoming = TcpStream::connect(addr).unwrap();
        let (rejected, _) = listener.accept().unwrap();

        let (sender, _receiver) = mpsc::sync_channel::<Option<Conn>>(1);
        let state = ApiState {
            engine: SharedEngine::new(Engine::new()),
            queue_depth: Arc::new(AtomicUsize::new(0)),
            queue_capacity: 1,
            workers: 1,
            request_threads: 1,
            requests_served: AtomicU64::new(0),
            requests_rejected: Arc::new(AtomicU64::new(0)),
            keepalive_reuses: AtomicU64::new(0),
            admission_rejections: Arc::new(AtomicU64::new(0)),
        };
        enqueue_or_reject(&sender, Conn::new(queued).unwrap(), &state, 7);
        assert_eq!(state.queue_depth.load(Ordering::Relaxed), 1);
        enqueue_or_reject(&sender, Conn::new(rejected).unwrap(), &state, 7);
        assert_eq!(state.queue_depth.load(Ordering::Relaxed), 1, "rejected never queued");
        assert_eq!(state.requests_rejected.load(Ordering::Relaxed), 1);

        let raw = client::read_response_raw(&incoming).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 "), "{text}");
        assert!(text.contains("Retry-After: 7\r\n"), "{text}");
        drop(parked);
    }

    #[test]
    fn admission_is_fair_across_keepalive_connections() {
        // Rate 1/s with burst 3: three requests are admitted back-to-back,
        // then the peer's bucket is dry for ~a second — including for a
        // *fresh* connection from the same address, which is the point of
        // keying buckets by IP rather than by connection.
        let mut cfg = config(2);
        cfg.admission_rate = 1.0;
        cfg.admission_burst = 3.0;
        let server = Server::start(engine_with_table(100), cfg).unwrap();
        let mut first = Client::new(server.addr());
        for _ in 0..3 {
            let (status, _) = first.get("/healthz").unwrap();
            assert_eq!(status, 200);
        }
        let (status, body) = first.get("/healthz").unwrap();
        assert_eq!(status, 503, "{body}");
        let mut second = Client::new(server.addr());
        let (status, _) = second.get("/healthz").unwrap();
        assert_eq!(status, 503, "a new connection from the same peer shares the bucket");
        assert!(server.state().admission_rejections.load(Ordering::Relaxed) >= 2);
        // The 503s kept both connections open; after a refill the same
        // sockets serve again.
        std::thread::sleep(Duration::from_millis(1100));
        let (status, _) = first.get("/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(first.connects(), 1, "rejections must not close the connection");
        // Admission rejections are reported separately from queue
        // rejections on /stats.
        std::thread::sleep(Duration::from_millis(1100));
        let (status, body) = client::get(server.addr(), "/stats").unwrap();
        assert_eq!(status, 200);
        let stats = Json::parse(&body).unwrap();
        assert!(stats.get("admission_rejections").unwrap().as_u64().unwrap() >= 2);
        assert_eq!(stats.get("requests_rejected").unwrap().as_u64(), Some(0));
        server.shutdown();
    }

    #[test]
    fn config_carves_request_threads_from_budget() {
        let mut c = config(4);
        c.thread_budget = 8;
        assert_eq!(c.request_threads(), 2);
        c.thread_budget = 2;
        assert_eq!(c.request_threads(), 1, "never below one worker");
        c.workers = 0;
        assert_eq!(c.request_threads(), 2, "zero workers clamps");
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let server = Server::start(engine_with_table(100), config(1)).unwrap();
        let (status, body) =
            client::request_parsed(server.addr(), "PUT", "/query", Some("{}")).unwrap();
        assert_eq!(status, 405, "{body}");
        let (status, _) = client::post(server.addr(), "/query", "{ not json").unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }
}

//! The threaded server: a fixed accept-loop → bounded work-queue →
//! worker-pool pipeline.
//!
//! * The **accept loop** (one thread) takes connections off the listener
//!   and `try_send`s them into a bounded queue. When the queue is full it
//!   answers `503` with a `Retry-After` header right there — backpressure
//!   costs one write, never a worker.
//! * The **worker pool** (a fixed number of threads) drains the queue,
//!   parses one request per connection, and answers through
//!   [`crate::api::handle`].
//! * Each request runs its engine passes with
//!   [`ServerConfig::request_threads`] workers — the server-wide thread
//!   budget divided across the pool — so a saturated server never
//!   oversubscribes the machine.
//!
//! Because the engine's answers are deterministic and responses carry no
//! clock-dependent headers, a response is a pure function of the request
//! sequence — the whole pipeline preserves the workspace's determinism
//! contract across the wire.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cvopt_core::{Engine, ExecOptions};

use crate::api::{self, ApiState};
use crate::http::{self, Response};
use crate::shared::SharedEngine;

/// Seconds suggested to backpressured clients via `Retry-After`.
const RETRY_AFTER_SECONDS: u64 = 1;

/// How long a worker waits for a slow client before giving up on the
/// connection.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// Bounded queue capacity; connections beyond it get 503.
    pub queue_capacity: usize,
    /// Server-wide engine-thread budget, divided across the workers: each
    /// request runs its passes with `thread_budget / workers` workers
    /// (at least 1).
    pub thread_budget: usize,
    /// Largest accepted request body, in bytes (CSV uploads).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: cores.clamp(1, 8),
            queue_capacity: 64,
            thread_budget: cores,
            max_body_bytes: 16 << 20,
        }
    }
}

impl ServerConfig {
    /// The per-request engine worker count carved from the budget.
    pub fn request_threads(&self) -> usize {
        (self.thread_budget / self.workers.max(1)).max(1)
    }
}

/// A running server: the listener thread, the worker pool, and the shared
/// engine. Dropping it (or calling [`Server::shutdown`]) stops the accept
/// loop, drains queued connections, and joins every thread.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    state: Arc<ApiState>,
    stop: Arc<AtomicBool>,
    sender: SyncSender<Option<TcpStream>>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind, spawn the pipeline, and start serving `engine`.
    ///
    /// The engine's execution options are replaced with the per-request
    /// slice of the server's thread budget
    /// ([`ServerConfig::request_threads`]); every other engine setting
    /// (seed, rate, auto threshold, pre-registered tables) is preserved.
    pub fn start(engine: Engine, config: ServerConfig) -> io::Result<Server> {
        let engine = engine.with_exec(ExecOptions::new(config.request_threads()));
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let state = Arc::new(ApiState {
            engine: SharedEngine::new(engine),
            queue_depth: Arc::new(AtomicUsize::new(0)),
            queue_capacity: config.queue_capacity,
            workers: config.workers.max(1),
            request_threads: config.request_threads(),
            requests_served: AtomicU64::new(0),
            requests_rejected: Arc::new(AtomicU64::new(0)),
        });
        let stop = Arc::new(AtomicBool::new(false));

        // `None` is the shutdown sentinel: it stops exactly one worker.
        let (sender, receiver) = mpsc::sync_channel::<Option<TcpStream>>(config.queue_capacity);
        let receiver = Arc::new(Mutex::new(receiver));
        let worker_handles: Vec<JoinHandle<()>> = (0..state.workers)
            .map(|_| {
                let state = Arc::clone(&state);
                let receiver = Arc::clone(&receiver);
                let max_body = config.max_body_bytes;
                std::thread::spawn(move || worker_loop(&state, &receiver, max_body))
            })
            .collect();

        let accept_handle = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            let sender = sender.clone();
            std::thread::spawn(move || accept_loop(&listener, sender, &state, &stop))
        };

        Ok(Server { addr, state, stop, sender, accept_handle: Some(accept_handle), worker_handles })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine, for in-process registration or inspection.
    pub fn engine(&self) -> &SharedEngine {
        &self.state.engine
    }

    /// The state `/stats` reads, for in-process assertions.
    pub fn state(&self) -> &ApiState {
        &self.state
    }

    /// Stop accepting, drain the queue, and join every thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(accept_handle) = self.accept_handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::SeqCst);
        // One sentinel per worker stops the pool after the queue drains;
        // workers never depend on the accept thread exiting.
        for _ in 0..self.worker_handles.len() {
            let _ = self.sender.send(None);
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
        // Unblock the accept loop with one throwaway connection. When
        // the bound address is not directly connectable (say 0.0.0.0),
        // fall back to loopback on the same port; if neither connects,
        // detach the accept thread instead of hanging the shutdown.
        let timeout = Duration::from_secs(1);
        let woke = TcpStream::connect_timeout(&self.addr, timeout).is_ok()
            || TcpStream::connect_timeout(
                &SocketAddr::from(([127, 0, 0, 1], self.addr.port())),
                timeout,
            )
            .is_ok();
        if woke {
            let _ = accept_handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    sender: SyncSender<Option<TcpStream>>,
    state: &ApiState,
    stop: &AtomicBool,
) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        enqueue_or_reject(&sender, stream, state);
    }
}

/// The backpressure decision: queue the connection, or — when the bounded
/// queue is full — answer 503 + `Retry-After` immediately from the accept
/// thread so overload never costs a worker.
fn enqueue_or_reject(sender: &SyncSender<Option<TcpStream>>, stream: TcpStream, state: &ApiState) {
    state.queue_depth.fetch_add(1, Ordering::Relaxed);
    match sender.try_send(Some(stream)) {
        Ok(()) => {}
        Err(TrySendError::Full(Some(mut stream))) => {
            state.queue_depth.fetch_sub(1, Ordering::Relaxed);
            state.requests_rejected.fetch_add(1, Ordering::Relaxed);
            let _ = Response::overloaded(RETRY_AFTER_SECONDS).write_to(&mut stream);
        }
        Err(TrySendError::Full(None)) => unreachable!("accept loop only queues connections"),
        Err(TrySendError::Disconnected(_)) => {
            state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

fn worker_loop(state: &ApiState, receiver: &Mutex<Receiver<Option<TcpStream>>>, max_body: usize) {
    loop {
        // Hold the lock only for the dequeue itself.
        let stream = match receiver.lock().unwrap_or_else(|e| e.into_inner()).recv() {
            Ok(Some(stream)) => stream,
            // Sentinel or closed channel: server shutting down.
            Ok(None) | Err(_) => return,
        };
        state.queue_depth.fetch_sub(1, Ordering::Relaxed);
        state.requests_served.fetch_add(1, Ordering::Relaxed);
        handle_connection(state, stream, max_body);
    }
}

/// One connection, one request, one response.
fn handle_connection(state: &ApiState, mut stream: TcpStream, max_body: usize) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let response = match http::read_request(&stream, &stream, max_body) {
        Ok(Ok(request)) => api::handle(state, &request),
        Ok(Err(bad)) => Response::error(bad.status, &bad.message),
        Err(_) => return, // client went away mid-request; nothing to answer
    };
    let _ = response.write_to(&mut stream);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::json::Json;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn engine_with_table(rows: usize) -> Engine {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..rows {
            b.push_row(&[Value::str(["a", "b", "c"][i % 3]), Value::Float64((i % 13) as f64)])
                .unwrap();
        }
        let mut engine = Engine::new().with_seed(1);
        engine.register_table("t", b.finish());
        engine
    }

    fn config(workers: usize) -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            queue_capacity: 16,
            thread_budget: workers,
            max_body_bytes: 1 << 20,
        }
    }

    #[test]
    fn serves_health_query_and_stats_end_to_end() {
        let server = Server::start(engine_with_table(4000), config(2)).unwrap();
        let addr = server.addr();

        let (status, body) = client::get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(Json::parse(&body).unwrap().get("status").unwrap().as_str(), Some("ok"));

        let q = r#"{"sql":"SELECT g, AVG(x) FROM t GROUP BY g","mode":"approximate"}"#;
        let (status, body) = client::post(addr, "/query", q).unwrap();
        assert_eq!(status, 200, "{body}");
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("report").unwrap().get("cache_hit").unwrap().as_bool(), Some(false));
        let (_, body) = client::post(addr, "/query", q).unwrap();
        let parsed = Json::parse(&body).unwrap();
        assert_eq!(parsed.get("report").unwrap().get("cache_hit").unwrap().as_bool(), Some(true));

        let (status, body) = client::get(addr, "/stats").unwrap();
        assert_eq!(status, 200);
        let stats = Json::parse(&body).unwrap();
        assert_eq!(stats.get("stats_passes").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("cache_misses").unwrap().as_u64(), Some(1));
        assert_eq!(stats.get("requests_served").unwrap().as_u64(), Some(4));
        server.shutdown();
    }

    #[test]
    fn backpressure_answers_503_with_retry_after() {
        // A full queue must be answered from the accept thread. Drive the
        // decision directly: a capacity-1 channel holding one idle
        // connection is exactly the saturated state.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let parked = TcpStream::connect(addr).unwrap();
        let (queued, _) = listener.accept().unwrap();
        let incoming = TcpStream::connect(addr).unwrap();
        let (rejected, _) = listener.accept().unwrap();

        let (sender, _receiver) = mpsc::sync_channel::<Option<TcpStream>>(1);
        let state = ApiState {
            engine: SharedEngine::new(Engine::new()),
            queue_depth: Arc::new(AtomicUsize::new(0)),
            queue_capacity: 1,
            workers: 1,
            request_threads: 1,
            requests_served: AtomicU64::new(0),
            requests_rejected: Arc::new(AtomicU64::new(0)),
        };
        enqueue_or_reject(&sender, queued, &state);
        assert_eq!(state.queue_depth.load(Ordering::Relaxed), 1);
        enqueue_or_reject(&sender, rejected, &state);
        assert_eq!(state.queue_depth.load(Ordering::Relaxed), 1, "rejected never queued");
        assert_eq!(state.requests_rejected.load(Ordering::Relaxed), 1);

        let raw = client::read_response_raw(&incoming).unwrap();
        let text = String::from_utf8(raw).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 "), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        drop(parked);
    }

    #[test]
    fn config_carves_request_threads_from_budget() {
        let mut c = config(4);
        c.thread_budget = 8;
        assert_eq!(c.request_threads(), 2);
        c.thread_budget = 2;
        assert_eq!(c.request_threads(), 1, "never below one worker");
        c.workers = 0;
        assert_eq!(c.request_threads(), 2, "zero workers clamps");
    }

    #[test]
    fn malformed_requests_get_400_not_a_hang() {
        let server = Server::start(engine_with_table(100), config(1)).unwrap();
        let (status, body) =
            client::request_parsed(server.addr(), "PUT", "/query", Some("{}")).unwrap();
        assert_eq!(status, 405, "{body}");
        let (status, _) = client::post(server.addr(), "/query", "{ not json").unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }
}

//! # cvopt-serve
//!
//! The serving layer: a long-lived, std-only threaded HTTP/1.1 server
//! over the CVOPT [`Engine`](cvopt_core::Engine) — the deployment model
//! the paper motivates (precompute the stratified sample once, answer
//! many group-by queries from it), exposed to concurrent clients.
//!
//! ## Pipeline
//!
//! ```text
//! accept loop ──► bounded work queue ──► worker pool ──► SharedEngine
//!      │                (503 + Retry-After when full)   │        │
//!      └── one thread           idle watcher ◄── parked ┘   RwLock: queries
//!                               (keep-alive conns wait          share the read
//!                                here, not on a worker)         lock; registration
//!                                                               takes the write lock
//! ```
//!
//! Connections are persistent (HTTP/1.1 keep-alive): a [`Client`] can
//! issue many requests over one TCP connect. A connection only occupies
//! a worker while a request is in flight — between requests it parks
//! with the idle watcher, which re-queues it when bytes arrive and drops
//! it at the idle timeout or per-connection request cap.
//!
//! * [`SharedEngine`] shares one engine across the pool: cache **hits**
//!   take only a read lock, and concurrent cache **misses** for the same
//!   problem coalesce into a single sampling run inside the engine.
//! * Each request's passes run with a fixed slice of the server-wide
//!   thread budget ([`ServerConfig::request_threads`]).
//! * Responses are byte-deterministic: the engine's answers are pure
//!   functions of (table, problem, seed), the JSON writer renders values
//!   canonically, and no clock-dependent header is emitted — so the
//!   determinism contract the execution layer pins per-thread-count
//!   extends across the wire, client count included.
//!
//! ## Example
//!
//! ```
//! use cvopt_core::{Engine, QueryMode};
//! use cvopt_serve::{client, Json, Server, ServerConfig};
//! use cvopt_table::{DataType, TableBuilder, Value};
//!
//! // An engine with one registered table...
//! let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
//! for i in 0..4000u32 {
//!     let g = ["a", "b", "c"][(i % 3) as usize];
//!     b.push_row(&[Value::str(g), Value::Float64((i % 37) as f64)]).unwrap();
//! }
//! let mut engine = Engine::new().with_seed(7);
//! engine.register("events", b.finish());
//!
//! // ...served on an ephemeral port.
//! let server = Server::start(engine, ServerConfig::default()).unwrap();
//! let body = r#"{"sql":"SELECT g, AVG(x) FROM events GROUP BY g","mode":"approximate"}"#;
//! let (status, text) = client::post(server.addr(), "/query", body).unwrap();
//! assert_eq!(status, 200);
//! let answer = Json::parse(&text).unwrap();
//! assert_eq!(answer.get("report").unwrap().get("cache_hit").unwrap().as_bool(), Some(false));
//!
//! // The repeat is served from the prepared-sample cache: zero scans.
//! let (_, text) = client::post(server.addr(), "/query", body).unwrap();
//! let answer = Json::parse(&text).unwrap();
//! assert_eq!(answer.get("report").unwrap().get("cache_hit").unwrap().as_bool(), Some(true));
//! server.shutdown();
//! ```
//!
//! The `cvopt-served` binary wraps [`Server`] behind a small CLI; see the
//! README's "Serving" section for the endpoint table and a curl
//! transcript.

#![warn(missing_docs)]

pub mod admission;
pub mod api;
pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod shared;

pub use admission::AdmissionControl;
pub use api::ApiState;
pub use client::Client;
pub use http::{Request, Response};
pub use json::Json;
pub use server::{Server, ServerConfig};
pub use shared::{EngineCounters, SharedEngine};

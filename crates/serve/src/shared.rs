//! [`SharedEngine`]: one [`Engine`] behind an `Arc<RwLock>`, shared by
//! every worker thread.
//!
//! The lock split mirrors the engine's own concurrency design
//! (see [`cvopt_core::engine`]): every query path takes the **read** lock —
//! including cache *misses*, because the prepared-sample cache uses
//! interior mutability and coalesces concurrent misses internally — so
//! queries never serialize behind each other. Only catalog mutation
//! (registering or dropping a table) takes the write lock, briefly, after
//! the table has already been built.

use std::sync::{Arc, RwLock, RwLockReadGuard};

use cvopt_core::{
    Engine, ExplainReport, IngestReport, QueryAnswer, QueryMode, ReoptimizeReport, RotateReport,
    TableSource,
};
use cvopt_table::{ShardSet, ShardedTable, Table};

/// A thread-safe handle to one long-lived [`Engine`].
///
/// Cloning is cheap (an `Arc` bump); all clones see the same catalog,
/// cache, and counters.
#[derive(Debug, Clone)]
pub struct SharedEngine {
    inner: Arc<RwLock<Engine>>,
}

/// A point-in-time copy of the engine's counters.
///
/// Taken under the read lock, which excludes catalog mutation but *not*
/// concurrent queries (they share the read lock and advance the atomic
/// counters through interior mutability) — so under load the snapshot is
/// approximate: a query in flight may have bumped `stats_passes` but not
/// yet its hit/miss counter. Each value is exact once the engine is
/// quiescent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCounters {
    /// Prepared-sample lookups served from the cache (or an in-flight
    /// coalesced run).
    pub cache_hits: u64,
    /// Prepared-sample lookups that ran a fresh statistics pass + draw.
    pub cache_misses: u64,
    /// Approximate answers derived from a *subsuming* cached sample (the
    /// sampling algebra; neither a hit nor a miss).
    pub reuse_hits: u64,
    /// Sample preparations the reuse planner avoided.
    pub draws_avoided: u64,
    /// Fresh sample preparations (statistics passes) this engine ran.
    pub stats_passes: u64,
    /// Samples currently held in the cache.
    pub cached_samples: u64,
    /// Entries evicted to keep the cache under its byte budget.
    pub cache_evictions: u64,
    /// Approximate bytes held by cached samples (a pure function of the
    /// cached data — identical on every platform).
    pub cache_bytes_held: u64,
    /// Tables currently registered in the catalog.
    pub tables: u64,
    /// Rows appended through the ingest path.
    pub ingested_rows: u64,
    /// Batches accepted by the ingest path.
    pub ingest_batches: u64,
    /// Durable samples currently under incremental maintenance.
    pub maintained_samples: u64,
    /// Retention rotations run.
    pub rotations: u64,
    /// Rows dropped by retention rotations.
    pub rows_retired: u64,
}

impl SharedEngine {
    /// Wrap `engine` for shared use.
    pub fn new(engine: Engine) -> Self {
        SharedEngine { inner: Arc::new(RwLock::new(engine)) }
    }

    /// Answer one SQL statement (read lock; see [`Engine::query`]).
    pub fn query(&self, statement: &str, mode: QueryMode) -> cvopt_core::Result<QueryAnswer> {
        self.read().query(statement, mode)
    }

    /// Report the plan for one statement (read lock; see
    /// [`Engine::explain_mode`]).
    pub fn explain(&self, statement: &str, mode: QueryMode) -> cvopt_core::Result<ExplainReport> {
        self.read().explain_mode(statement, mode)
    }

    /// Register (or replace) a catalog table from any [`TableSource`]
    /// (write lock). Mirrors [`Engine::register`].
    pub fn register(&self, name: &str, source: impl Into<TableSource>) {
        self.write().register(name, source);
    }

    /// Register (or replace) a plain table (write lock).
    #[deprecated(note = "use `SharedEngine::register(name, table)`")]
    pub fn register_table(&self, name: &str, table: Table) {
        self.register(name, table);
    }

    /// Register (or replace) a sharded table (write lock).
    #[deprecated(note = "use `SharedEngine::register(name, table)`")]
    pub fn register_sharded_table(&self, name: &str, table: ShardedTable) {
        self.register(name, table);
    }

    /// Register (or replace) a table served by remote shards (write lock).
    #[deprecated(note = "use `SharedEngine::register(name, set)`")]
    pub fn register_remote_table(&self, name: &str, set: ShardSet) {
        self.register(name, set);
    }

    /// Register (or replace) a windowed table — a retention window column
    /// plus incremental maintenance of its durable samples under ingest
    /// (write lock). Mirrors [`Engine::register_windowed`].
    pub fn register_windowed(
        &self,
        name: &str,
        source: impl Into<TableSource>,
        window: &str,
    ) -> cvopt_core::Result<()> {
        self.write().register_windowed(name, source, window).map(|_| ())
    }

    /// Append a row batch to a registered local table (write lock; see
    /// [`Engine::ingest`] — maintained samples are refreshed, everything
    /// else invalidated, never served stale).
    pub fn ingest(&self, name: &str, batch: &Table) -> cvopt_core::Result<IngestReport> {
        self.write().ingest(name, batch)
    }

    /// Drop rows below `cutoff` from a windowed table (write lock; see
    /// [`Engine::rotate`]).
    pub fn rotate(&self, name: &str, cutoff: i64) -> cvopt_core::Result<RotateReport> {
        self.write().rotate(name, cutoff)
    }

    /// Consolidate `table`'s query log into one durable reuse-candidate
    /// sample (read lock — it coalesces with in-flight queries like any
    /// preparation; see [`Engine::reoptimize`]).
    pub fn reoptimize(&self, table: &str) -> cvopt_core::Result<Option<ReoptimizeReport>> {
        self.read().reoptimize(table)
    }

    /// Registered table names, sorted (read lock).
    pub fn table_names(&self) -> Vec<String> {
        self.read().table_names().iter().map(|s| s.to_string()).collect()
    }

    /// A consistent snapshot of the engine counters (read lock).
    pub fn counters(&self) -> EngineCounters {
        let engine = self.read();
        EngineCounters {
            cache_hits: engine.cache_hits(),
            cache_misses: engine.cache_misses(),
            reuse_hits: engine.reuse_hits(),
            draws_avoided: engine.draws_avoided(),
            stats_passes: engine.stats_passes(),
            cached_samples: engine.cached_samples() as u64,
            cache_evictions: engine.cache_evictions(),
            cache_bytes_held: engine.cache_bytes_held(),
            tables: engine.table_names().len() as u64,
            ingested_rows: engine.ingested_rows(),
            ingest_batches: engine.ingest_batches(),
            maintained_samples: engine.maintained_samples() as u64,
            rotations: engine.rotations(),
            rows_retired: engine.rows_retired(),
        }
    }

    /// Run `f` under the read lock, for engine APIs not wrapped above.
    pub fn with_engine<T>(&self, f: impl FnOnce(&Engine) -> T) -> T {
        f(&self.read())
    }

    /// The read guard. A worker that panicked mid-request poisons the
    /// lock; the engine's interior state stays consistent (its own locks
    /// recover the same way), so we recover rather than wedging the
    /// server.
    fn read(&self) -> RwLockReadGuard<'_, Engine> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Engine> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{DataType, TableBuilder, Value};

    fn table(rows: usize) -> Table {
        let mut b = TableBuilder::new(&[("g", DataType::Str), ("x", DataType::Float64)]);
        for i in 0..rows {
            let g = ["a", "b", "c"][i % 3];
            b.push_row(&[Value::str(g), Value::Float64((i % 17) as f64)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn clones_share_catalog_cache_and_counters() {
        let shared = SharedEngine::new(Engine::new().with_seed(3));
        let clone = shared.clone();
        shared.register("t", table(4000));
        assert_eq!(clone.table_names(), vec!["t".to_string()]);

        let sql = "SELECT g, AVG(x) FROM t GROUP BY g";
        let a = clone.query(sql, QueryMode::Approximate).unwrap();
        assert_eq!(a.report.cache_hit, Some(false));
        let b = shared.query(sql, QueryMode::Approximate).unwrap();
        assert_eq!(b.report.cache_hit, Some(true));

        let counters = shared.counters();
        assert_eq!(counters.cache_hits, 1);
        assert_eq!(counters.cache_misses, 1);
        assert_eq!(counters.stats_passes, 1);
        assert_eq!(counters.cached_samples, 1);
        assert_eq!(counters.tables, 1);
        assert_eq!(shared.with_engine(|e| e.seed()), 3);
    }

    #[test]
    fn explain_does_not_mutate() {
        let shared = SharedEngine::new(Engine::new().with_auto_threshold(100));
        shared.register("t", table(2000));
        let report = shared.explain("SELECT g, AVG(x) FROM t GROUP BY g", QueryMode::Auto).unwrap();
        assert_eq!(report.mode, QueryMode::Approximate);
        assert_eq!(report.cache_hit, Some(false));
        assert_eq!(shared.counters().stats_passes, 0);
    }
}

//! Random-variate helpers: Box–Muller normals and log-normals, plus a tiny
//! deterministic mixer for per-group parameters.

use rand::{Rng, RngExt};

/// A standard-normal draw via the Box–Muller transform.
#[inline]
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>(); // (0, 1]
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A `N(mean, sd²)` draw.
#[inline]
pub fn normal(rng: &mut impl Rng, mean: f64, sd: f64) -> f64 {
    mean + sd * standard_normal(rng)
}

/// A log-normal draw: `exp(N(mu, sigma²))`. Always positive, mean
/// `exp(mu + sigma²/2)` — the natural shape for air-quality measurements and
/// trip durations, and it guarantees the non-zero group means CVOPT needs.
#[inline]
pub fn log_normal(rng: &mut impl Rng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// SplitMix64-style deterministic mixer: derive stable per-group parameters
/// (means, spreads, trends) from small integer coordinates without carrying
/// extra RNG state.
#[inline]
pub fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for &p in parts {
        let mut z = h ^ p.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h = z ^ (z >> 31);
    }
    h
}

/// Map a mixed hash to a float in `[lo, hi)`.
#[inline]
pub fn mix_uniform(parts: &[u64], lo: f64, hi: f64) -> f64 {
    let h = mix(parts);
    lo + (hi - lo) * ((h >> 11) as f64 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn log_normal_positive_and_mean() {
        let mut rng = StdRng::seed_from_u64(2);
        let (mu, sigma) = (1.0, 0.5);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = log_normal(&mut rng, mu, sigma);
            assert!(x > 0.0);
            sum += x;
        }
        let mean = sum / n as f64;
        let expected = (mu + sigma * sigma / 2.0f64).exp();
        assert!((mean - expected).abs() / expected < 0.03, "mean {mean} vs {expected}");
    }

    #[test]
    fn mix_is_deterministic_and_spread() {
        assert_eq!(mix(&[1, 2, 3]), mix(&[1, 2, 3]));
        assert_ne!(mix(&[1, 2, 3]), mix(&[3, 2, 1]));
        assert_ne!(mix(&[0]), mix(&[1]));
        let u = mix_uniform(&[5, 7], 2.0, 4.0);
        assert!((2.0..4.0).contains(&u));
        assert_eq!(u, mix_uniform(&[5, 7], 2.0, 4.0));
    }

    #[test]
    fn mix_uniform_covers_range() {
        let mut lo_seen = f64::INFINITY;
        let mut hi_seen = f64::NEG_INFINITY;
        for i in 0..1000 {
            let u = mix_uniform(&[i], 0.0, 1.0);
            lo_seen = lo_seen.min(u);
            hi_seen = hi_seen.max(u);
        }
        assert!(lo_seen < 0.05 && hi_seen > 0.95, "range [{lo_seen}, {hi_seen}]");
    }
}

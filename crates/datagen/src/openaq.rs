//! Synthetic OpenAQ-like air-quality data.
//!
//! The real OpenAQ corpus the paper uses (~200M rows, 67 countries, 7
//! measured parameters, 2015–2018) is not redistributable at that scale;
//! this generator reproduces the *statistical structure* the experiments
//! depend on:
//!
//! * Zipf-skewed country and (country, parameter) volumes — many small
//!   groups, a few huge ones (Uniform misses the tail, RL over-allocates
//!   to it);
//! * per-(country, parameter) log-normal value distributions with
//!   heterogeneous means and spreads — CVOPT's variance-awareness has
//!   something to exploit;
//! * a per-country year-over-year trend on `bc` so AQ1's 2017→2018 deltas
//!   are non-trivial;
//! * positive values everywhere (group means never vanish).

use cvopt_table::time::epoch_seconds;
use cvopt_table::{DataType, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::noise::{log_normal, mix_uniform};
use crate::zipf::Zipf;

/// The seven measured parameters of the real dataset.
pub const PARAMETERS: [&str; 7] = ["bc", "co", "no2", "o3", "pm10", "pm25", "so2"];

/// Configuration for the OpenAQ generator.
#[derive(Debug, Clone)]
pub struct OpenAqConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of countries (the paper's experiments see 38 with data).
    pub countries: usize,
    /// Number of monitoring locations.
    pub locations: usize,
    /// Zipf skew of country volumes.
    pub country_skew: f64,
    /// First and last calendar year of `local_time` (inclusive).
    pub years: (i32, i32),
}

impl Default for OpenAqConfig {
    fn default() -> Self {
        OpenAqConfig {
            rows: 200_000,
            seed: 0xA17,
            countries: 38,
            locations: 400,
            country_skew: 1.1,
            years: (2015, 2018),
        }
    }
}

impl OpenAqConfig {
    /// Config with the given row count (other fields default).
    pub fn with_rows(rows: usize) -> Self {
        OpenAqConfig { rows, ..Default::default() }
    }
}

/// Two-letter-ish country code for index `i` ("C00".."C99" style keeps the
/// dictionary dense and sort order stable).
pub fn country_code(i: usize) -> String {
    format!("C{i:02}")
}

/// Generate the table. Schema:
/// `country: Str, parameter: Str, unit: Str, location: Str, value: Float64,
/// latitude: Float64, local_time: Timestamp`.
pub fn generate(config: &OpenAqConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TableBuilder::new(&[
        ("country", DataType::Str),
        ("parameter", DataType::Str),
        ("unit", DataType::Str),
        ("location", DataType::Str),
        ("value", DataType::Float64),
        ("latitude", DataType::Float64),
        ("local_time", DataType::Timestamp),
    ]);
    b.reserve(config.rows);

    // An ultra-rare tail: the last fifth of the countries are ~15x rarer
    // than the power law alone (the "two sensors in the whole country"
    // case that drives the paper's Uniform-misses-groups findings).
    let tail = config.countries / 5;
    let country_dist = Zipf::with_rare_tail(config.countries, config.country_skew, tail, 0.07);
    let param_dist = Zipf::new(PARAMETERS.len(), 0.8);
    let location_dist = Zipf::new(config.locations, 1.05);

    let (y0, y1) = config.years;
    assert!(y1 >= y0, "year range must be non-empty");
    let t_start = epoch_seconds(y0, 1, 1, 0, 0, 0);
    let t_end = epoch_seconds(y1 + 1, 1, 1, 0, 0, 0);

    let seed64 = config.seed;
    for _ in 0..config.rows {
        let c = country_dist.sample(&mut rng);
        // Rotate the parameter ranking per country so country×parameter
        // volumes are diverse, not globally aligned.
        let p = (param_dist.sample(&mut rng) + c) % PARAMETERS.len();
        let loc = location_dist.sample(&mut rng);
        let t = t_start + (rng.random::<f64>() * (t_end - t_start) as f64) as i64;
        let year = cvopt_table::time::year_of(t);

        // Per-(country, parameter) log-normal parameters, stable across rows.
        let mu = mix_uniform(&[seed64, c as u64, p as u64, 1], -1.5, 2.5);
        let sigma = mix_uniform(&[seed64, c as u64, p as u64, 2], 0.15, 1.1);
        // Per-country trend (strongest on bc, so AQ1 is interesting).
        let trend = mix_uniform(&[seed64, c as u64, p as u64, 3], -0.15, 0.25);
        let drift = 1.0 + trend * (year - y0 as i64) as f64;
        let value = log_normal(&mut rng, mu, sigma) * drift.max(0.05);

        // Unit: most parameters report µg/m³; co/bc sometimes ppm.
        let unit = if p <= 1 && mix_uniform(&[seed64, c as u64, p as u64, 4], 0.0, 1.0) > 0.6 {
            "ppm"
        } else {
            "ug_m3"
        };

        let lat_base = mix_uniform(&[seed64, c as u64, 5], -55.0, 68.0);
        let latitude = lat_base + (rng.random::<f64>() - 0.5) * 4.0;

        b.push_row(&[
            Value::str(country_code(c)),
            Value::str(PARAMETERS[p]),
            Value::str(unit),
            Value::str(format!("L{loc:04}")),
            Value::Float64(value),
            Value::Float64(latitude),
            Value::Timestamp(t),
        ])
        .expect("schema-consistent row");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{sql, ScalarExpr};

    fn small() -> Table {
        generate(&OpenAqConfig { rows: 20_000, ..Default::default() })
    }

    #[test]
    fn shape_and_determinism() {
        let t = small();
        assert_eq!(t.num_rows(), 20_000);
        assert_eq!(t.num_columns(), 7);
        let t2 = small();
        assert_eq!(t.row(12_345), t2.row(12_345));
    }

    #[test]
    fn values_positive() {
        let t = small();
        let col = t.column_by_name("value").unwrap();
        for row in 0..t.num_rows() {
            assert!(col.f64_at(row).unwrap() > 0.0);
        }
    }

    #[test]
    fn country_volumes_skewed() {
        let t = small();
        let idx = cvopt_table::GroupIndex::build(&t, &[ScalarExpr::col("country")]).unwrap();
        let mut sizes: Vec<u64> = idx.sizes().to_vec();
        sizes.sort_unstable();
        let max = *sizes.last().unwrap();
        let min = *sizes.first().unwrap();
        assert!(max > 20 * min.max(1), "skew too weak: min {min}, max {max}");
        assert!(idx.num_groups() >= 30, "most countries present");
    }

    #[test]
    fn group_means_heterogeneous() {
        let t = small();
        let r = sql::run(
            &t,
            "SELECT country, parameter, AVG(value) FROM openaq GROUP BY country, parameter",
        )
        .unwrap();
        let means: Vec<f64> = r[0].values.iter().map(|v| v[0]).collect();
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0f64, f64::max);
        assert!(hi / lo > 10.0, "means too homogeneous: [{lo}, {hi}]");
    }

    #[test]
    fn timestamps_within_years() {
        let t = small();
        let col = t.column_by_name("local_time").unwrap();
        for row in (0..t.num_rows()).step_by(997) {
            let y = cvopt_table::time::year_of(col.i64_at(row).unwrap());
            assert!((2015..=2018).contains(&y), "year {y}");
        }
    }

    #[test]
    fn units_vary_for_co_bc() {
        let t = small();
        let r = sql::run(&t, "SELECT unit, COUNT(*) FROM openaq GROUP BY unit").unwrap();
        assert_eq!(r[0].num_groups(), 2, "both units appear");
    }

    #[test]
    fn bc_trend_exists() {
        // AQ1's premise: bc averages change between 2017 and 2018 for at
        // least some countries.
        let t = generate(&OpenAqConfig { rows: 60_000, ..Default::default() });
        let q = |year: i64| {
            sql::run(
                &t,
                &format!(
                    "SELECT country, AVG(value) FROM openaq \
                     WHERE parameter = 'bc' AND YEAR(local_time) = {year} GROUP BY country"
                ),
            )
            .unwrap()
            .remove(0)
        };
        let y17 = q(2017);
        let y18 = q(2018);
        let mut moved = 0;
        for (key, v18) in y18.iter() {
            if let Some(v17) = y17.value(key, 0) {
                if ((v18[0] - v17) / v17).abs() > 0.02 {
                    moved += 1;
                }
            }
        }
        assert!(moved >= 3, "only {moved} countries moved");
    }
}

//! The paper's 8-row `Student` example table (Table 1), used by the §4.3
//! workload example, documentation, and tests.

use cvopt_table::{DataType, Table, TableBuilder, Value};

/// Build the Student table exactly as printed in the paper.
pub fn student_table() -> Table {
    let mut b = TableBuilder::new(&[
        ("id", DataType::Int64),
        ("age", DataType::Int64),
        ("gpa", DataType::Float64),
        ("sat", DataType::Int64),
        ("major", DataType::Str),
        ("college", DataType::Str),
    ]);
    let rows: [(i64, i64, f64, i64, &str, &str); 8] = [
        (1, 25, 3.4, 1250, "CS", "Science"),
        (2, 22, 3.1, 1280, "CS", "Science"),
        (3, 24, 3.8, 1230, "Math", "Science"),
        (4, 28, 3.6, 1270, "Math", "Science"),
        (5, 21, 3.5, 1210, "EE", "Engineering"),
        (6, 23, 3.2, 1260, "EE", "Engineering"),
        (7, 27, 3.7, 1220, "ME", "Engineering"),
        (8, 26, 3.3, 1230, "ME", "Engineering"),
    ];
    for (id, age, gpa, sat, major, college) in rows {
        b.push_row(&[
            Value::Int64(id),
            Value::Int64(age),
            Value::Float64(gpa),
            Value::Int64(sat),
            Value::str(major),
            Value::str(college),
        ])
        .expect("static rows match schema");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::sql;

    #[test]
    fn eight_rows_four_majors() {
        let t = student_table();
        assert_eq!(t.num_rows(), 8);
        let r = sql::run(&t, "SELECT major, AVG(gpa) FROM Student GROUP BY major").unwrap();
        assert_eq!(r[0].num_groups(), 4);
    }

    #[test]
    fn cs_age_group_matches_paper() {
        // The paper: aggregation group (age, major=CS) is the set {25, 22}.
        let t = student_table();
        let r = sql::run(
            &t,
            "SELECT major, SUM(age), COUNT(*) FROM Student WHERE major = 'CS' GROUP BY major",
        )
        .unwrap();
        assert_eq!(r[0].values[0], vec![47.0, 2.0]);
    }
}

//! # cvopt-datagen
//!
//! Seeded synthetic datasets standing in for the paper's two real-world
//! corpora (OpenAQ air quality and Divvy bike-share logs), plus the paper's
//! 8-row `Student` example.
//!
//! The generators are deterministic given a seed and reproduce the
//! statistical structure the experiments depend on — Zipf-skewed group
//! volumes, heterogeneous per-group means/variances, small groups,
//! missing-data conventions — without shipping hundreds of gigabytes.
//! See `DESIGN.md` §2 for the substitution argument.

pub mod bikes;
pub mod noise;
pub mod openaq;
pub mod student;
pub mod zipf;

pub use bikes::{generate as generate_bikes, BikesConfig};
pub use openaq::{generate as generate_openaq, OpenAqConfig};
pub use student::student_table;
pub use zipf::Zipf;

//! Synthetic Divvy-Bikes-like trip data.
//!
//! Models the structure the paper's B1–B4 queries need: Zipf-skewed station
//! popularity (619 stations in the real system), 2016–2018 trips, log-normal
//! trip durations with per-station parameters, and rider ages with a
//! missing-data convention (`age = 0` when the birth year is unknown, which
//! B1/B3 filter out with `WHERE age > 0`).

use cvopt_table::time::epoch_seconds;
use cvopt_table::{DataType, Table, TableBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::noise::{log_normal, mix_uniform, normal};
use crate::zipf::Zipf;

/// Configuration for the Bikes generator.
#[derive(Debug, Clone)]
pub struct BikesConfig {
    /// Number of trips.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Number of stations (the real system has 619).
    pub stations: usize,
    /// Zipf skew of station popularity.
    pub station_skew: f64,
    /// First and last trip year (inclusive).
    pub years: (i32, i32),
    /// Fraction of rows with unknown age (recorded as 0).
    pub missing_age_rate: f64,
}

impl Default for BikesConfig {
    fn default() -> Self {
        BikesConfig {
            rows: 100_000,
            seed: 0xB1C3,
            stations: 300,
            station_skew: 1.05,
            years: (2016, 2018),
            missing_age_rate: 0.08,
        }
    }
}

impl BikesConfig {
    /// Config with the given row count (other fields default).
    pub fn with_rows(rows: usize) -> Self {
        BikesConfig { rows, ..Default::default() }
    }
}

/// Generate the table. Schema:
/// `from_station_id: Int64, to_station_id: Int64, year: Int64,
/// start_time: Timestamp, trip_duration: Float64, age: Int64, gender: Str`.
pub fn generate(config: &BikesConfig) -> Table {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = TableBuilder::new(&[
        ("from_station_id", DataType::Int64),
        ("to_station_id", DataType::Int64),
        ("year", DataType::Int64),
        ("start_time", DataType::Timestamp),
        ("trip_duration", DataType::Float64),
        ("age", DataType::Int64),
        ("gender", DataType::Str),
    ]);
    b.reserve(config.rows);

    // A fifth of the stations form an ultra-rare tail (new or suburban
    // kiosks with a handful of trips).
    let tail = config.stations / 5;
    let station_dist = Zipf::with_rare_tail(config.stations, config.station_skew, tail, 0.08);
    let (y0, y1) = config.years;
    assert!(y1 >= y0, "year range must be non-empty");
    let t_start = epoch_seconds(y0, 1, 1, 0, 0, 0);
    let t_end = epoch_seconds(y1 + 1, 1, 1, 0, 0, 0);
    let seed64 = config.seed;

    for _ in 0..config.rows {
        let from = station_dist.sample(&mut rng);
        let to = station_dist.sample(&mut rng);
        let t = t_start + (rng.random::<f64>() * (t_end - t_start) as f64) as i64;
        let year = cvopt_table::time::year_of(t);

        // Station-dependent duration scale: suburban stations (high ids)
        // have longer, more variable trips.
        let mu = mix_uniform(&[seed64, from as u64, 11], 5.8, 7.4); // ln-seconds
        let sigma = mix_uniform(&[seed64, from as u64, 12], 0.3, 0.9);
        let trip_duration = log_normal(&mut rng, mu, sigma).clamp(60.0, 86_400.0);

        // Age: station-dependent mean (campus vs commuter stations), with a
        // missing-data spike at 0.
        let age = if rng.random::<f64>() < config.missing_age_rate {
            0
        } else {
            let mean = mix_uniform(&[seed64, from as u64, 13], 26.0, 44.0);
            (normal(&mut rng, mean, 9.0).clamp(16.0, 90.0)) as i64
        };

        let gender = match (rng.random::<f64>() * 10.0) as u32 {
            0..=5 => "Male",
            6..=8 => "Female",
            _ => "Unknown",
        };

        b.push_row(&[
            Value::Int64(from as i64 + 1),
            Value::Int64(to as i64 + 1),
            Value::Int64(year),
            Value::Timestamp(t),
            Value::Float64(trip_duration),
            Value::Int64(age),
            Value::str(gender),
        ])
        .expect("schema-consistent row");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::{sql, ScalarExpr};

    fn small() -> Table {
        generate(&BikesConfig { rows: 30_000, ..Default::default() })
    }

    #[test]
    fn shape_and_determinism() {
        let t = small();
        assert_eq!(t.num_rows(), 30_000);
        assert_eq!(t.num_columns(), 7);
        assert_eq!(t.row(123), small().row(123));
    }

    #[test]
    fn station_popularity_skewed() {
        let t = small();
        let idx =
            cvopt_table::GroupIndex::build(&t, &[ScalarExpr::col("from_station_id")]).unwrap();
        let mut sizes: Vec<u64> = idx.sizes().to_vec();
        sizes.sort_unstable();
        assert!(idx.num_groups() > 200);
        assert!(*sizes.last().unwrap() > 20 * (*sizes.first().unwrap()).max(1));
    }

    #[test]
    fn ages_valid_with_missing_spike() {
        let t = small();
        let col = t.column_by_name("age").unwrap();
        let mut zeros = 0usize;
        for row in 0..t.num_rows() {
            let a = col.i64_at(row).unwrap();
            assert!(a == 0 || (16..=90).contains(&a), "age {a}");
            if a == 0 {
                zeros += 1;
            }
        }
        let frac = zeros as f64 / t.num_rows() as f64;
        assert!((0.05..0.12).contains(&frac), "missing-age fraction {frac}");
    }

    #[test]
    fn durations_bounded_positive() {
        let t = small();
        let col = t.column_by_name("trip_duration").unwrap();
        for row in (0..t.num_rows()).step_by(701) {
            let d = col.f64_at(row).unwrap();
            assert!((60.0..=86_400.0).contains(&d));
        }
    }

    #[test]
    fn year_column_matches_start_time() {
        let t = small();
        let years = t.column_by_name("year").unwrap();
        let times = t.column_by_name("start_time").unwrap();
        for row in (0..t.num_rows()).step_by(997) {
            assert_eq!(
                years.i64_at(row).unwrap(),
                cvopt_table::time::year_of(times.i64_at(row).unwrap())
            );
        }
    }

    #[test]
    fn b1_style_query_runs() {
        let t = small();
        let r = sql::run(
            &t,
            "SELECT from_station_id, AVG(age) agg1, AVG(trip_duration) agg2 \
             FROM bikes WHERE age > 0 GROUP BY from_station_id",
        )
        .unwrap();
        assert!(r[0].num_groups() > 100);
        // Every group mean age is in the plausible band (inclusive: a
        // singleton rare-station group can sit exactly on the clamp).
        for (_, values) in r[0].iter() {
            assert!((16.0..=90.0).contains(&values[0]), "mean age {}", values[0]);
        }
    }

    #[test]
    fn genders_present() {
        let t = small();
        let r = sql::run(&t, "SELECT gender, COUNT(*) FROM bikes GROUP BY gender").unwrap();
        assert_eq!(r[0].num_groups(), 3);
    }
}

//! `openaq-rows` — print a slice of the seeded OpenAQ fixture as JSON row
//! arrays, one per line, in schema order.
//!
//! ```text
//! openaq-rows --rows N [--start S] [--len L]
//! ```
//!
//! The fixture is generated at `N` rows (the slice is taken from that
//! generation, so `--rows 21000 --start 20000` yields exactly the rows a
//! 21 000-row registration would hold beyond a 20 000-row one). This is
//! how the committed ingest log replayed by `scripts/ingest_smoke.sh` is
//! (re)generated; the output is a pure function of the arguments.

use cvopt_datagen::{generate_openaq, OpenAqConfig};
use cvopt_table::Value;

fn main() {
    let mut rows: usize = 0;
    let mut start: usize = 0;
    let mut len: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value =
            |name: &str| args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--rows" => rows = parse(&value("--rows"), "--rows"),
            "--start" => start = parse(&value("--start"), "--start"),
            "--len" => len = Some(parse(&value("--len"), "--len")),
            "--help" | "-h" => {
                println!(
                    "openaq-rows: print seeded OpenAQ fixture rows as JSON arrays\n\n\
                     options:\n  \
                     --rows N   total fixture rows to generate (required)\n  \
                     --start S  first row to print (default 0)\n  \
                     --len L    rows to print (default: through the end)"
                );
                return;
            }
            other => fail(&format!("unknown argument '{other}' (try --help)")),
        }
    }
    if rows == 0 {
        fail("--rows is required and must be at least 1");
    }
    let end = match len {
        Some(l) => start + l,
        None => rows,
    };
    if start >= end || end > rows {
        fail(&format!("slice [{start}, {end}) is not inside the {rows}-row fixture"));
    }

    let table = generate_openaq(&OpenAqConfig::with_rows(rows));
    let mut out = String::new();
    for r in start..end {
        out.push('[');
        for (c, column) in table.columns().iter().enumerate() {
            if c > 0 {
                out.push(',');
            }
            match column.value(r) {
                Value::Int64(v) => out.push_str(&v.to_string()),
                Value::Timestamp(v) => out.push_str(&v.to_string()),
                Value::Float64(v) => out.push_str(&format!("{v:?}")),
                Value::Bool(v) => out.push_str(if v { "true" } else { "false" }),
                Value::Str(s) => {
                    out.push('"');
                    for ch in s.chars() {
                        match ch {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Value::Null => out.push_str("null"),
            }
        }
        out.push_str("]\n");
    }
    print!("{out}");
}

fn parse<T: std::str::FromStr>(value: &str, name: &str) -> T {
    value.parse().unwrap_or_else(|_| fail(&format!("invalid value '{value}' for {name}")))
}

fn fail(message: &str) -> ! {
    eprintln!("openaq-rows: {message}");
    std::process::exit(2);
}

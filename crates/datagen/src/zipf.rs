//! Zipf-distributed sampling over a fixed number of items.

use rand::{Rng, RngExt};

/// A Zipf distribution over items `0..n`: `P(i) ∝ 1/(i+1)^s`.
///
/// Implemented with a precomputed CDF and binary search — exact, O(log n)
/// per sample, and independent of external distribution crates.
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Distribution over `n` items with skew exponent `s ≥ 0`
    /// (`s = 0` is uniform; larger `s` is more skewed).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s >= 0.0 && s.is_finite(), "skew must be non-negative");
        let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        Self::from_weights(&weights)
    }

    /// Distribution with explicit positive weights (not necessarily
    /// normalized). Used to model an *ultra-rare tail*: real group-size
    /// distributions (countries with two sensors, stations in test mode)
    /// fall off faster than a pure power law, and those tiny groups are
    /// precisely what separates the sampling methods.
    pub fn from_weights(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "Zipf needs at least one item");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0;
        for &w in weights {
            assert!(w > 0.0 && w.is_finite(), "weights must be positive");
            total += w;
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    /// A Zipf distribution whose last `tail` items are damped by `factor`
    /// (e.g. `0.05` makes them ~20x rarer than the power law alone).
    pub fn with_rare_tail(n: usize, s: f64, tail: usize, factor: f64) -> Self {
        assert!(tail <= n, "tail cannot exceed the item count");
        assert!(factor > 0.0 && factor <= 1.0, "damping factor in (0, 1]");
        let mut weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(s)).collect();
        for w in weights.iter_mut().skip(n - tail) {
            *w *= factor;
        }
        Self::from_weights(&weights)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the distribution has no items (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Probability of item `i`.
    pub fn probability(&self, i: usize) -> f64 {
        let total = *self.cumulative.last().expect("non-empty");
        let lo = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        (self.cumulative[i] - lo) / total
    }

    /// Draw one item.
    #[inline]
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.random::<f64>() * total;
        self.cumulative.partition_point(|&c| c <= u).min(self.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(50, 1.1);
        let total: f64 = (0..50).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skew_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for i in 0..10 {
            assert!((z.probability(i) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn monotone_decreasing_probabilities() {
        let z = Zipf::new(20, 1.5);
        for i in 1..20 {
            assert!(z.probability(i) <= z.probability(i - 1));
        }
        assert!(z.probability(0) > 5.0 * z.probability(19));
    }

    #[test]
    fn samples_match_distribution() {
        let z = Zipf::new(8, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u64; 8];
        let n = 100_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = z.probability(i) * n as f64;
            let rel = ((c as f64) - expected).abs() / expected;
            assert!(rel < 0.08, "item {i}: got {c}, expected {expected}");
        }
    }

    #[test]
    fn single_item() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.probability(0), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn from_weights_matches_manual() {
        let z = Zipf::from_weights(&[3.0, 1.0]);
        assert!((z.probability(0) - 0.75).abs() < 1e-12);
        assert!((z.probability(1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rare_tail_damps_last_items() {
        let plain = Zipf::new(10, 1.0);
        let tailed = Zipf::with_rare_tail(10, 1.0, 3, 0.1);
        // Head items gain probability mass; tail items lose ~10x.
        assert!(tailed.probability(0) > plain.probability(0));
        assert!(tailed.probability(9) < plain.probability(9) * 0.2);
        let total: f64 = (0..10).map(|i| tailed.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn non_positive_weight_panics() {
        let _ = Zipf::from_weights(&[1.0, 0.0]);
    }
}

//! The paper's evaluation queries (AQ1–AQ8, B1–B4) against the synthetic
//! OpenAQ and Bikes schemas, each paired with the [`QuerySpec`] the samplers
//! optimize for.
//!
//! Mapping notes (real → synthetic):
//! * `AQ6`'s `country = "VN"` becomes `country = 'C02'` (a mid-size country
//!   under the Zipf volume ranking).
//! * `AQ1`'s `value > 0.04` threshold for black carbon becomes `value > 1.0`
//!   (roughly the median of the synthetic `bc` distribution, so the
//!   COUNT_IF answers are non-trivial).
//! * `B2.a–c` / `AQ3.a–c` selectivity variants use calendar predicates
//!   (uniformly distributed timestamps), so the selected fraction is exact.

use cvopt_core::QuerySpec;
use cvopt_table::groupby::KeyAtom;
use cvopt_table::{AggExpr, CmpOp, GroupByQuery, Predicate, QueryResult, ScalarExpr, Table};

/// Which synthetic dataset a query runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Air-quality measurements.
    OpenAq,
    /// Bike-share trips.
    Bikes,
}

/// The paper's query-shape taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Single aggregate, single group-by.
    Sasg,
    /// Multiple aggregates, single group-by.
    Masg,
    /// Single aggregate, multiple group-by (cube).
    Samg,
    /// Multiple aggregates, multiple group-by (cube).
    Mamg,
}

impl QueryKind {
    /// Paper's label.
    pub fn label(self) -> &'static str {
        match self {
            QueryKind::Sasg => "SASG",
            QueryKind::Masg => "MASG",
            QueryKind::Samg => "SAMG",
            QueryKind::Mamg => "MAMG",
        }
    }
}

/// A paper query: the executable form plus the sampling-optimization specs.
#[derive(Debug, Clone)]
pub struct PaperQuery {
    /// Paper id ("AQ3", "B1", ...).
    pub id: &'static str,
    /// Shape class.
    pub kind: QueryKind,
    /// Dataset it runs on.
    pub dataset: Dataset,
    /// The executable query (ground truth and estimation share it).
    pub query: GroupByQuery,
    /// What the samplers optimize for (cube queries expand to one spec per
    /// grouping set, per paper §4.1).
    pub specs: Vec<QuerySpec>,
}

/// Derive the default sampler spec(s) from an executable query: same
/// group-by, the distinct aggregated value columns, weight 1.
fn specs_of(query: &GroupByQuery) -> Vec<QuerySpec> {
    let mut spec = QuerySpec::group_by_exprs(query.group_by.clone());
    let mut seen: Vec<String> = Vec::new();
    for agg in &query.aggregates {
        if let Some(input) = &agg.input {
            let name = input.display_name();
            if !seen.contains(&name) {
                seen.push(name);
                spec = spec.aggregate_column(cvopt_core::AggColumn::from_expr(input.clone()));
            }
        }
    }
    if spec.aggregates.is_empty() {
        // COUNT(*)-only query: any column works for frequencies; fall back
        // to the first group-by column is impossible (non-numeric), so this
        // case never occurs in the paper's workload.
        panic!("query has no value column to optimize for");
    }
    if query.cube {
        spec.cube()
    } else {
        vec![spec]
    }
}

fn make(id: &'static str, kind: QueryKind, dataset: Dataset, query: GroupByQuery) -> PaperQuery {
    let specs = specs_of(&query);
    PaperQuery { id, kind, dataset, query, specs }
}

/// AQ2: `SELECT country, parameter, unit, SUM(value) agg1, COUNT(*) agg2
/// FROM OpenAQ GROUP BY country, parameter, unit` (MASG).
pub fn aq2() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::col("unit")],
        vec![AggExpr::sum("value").with_alias("agg1"), AggExpr::count().with_alias("agg2")],
    );
    make("AQ2", QueryKind::Masg, Dataset::OpenAq, query)
}

/// AQ3: `AVG(value) ... WHERE HOUR(local_time) BETWEEN 0 AND 24` (SASG,
/// 100% selectivity).
pub fn aq3() -> PaperQuery {
    aq3_hours("AQ3", 23)
}

/// AQ3.a/b/c: the paper's 25/50/75% selectivity variants of AQ3.
pub fn aq3_variant(which: char) -> PaperQuery {
    match which {
        'a' => aq3_hours("AQ3.a", 5),
        'b' => aq3_hours("AQ3.b", 11),
        'c' => aq3_hours("AQ3.c", 17),
        other => panic!("unknown AQ3 variant {other}"),
    }
}

fn aq3_hours(id: &'static str, hi_hour: i64) -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::col("unit")],
        vec![AggExpr::avg("value")],
    )
    .with_predicate(Predicate::between(ScalarExpr::hour("local_time"), 0i64, hi_hour));
    make(id, QueryKind::Sasg, Dataset::OpenAq, query)
}

/// AQ4: average carbon monoxide per (country, month, year) (SASG with
/// calendar grouping).
pub fn aq4() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![
            ScalarExpr::col("country"),
            ScalarExpr::month("local_time"),
            ScalarExpr::year("local_time"),
        ],
        vec![AggExpr::avg("value")],
    )
    .with_predicate(Predicate::cmp("parameter", CmpOp::Eq, "co"));
    make("AQ4", QueryKind::Sasg, Dataset::OpenAq, query)
}

/// AQ5: `AVG(value) ... WHERE latitude > 0 GROUP BY country,parameter,unit`.
pub fn aq5() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::col("unit")],
        vec![AggExpr::avg("value").with_alias("average")],
    )
    .with_predicate(Predicate::cmp("latitude", CmpOp::Gt, 0.0));
    make("AQ5", QueryKind::Sasg, Dataset::OpenAq, query)
}

/// AQ6: `COUNT_IF(value > 0.5) ... WHERE country = 'C02'
/// GROUP BY parameter, unit` — different predicate *and* different grouping
/// than AQ3 (tests sample reuse).
pub fn aq6() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("parameter"), ScalarExpr::col("unit")],
        vec![AggExpr::count_if("value", CmpOp::Gt, 0.5).with_alias("count")],
    )
    .with_predicate(Predicate::cmp("country", CmpOp::Eq, "C02"));
    make("AQ6", QueryKind::Sasg, Dataset::OpenAq, query)
}

/// AQ7: `SUM(value) GROUP BY country, parameter WITH CUBE` (SAMG).
pub fn aq7() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![AggExpr::sum("value")],
    )
    .with_cube();
    make("AQ7", QueryKind::Samg, Dataset::OpenAq, query)
}

/// AQ8: `SUM(value), SUM(latitude) GROUP BY country, parameter WITH CUBE`
/// (MAMG).
pub fn aq8() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("country"), ScalarExpr::col("parameter")],
        vec![AggExpr::sum("value"), AggExpr::sum("latitude")],
    )
    .with_cube();
    make("AQ8", QueryKind::Mamg, Dataset::OpenAq, query)
}

/// B1: `AVG(age) agg1, AVG(trip_duration) agg2 ... WHERE age > 0
/// GROUP BY from_station_id` (MASG).
pub fn b1() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("from_station_id")],
        vec![
            AggExpr::avg("age").with_alias("agg1"),
            AggExpr::avg("trip_duration").with_alias("agg2"),
        ],
    )
    .with_predicate(Predicate::cmp("age", CmpOp::Gt, 0i64));
    make("B1", QueryKind::Masg, Dataset::Bikes, query)
}

/// B2: `AVG(trip_duration) ... WHERE trip_duration > 0
/// GROUP BY from_station_id` (SASG, 100% selectivity).
pub fn b2() -> PaperQuery {
    b2_months("B2", 12)
}

/// B2.a/b/c: 25/50/75% selectivity variants (calendar-month windows).
pub fn b2_variant(which: char) -> PaperQuery {
    match which {
        'a' => b2_months("B2.a", 3),
        'b' => b2_months("B2.b", 6),
        'c' => b2_months("B2.c", 9),
        other => panic!("unknown B2 variant {other}"),
    }
}

fn b2_months(id: &'static str, hi_month: i64) -> PaperQuery {
    let base = Predicate::cmp("trip_duration", CmpOp::Gt, 0.0);
    let predicate = if hi_month >= 12 {
        base
    } else {
        base.and(Predicate::between(ScalarExpr::month("start_time"), 1i64, hi_month))
    };
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("from_station_id")],
        vec![AggExpr::avg("trip_duration")],
    )
    .with_predicate(predicate);
    make(id, QueryKind::Sasg, Dataset::Bikes, query)
}

/// B3: `SUM(trip_duration) ... WHERE age > 0
/// GROUP BY from_station_id, year WITH CUBE` (SAMG).
pub fn b3() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("from_station_id"), ScalarExpr::col("year")],
        vec![AggExpr::sum("trip_duration")],
    )
    .with_predicate(Predicate::cmp("age", CmpOp::Gt, 0i64))
    .with_cube();
    make("B3", QueryKind::Samg, Dataset::Bikes, query)
}

/// B4: `SUM(trip_duration), SUM(age)
/// GROUP BY from_station_id, year WITH CUBE` (MAMG).
pub fn b4() -> PaperQuery {
    let query = GroupByQuery::new(
        vec![ScalarExpr::col("from_station_id"), ScalarExpr::col("year")],
        vec![AggExpr::sum("trip_duration"), AggExpr::sum("age")],
    )
    .with_cube();
    make("B4", QueryKind::Mamg, Dataset::Bikes, query)
}

/// The COUNT_IF threshold of AQ1 (`value > 1.0` on synthetic `bc`).
pub const AQ1_THRESHOLD: f64 = 1.0;

/// AQ1's sampler spec, derived via the paper's §4.3 workload machinery.
///
/// AQ1 is a *scheduled* query: two yearly sub-queries with the predicate
/// `parameter = 'bc' AND YEAR(local_time) = y`, each computing an AVG and a
/// COUNT_IF. We model it as two workload entries grouped by
/// `(country, parameter, YEAR(local_time))`, aggregating both the value
/// column and the indicator column `IND(value > t)` — the paper's note that
/// COUNT is handled "like AVG/SUM" made concrete: the indicator's
/// CV² = (1−p)/p is exactly the variance driver of the COUNT_IF estimate.
///
/// Only the `(country, bc, 2017/2018)` aggregation groups carry weight, so
/// CVOPT concentrates its budget where the scheduled query will look —
/// workload exploitation is CVOPT's documented capability (the baselines
/// have no weight mechanism; Figure 1 gives them the query's natural
/// `GROUP BY country` problem instead).
pub fn aq1_spec(table: &Table) -> cvopt_core::Result<Vec<QuerySpec>> {
    let group_by = vec![
        ScalarExpr::col("country"),
        ScalarExpr::col("parameter"),
        ScalarExpr::year("local_time"),
    ];
    let agg_columns =
        vec![ScalarExpr::col("value"), ScalarExpr::indicator("value", CmpOp::Gt, AQ1_THRESHOLD)];
    let mut workload = cvopt_core::Workload::new();
    for year in [2017i64, 2018] {
        workload.push(cvopt_core::WorkloadQuery {
            group_by: group_by.clone(),
            agg_columns: agg_columns.clone(),
            predicate: Some(Predicate::cmp("parameter", CmpOp::Eq, "bc").and(Predicate::cmp_expr(
                ScalarExpr::year("local_time"),
                CmpOp::Eq,
                year,
            ))),
            repeats: 1,
        });
    }
    workload.derive_specs(table)
}

/// AQ1 error metric: per (country, aggregate), the deviation of the
/// estimated delta normalized by `max(|true delta|, |2017 level|)`.
/// Raw relative errors of deltas explode when a country's year-over-year
/// change is near zero; normalizing by the level keeps the metric
/// comparable across methods (recorded in EXPERIMENTS.md).
pub fn aq1_errors(truth: &QueryResult, truth_2017: &QueryResult, est: &QueryResult) -> Vec<f64> {
    let mut errors = Vec::new();
    for (key, true_values) in truth.iter() {
        for (agg, &t) in true_values.iter().enumerate() {
            let level = truth_2017.value(key, agg).map(f64::abs).unwrap_or(0.0);
            let denom = t.abs().max(level).max(1e-12);
            let err = match est.value(key, agg) {
                Some(e) => (e - t).abs() / denom,
                None => 1.0,
            };
            errors.push(err);
        }
    }
    errors
}

/// One year's half of AQ1: `AVG(value), COUNT_IF(value > t)` for `bc` rows
/// of `year`, grouped by country.
pub fn aq1_year_query(year: i64) -> GroupByQuery {
    GroupByQuery::new(
        vec![ScalarExpr::col("country")],
        vec![
            AggExpr::avg("value").with_alias("avg_value"),
            AggExpr::count_if("value", CmpOp::Gt, AQ1_THRESHOLD).with_alias("high_cnt"),
        ],
    )
    .with_predicate(Predicate::cmp("parameter", CmpOp::Eq, "bc").and(Predicate::cmp_expr(
        ScalarExpr::year("local_time"),
        CmpOp::Eq,
        year,
    )))
}

/// Join AQ1's two yearly results into the paper's final answer:
/// per country, `(avg_2018 − avg_2017, high_cnt_2018 − high_cnt_2017)`.
/// Countries missing from either year are dropped (inner join).
pub fn aq1_join(y2017: &QueryResult, y2018: &QueryResult) -> QueryResult {
    let mut rows: Vec<(Vec<KeyAtom>, Vec<f64>, u64)> = Vec::new();
    for (key, v18) in y2018.iter() {
        if let Some(pos17) = y2017.group_position(key) {
            let v17 = &y2017.values[pos17];
            rows.push((
                key.to_vec(),
                vec![v18[0] - v17[0], v18[1] - v17[1]],
                y2018.group_rows[y2018.group_position(key).expect("iterating keys")],
            ));
        }
    }
    QueryResult::from_parts(
        vec!["country".into()],
        vec!["avg_incre".into(), "cnt_incre".into()],
        rows,
    )
}

/// Compute AQ1 exactly on the base table.
pub fn aq1_exact(table: &Table) -> QueryResult {
    let y17 = aq1_year_query(2017).execute(table).expect("AQ1 ground truth").remove(0);
    let y18 = aq1_year_query(2018).execute(table).expect("AQ1 ground truth").remove(0);
    aq1_join(&y17, &y18)
}

/// Estimate AQ1 from a sample.
pub fn aq1_estimate(sample: &cvopt_core::MaterializedSample) -> cvopt_core::Result<QueryResult> {
    let y17 = cvopt_core::estimate::estimate_single(sample, &aq1_year_query(2017))?;
    let y18 = cvopt_core::estimate::estimate_single(sample, &aq1_year_query(2018))?;
    Ok(aq1_join(&y17, &y18))
}

/// All 12 standing queries (AQ1 excluded — it is a derived two-query join
/// handled by [`aq1_exact`]/[`aq1_estimate`]).
pub fn all_standard() -> Vec<PaperQuery> {
    vec![aq2(), aq3(), aq4(), aq5(), aq6(), aq7(), aq8(), b1(), b2(), b3(), b4()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_datagen::{generate_bikes, generate_openaq, BikesConfig, OpenAqConfig};

    fn openaq() -> Table {
        generate_openaq(&OpenAqConfig { rows: 30_000, ..Default::default() })
    }

    fn bikes() -> Table {
        generate_bikes(&BikesConfig { rows: 20_000, ..Default::default() })
    }

    #[test]
    fn openaq_queries_execute() {
        let t = openaq();
        for q in [aq2(), aq3(), aq4(), aq5(), aq6(), aq7(), aq8()] {
            let r = q.query.execute(&t).unwrap();
            assert!(!r.is_empty(), "{} produced no grouping sets", q.id);
            assert!(r[0].num_groups() > 0, "{} produced no groups", q.id);
        }
    }

    #[test]
    fn bikes_queries_execute() {
        let t = bikes();
        for q in [b1(), b2(), b3(), b4()] {
            let r = q.query.execute(&t).unwrap();
            assert!(r[0].num_groups() > 0, "{} produced no groups", q.id);
        }
    }

    #[test]
    fn selectivity_variants_shrink() {
        let t = openaq();
        let count = |q: &PaperQuery| -> f64 {
            let pred = q.query.predicate.as_ref().unwrap().bind(&t).unwrap();
            pred.eval_bitmap(t.num_rows()).selectivity()
        };
        let full = count(&aq3());
        let a = count(&aq3_variant('a'));
        let b = count(&aq3_variant('b'));
        let c = count(&aq3_variant('c'));
        assert!((full - 1.0).abs() < 1e-9);
        assert!((a - 0.25).abs() < 0.02, "AQ3.a selectivity {a}");
        assert!((b - 0.50).abs() < 0.02, "AQ3.b selectivity {b}");
        assert!((c - 0.75).abs() < 0.02, "AQ3.c selectivity {c}");
    }

    #[test]
    fn b2_variants_shrink() {
        let t = bikes();
        let count = |q: &PaperQuery| -> f64 {
            let pred = q.query.predicate.as_ref().unwrap().bind(&t).unwrap();
            pred.eval_bitmap(t.num_rows()).selectivity()
        };
        let a = count(&b2_variant('a'));
        let c = count(&b2_variant('c'));
        assert!((a - 0.25).abs() < 0.02, "B2.a selectivity {a}");
        assert!((c - 0.75).abs() < 0.02, "B2.c selectivity {c}");
    }

    #[test]
    fn cube_specs_expand() {
        assert_eq!(aq7().specs.len(), 4);
        assert_eq!(aq8().specs.len(), 4);
        assert_eq!(b3().specs.len(), 4);
        assert_eq!(aq3().specs.len(), 1);
    }

    #[test]
    fn kinds_match_paper() {
        assert_eq!(aq2().kind.label(), "MASG");
        assert_eq!(aq3().kind.label(), "SASG");
        assert_eq!(aq7().kind.label(), "SAMG");
        assert_eq!(aq8().kind.label(), "MAMG");
    }

    #[test]
    fn aq1_exact_has_countries() {
        let t = openaq();
        let r = aq1_exact(&t);
        assert!(r.num_groups() >= 5, "AQ1 join produced {} countries", r.num_groups());
        assert_eq!(r.agg_names, vec!["avg_incre", "cnt_incre"]);
    }

    #[test]
    fn aq1_estimate_from_full_sample_is_exact() {
        let t = openaq();
        let rows: Vec<u32> = (0..t.num_rows() as u32).collect();
        let weights = vec![1.0; t.num_rows()];
        let full = cvopt_core::MaterializedSample::from_rows(&t, rows, weights);
        let exact = aq1_exact(&t);
        let est = aq1_estimate(&full).unwrap();
        for (key, values) in exact.iter() {
            for (j, v) in values.iter().enumerate() {
                let e = est.value(key, j).unwrap();
                assert!((e - v).abs() < 1e-6, "{key:?} agg{j}: {e} vs {v}");
            }
        }
    }

    #[test]
    fn masg_spec_dedups_columns() {
        // B1 aggregates two different columns → two agg columns in spec.
        assert_eq!(b1().specs[0].aggregates.len(), 2);
        // AQ2's SUM(value) + COUNT(*) → one value column.
        assert_eq!(aq2().specs[0].aggregates.len(), 1);
    }
}

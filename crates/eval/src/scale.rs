//! Experiment scaling presets.
//!
//! The paper runs on ~200M-row OpenAQ and ~11.5M-row Bikes; the presets here
//! keep the same group structure at laptop-friendly sizes. Error *ratios*
//! between methods are stable across scales because they are driven by the
//! group-size/variance skew, not the absolute row count.

use cvopt_datagen::{BikesConfig, OpenAqConfig};
use cvopt_table::Table;

/// Row counts, repetitions and sampling rates for one experiment run.
#[derive(Debug, Clone)]
pub struct Scale {
    /// OpenAQ rows.
    pub openaq_rows: usize,
    /// Bikes rows.
    pub bikes_rows: usize,
    /// Independent repetitions averaged per data point (paper: 5).
    pub reps: u64,
    /// OpenAQ sampling rate (paper: 1%).
    pub openaq_rate: f64,
    /// Bikes sampling rate (paper: 5%).
    pub bikes_rate: f64,
    /// Duplication factor for the Table-6 "25x" timing dataset.
    pub timing_repeat: usize,
}

impl Scale {
    /// Tiny preset for unit/integration tests (seconds).
    pub fn small() -> Scale {
        Scale {
            openaq_rows: 40_000,
            bikes_rows: 25_000,
            reps: 2,
            openaq_rate: 0.02,
            bikes_rate: 0.05,
            timing_repeat: 3,
        }
    }

    /// Default preset for `reproduce` (a few minutes).
    pub fn standard() -> Scale {
        Scale {
            openaq_rows: 400_000,
            bikes_rows: 200_000,
            reps: 5,
            openaq_rate: 0.01,
            bikes_rate: 0.05,
            timing_repeat: 5,
        }
    }

    /// Large preset approximating the paper's relative scales.
    pub fn large() -> Scale {
        Scale {
            openaq_rows: 4_000_000,
            bikes_rows: 1_000_000,
            reps: 5,
            openaq_rate: 0.01,
            bikes_rate: 0.05,
            timing_repeat: 10,
        }
    }

    /// Parse a preset name.
    pub fn from_name(name: &str) -> Option<Scale> {
        match name {
            "small" => Some(Scale::small()),
            "standard" | "default" => Some(Scale::standard()),
            "large" | "paper" => Some(Scale::large()),
            _ => None,
        }
    }

    /// OpenAQ sample budget in rows.
    pub fn openaq_budget(&self) -> usize {
        ((self.openaq_rows as f64 * self.openaq_rate).round() as usize).max(1)
    }

    /// Bikes sample budget in rows.
    pub fn bikes_budget(&self) -> usize {
        ((self.bikes_rows as f64 * self.bikes_rate).round() as usize).max(1)
    }
}

/// The generated datasets for one run.
#[derive(Debug)]
pub struct EvalData {
    /// Synthetic OpenAQ.
    pub openaq: Table,
    /// Synthetic Bikes.
    pub bikes: Table,
}

impl EvalData {
    /// Generate both datasets for `scale` (deterministic).
    pub fn generate(scale: &Scale) -> EvalData {
        EvalData {
            openaq: cvopt_datagen::generate_openaq(&OpenAqConfig::with_rows(scale.openaq_rows)),
            bikes: cvopt_datagen::generate_bikes(&BikesConfig::with_rows(scale.bikes_rows)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_parse() {
        assert!(Scale::from_name("small").is_some());
        assert!(Scale::from_name("standard").is_some());
        assert!(Scale::from_name("paper").is_some());
        assert!(Scale::from_name("nope").is_none());
    }

    #[test]
    fn budgets_follow_rates() {
        let s = Scale::standard();
        assert_eq!(s.openaq_budget(), 4_000);
        assert_eq!(s.bikes_budget(), 10_000);
    }

    #[test]
    fn generate_small() {
        let d = EvalData::generate(&Scale::small());
        assert_eq!(d.openaq.num_rows(), 40_000);
        assert_eq!(d.bikes.num_rows(), 25_000);
    }
}

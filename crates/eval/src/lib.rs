//! # cvopt-eval
//!
//! The experiment harness reproducing the evaluation of *"Random Sampling
//! for Group-By Queries"* (ICDE 2020): the paper's 12 queries (AQ1–AQ8,
//! B1–B4) mapped onto the synthetic datasets, relative-error metrics,
//! a multi-seed runner, and one module per table/figure
//! ([`experiments`]).
//!
//! Quick taste:
//!
//! ```no_run
//! use cvopt_eval::{experiments, scale::Scale};
//!
//! let report = experiments::run_by_id("figure1", &Scale::small()).unwrap();
//! println!("{}", report.to_text());
//! ```

pub mod experiments;
pub mod metrics;
pub mod queries;
pub mod report;
pub mod runner;
pub mod scale;

pub use metrics::{percentile, relative_errors, relative_errors_all, ErrorSummary};
pub use queries::{Dataset, PaperQuery, QueryKind};
pub use report::Report;
pub use runner::{evaluate_methods, MethodOutcome};
pub use scale::{EvalData, Scale};

//! Relative-error metrics between exact and estimated query results.

use cvopt_table::QueryResult;

/// Per-(aggregate, group) relative errors of `estimate` against `truth`.
///
/// The error for a group present in the truth but *missing from the
/// estimate* is 1.0 (100%) — the convention behind the paper's "Uniform has
/// largest error of 100%, as some groups are absent" (§6.1).
///
/// `floor` guards division for derived answers whose true value can be
/// arbitrarily close to zero (e.g. AQ1's year-over-year deltas): the error
/// is `|est − truth| / max(|truth|, floor)`. Plain queries use `floor = 0`.
pub fn relative_errors(truth: &QueryResult, estimate: &QueryResult, floor: f64) -> Vec<Vec<f64>> {
    let mut per_agg = vec![Vec::with_capacity(truth.num_groups()); truth.num_aggregates()];
    for (key, true_values) in truth.iter() {
        for (agg, &t) in true_values.iter().enumerate() {
            let err = match estimate.value(key, agg) {
                Some(e) => {
                    let denom = t.abs().max(floor);
                    if denom == 0.0 {
                        // True value is exactly zero and no floor: score 0
                        // for an exact hit, 1 otherwise.
                        if e == 0.0 {
                            0.0
                        } else {
                            1.0
                        }
                    } else {
                        (e - t).abs() / denom
                    }
                }
                None => 1.0,
            };
            per_agg[agg].push(err);
        }
    }
    per_agg
}

/// Like [`relative_errors`] but with one floor per aggregate (AQ1's two
/// derived answers have different magnitudes, so they need distinct guards).
pub fn relative_errors_floors(
    truth: &QueryResult,
    estimate: &QueryResult,
    floors: &[f64],
) -> Vec<Vec<f64>> {
    assert_eq!(floors.len(), truth.num_aggregates(), "one floor per aggregate");
    let mut per_agg = vec![Vec::with_capacity(truth.num_groups()); truth.num_aggregates()];
    for (key, true_values) in truth.iter() {
        for (agg, &t) in true_values.iter().enumerate() {
            let err = match estimate.value(key, agg) {
                Some(e) => {
                    let denom = t.abs().max(floors[agg]);
                    if denom == 0.0 {
                        if e == 0.0 {
                            0.0
                        } else {
                            1.0
                        }
                    } else {
                        (e - t).abs() / denom
                    }
                }
                None => 1.0,
            };
            per_agg[agg].push(err);
        }
    }
    per_agg
}

/// Flatten multi-grouping-set (cube) comparisons into one error vector.
pub fn relative_errors_all(
    truth: &[QueryResult],
    estimates: &[QueryResult],
    floor: f64,
) -> Vec<f64> {
    assert_eq!(truth.len(), estimates.len(), "grouping-set count mismatch");
    let mut all = Vec::new();
    for (t, e) in truth.iter().zip(estimates) {
        for agg_errors in relative_errors(t, e, floor) {
            all.extend(agg_errors);
        }
    }
    all
}

/// Summary statistics over a set of relative errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Largest error.
    pub max: f64,
    /// Mean error.
    pub mean: f64,
    /// Median error.
    pub median: f64,
    /// Number of (group, aggregate) answers scored.
    pub count: usize,
}

impl ErrorSummary {
    /// Compute from raw errors. Returns a zero summary for empty input.
    pub fn from_errors(errors: &[f64]) -> ErrorSummary {
        if errors.is_empty() {
            return ErrorSummary { max: 0.0, mean: 0.0, median: 0.0, count: 0 };
        }
        let mut sorted: Vec<f64> = errors.to_vec();
        sorted.sort_by(f64::total_cmp);
        ErrorSummary {
            max: *sorted.last().expect("non-empty"),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            median: percentile_of_sorted(&sorted, 0.5),
            count: sorted.len(),
        }
    }
}

/// The `p`-th percentile (0 ≤ p ≤ 1) of raw errors, by linear interpolation.
pub fn percentile(errors: &[f64], p: f64) -> f64 {
    if errors.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = errors.to_vec();
    sorted.sort_by(f64::total_cmp);
    percentile_of_sorted(&sorted, p)
}

fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 1.0);
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cvopt_table::groupby::KeyAtom;

    fn result(rows: Vec<(&str, Vec<f64>)>, aggs: usize) -> QueryResult {
        let agg_names = (0..aggs).map(|i| format!("a{i}")).collect();
        QueryResult::from_parts(
            vec!["g".into()],
            agg_names,
            rows.into_iter().map(|(k, v)| (vec![KeyAtom::from(k)], v, 1)).collect(),
        )
    }

    #[test]
    fn per_group_errors() {
        let truth = result(vec![("a", vec![10.0]), ("b", vec![100.0])], 1);
        let est = result(vec![("a", vec![11.0]), ("b", vec![90.0])], 1);
        let errs = relative_errors(&truth, &est, 0.0);
        assert_eq!(errs.len(), 1);
        assert!((errs[0][0] - 0.1).abs() < 1e-12);
        assert!((errs[0][1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn missing_group_scores_one() {
        let truth = result(vec![("a", vec![10.0]), ("b", vec![100.0])], 1);
        let est = result(vec![("a", vec![10.0])], 1);
        let errs = relative_errors(&truth, &est, 0.0);
        assert_eq!(errs[0], vec![0.0, 1.0]);
    }

    #[test]
    fn floor_guards_small_truth() {
        let truth = result(vec![("a", vec![0.001])], 1);
        let est = result(vec![("a", vec![0.101])], 1);
        let raw = relative_errors(&truth, &est, 0.0);
        assert!(raw[0][0] > 50.0);
        let floored = relative_errors(&truth, &est, 1.0);
        assert!((floored[0][0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn exact_zero_truth() {
        let truth = result(vec![("a", vec![0.0])], 1);
        let exact = result(vec![("a", vec![0.0])], 1);
        let wrong = result(vec![("a", vec![5.0])], 1);
        assert_eq!(relative_errors(&truth, &exact, 0.0)[0], vec![0.0]);
        assert_eq!(relative_errors(&truth, &wrong, 0.0)[0], vec![1.0]);
    }

    #[test]
    fn multi_aggregate_errors() {
        let truth = result(vec![("a", vec![10.0, 20.0])], 2);
        let est = result(vec![("a", vec![12.0, 20.0])], 2);
        let errs = relative_errors(&truth, &est, 0.0);
        assert!((errs[0][0] - 0.2).abs() < 1e-12);
        assert_eq!(errs[1], vec![0.0]);
    }

    #[test]
    fn summary_stats() {
        let s = ErrorSummary::from_errors(&[0.1, 0.4, 0.2, 0.3]);
        assert_eq!(s.max, 0.4);
        assert!((s.mean - 0.25).abs() < 1e-12);
        assert!((s.median - 0.25).abs() < 1e-12);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn summary_empty() {
        let s = ErrorSummary::from_errors(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn percentiles() {
        let errs: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        assert!((percentile(&errs, 0.0) - 0.01).abs() < 1e-12);
        assert!((percentile(&errs, 1.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&errs, 0.5) - 0.505).abs() < 1e-9);
        assert!((percentile(&errs, 0.9) - 0.901).abs() < 0.01);
    }

    #[test]
    fn cube_flatten() {
        let t1 = result(vec![("a", vec![10.0])], 1);
        let e1 = result(vec![("a", vec![15.0])], 1);
        let t2 = result(vec![("x", vec![4.0])], 1);
        let e2 = result(vec![("x", vec![2.0])], 1);
        let all = relative_errors_all(&[t1, t2], &[e1, e2], 0.0);
        assert_eq!(all.len(), 2);
        assert!((all[0] - 0.5).abs() < 1e-12);
        assert!((all[1] - 0.5).abs() < 1e-12);
    }
}

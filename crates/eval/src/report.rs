//! Experiment reports: the "rows/series the paper reports", printable as
//! aligned text, markdown, or CSV.

use std::fmt::Write as _;

/// One reproduced table or figure.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("figure1", "table4", ...).
    pub id: String,
    /// Human title, matching the paper's caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes: parameters, caveats, paper-vs-measured remarks.
    pub notes: Vec<String>,
}

impl Report {
    /// New empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: Vec<String>) -> Self {
        Report { id: id.into(), title: title.into(), headers, rows: Vec::new(), notes: Vec::new() }
    }

    /// Append a row (must match header arity).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "report row arity");
        self.rows.push(row);
    }

    /// Append a note line.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        out.push_str(&cvopt_table::query::render_text_table(&self.headers, &self.rows));
        for n in &self.notes {
            let _ = writeln!(out, "  note: {n}");
        }
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {} — {}\n", self.id, self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(out, "|{}|", vec!["---"; self.headers.len()].join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        if !self.notes.is_empty() {
            out.push('\n');
            for n in &self.notes {
                let _ = writeln!(out, "> {n}");
            }
        }
        out
    }

    /// Render as CSV (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ =
            writeln!(out, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        out
    }
}

/// Format a fraction as a percentage with one decimal ("12.3%").
pub fn pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

/// Format a fraction as a percentage with two decimals ("0.57%").
pub fn pct2(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.2}%", 100.0 * x)
    }
}

/// Format seconds with three decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Report {
        let mut r = Report::new(
            "figure1",
            "Maximum error, 1% sample",
            vec!["Method".into(), "AQ1".into(), "AQ3".into()],
        );
        r.push_row(vec!["Uniform".into(), pct(1.35), pct(1.0)]);
        r.push_row(vec!["CVOPT".into(), pct(0.088), pct(0.11)]);
        r.note("paper: Uniform 135%/100%, CVOPT 8.8%/11%");
        r
    }

    #[test]
    fn text_rendering() {
        let text = sample_report().to_text();
        assert!(text.contains("figure1"));
        assert!(text.contains("135.0%"));
        assert!(text.contains("note: paper"));
    }

    #[test]
    fn markdown_rendering() {
        let md = sample_report().to_markdown();
        assert!(md.contains("| Method | AQ1 | AQ3 |"));
        assert!(md.contains("|---|---|---|"));
        assert!(md.contains("> paper"));
    }

    #[test]
    fn csv_rendering() {
        let csv = sample_report().to_csv();
        assert!(csv.starts_with("Method,AQ1,AQ3\n"));
        assert!(csv.contains("CVOPT,8.8%,11.0%"));
        assert!(csv.contains("# paper"));
    }

    #[test]
    #[should_panic(expected = "report row arity")]
    fn arity_checked() {
        let mut r = Report::new("x", "t", vec!["a".into()]);
        r.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), "12.3%");
        assert_eq!(pct2(0.0057), "0.57%");
        assert_eq!(pct(f64::NAN), "n/a");
        assert_eq!(secs(1.5), "1.500s");
    }
}

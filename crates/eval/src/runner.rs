//! The generic experiment runner: draw samples over several seeds, answer
//! queries, and aggregate error statistics per method.

use cvopt_baselines::SamplingMethod;
use cvopt_core::{estimate, MaterializedSample, SamplingProblem};
use cvopt_table::{QueryResult, Table};

use crate::metrics::{relative_errors_all, ErrorSummary};
use crate::queries::PaperQuery;

/// Aggregated error statistics for one method on one evaluation target.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Method display name.
    pub method: String,
    /// Mean over repetitions of the per-repetition maximum error.
    pub max_error: f64,
    /// Mean over repetitions of the per-repetition mean error.
    pub mean_error: f64,
    /// Mean over repetitions of the per-repetition median error.
    pub median_error: f64,
    /// All per-(group, aggregate) errors pooled across repetitions
    /// (for percentile plots like the paper's Fig. 6).
    pub pooled_errors: Vec<f64>,
}

impl MethodOutcome {
    /// Combine per-repetition error vectors.
    pub fn from_reps(method: &str, reps: Vec<Vec<f64>>) -> MethodOutcome {
        let n = reps.len().max(1) as f64;
        let mut max_acc = 0.0;
        let mut mean_acc = 0.0;
        let mut median_acc = 0.0;
        let mut pooled = Vec::new();
        for errors in &reps {
            let s = ErrorSummary::from_errors(errors);
            max_acc += s.max;
            mean_acc += s.mean;
            median_acc += s.median;
            pooled.extend_from_slice(errors);
        }
        MethodOutcome {
            method: method.to_string(),
            max_error: max_acc / n,
            mean_error: mean_acc / n,
            median_error: median_acc / n,
            pooled_errors: pooled,
        }
    }
}

/// Draw `reps` independent samples of `method` for `problem`.
pub fn draw_samples(
    table: &Table,
    method: &dyn SamplingMethod,
    problem: &SamplingProblem,
    reps: u64,
) -> cvopt_core::Result<Vec<MaterializedSample>> {
    (0..reps).map(|seed| method.draw(table, problem, seed)).collect()
}

/// Per-repetition error vectors for one paper query under one method.
///
/// `budget` is the sample size in rows; the sampling problem is derived from
/// the query's specs.
pub fn errors_per_rep(
    table: &Table,
    method: &dyn SamplingMethod,
    pq: &PaperQuery,
    budget: usize,
    reps: u64,
) -> cvopt_core::Result<Vec<Vec<f64>>> {
    let truth = pq.query.execute(table)?;
    let problem = SamplingProblem::multi(pq.specs.clone(), budget);
    let samples = draw_samples(table, method, &problem, reps)?;
    samples
        .iter()
        .map(|sample| {
            let est = estimate::estimate(sample, &pq.query)?;
            Ok(relative_errors_all(&truth, &est, 0.0))
        })
        .collect()
}

/// Full pipeline for one paper query across a method line-up.
pub fn evaluate_methods(
    table: &Table,
    methods: &[Box<dyn SamplingMethod>],
    pq: &PaperQuery,
    budget: usize,
    reps: u64,
) -> cvopt_core::Result<Vec<MethodOutcome>> {
    methods
        .iter()
        .map(|m| {
            let errs = errors_per_rep(table, m.as_ref(), pq, budget, reps)?;
            Ok(MethodOutcome::from_reps(m.name(), errs))
        })
        .collect()
}

/// Evaluate *one pre-built sample* on several queries (the sample-reuse
/// experiments: Fig. 4 and Table 5). Returns per-query error vectors.
pub fn reuse_errors(
    sample: &MaterializedSample,
    truths: &[(String, Vec<QueryResult>, &cvopt_table::GroupByQuery)],
) -> cvopt_core::Result<Vec<(String, Vec<f64>)>> {
    truths
        .iter()
        .map(|(id, truth, query)| {
            let est = estimate::estimate(sample, query)?;
            Ok((id.clone(), relative_errors_all(truth, &est, 0.0)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries;
    use crate::scale::{EvalData, Scale};
    use cvopt_baselines::{CvOptL2, Uniform};

    #[test]
    fn outcome_aggregation() {
        let o = MethodOutcome::from_reps("X", vec![vec![0.1, 0.3], vec![0.2, 0.4]]);
        assert_eq!(o.method, "X");
        assert!((o.max_error - 0.35).abs() < 1e-12); // (0.3 + 0.4)/2
        assert!((o.mean_error - 0.25).abs() < 1e-12);
        assert_eq!(o.pooled_errors.len(), 4);
    }

    #[test]
    fn cvopt_beats_uniform_on_b2_max_error() {
        let data = EvalData::generate(&Scale::small());
        let pq = queries::b2();
        let budget = 1_000;
        let uni = MethodOutcome::from_reps(
            "Uniform",
            errors_per_rep(&data.bikes, &Uniform, &pq, budget, 3).unwrap(),
        );
        let cv = MethodOutcome::from_reps(
            "CVOPT",
            errors_per_rep(&data.bikes, &CvOptL2::default(), &pq, budget, 3).unwrap(),
        );
        assert!(
            cv.max_error < uni.max_error,
            "CVOPT max {} vs Uniform max {}",
            cv.max_error,
            uni.max_error
        );
    }

    #[test]
    fn evaluate_methods_runs_lineup() {
        let data = EvalData::generate(&Scale::small());
        let pq = queries::aq3();
        let methods = cvopt_baselines::figure_methods();
        let outcomes = evaluate_methods(&data.openaq, &methods, &pq, 2_000, 2).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes.iter().all(|o| o.max_error.is_finite()));
    }
}

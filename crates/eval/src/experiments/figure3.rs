//! Figure 3: sensitivity of maximum error to the sample rate
//! (AQ2 on OpenAQ at 0.01%–10%; B2 on Bikes at 0.1%–10%).

use cvopt_baselines::figure_methods;

use crate::queries;
use crate::report::{pct, Report};
use crate::runner::{errors_per_rep, MethodOutcome};
use crate::scale::{EvalData, Scale};

/// Sample rates for the OpenAQ sweep (paper: 0.01%, 0.1%, 1%, 10%).
pub const OPENAQ_RATES: [f64; 4] = [0.0001, 0.001, 0.01, 0.1];
/// Sample rates for the Bikes sweep (paper: 0.1%, 1%, 5%, 10%).
pub const BIKES_RATES: [f64; 4] = [0.001, 0.01, 0.05, 0.1];

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let methods = figure_methods();

    let mut headers = vec!["Query".into(), "Rate".into()];
    headers.extend(methods.iter().map(|m| m.name().to_string()));
    let mut report = Report::new("figure3", "Maximum error vs sample rate (AQ2, B2)", headers);

    let aq2 = queries::aq2();
    for &rate in &OPENAQ_RATES {
        let budget = ((data.openaq.num_rows() as f64 * rate).round() as usize).max(1);
        let mut row = vec!["AQ2".to_string(), format!("{:.2}%", rate * 100.0)];
        for m in &methods {
            let outcome = MethodOutcome::from_reps(
                m.name(),
                errors_per_rep(&data.openaq, m.as_ref(), &aq2, budget, scale.reps)?,
            );
            row.push(pct(outcome.max_error));
        }
        report.push_row(row);
    }

    let b2 = queries::b2();
    for &rate in &BIKES_RATES {
        let budget = ((data.bikes.num_rows() as f64 * rate).round() as usize).max(1);
        let mut row = vec!["B2".to_string(), format!("{:.2}%", rate * 100.0)];
        for m in &methods {
            let outcome = MethodOutcome::from_reps(
                m.name(),
                errors_per_rep(&data.bikes, m.as_ref(), &b2, budget, scale.reps)?,
            );
            row.push(pct(outcome.max_error));
        }
        report.push_row(row);
    }

    report.note(
        "expected shape (paper Fig. 3): errors fall with rate; CVOPT lowest at nearly all rates",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn error_decreases_with_rate_for_cvopt() {
        let report = run(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 8);
        // CVOPT is the last column; B2 rows are 4..8.
        let col = report.headers.len() - 1;
        let lowest_rate = parse_pct(&report.rows[4][col]);
        let highest_rate = parse_pct(&report.rows[7][col]);
        assert!(
            highest_rate <= lowest_rate,
            "CVOPT B2 error should fall with rate: {lowest_rate} -> {highest_rate}"
        );
    }
}

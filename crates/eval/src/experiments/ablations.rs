//! Ablations of CVOPT design choices not isolated in the paper:
//!
//! * **capping** — the box-constrained re-solve (`s_i ≤ n_i` with water
//!   filling) vs naively clamping the closed-form Lemma-1 solution and
//!   discarding the excess (what RL effectively does);
//! * **variance** — sample (n−1) vs population (n) variance in the β's;
//! * **minalloc** — sensitivity to the per-stratum minimum sample size;
//! * **lpnorm** — the paper's §8 future-work item: error percentiles under
//!   ℓp allocation for p between 1 and ∞.

use cvopt_baselines::SamplingMethod;
use cvopt_core::alloc::{compute_betas, lemma1_closed_form};
use cvopt_core::sample::StratifiedSample;
use cvopt_core::{
    CvOptSampler, MaterializedSample, Norm, SamplingProblem, StratumStatistics, VarianceKind,
};
use cvopt_table::{ExecOptions, GroupIndex, Table};

use crate::queries;
use crate::report::{pct, pct2, Report};
use crate::runner::{errors_per_rep, MethodOutcome};
use crate::scale::{EvalData, Scale};

/// CVOPT with the closed-form allocation naively clamped to stratum sizes:
/// excess over `n_c` is discarded instead of re-solved (budget wasted).
#[derive(Debug, Clone, Copy, Default)]
struct NaiveClampCvOpt;

impl SamplingMethod for NaiveClampCvOpt {
    fn name(&self) -> &'static str {
        "CVOPT-naive-clamp"
    }

    fn draw(
        &self,
        table: &Table,
        problem: &SamplingProblem,
        seed: u64,
    ) -> cvopt_core::Result<MaterializedSample> {
        problem.validate()?;
        let exprs = problem.finest_stratification();
        let index = GroupIndex::build(table, &exprs)?;
        let stats = StratumStatistics::collect(table, &index, &problem.aggregate_columns())?;
        let betas = compute_betas(problem, &index, &stats)?;
        let targets = lemma1_closed_form(&betas, problem.budget as u64);
        let sizes: Vec<u64> =
            targets.iter().zip(index.sizes()).map(|(&x, &n)| (x.round() as u64).min(n)).collect();
        Ok(StratifiedSample::draw(&index, &sizes, seed, &ExecOptions::default()).materialize(table))
    }
}

/// Ablation 1: does the box-constrained re-solve matter on data with tiny
/// groups? (AQ3, OpenAQ.)
pub fn run_capping(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let pq = queries::aq3();
    let budget = scale.openaq_budget();

    let mut report = Report::new(
        "ablation_capping",
        "Box-constrained re-solve vs naive clamp of the closed form (AQ3)",
        vec!["Variant".into(), "Max err".into(), "Avg err".into(), "Sample rows".into()],
    );
    let methods: Vec<Box<dyn SamplingMethod>> =
        vec![Box::new(cvopt_baselines::CvOptL2::default()), Box::new(NaiveClampCvOpt)];
    for m in &methods {
        let outcome = MethodOutcome::from_reps(
            m.name(),
            errors_per_rep(&data.openaq, m.as_ref(), &pq, budget, scale.reps)?,
        );
        let problem = SamplingProblem::multi(pq.specs.clone(), budget);
        let drawn = m.draw(&data.openaq, &problem, 0)?.len();
        report.push_row(vec![
            m.name().to_string(),
            pct(outcome.max_error),
            pct2(outcome.mean_error),
            drawn.to_string(),
        ]);
    }
    report.note("naive clamp discards budget capped away at small strata (the RL failure mode)");
    Ok(report)
}

/// Ablation 2: sample vs population variance in the allocation.
pub fn run_variance(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let mut report = Report::new(
        "ablation_variance",
        "Sample (n-1) vs population (n) variance in the beta coefficients",
        vec!["Query".into(), "Variance".into(), "Max err".into(), "Avg err".into()],
    );
    for (pq, table, budget) in [
        (queries::aq3(), &data.openaq, scale.openaq_budget()),
        (queries::b2(), &data.bikes, scale.bikes_budget()),
    ] {
        for kind in [VarianceKind::Sample, VarianceKind::Population] {
            let truth = pq.query.execute(table)?;
            let problem = SamplingProblem::multi(pq.specs.clone(), budget).with_variance(kind);
            let mut reps_errors = Vec::new();
            for seed in 0..scale.reps {
                let outcome = CvOptSampler::new(problem.clone()).with_seed(seed).sample(table)?;
                let est = cvopt_core::estimate::estimate(&outcome.sample, &pq.query)?;
                reps_errors.push(crate::metrics::relative_errors_all(&truth, &est, 0.0));
            }
            let o = MethodOutcome::from_reps("CVOPT", reps_errors);
            report.push_row(vec![
                pq.id.to_string(),
                format!("{kind:?}"),
                pct(o.max_error),
                pct2(o.mean_error),
            ]);
        }
    }
    report.note("expected: negligible difference — the estimators differ by n/(n-1) per stratum");
    Ok(report)
}

/// Ablation 3: sensitivity to the per-stratum minimum sample size.
pub fn run_minalloc(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let pq = queries::aq3();
    let budget = scale.openaq_budget();
    let truth = pq.query.execute(&data.openaq)?;

    let mut report = Report::new(
        "ablation_minalloc",
        "Sensitivity to the per-stratum minimum sample size (AQ3)",
        vec!["min/stratum".into(), "Max err".into(), "Avg err".into()],
    );
    for min in [0u64, 1, 2, 4] {
        let problem = SamplingProblem::multi(pq.specs.clone(), budget).with_min_per_stratum(min);
        let mut reps_errors = Vec::new();
        for seed in 0..scale.reps {
            let outcome =
                CvOptSampler::new(problem.clone()).with_seed(seed).sample(&data.openaq)?;
            let est = cvopt_core::estimate::estimate(&outcome.sample, &pq.query)?;
            reps_errors.push(crate::metrics::relative_errors_all(&truth, &est, 0.0));
        }
        let o = MethodOutcome::from_reps("CVOPT", reps_errors);
        report.push_row(vec![min.to_string(), pct(o.max_error), pct2(o.mean_error)]);
    }
    report.note("min = 0 risks missing groups (max err → 100%); large minimums dilute the optimum");
    Ok(report)
}

/// Ablation 4: ℓp-norm allocation for p ∈ {1, 2, 4, ∞} (AQ3): larger p
/// trades average error for a lower maximum, interpolating between the
/// paper's two norms.
pub fn run_lpnorm(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let pq = queries::aq3();
    let budget = scale.openaq_budget();
    let truth = pq.query.execute(&data.openaq)?;

    let mut report = Report::new(
        "ablation_lpnorm",
        "lp-norm allocation sweep on AQ3 (paper section 8 future work)",
        vec![
            "Norm".into(),
            "p10".into(),
            "Median".into(),
            "p90".into(),
            "Max err".into(),
            "Avg err".into(),
        ],
    );
    let norms: [(String, Norm); 5] = [
        ("L1".into(), Norm::Lp(1.0)),
        ("L2".into(), Norm::L2),
        ("L4".into(), Norm::Lp(4.0)),
        ("L16".into(), Norm::Lp(16.0)),
        ("L-inf".into(), Norm::LInf),
    ];
    for (label, norm) in norms {
        let problem = SamplingProblem::multi(pq.specs.clone(), budget).with_norm(norm);
        let mut reps_errors = Vec::new();
        for seed in 0..scale.reps {
            let outcome =
                CvOptSampler::new(problem.clone()).with_seed(seed).sample(&data.openaq)?;
            let est = cvopt_core::estimate::estimate(&outcome.sample, &pq.query)?;
            reps_errors.push(crate::metrics::relative_errors_all(&truth, &est, 0.0));
        }
        let o = MethodOutcome::from_reps(&label, reps_errors);
        report.push_row(vec![
            label,
            pct(crate::metrics::percentile(&o.pooled_errors, 0.1)),
            pct(crate::metrics::percentile(&o.pooled_errors, 0.5)),
            pct(crate::metrics::percentile(&o.pooled_errors, 0.9)),
            pct(o.max_error),
            pct2(o.mean_error),
        ]);
    }
    report.note("expected: low percentiles degrade and the max improves as p grows toward inf");
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn capping_report_shows_waste() {
        let report = run_capping(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 2);
        let full: u64 = report.rows[0][3].parse().unwrap();
        let clamped: u64 = report.rows[1][3].parse().unwrap();
        assert!(clamped <= full, "naive clamp must not exceed the re-solve: {clamped} vs {full}");
    }

    #[test]
    fn variance_ablation_runs() {
        let report = run_variance(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 4);
        // Sample vs population variance should land within a small factor.
        let a = parse_pct(&report.rows[0][3]);
        let b = parse_pct(&report.rows[1][3]);
        assert!((a - b).abs() <= (a.max(b)).max(0.5), "{a} vs {b}");
    }

    #[test]
    fn minalloc_zero_risky() {
        let report = run_minalloc(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 4);
    }

    #[test]
    fn lpnorm_sweep_runs() {
        let report = run_lpnorm(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 5);
        assert!(report.rows.iter().all(|r| r[4].ends_with('%')));
    }
}

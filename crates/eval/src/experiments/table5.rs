//! Table 5: average error of six different queries (AQ3, AQ3.a–c, AQ5, AQ6)
//! all answered by one materialized sample optimized for AQ3 — including
//! queries with different predicates AND different group-by attributes.

use cvopt_baselines::figure_methods;
use cvopt_core::SamplingProblem;

use crate::metrics::{relative_errors_all, ErrorSummary};
use crate::queries;
use crate::report::{pct2, Report};
use crate::runner::draw_samples;
use crate::scale::{EvalData, Scale};

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let methods = figure_methods();
    let budget = scale.openaq_budget();

    let eval_queries = [
        queries::aq3(),
        queries::aq3_variant('a'),
        queries::aq3_variant('b'),
        queries::aq3_variant('c'),
        queries::aq5(),
        queries::aq6(),
    ];

    let mut headers = vec!["Method".to_string()];
    headers.extend(eval_queries.iter().map(|q| q.id.to_string()));
    let mut report = Report::new(
        "table5",
        "Average error of six queries answered by one sample built for AQ3",
        headers,
    );

    let truths: Vec<Vec<cvopt_table::QueryResult>> =
        eval_queries.iter().map(|q| q.query.execute(&data.openaq)).collect::<Result<_, _>>()?;

    let base = queries::aq3();
    let problem = SamplingProblem::multi(base.specs.clone(), budget);
    for method in &methods {
        let samples = draw_samples(&data.openaq, method.as_ref(), &problem, scale.reps)?;
        let mut row = vec![method.name().to_string()];
        for (qi, q) in eval_queries.iter().enumerate() {
            let mut mean_acc = 0.0;
            for sample in &samples {
                let est = cvopt_core::estimate::estimate(sample, &q.query)?;
                let errors = relative_errors_all(&truths[qi], &est, 0.0);
                mean_acc += ErrorSummary::from_errors(&errors).mean;
            }
            row.push(pct2(mean_acc / samples.len().max(1) as f64));
        }
        report.push_row(row);
    }

    report.note(
        "AQ5/AQ6 use different predicates; AQ6 also a different GROUP BY — all served by the AQ3 sample",
    );
    report.note(
        "paper (Table 5): Uniform 98.4/21.0/21.4/18.0/99.6/100.0, CS 2.5/5.8/2.9/2.8/3.9/0.9, \
         RL 5.4/9.5/6.9/5.6/4.3/3.5, CVOPT 1.5/4.4/2.4/1.9/2.3/0.8 (%)",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn reuse_works_for_all_methods() {
        let report = run(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 4);
        // Every cell parses and CVOPT beats Uniform on the base query AQ3.
        let row = |name: &str| report.rows.iter().find(|r| r[0] == name).unwrap().clone();
        assert!(parse_pct(&row("CVOPT")[1]) <= parse_pct(&row("Uniform")[1]));
    }
}

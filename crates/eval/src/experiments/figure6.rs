//! Figure 6: per-group error percentiles of CVOPT (ℓ2) vs CVOPT-INF (ℓ∞) on
//! SASG queries AQ3 and B2. ℓ∞ wins at the max; ℓ2 wins at the 90th
//! percentile and below.

use cvopt_baselines::{CvOptL2, CvOptLInf, SamplingMethod};

use crate::metrics::percentile;
use crate::queries;
use crate::report::{pct, Report};
use crate::runner::{errors_per_rep, MethodOutcome};
use crate::scale::{EvalData, Scale};

/// The percentile ranks plotted in the paper.
pub const RANKS: [f64; 6] = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99];

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let mut report = Report::new(
        "figure6",
        "Error percentiles: CVOPT (l2) vs CVOPT-INF (l-inf) on AQ3 and B2",
        vec![
            "Percentile".into(),
            "AQ3 CVOPT".into(),
            "AQ3 CVOPT-INF".into(),
            "B2 CVOPT".into(),
            "B2 CVOPT-INF".into(),
        ],
    );

    let l2: Box<dyn SamplingMethod> = Box::new(CvOptL2::default());
    let linf: Box<dyn SamplingMethod> = Box::new(CvOptLInf::default());

    let mut columns: Vec<MethodOutcome> = Vec::new();
    for (pq, table, budget) in [
        (queries::aq3(), &data.openaq, scale.openaq_budget()),
        (queries::b2(), &data.bikes, scale.bikes_budget()),
    ] {
        for method in [&l2, &linf] {
            let reps = errors_per_rep(table, method.as_ref(), &pq, budget, scale.reps)?;
            columns.push(MethodOutcome::from_reps(method.name(), reps));
        }
    }

    for &rank in &RANKS {
        let mut row = vec![format!("{rank}")];
        for outcome in &columns {
            row.push(pct(percentile(&outcome.pooled_errors, rank)));
        }
        report.push_row(row);
    }
    let mut max_row = vec!["MAX".to_string()];
    for outcome in &columns {
        max_row.push(pct(outcome.max_error));
    }
    report.push_row(max_row);

    report.note(
        "expected shape (paper Fig. 6): CVOPT-INF lower at MAX; CVOPT lower at p90 and below",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn linf_controls_the_maximum() {
        let report = run(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 7);
        let max_row = report.rows.last().unwrap();
        // On at least one of the two queries, CVOPT-INF's max must not
        // exceed CVOPT's (sampling noise at tiny scale allows one miss).
        let aq3_ok = parse_pct(&max_row[2]) <= parse_pct(&max_row[1]) * 1.2;
        let b2_ok = parse_pct(&max_row[4]) <= parse_pct(&max_row[3]) * 1.2;
        assert!(aq3_ok || b2_ok, "l-inf should control the max: {max_row:?}");
    }
}

//! Figure 2: weighted aggregates. CVOPT samples drawn with aggregate
//! weights (w1, w2) ∈ {0.1/0.9, 0.25/0.75, 0.5/0.5, 0.75/0.25, 0.9/0.1};
//! as w1 grows, agg1's average error falls and agg2's rises.
//!
//! Substitution note: the paper's AQ2 pairs `SUM(value)` with `COUNT(*)`.
//! Under our (faithful) stratified estimator, `COUNT` per group is *exact*
//! whenever every stratum is represented, so weighting it is a no-op. We
//! substitute `AVG(latitude)` as the second aggregate to expose the same
//! trade-off; B1 (age vs trip duration) matches the paper directly.

use cvopt_baselines::{CvOptL2, SamplingMethod};
use cvopt_core::{AggColumn, QuerySpec, SamplingProblem};
use cvopt_table::{AggExpr, CmpOp, GroupByQuery, Predicate, ScalarExpr, Table};

use crate::metrics::relative_errors;
use crate::report::{pct2, Report};
use crate::scale::{EvalData, Scale};

/// The five weight settings from the paper.
pub const WEIGHT_SETTINGS: [(f64, f64); 5] =
    [(0.1, 0.9), (0.25, 0.75), (0.5, 0.5), (0.75, 0.25), (0.9, 0.1)];

struct WeightedCase {
    query: GroupByQuery,
    group_by: Vec<ScalarExpr>,
    col1: &'static str,
    col2: &'static str,
}

fn aq2_weighted() -> WeightedCase {
    WeightedCase {
        query: GroupByQuery::new(
            vec![ScalarExpr::col("country"), ScalarExpr::col("parameter"), ScalarExpr::col("unit")],
            vec![
                AggExpr::sum("value").with_alias("agg1"),
                AggExpr::avg("latitude").with_alias("agg2"),
            ],
        ),
        group_by: vec![
            ScalarExpr::col("country"),
            ScalarExpr::col("parameter"),
            ScalarExpr::col("unit"),
        ],
        col1: "value",
        col2: "latitude",
    }
}

fn b1_weighted() -> WeightedCase {
    WeightedCase {
        query: GroupByQuery::new(
            vec![ScalarExpr::col("from_station_id")],
            vec![
                AggExpr::avg("age").with_alias("agg1"),
                AggExpr::avg("trip_duration").with_alias("agg2"),
            ],
        )
        .with_predicate(Predicate::cmp("age", CmpOp::Gt, 0i64)),
        group_by: vec![ScalarExpr::col("from_station_id")],
        col1: "age",
        col2: "trip_duration",
    }
}

fn run_case(
    case: &WeightedCase,
    table: &Table,
    budget: usize,
    reps: u64,
) -> cvopt_core::Result<Vec<(f64, f64)>> {
    let truth = &case.query.execute(table)?[0];
    let mut points = Vec::with_capacity(WEIGHT_SETTINGS.len());
    for &(w1, w2) in &WEIGHT_SETTINGS {
        let spec = QuerySpec::group_by_exprs(case.group_by.clone())
            .aggregate_column(AggColumn::new(case.col1).with_weight(w1))
            .aggregate_column(AggColumn::new(case.col2).with_weight(w2));
        let problem = SamplingProblem::single(spec, budget);
        let mut e1 = 0.0;
        let mut e2 = 0.0;
        for seed in 0..reps {
            let sample = CvOptL2::default().draw(table, &problem, seed)?;
            let est = cvopt_core::estimate::estimate_single(&sample, &case.query)?;
            let per_agg = relative_errors(truth, &est, 0.0);
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            e1 += mean(&per_agg[0]);
            e2 += mean(&per_agg[1]);
        }
        points.push((e1 / reps as f64, e2 / reps as f64));
    }
    Ok(points)
}

/// Run the experiment.
pub fn run(scale: &Scale) -> cvopt_core::Result<Report> {
    let data = EvalData::generate(scale);
    let mut report = Report::new(
        "figure2",
        "Average errors of CVOPT under aggregate weight settings (w1/w2)",
        vec![
            "w1/w2".into(),
            "AQ2' agg1".into(),
            "AQ2' agg2".into(),
            "B1 agg1".into(),
            "B1 agg2".into(),
        ],
    );

    let aq2 = aq2_weighted();
    let b1 = b1_weighted();
    let aq2_points = run_case(&aq2, &data.openaq, scale.openaq_budget(), scale.reps)?;
    let b1_points = run_case(&b1, &data.bikes, scale.bikes_budget(), scale.reps)?;

    for (i, &(w1, w2)) in WEIGHT_SETTINGS.iter().enumerate() {
        report.push_row(vec![
            format!("{w1}/{w2}"),
            pct2(aq2_points[i].0),
            pct2(aq2_points[i].1),
            pct2(b1_points[i].0),
            pct2(b1_points[i].1),
        ]);
    }
    report.note("expected shape (paper Fig. 2): agg1 error falls and agg2 error rises as w1 grows");
    report.note(
        "AQ2' substitutes AVG(latitude) for COUNT(*) — COUNT is exact under full-coverage \
         stratified samples, so weighting it is a no-op here (see module docs)",
    );
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_pct(cell: &str) -> f64 {
        cell.trim_end_matches('%').parse().unwrap()
    }

    #[test]
    fn weights_trade_errors() {
        let report = run(&Scale::small()).unwrap();
        assert_eq!(report.rows.len(), 5);
        // agg1 error at w1=0.9 must be below agg1 error at w1=0.1 for B1
        // (the clearest case: two genuinely conflicting columns).
        let first = parse_pct(&report.rows[0][3]);
        let last = parse_pct(&report.rows[4][3]);
        assert!(
            last <= first * 1.25,
            "B1 agg1 error should not grow when its weight rises: {first} -> {last}"
        );
    }
}
